"""Spiking-neuron computing on the FHN paradigm: excitability, a
traveling spike wave, and the mismatch jitter study.

1. One neuron: subthreshold kicks decay, suprathreshold kicks fire
   exactly one spike (excitability), strong bias gives a tonic train.
2. A diffusively coupled ring: stimulating one site launches a spike
   wave that splits both ways and meets at the antipode — rendered as
   an ASCII raster (one row per neuron, `#` while v > 0.5).
3. hw-fhn: 10% gap-junction mismatch turns the deterministic arrival
   times into a per-chip signature (spike-timing jitter) — another
   fabrication-variation entropy source in the spirit of the paper's
   PUF case study.

Run:  python examples/fhn_spiking_wave.py [--neurons N]
"""

import argparse

import numpy as np

import repro
from repro.paradigms.fhn import (NeuronSpec, neuron_ring, resting_point,
                                 single_neuron, spike_times,
                                 wave_arrival_times)

TIGHT = dict(rtol=1e-9, atol=1e-11)


def excitability() -> None:
    print("=== one neuron: excitability ===")
    v, w = resting_point()
    for label, v0, bias in (("subthreshold kick", v + 0.05, 0.0),
                            ("suprathreshold kick", 1.5, 0.0),
                            ("tonic bias I=0.5", v, 0.5)):
        spec = NeuronSpec(bias=bias)
        run = repro.simulate(single_neuron(spec, v0=v0, w0=w),
                             (0.0, 200.0), n_points=2001, **TIGHT)
        spikes = len(spike_times(run.t, run["U_0"]))
        if run["U_0"][0] > 0.5:
            spikes += 1  # launched above threshold: that IS the spike
        print(f"  {label:22s} -> {spikes} spike(s)")


def raster(n_neurons: int) -> None:
    print(f"\n=== ring of {n_neurons}: traveling spike wave ===")
    run = repro.simulate(neuron_ring(n_neurons, coupling=0.8),
                         (0.0, 60.0), n_points=601, **TIGHT)
    columns = 72
    step = max(1, run.n_points // columns)
    for index in range(n_neurons):
        trace = run[f"U_{index}"][::step]
        line = "".join("#" if value > 0.5 else "." for value in trace)
        print(f"  U_{index:<2d} {line}")
    arrivals = wave_arrival_times(run, n_neurons)
    print("  arrival times:",
          " ".join(f"{a:5.2f}" for a in arrivals))
    print(f"  last arrival at the antipode (site {n_neurons // 2}) — "
          "the wave split both ways around the ring")


def jitter(n_neurons: int) -> None:
    print("\n=== hw-fhn: spike-timing jitter across chips ===")
    ideal = repro.simulate(neuron_ring(n_neurons, coupling=0.8),
                           (0.0, 60.0), n_points=601, **TIGHT)
    reference = np.array(wave_arrival_times(ideal, n_neurons))
    print(f"  {'chip':>6s} {'rms arrival shift':>18s}")
    for seed in range(4):
        run = repro.simulate(
            neuron_ring(n_neurons, coupling=0.8,
                        mismatched_coupling=True, seed=seed),
            (0.0, 60.0), n_points=601, **TIGHT)
        arrivals = np.array(wave_arrival_times(run, n_neurons))
        shift = float(np.sqrt(np.mean((arrivals - reference) ** 2)))
        print(f"  {seed:>6d} {shift:>18.3f}")
    print("  each fabricated chip stamps its own timing signature on "
          "the wave")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--neurons", type=int, default=10)
    args = parser.parse_args()
    excitability()
    raster(args.neurons)
    jitter(args.neurons)
