"""The §7.2 interconnect-tradeoff study with intercon-obc (Fig. 13).

Two oscillator groups solve a max-cut instance. Intra-group couplings
use cheap local edges (cost 1); cross-group couplings must use expensive
global edges (cost 10) — a restriction the intercon-obc validity rules
enforce at compile time. The example:

1. builds a *legal* clustered topology and reports its routing cost;
2. shows that the validator rejects a local edge smuggled across groups;
3. sweeps the cluster split to show the programmability/cost tradeoff
   (the all-to-all [32] vs neighbor-coupled [5] spectrum);
4. simulates the legal network to confirm it still solves max-cut;
5. closes the loop with the automatic placers
   (repro.paradigms.obc.placement): random baseline vs greedy vs
   Kernighan-Lin, with the placed networks re-validated and re-solved.

Run:  python examples/intercon_design.py
"""

import math

import numpy as np

import repro
from repro.core.builder import GraphBuilder
from repro.paradigms.obc import (brute_force_maxcut, cut_value,
                                 extract_partition,
                                 intercon_obc_language,
                                 interconnect_cost, placed_network,
                                 placement_study)


def clustered_network(edges, groups, *, illegal_local_cross=False):
    """A max-cut network whose vertices are pre-assigned to two groups.

    Cross-group couplings use Cpl_g; with ``illegal_local_cross`` the
    first cross-group edge is (wrongly) built as a local Cpl_l edge to
    demonstrate compile-time rejection.
    """
    language = intercon_obc_language()
    builder = GraphBuilder(language, "clustered-maxcut")
    for vertex, group in enumerate(groups):
        name = f"Osc_{vertex}"
        builder.node(name, f"Osc_G{group}")
        builder.set_init(name, 0.1 + 0.9 * vertex)
        builder.edge(name, name, f"Shil_{vertex}", "Cpl_l")
        builder.set_attr(f"Shil_{vertex}", "k", 0.0)
        builder.set_attr(f"Shil_{vertex}", "cost", 1)
    smuggled = illegal_local_cross
    for index, (i, j) in enumerate(edges):
        cross = groups[i] != groups[j]
        edge_type = "Cpl_g" if cross and not smuggled else "Cpl_l"
        if cross and smuggled:
            smuggled = False  # only the first cross edge is illegal
        name = f"Cpl_{index}"
        builder.edge(f"Osc_{i}", f"Osc_{j}", name, edge_type)
        builder.set_attr(name, "k", -1.0)
        builder.set_attr(name, "cost", 10 if edge_type == "Cpl_g" else 1)
    return builder.finish()


def main() -> None:
    # A 6-vertex instance: two triangles joined by two cross edges.
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3),
             (0, 5)]
    groups = [0, 0, 0, 1, 1, 1]

    legal = clustered_network(edges, groups)
    repro.validate(legal, backend="flow").raise_if_invalid()
    print(f"legal clustered network: routing cost = "
          f"{interconnect_cost(legal)} "
          "(6 SHIL + 6 local + 2 global edges)")

    illegal = clustered_network(edges, groups, illegal_local_cross=True)
    report = repro.validate(illegal, backend="flow")
    print(f"illegal variant valid? {report.valid} -> "
          f"{report.violations[0][:72]}...")

    print("\ncluster-split sweep (same instance, different mapping):")
    print(f"{'split':>12s} {'global edges':>14s} {'cost':>6s}")
    for split in range(1, 6):
        mapping = [0 if v < split else 1 for v in range(6)]
        network = clustered_network(edges, mapping)
        n_global = sum(1 for i, j in edges
                       if mapping[i] != mapping[j])
        print(f"{split}|{6 - split:>10d} {n_global:>14d} "
              f"{interconnect_cost(network):>6d}")
    print("-> fewer cross-cluster edges = cheaper routing; the mapper "
          "trades solution freedom for area, the Fig. 13 story")

    trajectory = repro.simulate(legal, (0.0, 100e-9), n_points=60,
                                rtol=1e-8, atol=1e-10)
    partition = extract_partition(trajectory, 6, d=0.1 * math.pi)
    achieved = cut_value(edges, partition)
    optimal = brute_force_maxcut(edges, 6)
    print(f"\nsimulated legal network: cut {achieved} / optimal "
          f"{optimal} (partition {partition})")

    print("\nautomatic placement (the architect's design loop):")
    print(f"{'placer':>14s} {'local':>6s} {'global':>7s} {'cost':>6s} "
          f"{'cut':>4s}")
    rng = np.random.default_rng(7)
    phases = rng.uniform(0.0, 2.0 * math.pi, 6)
    for name, placement in placement_study(edges, 6, seed=3).items():
        network = placed_network(edges, placement,
                                 initial_phases=phases)
        repro.validate(network, backend="flow").raise_if_invalid()
        run = repro.simulate(network, (0.0, 100e-9), n_points=60,
                             rtol=1e-8, atol=1e-10)
        placed_cut = cut_value(
            edges, extract_partition(run, 6, d=0.1 * math.pi))
        print(f"{name:>14s} {placement.n_local:>6d} "
              f"{placement.n_global:>7d} "
              f"{placement.coupling_cost:>6d} {placed_cut:>4}")
    print("-> every placement computes the same cut; only the routing "
          "cost changes.")


if __name__ == "__main__":
    main()
