"""The §7.1 CNN edge-detection study (Fig. 11) in the terminal.

Runs the edge detector under the four Fig. 11c hardware variants:

  A  ideal CNN
  B  10% mismatch in the integrator bias (hw-cnn ``Vm``)
  C  10% mismatch in the template weights (hw-cnn ``fEm``)
  D  non-ideal MOS saturation (hw-cnn ``OutNL``)

and prints the evolving cell states as ASCII frames plus the paper's
takeaways: B converges more slowly but correctly, C can produce wrong
pixels, D converges *faster* and correctly (a nonideality that helps).

Run:  python examples/cnn_edge_detection.py [--size N] [--seed K]
"""

import argparse

import repro
from repro.paradigms.cnn import (default_image, edge_detector,
                                 expected_edges, run_cnn, to_ascii)

COLUMNS = {
    "A": ("ideal", "ideal CNN"),
    "B": ("bias_mismatch", "10% integrator-bias mismatch"),
    "C": ("template_mismatch", "10% template-weight mismatch"),
    "D": ("nonideal_sat", "non-ideal MOS saturation"),
}


def main(size: int, seed: int, show_frames: bool) -> None:
    image = default_image(size)
    expected = expected_edges(image)
    print("input image:")
    print(to_ascii(image))
    print("\nexpected edges:")
    print(to_ascii(expected))

    results = {}
    for column, (variant, label) in COLUMNS.items():
        graph = edge_detector(image, variant, seed=seed)
        repro.validate(graph, backend="flow").raise_if_invalid()
        run = run_cnn(graph, size, size, variant=variant,
                      expected=expected)
        results[column] = run
        print(f"\n--- column {column}: {label} ---")
        if show_frames:
            for fraction, grid in sorted(run.snapshots.items()):
                print(f"t = {fraction:.2f} * T:")
                print(to_ascii(grid))
        else:
            print(to_ascii(run.output))
        converged = (f"{run.converged_at:.2f}" if run.converged
                     else "never")
        print(f"converged at t={converged}, pixel errors: {run.errors}")

    print("\n=== takeaways (paper §7.1) ===")
    a, b, c, d = (results[k] for k in "ABCD")
    if b.converged and a.converged and b.converged_at > a.converged_at:
        print("* bias mismatch (B) converges more slowly than ideal (A)"
              f" ({b.converged_at:.2f} vs {a.converged_at:.2f})")
    if c.errors:
        print(f"* template mismatch (C) corrupts the output "
              f"({c.errors} wrong pixels) -> reduce g mismatch first")
    if d.converged and a.converged and d.converged_at < a.converged_at:
        print("* the non-ideal saturation (D) actually *improves* "
              f"convergence ({d.converged_at:.2f} vs "
              f"{a.converged_at:.2f}) -> an acceptable nonideality")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=16)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--frames", action="store_true",
                        help="print every Fig. 11c time snapshot")
    args = parser.parse_args()
    main(args.size, args.seed, args.frames)
