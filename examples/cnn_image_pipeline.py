"""A multi-template CNN image pipeline plus heat-equation solving.

The CNN usage model is one analog array reprogrammed with a sequence of
templates. This example chains library templates into a noise-robust
edge detector —

  1. EROSION then DILATION (morphological opening) removes salt noise,
  2. EDGE extracts the contours of the cleaned objects,
  3. SHADOW casts the contours leftward (a classic CNN projection)

— verifying every analog stage against its discrete reference, and then
reprograms the same array as a *PDE solver*: linear diffusion of a hot
square, checked against the exact solution of the discretized heat
equation (the paper's §7.1 "PDE solving" application; see
repro/paradigms/cnn/pde.py).

Run:  python examples/cnn_image_pipeline.py [--size N] [--noise P]
"""

import argparse

import numpy as np

from repro.paradigms.cnn import (DILATION_TEMPLATE, EDGE_TEMPLATE,
                                 EROSION_TEMPLATE, SHADOW_TEMPLATE,
                                 WHITE, apply_template, default_image,
                                 diffusion_step_response, expected_edges,
                                 expected_opening, expected_shadow,
                                 pixel_errors, to_ascii)


def salted(image: np.ndarray, probability: float,
           seed: int) -> np.ndarray:
    """Flip a fraction of white pixels to black (salt noise)."""
    rng = np.random.default_rng(seed)
    noisy = image.copy()
    salt = (rng.random(image.shape) < probability) & (image < 0)
    noisy[salt] = 1.0
    return noisy


def stage(label: str, output: np.ndarray,
          reference: np.ndarray) -> None:
    errors = pixel_errors(output, reference)
    print(f"\n--- {label} (pixel errors vs reference: {errors}) ---")
    print(to_ascii(output))


def main(size: int, noise: float, seed: int) -> None:
    image = salted(default_image(size), noise, seed)
    print("noisy input image:")
    print(to_ascii(image))

    # Stage 1: morphological opening (erosion, then dilation).
    eroded = apply_template(image, EROSION_TEMPLATE)
    opened = apply_template(eroded, DILATION_TEMPLATE)
    stage("opening (noise removal)", opened, expected_opening(image))

    # Stage 2: edge detection on the cleaned image.
    edges = apply_template(opened, EDGE_TEMPLATE, boundary=WHITE)
    stage("edge detection", edges, expected_edges(opened))

    # Stage 3: leftward shadow of the contours.
    shadow = apply_template(edges, SHADOW_TEMPLATE)
    stage("shadow projection", shadow, expected_shadow(edges))

    # Finale: the same array as a heat-equation solver.
    print("\n=== PDE mode: diffusing a hot square ===")
    result = diffusion_step_response(size=min(size, 10), rate=0.5,
                                     times=(0.0, 0.5, 1.0, 2.0))
    for t, frame, rmse in zip(result["times"], result["cnn"],
                              result["rmse"]):
        peak = frame.max()
        print(f"t={t:4.1f}: peak temperature {peak:6.3f}, "
              f"RMSE vs exact heat equation {rmse:.2e}")
    print("the analog array solves the PDE to solver precision.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=12)
    parser.add_argument("--noise", type=float, default=0.04)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()
    main(args.size, args.noise, args.seed)
