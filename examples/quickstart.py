"""Quickstart: define an Ark language, build a graph, validate, simulate.

Two equivalent routes are shown:

1. the *programmatic* API (`repro.Language`, `repro.GraphBuilder`);
2. the *textual* front-end (`repro.lang.parse_program`) using the paper's
   concrete syntax, including an Ark `func` with a switchable edge.

The toy paradigm is a pair of leaky integrators coupled through a
weighted edge — small enough to read the generated equations by eye.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.lang import parse_program


def programmatic() -> None:
    print("=== programmatic API ===")
    lang = repro.Language("leaky")
    lang.node_type("X", order=1, reduction="sum",
                   attrs=[("tau", repro.real(0.1, 10.0))])
    lang.edge_type("W", attrs=[("w", repro.real(-5.0, 5.0))])
    lang.prod("prod(e:W, s:X->s:X) s <= -var(s)/s.tau")
    lang.prod("prod(e:W, s:X->t:X) t <= e.w*var(s)/t.tau")
    lang.cstr("cstr X {acc[match(1,1,W,X), match(0,inf,W,X->[X]),"
              " match(0,inf,W,[X]->X)]}")

    builder = repro.GraphBuilder(lang, "two-pole")
    builder.node("x0", "X").set_attr("x0", "tau", 1.0)
    builder.node("x1", "X").set_attr("x1", "tau", 0.5)
    builder.edge("x0", "x0", "leak0", "W").set_attr("leak0", "w", 0.0)
    builder.edge("x1", "x1", "leak1", "W").set_attr("leak1", "w", 0.0)
    builder.edge("x0", "x1", "couple", "W")
    builder.set_attr("couple", "w", 2.0)
    builder.set_init("x0", 1.0).set_init("x1", 0.0)
    graph = builder.finish()

    report = repro.validate(graph)
    print("valid:", report.valid)
    system = repro.compile_graph(graph)
    for equation in system.equations():
        print("  ", equation)

    trajectory = repro.simulate(graph, (0.0, 4.0), n_points=200)
    print(f"final x0={trajectory.final('x0'):+.4f} "
          f"x1={trajectory.final('x1'):+.4f}")
    # x0 decays as exp(-t); x1 is driven through the coupling.
    assert abs(trajectory.final("x0") - np.exp(-4.0)) < 1e-3


def textual() -> None:
    print("\n=== textual front-end ===")
    program = parse_program("""
        lang leaky {
            ntyp(1,sum) X {attr tau=real[0.1,10]};
            etyp W {attr w=real[-5,5]};
            prod(e:W, s:X->s:X) s <= -var(s)/s.tau;
            prod(e:W, s:X->t:X) t <= e.w*var(s)/t.tau;
            cstr X {acc[match(1,1,W,X),
                        match(0,inf,W,X->[X]),
                        match(0,inf,W,[X]->X)]};
        }

        func two-pole (w:real[-5,5], coupled:int[0,1]) uses leaky {
            node x0:X; node x1:X;
            edge <x0,x0> leak0:W; edge <x1,x1> leak1:W;
            edge <x0,x1> couple:W;
            set-attr x0.tau = 1.0;  set-attr x1.tau = 0.5;
            set-attr leak0.w = 0.0; set-attr leak1.w = 0.0;
            set-attr couple.w = w;
            set-init x0(0) = 1.0;   set-init x1(0) = 0.0;
            set-switch couple when coupled == 1;
        }
    """)
    two_pole = program.functions["two-pole"]
    for coupled in (0, 1):
        graph = two_pole(w=2.0, coupled=coupled)
        repro.validate(graph).raise_if_invalid()
        trajectory = repro.simulate(graph, (0.0, 4.0), n_points=200)
        print(f"coupled={coupled}: final x1="
              f"{trajectory.final('x1'):+.4f}")


if __name__ == "__main__":
    programmatic()
    textual()
