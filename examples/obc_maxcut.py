"""The §7.2 oscillator-based max-cut study (Table 1).

Solves random unweighted 4-vertex max-cut instances on the coupled
Kuramoto network, with and without the integrator-offset nonideality,
and reads the steady-state phases at two deviation tolerances
(d = 0.01*pi and 0.1*pi). Reproduces the paper's mitigation story: the
offset wrecks the tight readout but widening the tolerance — a knob
*outside* the analog circuit — absorbs the phase jitter.

The paper uses 1000 instances; the default here is 300 for a ~30 s run.

Run:  python examples/obc_maxcut.py [--trials N]
"""

import argparse
import math

from repro.paradigms.obc import maxcut_experiment, random_graphs


def main(trials: int) -> None:
    graphs = random_graphs(trials, n_vertices=4, seed=2024)
    tolerances = (0.01 * math.pi, 0.1 * math.pi)

    print(f"{trials} random unweighted 4-vertex graphs\n")
    print(f"{'':12s} {'obc':>22s} {'offset-obc':>22s}")
    print(f"{'d':12s} {'sync%':>10s} {'slvd%':>10s}"
          f" {'sync%':>10s} {'slvd%':>10s}")

    ideal = maxcut_experiment(graphs, 4, tolerances=tolerances,
                              edge_type="Cpl")
    offset = maxcut_experiment(graphs, 4, tolerances=tolerances,
                               edge_type="Cpl_ofs", mismatch_seeds=True)
    for d in tolerances:
        label = f"{d / math.pi:.2f}*pi"
        print(f"{label:12s} "
              f"{ideal[d].sync_probability * 100:>9.1f} "
              f"{ideal[d].solved_probability * 100:>10.1f} "
              f"{offset[d].sync_probability * 100:>10.1f} "
              f"{offset[d].solved_probability * 100:>10.1f}")

    tight, loose = tolerances
    print("\n=== takeaways (paper §7.2, Table 1) ===")
    print(f"* offset drops tight-readout accuracy from "
          f"{ideal[tight].solved_probability * 100:.0f}% to "
          f"{offset[tight].solved_probability * 100:.0f}%")
    print(f"* widening d to 0.1*pi restores it to "
          f"{offset[loose].solved_probability * 100:.0f}% — a mitigation "
          "applied entirely outside the analog circuit")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=300,
                        help="number of random graphs (paper: 1000)")
    args = parser.parse_args()
    main(args.trials)
