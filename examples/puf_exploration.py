"""The §2 TLN PUF design-space exploration, end to end.

Walks the paper's design flow:

1. simulate the linear and branched t-lines (Fig. 4a/4b) and derive
   their observation windows (§2.2);
2. compare Cint- vs Gm-mismatch trajectory spread over fabricated
   instances (Figs. 4c/4d) — the paper's conclusion: use Gm mismatch;
3. build the switchable multi-branch PUF and measure uniqueness,
   reliability, and uniformity over a small chip population;
4. mount an ML modeling attack on one chip (§2's "hard to predict"
   requirement): cross-validated prediction accuracy vs the
   constant-predictor baseline, at two feature degrees.

Run:  python examples/puf_exploration.py [--chips N] [--trials N]
"""

import argparse

import numpy as np

import repro
from repro.analysis import observation_window, window_spread
from repro.paradigms.tln import (TLineSpec, branched_tline, linear_tline,
                                 mismatched_tline)
from repro.puf import (PufDesign, cross_validate, evaluate_puf,
                       reliability, uniformity, uniqueness)

T_END = 8e-8


def explore_topologies() -> None:
    print("=== Fig. 4a/4b: linear vs branched t-line ===")
    linear = linear_tline()
    branched = branched_tline()
    for name, graph in (("linear", linear), ("branched", branched)):
        repro.validate(graph, backend="flow").raise_if_invalid()
        trajectory = repro.simulate(graph, (0.0, T_END), n_points=600)
        out = trajectory["OUT_V"]
        window = observation_window(trajectory, "OUT_V")
        print(f"{name:9s} peak={out.max():.3f} "
              f"window=[{window[0]:.1e}, {window[1]:.1e}] s")
    print("-> the branched line needs the wider window to capture its "
          "echo")


def explore_mismatch(chips: int) -> None:
    print(f"\n=== Figs. 4c/4d: mismatch spread over {chips} chips ===")
    window = (1e-8, 3e-8)
    scores = {}
    for kind in ("cint", "gm"):
        trajectories = repro.simulate_ensemble(
            lambda seed, kind=kind: mismatched_tline(kind, seed=seed),
            seeds=range(chips), t_span=(0.0, T_END), n_points=400)
        scores[kind] = window_spread(trajectories, "OUT_V", window)
        print(f"{kind:5s} mismatch: mean ensemble std in window = "
              f"{scores[kind]:.4f}")
    ratio = scores["gm"] / max(scores["cint"], 1e-12)
    print(f"-> Gm mismatch spreads {ratio:.1f}x more: prefer Gm-based "
          "PUF designs (the paper's conclusion)")


def evaluate_design(chips: int) -> None:
    print(f"\n=== PUF metrics over {chips} chips ===")
    design = PufDesign(spec=TLineSpec(n_segments=16),
                       branch_positions=(4, 8, 12),
                       branch_lengths=(5, 8, 11))
    challenge = "101"
    from repro.puf import evaluate_puf_population, puf_reliability

    # One batched solve for the whole population (not one per chip).
    responses = list(evaluate_puf_population(
        design, challenge, seeds=range(chips), n_bits=32))
    print(f"uniqueness  = {uniqueness(responses):.3f}  (ideal 0.5)")
    print(f"uniformity  = "
          f"{np.mean([uniformity(r) for r in responses]):.3f}"
          "  (ideal 0.5)")

    # Reliability from transient noise: the chip's *dynamics* are
    # perturbed (batched SDE trials), not just the sampled voltages.
    noisy_design = PufDesign(spec=design.spec,
                             branch_positions=design.branch_positions,
                             branch_lengths=design.branch_lengths,
                             noise=1e-8)
    report = puf_reliability(noisy_design, challenge, seeds=[0],
                             trials=5, n_bits=32)
    print(f"reliability = {report.mean:.3f}"
          "  (ideal 1.0, transient thermal noise, 5 trials)")

    legacy = puf_reliability(design, challenge, seeds=[0], trials=5,
                             n_bits=32, mode="readout",
                             readout_sigma=2e-3)
    print(f"  (legacy readout-noise model: {legacy.mean:.3f})")

    control = PufDesign(spec=design.spec,
                        branch_positions=design.branch_positions,
                        branch_lengths=design.branch_lengths,
                        variant="ideal")
    identical = [evaluate_puf(control, challenge, seed=chip, n_bits=32)
                 for chip in range(3)]
    print(f"ideal-variant uniqueness = {uniqueness(identical):.3f}"
          "  (no mismatch -> clones, as expected)")


def attack_design() -> None:
    print("\n=== ML modeling attack (one chip, 4 branch bits) ===")
    design = PufDesign(spec=TLineSpec(n_segments=10, pulse_width=4e-9),
                       branch_positions=(2, 4, 6, 8),
                       branch_lengths=(3, 5, 4, 6))
    kwargs = dict(n_bits=16, window=(8e-9, 4.5e-8), n_points=240)
    for degree in (1, 2):
        result = cross_validate(design, seed=3, k=4, degree=degree,
                                rng=0, **kwargs)
        print(f"degree-{degree} attack: accuracy {result.accuracy:.3f}"
              f" (baseline {result.baseline:.3f}, advantage "
              f"{result.advantage:+.3f})")
    print("-> a linear model predicts unseen responses above chance: "
          "this 16-challenge design is too small to resist modeling; "
          "scale branches before trusting it as an authenticator")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--chips", type=int, default=20,
                        help="fabricated instances per study")
    args = parser.parse_args()
    explore_topologies()
    explore_mismatch(args.chips)
    evaluate_design(min(args.chips, 8))
    attack_design()
