"""Programming a general-purpose analog computer in Ark.

Builds the classic analog-computer repertoire in the GPAC DSL —
exponential decay, a sine generator, Lotka-Volterra, Van der Pol, and
the Lorenz attractor — verifies each against an independent scipy
integration, and then runs the hw-gpac nonideality study: how much
integrator *leak* (finite DC gain, the dominant nonideality in the VLSI
analog computers the paper cites) can each computation tolerate?

The takeaway mirrors the paper's §7.1 lesson that some nonidealities
are benign: the open-loop sine generator loses its amplitude to any
leak, while the Van der Pol limit cycle — whose feedback re-injects
energy — keeps oscillating at 10x the leak.

Run:  python examples/gpac_analog_computer.py [--leak L]
"""

import argparse

import numpy as np

import repro
from repro.paradigms.gpac import (decay_reference, exponential_decay,
                                  harmonic_oscillator, leaky,
                                  limit_cycle_amplitude, lorenz,
                                  lorenz_reference, lotka_volterra,
                                  lotka_volterra_reference,
                                  oscillator_reference, van_der_pol,
                                  van_der_pol_reference)

TIGHT = dict(rtol=1e-9, atol=1e-11)


def check(label: str, graph, span, nodes_and_refs, n_points=401,
          **options) -> None:
    repro.validate(graph).raise_if_invalid()
    trajectory = repro.simulate(graph, span, n_points=n_points,
                                **(TIGHT | options))
    worst = max(float(np.abs(trajectory[node] - ref(trajectory.t)).max())
                for node, ref in nodes_and_refs.items())
    states = len(graph.nodes)
    print(f"  {label:18s} {states:3d} nodes   "
          f"max |ark - scipy| = {worst:.2e}")


def main(leak: float) -> None:
    print("=== GPAC programs vs independent scipy integration ===")
    check("decay", exponential_decay(rate=0.7, initial=2.0), (0, 5),
          {"x": lambda t: decay_reference(0.7, 2.0, t)})
    check("sine generator", harmonic_oscillator(omega=2.0), (0, 8),
          {"x": lambda t: oscillator_reference(2.0, 1.0, t)})
    check("Lotka-Volterra", lotka_volterra(), (0, 20),
          {"x": lambda t: lotka_volterra_reference(
              1.1, 0.4, 0.1, 0.4, 10, 10, t)[0]})
    check("Van der Pol", van_der_pol(), (0, 20),
          {"x": lambda t: van_der_pol_reference(1.0, 0.5, 0.0, t)[0]})
    check("Lorenz (t<=2)", lorenz(), (0, 2),
          {"z": lambda t: lorenz_reference(10.0, 28.0, 8 / 3, 1, 1, 1,
                                           t)[2]},
          rtol=1e-10, atol=1e-12)

    print(f"\n=== hw-gpac integrator-leak study (leak = {leak}) ===")
    span = (0.0, 40.0)
    ideal_vdp = repro.simulate(van_der_pol(), span, n_points=801)
    print(f"  {'computation':18s} {'ideal amp':>10s} {'leaky amp':>10s}")
    for label, factory in (
            ("sine generator", lambda t: harmonic_oscillator(types=t)),
            ("Van der Pol", lambda t: van_der_pol(types=t))):
        ideal = repro.simulate(factory(leaky(0.0)), span, n_points=801)
        nonideal = repro.simulate(factory(leaky(leak)), span,
                                  n_points=801)
        ideal_amp = limit_cycle_amplitude(ideal.t, ideal["x"])
        leaky_amp = limit_cycle_amplitude(nonideal.t, nonideal["x"])
        print(f"  {label:18s} {ideal_amp:10.3f} {leaky_amp:10.3f}")
    print("\nthe sine generator's amplitude decays as exp(-leak*t); the"
          "\nVan der Pol limit cycle self-restores -> tolerate the leak"
          "\nin feedback-stabilized computations, spend design effort"
          "\nonly where the computation is open-loop.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--leak", type=float, default=0.2)
    args = parser.parse_args()
    main(args.leak)
