"""Shim for environments whose setuptools cannot build PEP 517 editable
wheels (install with ``pip install -e . --no-use-pep517``)."""

from setuptools import setup

setup()
