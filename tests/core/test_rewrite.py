"""Tests for progressive type substitution (§2.4, Fig. 5 workflow)."""

import numpy as np
import pytest

import repro
from repro.core.rewrite import substitute_types
from repro.paradigms.tln import (TLineSpec, linear_tline,
                                 mismatched_tline)


class TestSubstitution:
    def test_cint_substitution_matches_builder_variant(self, gmc,
                                                       small_spec):
        ideal = linear_tline(small_spec)
        rewritten = substitute_types(ideal, {"V": "Vm", "I": "Im"},
                                     language=gmc, seed=7)
        builder_made = mismatched_tline("cint", small_spec, seed=7)
        t_a = repro.simulate(rewritten, (0.0, 2e-8), n_points=80)
        t_b = repro.simulate(builder_made, (0.0, 2e-8), n_points=80)
        assert np.allclose(t_a["OUT_V"], t_b["OUT_V"])

    def test_gm_substitution_matches_builder_variant(self, gmc,
                                                     small_spec):
        ideal = linear_tline(small_spec)
        rewritten = substitute_types(
            ideal, {"E": "Em"}, language=gmc, seed=7,
            new_attrs={"ws": 1.0, "wt": 1.0},
            only={e.name for e in ideal.edges if not e.is_self})
        builder_made = mismatched_tline("gm", small_spec, seed=7)
        t_a = repro.simulate(rewritten, (0.0, 2e-8), n_points=80)
        t_b = repro.simulate(builder_made, (0.0, 2e-8), n_points=80)
        assert np.allclose(t_a["OUT_V"], t_b["OUT_V"])

    def test_partial_substitution(self, gmc, small_spec):
        ideal = linear_tline(small_spec)
        rewritten = substitute_types(ideal, {"V": "Vm"}, language=gmc,
                                     seed=1, only={"IN_V"})
        assert rewritten.node("IN_V").type.name == "Vm"
        assert rewritten.node("OUT_V").type.name == "V"
        assert repro.validate(rewritten, backend="flow").valid

    def test_substituted_graph_validates(self, gmc, small_spec):
        ideal = linear_tline(small_spec)
        rewritten = substitute_types(ideal, {"V": "Vm", "I": "Im"},
                                     language=gmc, seed=2)
        assert repro.validate(rewritten, backend="flow").valid

    def test_seed_none_preserves_dynamics(self, gmc, small_spec):
        ideal = linear_tline(small_spec)
        rewritten = substitute_types(ideal, {"V": "Vm", "I": "Im"},
                                     language=gmc, seed=None)
        t_a = repro.simulate(ideal, (0.0, 2e-8), n_points=80)
        t_b = repro.simulate(rewritten, (0.0, 2e-8), n_points=80)
        assert np.allclose(t_a["OUT_V"], t_b["OUT_V"])

    def test_switch_state_preserved(self, gmc):
        from repro.paradigms.tln import branched_tline_function
        fn = branched_tline_function(TLineSpec(n_segments=4),
                                     branch_segments=2)
        off_graph = fn(br=0)
        rewritten = substitute_types(off_graph, {"V": "Vm"},
                                     language=gmc, seed=1)
        assert len(rewritten.off_edges()) == 1

    def test_non_subtype_rejected(self, gmc, small_spec):
        ideal = linear_tline(small_spec)
        with pytest.raises(repro.InheritanceError):
            substitute_types(ideal, {"Vm": "V"}, language=gmc)

    def test_unknown_type_rejected(self, gmc, small_spec):
        ideal = linear_tline(small_spec)
        with pytest.raises(repro.GraphError):
            substitute_types(ideal, {"V": "Q"}, language=gmc)

    def test_node_edge_mixture_rejected(self, gmc, small_spec):
        ideal = linear_tline(small_spec)
        with pytest.raises(repro.GraphError):
            substitute_types(ideal, {"V": "Em"}, language=gmc)
