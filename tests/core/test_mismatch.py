"""Unit tests for the seeded mismatch sampler (§4.3 semantics)."""

import numpy as np
import pytest

from repro.core.datatypes import Mismatch, integer, real
from repro.core.mismatch import MismatchSampler


class TestDeterminism:
    def test_same_seed_same_sample(self):
        a = MismatchSampler(1).sample("n", "c", Mismatch(0, 0.1), 1.0)
        b = MismatchSampler(1).sample("n", "c", Mismatch(0, 0.1), 1.0)
        assert a == b

    def test_different_seed_different_sample(self):
        a = MismatchSampler(1).sample("n", "c", Mismatch(0, 0.1), 1.0)
        b = MismatchSampler(2).sample("n", "c", Mismatch(0, 0.1), 1.0)
        assert a != b

    def test_different_element_different_stream(self):
        sampler = MismatchSampler(1)
        a = sampler.sample("n1", "c", Mismatch(0, 0.1), 1.0)
        b = sampler.sample("n2", "c", Mismatch(0, 0.1), 1.0)
        assert a != b

    def test_different_attr_different_stream(self):
        sampler = MismatchSampler(1)
        a = sampler.sample("n", "c", Mismatch(0, 0.1), 1.0)
        b = sampler.sample("n", "g", Mismatch(0, 0.1), 1.0)
        assert a != b

    def test_order_independent(self):
        s1 = MismatchSampler(5)
        first = s1.sample("a", "x", Mismatch(0, 0.1), 1.0)
        s1.sample("b", "x", Mismatch(0, 0.1), 1.0)
        s2 = MismatchSampler(5)
        s2.sample("b", "x", Mismatch(0, 0.1), 1.0)
        again = s2.sample("a", "x", Mismatch(0, 0.1), 1.0)
        assert first == again


class TestSemantics:
    def test_none_seed_returns_nominal(self):
        sampler = MismatchSampler(None)
        assert sampler.sample("n", "c", Mismatch(0, 0.5), 3.0) == 3.0

    def test_zero_sigma_returns_nominal(self):
        sampler = MismatchSampler(3)
        assert sampler.sample("n", "c", Mismatch(0, 0.1), 0.0) == 0.0

    def test_absolute_component(self):
        # mm(0.02, 0) on nominal 0 (the ofs-obc offset) must vary.
        sampler = MismatchSampler(3)
        value = sampler.sample("e", "offset", Mismatch(0.02, 0.0), 0.0)
        assert value != 0.0
        assert abs(value) < 0.2  # within 10 sigma

    def test_distribution_statistics(self):
        annotation = Mismatch(0.0, 0.1)
        samples = np.array([
            MismatchSampler(seed).sample("n", "c", annotation, 2.0)
            for seed in range(800)])
        assert samples.mean() == pytest.approx(2.0, abs=0.03)
        assert samples.std() == pytest.approx(0.2, rel=0.15)

    def test_resolve_skips_unannotated(self):
        sampler = MismatchSampler(3)
        assert sampler.resolve("n", "c", real(0, 10), 5.0) == 5.0

    def test_resolve_applies_annotation(self):
        sampler = MismatchSampler(3)
        value = sampler.resolve("n", "c", real(0, 10, mm=(0, 0.1)), 5.0)
        assert value != 5.0

    def test_resolve_rounds_integers(self):
        sampler = MismatchSampler(3)
        value = sampler.resolve("n", "k", integer(0, 100, mm=(5, 0)),
                                50)
        assert isinstance(value, int)

    def test_resolve_skips_lambda(self):
        from repro.core.datatypes import lambd
        sampler = MismatchSampler(3)
        fn = lambda t: t  # noqa: E731 (the lambda-ness is the point)
        assert sampler.resolve("n", "fn", lambd(1), fn) is fn
