"""Tests for the §4.6 framework driver (invoke -> validate -> compile ->
simulate)."""

import math

import pytest

import repro
from repro.core import function as F
from repro.core.builder import GraphBuilder
from tests.conftest import build_leaky_language, build_two_pole


class TestRunWithGraph:
    def test_full_pipeline(self):
        lang = build_leaky_language()
        graph = build_two_pole(lang)
        result = repro.run(graph, (0.0, 2.0), n_points=100)
        assert result.report.valid
        assert result.system.n_states == 2
        assert result.trajectory.final("x0") == pytest.approx(
            math.exp(-2.0), rel=1e-3)

    def test_invalid_graph_raises_before_simulation(self):
        lang = build_leaky_language()
        builder = GraphBuilder(lang)
        builder.node("x", "X").set_attr("x", "tau", 1.0)
        with pytest.raises(repro.ValidationError):
            repro.run(builder.finish(), (0.0, 1.0))

    def test_run_under_derived_language(self):
        base = build_leaky_language()
        derived = repro.Language("leaky-hw", parent=base)
        derived.edge_type("Wm", inherits="W")
        graph = build_two_pole(base)
        result = repro.run(graph, (0.0, 1.0), language=derived)
        assert result.report.language_name == "leaky-hw"

    def test_validator_backend_forwarded(self):
        lang = build_leaky_language()
        graph = build_two_pole(lang)
        result = repro.run(graph, (0.0, 1.0),
                           validator_backend="flow")
        assert result.report.valid


class TestRunWithFunction:
    def _fn(self):
        lang = build_leaky_language()
        return F.ArkFunction(
            "pair", lang,
            args=[F.FuncArg("w", repro.real(-5, 5))],
            statements=[
                F.NodeStmt("x0", "X"), F.NodeStmt("x1", "X"),
                F.EdgeStmt("x0", "x0", "l0", "W"),
                F.EdgeStmt("x1", "x1", "l1", "W"),
                F.EdgeStmt("x0", "x1", "c", "W"),
                F.SetAttrStmt("x0", "tau", F.Literal(1.0)),
                F.SetAttrStmt("x1", "tau", F.Literal(1.0)),
                F.SetAttrStmt("l0", "w", F.Literal(0.0)),
                F.SetAttrStmt("l1", "w", F.Literal(0.0)),
                F.SetAttrStmt("c", "w", F.ArgRef("w")),
                F.SetInitStmt("x0", 0, F.Literal(1.0)),
            ])

    def test_function_invoked_then_run(self):
        result = repro.run(self._fn(), (0.0, 1.0),
                           arguments={"w": 1.0})
        assert result.graph.edge("c").attrs["w"] == 1.0
        assert result.trajectory.final("x1") > 0.0

    def test_seed_forwarded(self):
        lang = repro.Language("mm")
        lang.node_type("N", order=1,
                       attrs=[("a", repro.real(0, 10, mm=(0, 0.1)))])
        lang.edge_type("S")
        lang.prod("prod(e:S,s:N->s:N) s<=-s.a*var(s)")
        fn = F.ArkFunction("decay", lang, statements=[
            F.NodeStmt("n", "N"),
            F.SetAttrStmt("n", "a", F.Literal(1.0)),
            F.SetInitStmt("n", 0, F.Literal(1.0)),
            F.EdgeStmt("n", "n", "s", "S")])
        a = repro.run(fn, (0.0, 1.0), seed=1)
        b = repro.run(fn, (0.0, 1.0), seed=2)
        assert a.trajectory.final("n") != b.trajectory.final("n")
