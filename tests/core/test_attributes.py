"""Unit tests for attribute and init-value declarations and their
override rules."""

import pytest

from repro.core.attributes import AttrDecl, InitDecl
from repro.core.datatypes import integer, lambd, real
from repro.errors import DatatypeError, InheritanceError


class TestAttrDecl:
    def test_default_checked_against_datatype(self):
        with pytest.raises(DatatypeError):
            AttrDecl("a", real(0, 1), default=2.0)

    def test_valid_default(self):
        decl = AttrDecl("a", real(0, 1), default=0.5)
        assert decl.default == 0.5

    def test_override_narrowing_ok(self):
        parent = AttrDecl("a", real(0, 10))
        child = AttrDecl("a", real(2, 8))
        child.check_override(parent)

    def test_override_widening_rejected(self):
        parent = AttrDecl("a", real(0, 10))
        child = AttrDecl("a", real(-1, 10))
        with pytest.raises(InheritanceError):
            child.check_override(parent)

    def test_override_kind_change_rejected(self):
        parent = AttrDecl("a", real(0, 10))
        child = AttrDecl("a", integer(0, 10))
        with pytest.raises(InheritanceError):
            child.check_override(parent)

    def test_override_rename_rejected(self):
        parent = AttrDecl("a", real(0, 10))
        child = AttrDecl("b", real(0, 10))
        with pytest.raises(InheritanceError):
            child.check_override(parent)

    def test_override_cannot_drop_const(self):
        parent = AttrDecl("a", real(0, 10), const=True)
        child = AttrDecl("a", real(0, 10), const=False)
        with pytest.raises(InheritanceError):
            child.check_override(parent)

    def test_override_can_add_const(self):
        parent = AttrDecl("a", real(0, 10))
        child = AttrDecl("a", real(0, 10), const=True)
        child.check_override(parent)

    def test_override_can_add_mismatch(self):
        # GmC-TLN overrides plain `c` with a mm-annotated `c` (Fig. 9).
        parent = AttrDecl("c", real(1e-10, 1e-8))
        child = AttrDecl("c", real(1e-10, 1e-8, mm=(0, 0.1)))
        child.check_override(parent)

    def test_lambda_override_same_arity(self):
        parent = AttrDecl("fn", lambd(1))
        child = AttrDecl("fn", lambd(1))
        child.check_override(parent)
        with pytest.raises(InheritanceError):
            AttrDecl("fn", lambd(2)).check_override(parent)


class TestInitDecl:
    def test_negative_index_rejected(self):
        with pytest.raises(DatatypeError):
            InitDecl(-1, real(0, 1))

    def test_default_checked(self):
        with pytest.raises(DatatypeError):
            InitDecl(0, real(0, 1), default=9.0)

    def test_override_index_must_match(self):
        parent = InitDecl(0, real(-10, 10))
        with pytest.raises(InheritanceError):
            InitDecl(1, real(-10, 10)).check_override(parent)

    def test_override_narrowing(self):
        parent = InitDecl(0, real(-10, 10))
        InitDecl(0, real(-1, 1)).check_override(parent)
        with pytest.raises(InheritanceError):
            InitDecl(0, real(-20, 20)).check_override(parent)

    def test_override_const_rules(self):
        parent = InitDecl(0, real(-1, 1), const=True)
        with pytest.raises(InheritanceError):
            InitDecl(0, real(-1, 1), const=False).check_override(parent)
