"""Unit tests for the §5 dynamical-system compiler."""

import math

import numpy as np
import pytest

import repro
from repro.core.builder import GraphBuilder
from repro.core.compiler import compile_graph
from repro.errors import CompileError
from tests.conftest import build_leaky_language, build_two_pole


class TestStateAllocation:
    def test_one_state_per_order(self):
        lang = build_leaky_language()
        graph = build_two_pole(lang)
        system = compile_graph(graph)
        assert system.n_states == 2
        assert system.index_of("x0") == 0
        assert system.index_of("x1") == 1

    def test_higher_order_states(self):
        lang = repro.Language("osc2")
        lang.node_type("H", order=2, reduction="sum")
        lang.edge_type("S")
        lang.prod("prod(e:S,s:H->s:H) s<=-var(s)")
        builder = GraphBuilder(lang)
        builder.node("h", "H")
        builder.edge("h", "h", "e", "S")
        builder.set_init("h", 1.0, index=0)
        builder.set_init("h", 0.0, index=1)
        system = compile_graph(builder.finish())
        assert system.n_states == 2
        assert system.index_of("h", 0) == 0
        assert system.index_of("h", 1) == 1
        # Chain equation: d h/dt = h'
        equations = system.equations()
        assert "d h/dt = h'" in equations

    def test_initial_state_vector(self):
        lang = build_leaky_language()
        graph = build_two_pole(lang)
        system = compile_graph(graph)
        assert list(system.y0) == [1.0, 0.0]

    def test_unknown_state_raises(self):
        lang = build_leaky_language()
        system = compile_graph(build_two_pole(lang))
        with pytest.raises(CompileError):
            system.index_of("ghost")


class TestSecondOrderDynamics:
    def test_harmonic_oscillator(self):
        # d2q/dt2 = -q  -> q(t) = cos(t)
        lang = repro.Language("sho")
        lang.node_type("Q", order=2, reduction="sum")
        lang.edge_type("S")
        lang.prod("prod(e:S,s:Q->s:Q) s<=-var(s)")
        builder = GraphBuilder(lang)
        builder.node("q", "Q")
        builder.edge("q", "q", "e", "S")
        builder.set_init("q", 1.0, index=0)
        builder.set_init("q", 0.0, index=1)
        trajectory = repro.simulate(builder.finish(), (0.0, math.pi),
                                    n_points=200)
        assert trajectory.final("q") == pytest.approx(-1.0, abs=1e-3)
        # First derivative is tracked as its own state.
        assert trajectory.state("q", 1)[-1] == pytest.approx(0.0,
                                                             abs=1e-3)


class TestRuleApplication:
    def test_missing_rule_detected(self):
        lang = repro.Language("partial")
        lang.node_type("A", order=1)
        lang.node_type("B", order=1)
        lang.edge_type("E")
        lang.prod("prod(e:E,s:A->t:A) t<=var(s)")
        builder = GraphBuilder(lang)
        builder.node("a", "A")
        builder.node("b", "B")
        builder.edge("a", "b", "e", "E")
        with pytest.raises(CompileError, match="no production rule"):
            compile_graph(builder.finish())

    def test_off_edge_without_off_rule_contributes_nothing(self):
        lang = build_leaky_language()
        graph = build_two_pole(lang)
        graph.set_switch("couple", False)
        system = compile_graph(graph)
        trajectory = repro.simulate(system, (0.0, 3.0))
        assert trajectory.final("x1") == pytest.approx(0.0, abs=1e-9)

    def test_off_rule_applies_when_switched_off(self):
        lang = build_leaky_language()
        lang.prod("prod(e:W,s:X->t:X) t<=0.01*e.w*var(s)/t.tau off")
        graph = build_two_pole(lang)
        graph.set_switch("couple", False)
        trajectory = repro.simulate(graph, (0.0, 3.0))
        leaked = trajectory.final("x1")
        assert leaked != pytest.approx(0.0, abs=1e-12)
        graph_on = build_two_pole(lang)
        full = repro.simulate(graph_on, (0.0, 3.0)).final("x1")
        assert abs(leaked) < abs(full)

    def test_derived_language_compiles_parent_graph_identically(self):
        base = build_leaky_language()
        derived = repro.Language("leaky-hw", parent=base)
        derived.edge_type("Wm", inherits="W")
        derived.prod("prod(e:Wm,s:X->t:X) t<=2*e.w*var(s)/t.tau")
        graph = build_two_pole(base)
        t_base = repro.simulate(compile_graph(graph, base), (0.0, 3.0))
        t_derived = repro.simulate(compile_graph(graph, derived),
                                   (0.0, 3.0))
        assert np.allclose(t_base.y, t_derived.y)


class TestAlgebraicNodes:
    def _lang(self):
        lang = repro.Language("alg")
        lang.node_type("X", order=1)
        lang.node_type("F", order=0)
        lang.edge_type("E")
        lang.prod("prod(e:E,s:X->s:X) s<=-var(s)")
        lang.prod("prod(e:E,s:X->t:F) t<=2*var(s)")
        lang.prod("prod(e:E,s:F->t:F) t<=var(s)+1")
        lang.prod("prod(e:E,s:F->t:X) t<=var(s)")
        return lang

    def test_algebraic_chain_evaluated_in_order(self):
        lang = self._lang()
        builder = GraphBuilder(lang)
        builder.node("x", "X").set_init("x", 1.0)
        builder.edge("x", "x", "leak", "E")
        builder.node("f1", "F")
        builder.node("f2", "F")
        builder.edge("x", "f1", "e1", "E")   # f1 = 2x
        builder.edge("f1", "f2", "e2", "E")  # f2 = f1 + 1
        system = compile_graph(builder.finish())
        values = system.algebraic_values(0.0, system.y0)
        assert values["f1"] == pytest.approx(2.0)
        assert values["f2"] == pytest.approx(3.0)

    def test_algebraic_cycle_detected(self):
        lang = self._lang()
        builder = GraphBuilder(lang)
        builder.node("f1", "F")
        builder.node("f2", "F")
        builder.edge("f1", "f2", "e1", "E")
        builder.edge("f2", "f1", "e2", "E")
        with pytest.raises(CompileError, match="algebraic cycle"):
            compile_graph(builder.finish())

    def test_algebraic_feeds_dynamics(self):
        # dx/dt = -x + f where f = 2x  =>  dx/dt = x  => growth e^t
        lang = self._lang()
        builder = GraphBuilder(lang)
        builder.node("x", "X").set_init("x", 1.0)
        builder.edge("x", "x", "leak", "E")
        builder.node("f", "F")
        builder.edge("x", "f", "e1", "E")
        builder.edge("f", "x", "e2", "E")
        trajectory = repro.simulate(builder.finish(), (0.0, 1.0))
        assert trajectory.final("x") == pytest.approx(math.e, rel=1e-3)


class TestReductions:
    def test_mul_reduction(self):
        lang = repro.Language("mul")
        lang.node_type("P", order=1, reduction="mul")
        lang.node_type("S", order=1, reduction="sum")
        lang.edge_type("E")
        lang.prod("prod(e:E,s:S->t:P) t<=var(s)")
        lang.prod("prod(e:E,s:S->s:S) s<=0*var(s)")
        lang.prod("prod(e:E,s:P->s:P) s<=1")
        builder = GraphBuilder(lang)
        builder.node("a", "S").set_init("a", 2.0)
        builder.edge("a", "a", "sa", "E")
        builder.node("b", "S").set_init("b", 3.0)
        builder.edge("b", "b", "sb", "E")
        builder.node("p", "P").set_init("p", 0.0)
        builder.edge("a", "p", "e1", "E")
        builder.edge("b", "p", "e2", "E")
        builder.edge("p", "p", "sp", "E")
        system = compile_graph(builder.finish())
        rhs = system.rhs("interpreter")
        dy = rhs(0.0, system.y0)
        # dp/dt = a * b * 1 = 6 (mul reduction over three terms)
        assert dy[system.index_of("p")] == pytest.approx(6.0)

    def test_empty_sum_is_zero(self):
        lang = repro.Language("empty")
        lang.node_type("X", order=1)
        lang.edge_type("E")
        builder = GraphBuilder(lang)
        builder.node("x", "X").set_init("x", 5.0)
        system = compile_graph(builder.finish())
        rhs = system.rhs("codegen")
        assert rhs(0.0, system.y0)[0] == 0.0

    def test_empty_mul_is_one(self):
        lang = repro.Language("empty-mul")
        lang.node_type("X", order=1, reduction="mul")
        lang.edge_type("E")
        builder = GraphBuilder(lang)
        builder.node("x", "X").set_init("x", 5.0)
        system = compile_graph(builder.finish())
        assert system.rhs("codegen")(0.0, system.y0)[0] == 1.0


class TestParametrization:
    def test_attrs_resolved_at_compile_time(self):
        lang = build_leaky_language()
        graph = build_two_pole(lang)
        system = compile_graph(graph)
        assert system.attr_values[("node", "x0", "tau")] == 1.0
        assert system.attr_values[("edge", "couple", "w")] == 2.0

    def test_lambda_attr_callable_in_rhs(self):
        lang = repro.Language("driven")
        lang.node_type("X", order=1)
        lang.node_type("Src", order=0,
                       attrs=[("fn", repro.lambd(1))])
        lang.edge_type("E")
        lang.prod("prod(e:E,s:X->s:X) s<=-var(s)")
        lang.prod("prod(e:E,s:Src->t:X) t<=s.fn(time)")
        builder = GraphBuilder(lang)
        builder.node("x", "X").set_init("x", 0.0)
        builder.edge("x", "x", "leak", "E")
        builder.node("u", "Src")
        builder.set_attr("u", "fn", lambda t: 1.0)
        builder.edge("u", "x", "drive", "E")
        trajectory = repro.simulate(builder.finish(), (0.0, 10.0))
        # dx/dt = -x + 1 settles at 1.
        assert trajectory.final("x") == pytest.approx(1.0, abs=1e-4)
