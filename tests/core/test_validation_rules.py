"""Unit tests for validity-rule structures and their string parsers."""

import math

import pytest

from repro.core.validation import (IN, OUT, SELF, ConstraintRule,
                                   MatchClause, Pattern, parse_constraint,
                                   parse_match)
from repro.errors import LanguageError


class TestMatchClause:
    def test_out_clause(self):
        clause = MatchClause(0, math.inf, "E", OUT, ("I",))
        assert clause.kind == OUT

    def test_self_clause_needs_no_types(self):
        MatchClause(1, 1, "E", SELF)

    def test_in_out_need_types(self):
        with pytest.raises(LanguageError):
            MatchClause(0, 1, "E", IN, ())

    def test_invalid_cardinality(self):
        with pytest.raises(LanguageError):
            MatchClause(2, 1, "E", SELF)
        with pytest.raises(LanguageError):
            MatchClause(-1, 1, "E", SELF)

    def test_unknown_kind(self):
        with pytest.raises(LanguageError):
            MatchClause(0, 1, "E", "sideways", ("I",))


class TestParseMatch:
    def test_outgoing(self):
        clause = parse_match("match(0,inf,E,V->[I])")
        assert clause.kind == OUT
        assert clause.node_types == ("I",)
        assert math.isinf(clause.hi)

    def test_incoming(self):
        clause = parse_match("match(0,1,E,[V,InpV,InpI]->I)")
        assert clause.kind == IN
        assert clause.node_types == ("V", "InpV", "InpI")
        assert clause.hi == 1

    def test_self_three_args(self):
        clause = parse_match("match(1,1,E)")
        assert clause.kind == SELF

    def test_self_fig13_form(self):
        clause = parse_match("match(1,1,Cpl_l,Osc_G0)")
        assert clause.kind == SELF
        assert clause.edge_type == "Cpl_l"

    def test_cardinalities(self):
        clause = parse_match("match(4,9,fE,[Out]->V)")
        assert (clause.lo, clause.hi) == (4, 9)

    def test_rejects_garbage(self):
        with pytest.raises(LanguageError):
            parse_match("match(1)")
        with pytest.raises(LanguageError):
            parse_match("notmatch(1,1,E)")


class TestParseConstraint:
    def test_fig7_v_constraint(self):
        rule = parse_constraint(
            "cstr V {acc[match(0,inf,E,V->[I]), match(0,inf,E,[I]->V),"
            " match(0,inf,E,[InpV]->V), match(0,inf,E,[InpI]->V),"
            " match(1,1,E,V)]}")
        assert rule.node_type == "V"
        assert len(rule.accepted) == 1
        assert len(rule.accepted[0].clauses) == 5

    def test_multiple_patterns(self):
        rule = parse_constraint(
            "cstr X {acc[match(1,1,E,X)] rej[match(2,inf,E,X->[X])]}")
        assert len(rule.accepted) == 1
        assert len(rule.rejected) == 1

    def test_vn_colon_form(self):
        rule = parse_constraint("cstr n:V {acc[match(1,1,E,V)]}")
        assert rule.node_type == "V"

    def test_pattern_polarity_validated(self):
        with pytest.raises(LanguageError):
            Pattern("maybe", (MatchClause(1, 1, "E", SELF),))

    def test_describe_round_trips(self):
        rule = parse_constraint(
            "cstr V {acc[match(0,inf,E,V->[I]), match(1,1,E,V)]}")
        again = parse_constraint(rule.describe())
        assert again.node_type == rule.node_type
        assert len(again.accepted[0].clauses) == \
            len(rule.accepted[0].clauses)

    def test_rejects_bad_body(self):
        with pytest.raises(LanguageError):
            parse_constraint("cstr V {nonsense[match(1,1,E)]}")


class TestConstraintRule:
    def test_accepted_rejected_partition(self):
        acc = Pattern("acc", (MatchClause(1, 1, "E", SELF),))
        rej = Pattern("rej", (MatchClause(0, 0, "E", SELF),))
        rule = ConstraintRule("V", (acc, rej))
        assert rule.accepted == (acc,)
        assert rule.rejected == (rej,)
