"""Unit tests for the expression tokenizer and parser, including every
expression shape that appears in the paper's listings."""

import math

import pytest

from repro.core import expr as E
from repro.core.exprparse import parse_expression, tokenize
from repro.errors import ParseError


class TestTokenizer:
    def test_numbers(self):
        kinds = [(t.kind, t.text) for t in tokenize("1 2.5 1e-08 1.6e9")]
        assert kinds[:-1] == [("num", "1"), ("num", "2.5"),
                              ("num", "1e-08"), ("num", "1.6e9")]

    def test_identifiers_have_no_dashes(self):
        tokens = tokenize("a-b")
        assert [t.text for t in tokens[:-1]] == ["a", "-", "b"]

    def test_two_char_operators(self):
        tokens = tokenize("<= >= == != -> && ||")
        assert [t.text for t in tokens[:-1]] == \
            ["<=", ">=", "==", "!=", "->", "&&", "||"]

    def test_comments_skipped(self):
        tokens = tokenize("1 // comment\n+ 2 # another\n+3")
        assert [t.text for t in tokens[:-1]] == ["1", "+", "2", "+", "3"]

    def test_line_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("a $ b")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestParser:
    def test_precedence(self):
        expr = parse_expression("1+2*3^2")
        assert expr.evaluate(E.EvalContext()) == 19.0

    def test_parentheses(self):
        expr = parse_expression("(1+2)*3")
        assert expr.evaluate(E.EvalContext()) == 9.0

    def test_var_call(self):
        expr = parse_expression("var(s)")
        assert isinstance(expr, E.VarOf) and expr.node == "s"

    def test_var_requires_name(self):
        with pytest.raises(ParseError):
            parse_expression("var(1+2)")

    def test_attr_access(self):
        expr = parse_expression("s.c")
        assert isinstance(expr, E.AttrRef)
        assert (expr.owner, expr.attr) == ("s", "c")

    def test_attr_on_expression_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("(1+2).c")

    def test_lambda_attr_call(self):
        expr = parse_expression("s.fn(time)")
        assert isinstance(expr, E.LambdaCall)
        assert isinstance(expr.args[0], E.Time)

    def test_times_alias(self):
        expr = parse_expression("s.fn(times)")
        assert isinstance(expr.args[0], E.Time)

    def test_inf_literal(self):
        expr = parse_expression("inf")
        assert math.isinf(expr.evaluate(E.EvalContext()))

    def test_true_false(self):
        assert parse_expression("true").evaluate(E.EvalContext()) is True
        assert parse_expression("false").evaluate(
            E.EvalContext()) is False

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 extra(")

    def test_missing_operand(self):
        with pytest.raises(ParseError):
            parse_expression("1 +")

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_expression("(1 + 2")

    def test_expr_passthrough(self):
        expr = E.Const(1.0)
        assert parse_expression(expr) is expr

    def test_symbolic_bool_operators(self):
        ctx = E.EvalContext()
        assert parse_expression("1<2 && 2<3").evaluate(ctx) is True
        assert parse_expression("1>2 || 2<3").evaluate(ctx) is True
        assert parse_expression("!(1>2)").evaluate(ctx) is True


class TestPaperExpressions:
    """Every distinct expression shape from Figs. 7, 9, 10, 12, 14."""

    CASES = [
        "-var(t)/s.c",
        "var(s)/t.l",
        "-s.g/s.c*var(s)",
        "-e.ws*var(t)/s.c",
        "e.wt*var(s)/t.l",
        "e.wt*(-var(t)+s.fn(times))/(s.r*t.c)",
        "e.wt*(-s.r*var(t)+s.fn(times))/t.l",
        "e.wt*(-s.g*var(t)+s.fn(times))/t.c",
        "e.wt*(-var(t)+s.fn(times))/(s.g*t.l)",
        "e.g*var(s)",
        "sat(var(s))",
        "s.z-var(s)",
        "e.g*t.mm*var(s)",
        "s.mm*(s.z-var(s))",
        "sat_ni(var(s))",
        "-1.6e9*e.k*sin(var(s)-var(t))",
        "-1.6e9*e.k*sin(-var(s)+var(t))",
        "-1e9*sin(2*var(s))",
        "-1.6e9*e.k*(e.offset+sin(var(s)-var(t)))",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_parses(self, source):
        expr = parse_expression(source)
        assert isinstance(expr, E.Expr)

    @pytest.mark.parametrize("source", CASES)
    def test_roles_within_rule_scope(self, source):
        expr = parse_expression(source)
        assert E.referenced_roles(expr) <= {"e", "s", "t"}

    def test_kuramoto_evaluates(self):
        expr = parse_expression("-1.6e9*e.k*sin(var(s)-var(t))")

        class Ctx(E.EvalContext):
            def var(self, node):
                return {"s": math.pi / 2, "t": 0.0}[node]

            def attr(self, kind, owner, attr):
                return -1.0

        assert expr.evaluate(Ctx()) == pytest.approx(1.6e9)
