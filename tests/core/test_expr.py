"""Unit tests for the expression AST: evaluation, substitution, analyses,
and code generation."""

import math

import pytest

from repro.core import expr as E
from repro.core.exprparse import parse_expression
from repro.errors import CompileError


class Env(E.EvalContext):
    """Simple evaluation context for tests."""

    def __init__(self, t=0.0, states=None, attrs=None, names=None):
        self._t = t
        self._states = states or {}
        self._attrs = attrs or {}
        self._names = names or {}

    def time(self):
        return self._t

    def var(self, node):
        return self._states[node]

    def attr(self, kind, owner, attr):
        return self._attrs[(owner, attr)]

    def name(self, name):
        return self._names[name]


class TestEvaluation:
    def test_const(self):
        assert E.Const(2.5).evaluate(Env()) == 2.5

    def test_time(self):
        assert E.Time().evaluate(Env(t=1.5)) == 1.5

    def test_var(self):
        assert E.VarOf("x").evaluate(Env(states={"x": 7.0})) == 7.0

    def test_attr(self):
        env = Env(attrs={("n", "c"): 3.0})
        assert E.AttrRef("n", "c", "node").evaluate(env) == 3.0

    def test_arithmetic(self):
        expr = parse_expression("1 + 2*3 - 4/2")
        assert expr.evaluate(Env()) == pytest.approx(5.0)

    def test_power(self):
        assert parse_expression("2^3").evaluate(Env()) == 8.0

    def test_unary_minus(self):
        assert parse_expression("-3 + 1").evaluate(Env()) == -2.0

    def test_call_builtin(self):
        expr = parse_expression("sin(0) + cos(0)")
        assert expr.evaluate(Env()) == pytest.approx(1.0)

    def test_lambda_call(self):
        env = Env(t=2.0, attrs={("src", "fn"): lambda t: 10 * t})
        expr = E.LambdaCall(E.AttrRef("src", "fn", "node"), (E.Time(),))
        assert expr.evaluate(env) == 20.0

    def test_lambda_call_on_non_callable(self):
        env = Env(attrs={("src", "fn"): 5.0})
        expr = E.LambdaCall(E.AttrRef("src", "fn", "node"), (E.Time(),))
        with pytest.raises(CompileError):
            expr.evaluate(env)

    def test_if_then_else(self):
        expr = parse_expression("if 1 < 2 then 10 else 20")
        assert expr.evaluate(Env()) == 10
        expr = parse_expression("if 1 > 2 then 10 else 20")
        assert expr.evaluate(Env()) == 20

    def test_boolean_ops(self):
        assert parse_expression("1 < 2 and 3 > 2").evaluate(Env()) is True
        assert parse_expression("1 > 2 or 2 > 1").evaluate(Env()) is True
        assert parse_expression("not 1 > 2").evaluate(Env()) is True

    def test_comparisons(self):
        env = Env()
        assert parse_expression("2 <= 2").evaluate(env) is True
        assert parse_expression("2 >= 3").evaluate(env) is False
        assert parse_expression("2 == 2").evaluate(env) is True
        assert parse_expression("2 != 2").evaluate(env) is False

    def test_unknown_function_raises(self):
        with pytest.raises(CompileError):
            parse_expression("mystery(1)").evaluate(Env())

    def test_default_context_raises_everywhere(self):
        ctx = E.EvalContext()
        with pytest.raises(CompileError):
            E.Time().evaluate(ctx)
        with pytest.raises(CompileError):
            E.VarOf("x").evaluate(ctx)
        with pytest.raises(CompileError):
            E.AttrRef("x", "a", "node").evaluate(ctx)
        with pytest.raises(CompileError):
            E.NameRef("q").evaluate(ctx)


class TestSubstitution:
    def test_var_substitution(self):
        expr = parse_expression("-var(t)/s.c")
        mapping = {"t": E.Substitution("I_0", "node"),
                   "s": E.Substitution("V_0", "node")}
        rewritten = expr.substitute(mapping)
        assert E.referenced_vars(rewritten) == {"I_0"}
        refs = {(n.owner, n.attr, n.kind) for n in rewritten.walk()
                if isinstance(n, E.AttrRef)}
        assert refs == {("V_0", "c", "node")}

    def test_edge_attr_substitution(self):
        expr = parse_expression("e.w*var(s)")
        mapping = {"e": E.Substitution("E_3", "edge"),
                   "s": E.Substitution("x", "node"),
                   "t": E.Substitution("y", "node")}
        rewritten = expr.substitute(mapping)
        attr = next(n for n in rewritten.walk()
                    if isinstance(n, E.AttrRef))
        assert attr.owner == "E_3" and attr.kind == "edge"

    def test_var_of_edge_rejected(self):
        expr = E.VarOf("e")
        with pytest.raises(CompileError):
            expr.substitute({"e": E.Substitution("E_1", "edge")})

    def test_unmapped_roles_survive(self):
        expr = parse_expression("var(s) + var(t)")
        rewritten = expr.substitute({"s": E.Substitution("a", "node")})
        assert E.referenced_vars(rewritten) == {"a", "t"}

    def test_lambda_call_substitution(self):
        expr = parse_expression("s.fn(time)")
        rewritten = expr.substitute({"s": E.Substitution("Inp", "node")})
        call = next(n for n in rewritten.walk()
                    if isinstance(n, E.LambdaCall))
        assert call.target.owner == "Inp"

    def test_substitution_is_pure(self):
        expr = parse_expression("var(s)")
        expr.substitute({"s": E.Substitution("a", "node")})
        assert E.referenced_vars(expr) == {"s"}


class TestAnalyses:
    def test_referenced_roles(self):
        expr = parse_expression("-1.6e9*e.k*sin(var(s)-var(t))")
        assert E.referenced_roles(expr) == {"e", "s", "t"}

    def test_referenced_functions(self):
        expr = parse_expression("sin(cos(var(s)))")
        assert E.referenced_functions(expr) == {"sin", "cos"}

    def test_referenced_names(self):
        expr = parse_expression("amp * sin(w)")
        assert E.referenced_names(expr) == {"amp", "w"}

    def test_uses_time(self):
        assert E.uses_time(parse_expression("s.fn(time)"))
        assert not E.uses_time(parse_expression("var(s)"))


class Codegen(E.CodegenContext):
    def __init__(self):
        self.namespace = {"_sin": math.sin}

    def var_source(self, node):
        return {"x": "y[0]", "z": "y[1]"}[node]

    def attr_source(self, kind, owner, attr):
        return "2.0"

    def function_source(self, name):
        return "_sin"

    def name_source(self, name):
        return "arg0"


class TestCodegen:
    def _compile(self, source: str):
        expr = parse_expression(source)
        code = E.to_python(expr, Codegen())
        namespace = {"_sin": math.sin}
        return eval(compile(code, "<test>", "eval"),
                    namespace, {"y": [0.5, 2.0], "t": 3.0, "arg0": 7.0})

    def test_arithmetic(self):
        assert self._compile("1+2*3") == 7.0

    def test_power_maps_to_python(self):
        assert self._compile("2^3") == 8.0

    def test_var_and_attr(self):
        assert self._compile("var(x)*n.c") == 1.0

    def test_time(self):
        assert self._compile("time + 1") == 4.0

    def test_function_call(self):
        assert self._compile("sin(0)") == 0.0

    def test_if_then_else(self):
        assert self._compile("if var(x) > 0 then 1 else 2") == 1.0

    def test_names(self):
        assert self._compile("q + 1") == 8.0

    def test_matches_interpreter(self):
        source = "-var(x)/n.c + sin(var(z))*2"
        expr = parse_expression(source)
        env = Env(states={"x": 0.5, "z": 2.0},
                  attrs={("n", "c"): 2.0})
        interpreted = expr.evaluate(env)
        compiled = self._compile(source)
        assert compiled == pytest.approx(interpreted)
