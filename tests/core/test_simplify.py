"""Tests for attribute inlining and expression simplification."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

import repro
from repro.core import expr as E
from repro.core.compiler import compile_graph
from repro.core.exprparse import parse_expression
from repro.core.simplify import inline_attributes, simplify


def _lookup(values):
    return lambda kind, owner, attr: values.get((kind, owner, attr))


class TestInlineAttributes:
    def test_numeric_attr_becomes_const(self):
        expr = parse_expression("e.w*var(s)")
        rewritten = expr.substitute(
            {"e": E.Substitution("E0", "edge"),
             "s": E.Substitution("x", "node")})
        inlined = inline_attributes(
            rewritten, _lookup({("edge", "E0", "w"): 2.5}))
        consts = [n for n in inlined.walk() if isinstance(n, E.Const)]
        assert any(c.value == 2.5 for c in consts)
        assert not any(isinstance(n, E.AttrRef)
                       for n in inlined.walk())

    def test_callable_attr_left_alone(self):
        expr = parse_expression("s.fn(time)")
        rewritten = expr.substitute(
            {"s": E.Substitution("u", "node")})
        inlined = inline_attributes(
            rewritten, _lookup({("node", "u", "fn"): lambda t: t}))
        assert any(isinstance(n, E.LambdaCall)
                   for n in inlined.walk())

    def test_missing_attr_left_alone(self):
        expr = E.AttrRef("x", "c", "node")
        assert inline_attributes(expr, _lookup({})) is expr


class TestSimplify:
    @pytest.mark.parametrize("source,expected", [
        ("1 + 2", 3.0),
        ("2 * 3 - 1", 5.0),
        ("2 ^ 3", 8.0),
        ("-(4)", -4.0),
        ("sin(0)", 0.0),
        ("sqrt(4)", 2.0),
    ])
    def test_constant_folding(self, source, expected):
        assert simplify(parse_expression(source)) == E.Const(expected)

    @pytest.mark.parametrize("source", [
        "var(s) + 0", "0 + var(s)", "var(s) - 0", "var(s) * 1",
        "1 * var(s)", "var(s) / 1", "var(s) ^ 1",
    ])
    def test_identities_reduce_to_var(self, source):
        assert simplify(parse_expression(source)) == E.VarOf("s")

    @pytest.mark.parametrize("source", ["var(s) * 0", "0 * var(s)"])
    def test_zero_annihilates(self, source):
        assert simplify(parse_expression(source)) == E.Const(0.0)

    def test_if_folds_on_constant_condition(self):
        expr = parse_expression("if 1 < 2 then var(s) else var(t)")
        assert simplify(expr) == E.VarOf("s")

    def test_boolean_folding(self):
        expr = parse_expression("1 < 2 and var(s) > 0")
        simplified = simplify(expr)
        assert simplified == E.Compare(">", E.VarOf("s"), E.Const(0.0))

    def test_division_by_zero_not_folded(self):
        expr = parse_expression("1 / 0")
        assert isinstance(simplify(expr), E.BinOp)

    def test_nonpure_function_not_folded(self):
        # `sat` is language-defined, so it must survive even with
        # constant arguments.
        expr = E.Call("sat", (E.Const(0.5),))
        assert simplify(expr) == expr

    def test_nested_collapse(self):
        expr = parse_expression("(2*3)*var(s) + (1-1)*var(t)")
        simplified = simplify(expr)
        assert simplified == E.BinOp("*", E.Const(6.0), E.VarOf("s"))


class Env(E.EvalContext):
    def time(self):
        return 1.25

    def var(self, node):
        return {"s": 0.75, "t": -0.5}[node]

    def attr(self, kind, owner, attr):
        return {"c": 2.0, "g": 0.5, "k": -1.0, "w": 3.0}[attr]


@given(__import__("tests.property.test_prop_exprparse",
                  fromlist=["expressions"]).expressions())
@settings(max_examples=150, deadline=None)
def test_simplify_preserves_semantics(expr):
    env = Env()
    try:
        original = expr.evaluate(env)
    except (ZeroDivisionError, OverflowError, ValueError):
        return  # undefined inputs: simplifier makes no promises
    result = simplify(expr).evaluate(env)
    if isinstance(original, float) and math.isnan(original):
        assert isinstance(result, float) and math.isnan(result)
    else:
        assert result == pytest.approx(original, rel=1e-12, abs=1e-12)


class TestCodegenIntegration:
    def test_zero_weight_terms_disappear(self):
        lang = repro.Language("opt")
        lang.node_type("X", order=1)
        lang.edge_type("W", attrs=[("w", repro.real(-5, 5))])
        lang.prod("prod(e:W,s:X->s:X) s<=-var(s)")
        lang.prod("prod(e:W,s:X->t:X) t<=e.w*var(s)")
        builder = repro.GraphBuilder(lang)
        builder.node("a", "X").set_init("a", 1.0)
        builder.node("b", "X").set_init("b", 0.0)
        builder.edge("a", "a", "sa", "W").set_attr("sa", "w", 0.0)
        builder.edge("b", "b", "sb", "W").set_attr("sb", "w", 0.0)
        builder.edge("a", "b", "c", "W").set_attr("c", "w", 0.0)
        system = compile_graph(builder.finish())
        source = system.generate_source({})
        # The zero-weight coupling must be gone from dy[1].
        dy1_line = [line for line in source.splitlines()
                    if line.strip().startswith("dy[1]")][0]
        assert "var" not in dy1_line and "y[0]" not in dy1_line

    def test_cnn_codegen_shrinks(self):
        from repro.paradigms.cnn import default_image, edge_detector
        system = compile_graph(edge_detector(default_image(8)))
        source = system.generate_source({})
        # EDGE template: 8 of 9 A-template weights are zero, so the
        # optimized source must be much smaller than 1 term per edge.
        n_terms = source.count("y[")
        n_edges = sum(1 for _ in system.graph.edges)
        assert n_terms < n_edges

    def test_backends_still_agree_after_optimization(self):
        from repro.paradigms.cnn import default_image, edge_detector
        system = compile_graph(edge_detector(default_image(8)))
        rng = np.random.default_rng(0)
        y = rng.normal(size=system.n_states)
        a = system.rhs("interpreter")(0.3, y)
        b = system.rhs("codegen")(0.3, y)
        assert np.allclose(a, b, rtol=1e-12, atol=1e-12)
