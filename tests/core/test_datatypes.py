"""Unit tests for bounded datatypes and mismatch annotations."""

import math

import pytest

from repro.core.datatypes import (INF, LambdaType, Mismatch,
                                  RealType, integer, lambd, real,
                                  same_kind)
from repro.errors import DatatypeError


class TestRealType:
    def test_check_accepts_in_range(self):
        assert real(0.0, 1.0).check(0.5) == 0.5

    def test_check_accepts_bounds(self):
        dt = real(0.0, 1.0)
        assert dt.check(0.0) == 0.0
        assert dt.check(1.0) == 1.0

    def test_check_accepts_int_value(self):
        assert real(0.0, 2.0).check(1) == 1.0

    def test_check_rejects_below(self):
        with pytest.raises(DatatypeError):
            real(0.0, 1.0).check(-0.1)

    def test_check_rejects_above(self):
        with pytest.raises(DatatypeError):
            real(0.0, 1.0).check(1.1)

    def test_check_rejects_nan(self):
        with pytest.raises(DatatypeError):
            real(0.0, 1.0).check(float("nan"))

    def test_check_rejects_non_numeric(self):
        with pytest.raises(DatatypeError):
            real(0.0, 1.0).check("half")

    def test_check_rejects_bool(self):
        with pytest.raises(DatatypeError):
            real(0.0, 1.0).check(True)

    def test_unbounded_range(self):
        dt = real(-INF, INF)
        assert dt.check(1e300) == 1e300

    def test_empty_range_rejected(self):
        with pytest.raises(DatatypeError):
            RealType(2.0, 1.0)

    def test_subrange(self):
        assert real(0.2, 0.8).is_subrange_of(real(0.0, 1.0))
        assert real(0.0, 1.0).is_subrange_of(real(0.0, 1.0))
        assert not real(-0.1, 0.5).is_subrange_of(real(0.0, 1.0))
        assert not real(0.5, 1.5).is_subrange_of(real(0.0, 1.0))

    def test_str_includes_mismatch(self):
        assert "mm" in str(real(0.0, 1.0, mm=(0.0, 0.1)))


class TestIntType:
    def test_check_accepts_in_range(self):
        assert integer(0, 5).check(3) == 3

    def test_check_accepts_integral_float(self):
        assert integer(0, 5).check(3.0) == 3

    def test_check_rejects_fractional(self):
        with pytest.raises(DatatypeError):
            integer(0, 5).check(3.5)

    def test_check_rejects_out_of_range(self):
        with pytest.raises(DatatypeError):
            integer(0, 1).check(2)

    def test_check_rejects_bool(self):
        with pytest.raises(DatatypeError):
            integer(0, 1).check(True)

    def test_subrange(self):
        assert integer(1, 2).is_subrange_of(integer(0, 5))
        assert not integer(0, 9).is_subrange_of(integer(0, 5))


class TestLambdaType:
    def test_check_accepts_callable(self):
        fn = lambd(1).check(lambda t: t)
        assert fn(3) == 3

    def test_check_rejects_non_callable(self):
        with pytest.raises(DatatypeError):
            lambd(1).check(42)

    def test_arity_compatibility(self):
        assert lambd(2).is_subrange_of(lambd(2))
        assert not lambd(1).is_subrange_of(lambd(2))

    def test_negative_arity_rejected(self):
        with pytest.raises(DatatypeError):
            LambdaType(-1)


class TestMismatch:
    def test_sigma_absolute(self):
        assert Mismatch(0.02, 0.0).sigma(0.0) == 0.02

    def test_sigma_relative(self):
        assert Mismatch(0.0, 0.1).sigma(2.0) == pytest.approx(0.2)

    def test_sigma_combined(self):
        assert Mismatch(0.01, 0.1).sigma(1.0) == pytest.approx(0.11)

    def test_sigma_uses_magnitude(self):
        assert Mismatch(0.0, 0.1).sigma(-2.0) == pytest.approx(0.2)

    def test_negative_components_rejected(self):
        with pytest.raises(DatatypeError):
            Mismatch(-0.1, 0.0)


def test_same_kind():
    assert same_kind(real(0, 1), real(5, 6))
    assert same_kind(integer(0, 1), integer(5, 6))
    assert not same_kind(real(0, 1), integer(0, 1))
    assert not same_kind(lambd(1), real(0, 1))


def test_inf_constant():
    assert math.isinf(INF)
