"""Unit tests for statement-based Ark functions (§4.2-4.3)."""

import pytest

import repro
from repro.core import function as F
from repro.core.exprparse import parse_expression
from repro.errors import DatatypeError, FunctionError
from tests.conftest import build_leaky_language


def _two_pole_function(lang):
    return F.ArkFunction(
        "two-pole", lang,
        args=[F.FuncArg("w", repro.real(-5, 5)),
              F.FuncArg("coupled", repro.integer(0, 1))],
        statements=[
            F.NodeStmt("x0", "X"), F.NodeStmt("x1", "X"),
            F.EdgeStmt("x0", "x0", "leak0", "W"),
            F.EdgeStmt("x1", "x1", "leak1", "W"),
            F.EdgeStmt("x0", "x1", "couple", "W"),
            F.SetAttrStmt("x0", "tau", F.Literal(1.0)),
            F.SetAttrStmt("x1", "tau", F.Literal(0.5)),
            F.SetAttrStmt("leak0", "w", F.Literal(0.0)),
            F.SetAttrStmt("leak1", "w", F.Literal(0.0)),
            F.SetAttrStmt("couple", "w", F.ArgRef("w")),
            F.SetInitStmt("x0", 0, F.Literal(1.0)),
            F.SetInitStmt("x1", 0, F.Literal(0.0)),
            F.SetSwitchStmt("couple", parse_expression("coupled == 1")),
        ])


class TestInvocation:
    def test_builds_graph(self):
        fn = _two_pole_function(build_leaky_language())
        graph = fn(w=2.0, coupled=1)
        assert graph.stats()["nodes"] == 2
        assert graph.edge("couple").attrs["w"] == 2.0
        assert graph.edge("couple").on

    def test_switch_condition_evaluated(self):
        fn = _two_pole_function(build_leaky_language())
        graph = fn(w=2.0, coupled=0)
        assert not graph.edge("couple").on

    def test_argument_datatype_checked(self):
        fn = _two_pole_function(build_leaky_language())
        with pytest.raises(DatatypeError):
            fn(w=99.0, coupled=1)
        with pytest.raises(DatatypeError):
            fn(w=1.0, coupled=2)

    def test_missing_argument(self):
        fn = _two_pole_function(build_leaky_language())
        with pytest.raises(FunctionError):
            fn(w=1.0)

    def test_unexpected_argument(self):
        fn = _two_pole_function(build_leaky_language())
        with pytest.raises(FunctionError):
            fn(w=1.0, coupled=1, extra=3)

    def test_same_args_same_graph(self):
        fn = _two_pole_function(build_leaky_language())
        a = fn(w=2.0, coupled=1)
        b = fn(w=2.0, coupled=1)
        assert a.stats() == b.stats()
        assert a.edge("couple").attrs == b.edge("couple").attrs


class TestStaticChecks:
    def test_unknown_node_type(self):
        lang = build_leaky_language()
        with pytest.raises(FunctionError):
            F.ArkFunction("f", lang,
                          statements=[F.NodeStmt("x", "Nope")])

    def test_edge_before_nodes(self):
        lang = build_leaky_language()
        with pytest.raises(FunctionError):
            F.ArkFunction("f", lang, statements=[
                F.EdgeStmt("a", "b", "e", "W")])

    def test_duplicate_element(self):
        lang = build_leaky_language()
        with pytest.raises(FunctionError):
            F.ArkFunction("f", lang, statements=[
                F.NodeStmt("x", "X"), F.NodeStmt("x", "X")])

    def test_set_attr_unknown_attribute(self):
        lang = build_leaky_language()
        with pytest.raises(FunctionError):
            F.ArkFunction("f", lang, statements=[
                F.NodeStmt("x", "X"),
                F.SetAttrStmt("x", "volume", F.Literal(1.0))])

    def test_arg_ref_must_exist(self):
        lang = build_leaky_language()
        with pytest.raises(FunctionError):
            F.ArkFunction("f", lang, statements=[
                F.NodeStmt("x", "X"),
                F.SetAttrStmt("x", "tau", F.ArgRef("ghost"))])

    def test_const_attr_not_assignable_from_arg(self):
        lang = repro.Language("const-lang")
        lang.node_type("N", order=1, attrs=[
            ("fixed", repro.real(0, 1), {"const": True})])
        with pytest.raises(FunctionError):
            F.ArkFunction(
                "f", lang,
                args=[F.FuncArg("v", repro.real(0, 1))],
                statements=[F.NodeStmt("n", "N"),
                            F.SetAttrStmt("n", "fixed", F.ArgRef("v"))])

    def test_const_attr_literal_ok(self):
        lang = repro.Language("const-lang")
        lang.node_type("N", order=1, attrs=[
            ("fixed", repro.real(0, 1), {"const": True})])
        lang.edge_type("S")
        lang.prod("prod(e:S,s:N->s:N) s<=-var(s)")
        fn = F.ArkFunction("f", lang, statements=[
            F.NodeStmt("n", "N"),
            F.SetAttrStmt("n", "fixed", F.Literal(0.5))])
        assert fn()

    def test_switch_on_fixed_edge_rejected(self):
        lang = build_leaky_language()
        lang.edge_type("F", fixed=True)
        lang.prod("prod(e:F,s:X->t:X) t<=var(s)")
        with pytest.raises(FunctionError):
            F.ArkFunction("f", lang, statements=[
                F.NodeStmt("x", "X"), F.NodeStmt("y", "X"),
                F.EdgeStmt("x", "y", "f", "F"),
                F.SetSwitchStmt("f", parse_expression("true"))])

    def test_switch_condition_scope_checked(self):
        lang = build_leaky_language()
        with pytest.raises(FunctionError):
            F.ArkFunction("f", lang, statements=[
                F.NodeStmt("x", "X"), F.NodeStmt("y", "X"),
                F.EdgeStmt("x", "y", "e", "W"),
                F.SetSwitchStmt("e", parse_expression("ghost == 1"))])

    def test_duplicate_argument_names(self):
        lang = build_leaky_language()
        with pytest.raises(FunctionError):
            F.ArkFunction("f", lang, args=[
                F.FuncArg("a", repro.real(0, 1)),
                F.FuncArg("a", repro.real(0, 1))])


class TestLambdaValues:
    def test_lambda_literal_compiles(self):
        lang = repro.Language("wave")
        lang.node_type("Src", order=0, attrs=[("fn", repro.lambd(1))])
        fn = F.ArkFunction("f", lang, statements=[
            F.NodeStmt("s", "Src"),
            F.SetAttrStmt("s", "fn", F.LambdaVal(
                ("t",), parse_expression("sin(t) + 1")))])
        graph = fn()
        wave = graph.node("s").attrs["fn"]
        assert wave(0.0) == pytest.approx(1.0)

    def test_lambda_scope_checked(self):
        lang = repro.Language("wave")
        lang.node_type("Src", order=0, attrs=[("fn", repro.lambd(1))])
        fn = F.ArkFunction("f", lang, statements=[
            F.NodeStmt("s", "Src"),
            F.SetAttrStmt("s", "fn", F.LambdaVal(
                ("t",), parse_expression("t + ghost")))])
        with pytest.raises(FunctionError):
            fn()

    def test_lambda_arity_enforced_at_call(self):
        lang = repro.Language("wave")
        lang.node_type("Src", order=0, attrs=[("fn", repro.lambd(2))])
        fn = F.ArkFunction("f", lang, statements=[
            F.NodeStmt("s", "Src"),
            F.SetAttrStmt("s", "fn", F.LambdaVal(
                ("a", "b"), parse_expression("a + b")))])
        wave = fn().node("s").attrs["fn"]
        assert wave(1.0, 2.0) == 3.0
        with pytest.raises(FunctionError):
            wave(1.0)


class TestMismatchSeeding:
    def _mm_function(self):
        lang = repro.Language("mm")
        lang.node_type("N", order=1, attrs=[
            ("a", repro.real(0, 10, mm=(0, 0.1)))])
        lang.edge_type("S")
        lang.prod("prod(e:S,s:N->s:N) s<=-var(s)")
        return F.ArkFunction("f", lang, statements=[
            F.NodeStmt("n", "N"),
            F.SetAttrStmt("n", "a", F.Literal(5.0)),
            F.EdgeStmt("n", "n", "s", "S")])

    def test_seed_controls_instance(self):
        fn = self._mm_function()
        a = fn.invoke(seed=1).node("n").attrs["a"]
        b = fn.invoke(seed=1).node("n").attrs["a"]
        c = fn.invoke(seed=2).node("n").attrs["a"]
        assert a == b
        assert a != c

    def test_dotted_args_apply_to_attr(self):
        lang = repro.Language("dotted")
        lang.node_type("N", order=1, attrs=[("a", repro.real(0, 10))])
        lang.edge_type("S")
        lang.prod("prod(e:S,s:N->s:N) s<=-var(s)")
        fn = F.ArkFunction(
            "f", lang,
            args=[F.FuncArg("n.a", repro.real(0, 10),
                            applies_to=("n", "a"))],
            statements=[F.NodeStmt("n", "N"),
                        F.EdgeStmt("n", "n", "s", "S")])
        graph = fn.invoke({"n.a": 7.0})
        assert graph.node("n").attrs["a"] == 7.0
