"""Unit tests for Language: declaration, lookup, and the §4.1.1
language-level inheritance rules."""

import pytest

import repro
from repro.core.language import Language
from repro.errors import InheritanceError, LanguageError


def _base() -> Language:
    lang = Language("base")
    lang.node_type("V", order=1, reduction="sum",
                   attrs=[("c", repro.real(0.0, 10.0))])
    lang.node_type("I", order=1, reduction="sum",
                   attrs=[("l", repro.real(0.0, 10.0))])
    lang.edge_type("E")
    lang.prod("prod(e:E,s:V->t:I) t<=var(s)/t.l")
    lang.cstr("cstr V {acc[match(0,inf,E,V->[I])]}")
    return lang


class TestDeclaration:
    def test_node_type_requires_order_for_roots(self):
        lang = Language("l")
        with pytest.raises(LanguageError):
            lang.node_type("X")

    def test_duplicate_type_names_rejected(self):
        lang = _base()
        with pytest.raises(LanguageError):
            lang.node_type("V", order=1)
        with pytest.raises(LanguageError):
            lang.edge_type("V")

    def test_rule_references_checked(self):
        lang = _base()
        with pytest.raises(LanguageError):
            lang.prod("prod(e:E,s:V->t:Q) t<=var(s)")
        with pytest.raises(LanguageError):
            lang.prod("prod(e:Q,s:V->t:I) t<=var(s)")

    def test_rule_unknown_function_rejected(self):
        lang = _base()
        with pytest.raises(LanguageError):
            lang.prod("prod(e:E,s:I->t:V) t<=mystery(var(s))")

    def test_registered_function_usable(self):
        lang = _base()
        lang.register_function("gain", lambda x: 2 * x)
        lang.prod("prod(e:E,s:I->t:V) t<=gain(var(s))")

    def test_duplicate_rule_signature_rejected(self):
        lang = _base()
        with pytest.raises(LanguageError):
            lang.prod("prod(e:E,s:V->t:I) t<=2*var(s)/t.l")

    def test_cstr_references_checked(self):
        lang = _base()
        with pytest.raises(LanguageError):
            lang.cstr("cstr Q {acc[match(1,1,E,Q)]}")
        with pytest.raises(LanguageError):
            lang.cstr("cstr V {acc[match(1,1,Q,V)]}")
        with pytest.raises(LanguageError):
            lang.cstr("cstr V {acc[match(0,inf,E,V->[Q])]}")

    def test_extern_check_must_be_callable(self):
        lang = _base()
        with pytest.raises(LanguageError):
            lang.extern_check("not callable")

    def test_attr_spec_forms(self):
        lang = Language("forms")
        lang.node_type("A", order=1, attrs=[
            repro.AttrDecl("x", repro.real(0, 1)),
            ("y", repro.real(0, 1)),
            ("z", repro.real(0, 1), {"const": True, "default": 0.5}),
        ])
        node_type = lang.find_node_type("A")
        assert set(node_type.attrs) == {"x", "y", "z"}
        assert node_type.attrs["z"].const
        assert node_type.attrs["z"].default == 0.5


class TestLookup:
    def test_find_through_chain(self):
        base = _base()
        derived = Language("derived", parent=base)
        assert derived.find_node_type("V") is base.find_node_type("V")
        assert derived.find_edge_type("E") is base.find_edge_type("E")

    def test_merged_tables(self):
        base = _base()
        derived = Language("derived", parent=base)
        derived.node_type("Vm", inherits="V")
        assert set(derived.node_types()) == {"V", "I", "Vm"}
        assert set(base.node_types()) == {"V", "I"}

    def test_productions_accumulate(self):
        base = _base()
        derived = Language("derived", parent=base)
        derived.edge_type("Em", inherits="E")
        derived.prod("prod(e:Em,s:V->t:I) t<=2*var(s)/t.l")
        assert len(derived.productions()) == 2
        assert len(base.productions()) == 1

    def test_constraints_for_subtype(self):
        base = _base()
        derived = Language("derived", parent=base)
        vm = derived.node_type("Vm", inherits="V")
        rules = derived.constraints_for(vm)
        assert len(rules) == 1
        assert rules[0].node_type == "V"

    def test_functions_merge_builtins(self):
        lang = _base()
        functions = lang.functions()
        assert "sin" in functions
        lang.register_function("custom", lambda x: x)
        assert "custom" in lang.functions()

    def test_chain_order(self):
        base = _base()
        mid = Language("mid", parent=base)
        top = Language("top", parent=mid)
        assert [lang.name for lang in top.chain()] == \
            ["top", "mid", "base"]


class TestInheritanceRules:
    def test_new_rule_must_mention_own_type(self):
        base = _base()
        derived = Language("derived", parent=base)
        with pytest.raises(InheritanceError):
            derived.prod("prod(e:E,s:I->t:V) t<=var(s)/t.c")

    def test_new_rule_with_own_type_accepted(self):
        base = _base()
        derived = Language("derived", parent=base)
        derived.node_type("Vm", inherits="V")
        derived.prod("prod(e:E,s:I->t:Vm) t<=var(s)/t.c")

    def test_new_cstr_must_mention_own_type(self):
        base = _base()
        derived = Language("derived", parent=base)
        with pytest.raises(InheritanceError):
            derived.cstr("cstr V {acc[match(0,1,E,V->[I])]}")

    def test_type_shadowing_rejected(self):
        base = _base()
        derived = Language("derived", parent=base)
        with pytest.raises(LanguageError):
            derived.node_type("V", order=1)

    def test_unknown_parent_type(self):
        lang = Language("l")
        with pytest.raises(InheritanceError):
            lang.node_type("Vm", inherits="V")

    def test_derived_inherits_order_automatically(self):
        base = _base()
        derived = Language("derived", parent=base)
        vm = derived.node_type("Vm", inherits="V")
        assert vm.order == 1

    def test_owns_type(self):
        base = _base()
        derived = Language("derived", parent=base)
        derived.node_type("Vm", inherits="V")
        assert derived.owns_type("Vm")
        assert not derived.owns_type("V")
        assert base.owns_type("V")

    def test_root_language_rules_unrestricted(self):
        # Rules in a root language need not mention "new" types.
        lang = _base()
        lang.prod("prod(e:E,s:I->t:V) t<=var(s)/t.c")
