"""Tests for time dilation (`repro.core.dilation`): the dilated
trajectory must be the original with time rescaled, including
time-varying inputs and higher-order chain states."""

import numpy as np
import pytest

import repro
from repro.core.dilation import TimeDilatedSystem, dilate
from repro.paradigms.gpac import harmonic_oscillator, lotka_volterra
from repro.paradigms.tln import TLineSpec, linear_tline

TIGHT = dict(rtol=1e-10, atol=1e-12)


def second_order_system():
    """A single order-2 node: d2x/dt2 = -x (chain-state coverage)."""
    lang = repro.Language("second")
    lang.node_type("X", order=2)
    lang.edge_type("S")
    lang.prod("prod(e:S, s:X->s:X) s <= -var(s)")
    builder = repro.GraphBuilder(lang, "resonator")
    builder.node("x", "X")
    builder.edge("x", "x", "e", "S")
    builder.set_init("x", 1.0, index=0)
    builder.set_init("x", 0.0, index=1)
    return builder.finish()


class TestDilate:
    def test_speedup_compresses_time(self):
        base = repro.simulate(harmonic_oscillator(omega=1.0),
                              (0.0, 10.0), n_points=101, **TIGHT)
        fast = repro.simulate(dilate(harmonic_oscillator(omega=1.0),
                                     speedup=10.0),
                              (0.0, 1.0), n_points=101, **TIGHT)
        np.testing.assert_allclose(fast["x"], base["x"], atol=1e-7)

    def test_slowdown_stretches_time(self):
        base = repro.simulate(lotka_volterra(), (0.0, 10.0),
                              n_points=101, **TIGHT)
        slow = repro.simulate(dilate(lotka_volterra(), speedup=0.1),
                              (0.0, 100.0), n_points=101, **TIGHT)
        np.testing.assert_allclose(slow["x"], base["x"], rtol=1e-6)

    def test_time_varying_input_rescaled(self):
        # The TLN pulse is a fn(time) attribute: dilation must evaluate
        # it at original time, so the slowed line sees the same pulse.
        spec = TLineSpec(n_segments=8)
        base = repro.simulate(linear_tline(spec), (0.0, 4e-8),
                              n_points=161, rtol=1e-9, atol=1e-12)
        # Slow the nanosecond line down to a second-scale acquisition.
        slowed = dilate(linear_tline(spec), speedup=4e-8)
        slow = repro.simulate(slowed, (0.0, 1.0), n_points=161,
                              rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(slow["OUT_V"], base["OUT_V"],
                                   atol=1e-6)

    def test_chain_states_keep_original_units(self):
        # x'(t) slots hold original-time derivatives: the dilated chain
        # state at t equals the base chain state at speedup * t, with
        # no extra factor.
        graph = second_order_system()
        base = repro.simulate(graph, (0.0, 6.0), n_points=61, **TIGHT)
        fast = repro.simulate(dilate(graph, 3.0), (0.0, 2.0),
                              n_points=61, **TIGHT)
        np.testing.assert_allclose(fast.state("x", 1),
                                   base.state("x", 1), atol=1e-8)

    def test_algebraic_values_follow_dilation(self):
        system = dilate(lotka_volterra(), speedup=2.0)
        values = system.algebraic_values(0.0, system.y0)
        base = repro.compile_graph(lotka_volterra())
        assert values == base.algebraic_values(0.0, base.y0)


class TestComposition:
    def test_dilating_a_dilated_system_multiplies(self):
        base = repro.compile_graph(harmonic_oscillator())
        twice = dilate(dilate(base, 4.0), 2.5)
        assert isinstance(twice, TimeDilatedSystem)
        assert twice.speedup == pytest.approx(10.0)
        assert twice.base is base  # no nested wrappers

    def test_identity_dilation(self):
        base = repro.simulate(harmonic_oscillator(), (0.0, 5.0),
                              n_points=51, **TIGHT)
        same = repro.simulate(dilate(harmonic_oscillator(), 1.0),
                              (0.0, 5.0), n_points=51, **TIGHT)
        np.testing.assert_allclose(same["x"], base["x"], atol=1e-12)


class TestValidation:
    def test_bad_speedup_rejected(self):
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(repro.SimulationError):
                dilate(harmonic_oscillator(), bad)

    def test_wrapper_surface(self):
        system = dilate(harmonic_oscillator(), 2.0)
        assert system.n_states == 2
        assert set(system.state_labels()) == {"x", "v"}
        assert system.index_of("x") == \
            system.base.index_of("x")
        assert any("time dilated" in line
                   for line in system.equations())
        assert "x2" in repr(system)
