"""Tests for graph export (networkx views and DOT rendering)."""

import networkx as nx

from repro.core.export import to_dot, to_networkx
from repro.paradigms.tln import TLineSpec, branched_tline_function, \
    linear_tline


class TestNetworkx:
    def test_counts_match(self, small_spec):
        graph = linear_tline(small_spec)
        exported = to_networkx(graph)
        assert exported.number_of_nodes() == graph.stats()["nodes"]
        assert exported.number_of_edges() == graph.stats()["edges"]

    def test_node_payload(self, small_spec):
        exported = to_networkx(linear_tline(small_spec))
        payload = exported.nodes["IN_V"]
        assert payload["type"] == "V"
        assert payload["order"] == 1
        assert payload["c"] == 1e-9

    def test_edge_payload_keys_are_edge_names(self, small_spec):
        graph = linear_tline(small_spec)
        exported = to_networkx(graph)
        data = exported.get_edge_data("InpI_0", "IN_V")
        assert "E_0" in data
        assert data["E_0"]["type"] == "E"
        assert data["E_0"]["on"] is True

    def test_line_is_weakly_connected(self, small_spec):
        exported = to_networkx(linear_tline(small_spec))
        assert nx.is_weakly_connected(exported)

    def test_graph_metadata(self, small_spec):
        exported = to_networkx(linear_tline(small_spec))
        assert exported.graph["language"] == "tln"


class TestDot:
    def test_contains_all_elements(self, small_spec):
        graph = linear_tline(small_spec)
        dot = to_dot(graph)
        assert dot.startswith("digraph")
        for node in graph.nodes:
            assert f'"{node.name}"' in dot
        assert dot.count("->") == \
            sum(1 for _ in graph.edges)

    def test_off_edges_dashed(self):
        fn = branched_tline_function(TLineSpec(n_segments=4),
                                     branch_segments=2)
        dot = to_dot(fn(br=0))
        assert "style=dashed" in dot
        dot_on = to_dot(fn(br=1))
        assert "style=dashed" not in dot_on

    def test_attrs_rendered_on_request(self, small_spec):
        graph = linear_tline(small_spec)
        assert "c=1e-09" in to_dot(graph, include_attrs=True)
        assert "c=1e-09" not in to_dot(graph)

    def test_shapes_by_family(self, small_spec):
        dot = to_dot(linear_tline(small_spec))
        assert "shape=box" in dot      # V nodes
        assert "shape=circle" in dot   # I nodes
        assert "shape=house" in dot    # input source
