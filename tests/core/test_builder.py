"""Unit tests for GraphBuilder: datatype checking, mismatch-at-write,
and switch statements."""

import pytest

import repro
from repro.core.builder import GraphBuilder
from repro.errors import DatatypeError, GraphError
from tests.conftest import build_leaky_language


@pytest.fixture()
def lang():
    return build_leaky_language()


@pytest.fixture()
def mm_lang():
    language = repro.Language("mm")
    language.node_type("N", order=1, attrs=[
        ("a", repro.real(0.0, 10.0, mm=(0.0, 0.1))),
        ("b", repro.real(0.0, 10.0)),
    ])
    language.edge_type("S")
    language.prod("prod(e:S,s:N->s:N) s<=-var(s)")
    return language


class TestSetAttr:
    def test_range_checked(self, lang):
        builder = GraphBuilder(lang)
        builder.node("x", "X")
        with pytest.raises(DatatypeError):
            builder.set_attr("x", "tau", 99.0)

    def test_unknown_attr_rejected(self, lang):
        builder = GraphBuilder(lang)
        builder.node("x", "X")
        with pytest.raises(GraphError):
            builder.set_attr("x", "volume", 1.0)

    def test_unknown_owner_rejected(self, lang):
        builder = GraphBuilder(lang)
        with pytest.raises(GraphError):
            builder.set_attr("ghost", "tau", 1.0)

    def test_nominal_and_resolved_stored(self, mm_lang):
        builder = GraphBuilder(mm_lang, seed=42)
        builder.node("n", "N")
        builder.set_attr("n", "a", 5.0)
        node = builder.graph.node("n")
        assert node.nominal_attrs["a"] == 5.0
        assert node.attrs["a"] != 5.0  # mismatch applied
        assert abs(node.attrs["a"] - 5.0) < 5.0  # within a few sigma

    def test_no_seed_means_nominal(self, mm_lang):
        builder = GraphBuilder(mm_lang)
        builder.node("n", "N")
        builder.set_attr("n", "a", 5.0)
        assert builder.graph.node("n").attrs["a"] == 5.0

    def test_unannotated_attr_never_mismatched(self, mm_lang):
        builder = GraphBuilder(mm_lang, seed=42)
        builder.node("n", "N")
        builder.set_attr("n", "b", 5.0)
        assert builder.graph.node("n").attrs["b"] == 5.0

    def test_range_applies_to_nominal_not_sample(self):
        # real[1,1] mm(0,0.1) (Fig. 10b) accepts nominal 1.0 even though
        # samples leave the range.
        language = repro.Language("edge-case")
        language.node_type("N", order=1, attrs=[
            ("mm", repro.real(1.0, 1.0, mm=(0.0, 0.1)))])
        builder = GraphBuilder(language, seed=7)
        builder.node("n", "N")
        builder.set_attr("n", "mm", 1.0)
        assert builder.graph.node("n").nominal_attrs["mm"] == 1.0
        assert builder.graph.node("n").attrs["mm"] != 1.0


class TestSetInit:
    def test_init_written(self, lang):
        builder = GraphBuilder(lang)
        builder.node("x", "X").set_init("x", 0.5)
        assert builder.graph.node("x").inits[0] == 0.5

    def test_bad_index_rejected(self, lang):
        builder = GraphBuilder(lang)
        builder.node("x", "X")
        with pytest.raises(GraphError):
            builder.set_init("x", 0.5, index=3)


class TestSwitch:
    def test_switch_statement(self, lang):
        builder = GraphBuilder(lang)
        builder.node("x", "X").set_attr("x", "tau", 1.0)
        builder.node("y", "X").set_attr("y", "tau", 1.0)
        builder.edge("x", "y", "e", "W").set_attr("e", "w", 1.0)
        builder.set_switch("e", False)
        assert not builder.graph.edge("e").on


class TestFinish:
    def test_finish_checks_completeness(self, lang):
        builder = GraphBuilder(lang)
        builder.node("x", "X")
        with pytest.raises(GraphError):
            builder.finish()

    def test_finish_no_check(self, lang):
        builder = GraphBuilder(lang)
        builder.node("x", "X")
        graph = builder.finish(check=False)
        assert graph.has_node("x")

    def test_fluent_chaining(self, lang):
        graph = (GraphBuilder(lang)
                 .node("x", "X")
                 .set_attr("x", "tau", 1.0)
                 .edge("x", "x", "e", "W")
                 .set_attr("e", "w", 0.0)
                 .set_init("x", 1.0)
                 .finish())
        assert graph.stats()["nodes"] == 1
