"""Unit tests for node/edge types and the §4.1.1 inheritance rules."""

import pytest

from repro.core.attributes import AttrDecl, InitDecl
from repro.core.datatypes import integer, lambd, real
from repro.core.types import EdgeType, NodeType, Reduction
from repro.errors import InheritanceError, LanguageError


class TestReduction:
    def test_parse(self):
        assert Reduction.parse("sum") is Reduction.SUM
        assert Reduction.parse("mul") is Reduction.MUL
        assert Reduction.parse(Reduction.SUM) is Reduction.SUM

    def test_parse_unknown(self):
        with pytest.raises(LanguageError):
            Reduction.parse("max")

    def test_identities(self):
        assert Reduction.SUM.identity == 0.0
        assert Reduction.MUL.identity == 1.0


class TestNodeType:
    def test_basic(self):
        node_type = NodeType("V", order=1, reduction=Reduction.SUM,
                             attrs={"c": AttrDecl("c", real(0, 1))})
        assert node_type.order == 1
        assert not node_type.is_algebraic
        assert "c" in node_type.attrs

    def test_order_zero_is_algebraic(self):
        node_type = NodeType("Out", order=0, reduction=Reduction.SUM)
        assert node_type.is_algebraic
        assert node_type.inits == {}

    def test_negative_order_rejected(self):
        with pytest.raises(LanguageError):
            NodeType("X", order=-1, reduction=Reduction.SUM)

    def test_auto_init_declarations(self):
        node_type = NodeType("X", order=2, reduction=Reduction.SUM)
        assert set(node_type.inits) == {0, 1}
        assert node_type.inits[0].default == 0.0

    def test_init_index_beyond_order_rejected(self):
        with pytest.raises(LanguageError):
            NodeType("X", order=1, reduction=Reduction.SUM,
                     inits={1: InitDecl(1, real(-1, 1))})

    def test_init_table_key_mismatch_rejected(self):
        with pytest.raises(LanguageError):
            NodeType("X", order=2, reduction=Reduction.SUM,
                     inits={0: InitDecl(1, real(-1, 1))})


class TestNodeInheritance:
    def _parent(self):
        return NodeType("V", order=1, reduction=Reduction.SUM,
                        attrs={"c": AttrDecl("c", real(0.0, 10.0)),
                               "g": AttrDecl("g", real(0.0, 1.0))})

    def test_child_inherits_attrs(self):
        child = NodeType("Vm", order=1, reduction=Reduction.SUM,
                         parent=self._parent())
        assert set(child.attrs) == {"c", "g"}

    def test_child_must_match_order(self):
        with pytest.raises(InheritanceError):
            NodeType("Vm", order=2, reduction=Reduction.SUM,
                     parent=self._parent())

    def test_child_must_match_reduction(self):
        with pytest.raises(InheritanceError):
            NodeType("Vm", order=1, reduction=Reduction.MUL,
                     parent=self._parent())

    def test_override_narrows_range(self):
        child = NodeType(
            "Vm", order=1, reduction=Reduction.SUM,
            attrs={"c": AttrDecl("c", real(1.0, 5.0, mm=(0, 0.1)))},
            parent=self._parent())
        assert child.attrs["c"].datatype.mismatch is not None

    def test_override_same_range_allowed(self):
        # GmC-TLN keeps the parent's exact range (Fig. 9).
        NodeType("Vm", order=1, reduction=Reduction.SUM,
                 attrs={"c": AttrDecl("c", real(0.0, 10.0))},
                 parent=self._parent())

    def test_override_wider_range_rejected(self):
        with pytest.raises(InheritanceError):
            NodeType("Vm", order=1, reduction=Reduction.SUM,
                     attrs={"c": AttrDecl("c", real(-1.0, 10.0))},
                     parent=self._parent())

    def test_override_kind_change_rejected(self):
        with pytest.raises(InheritanceError):
            NodeType("Vm", order=1, reduction=Reduction.SUM,
                     attrs={"c": AttrDecl("c", integer(0, 5))},
                     parent=self._parent())

    def test_new_attrs_allowed(self):
        child = NodeType("Vm", order=1, reduction=Reduction.SUM,
                         attrs={"mm": AttrDecl("mm", real(1, 1))},
                         parent=self._parent())
        assert set(child.attrs) == {"c", "g", "mm"}

    def test_cannot_inherit_from_edge_type(self):
        with pytest.raises(InheritanceError):
            NodeType("X", order=1, reduction=Reduction.SUM,
                     parent=EdgeType("E"))

    def test_subtype_relation(self):
        parent = self._parent()
        child = NodeType("Vm", order=1, reduction=Reduction.SUM,
                         parent=parent)
        grandchild = NodeType("Vmm", order=1, reduction=Reduction.SUM,
                              parent=child)
        assert child.is_subtype_of(parent)
        assert grandchild.is_subtype_of(parent)
        assert not parent.is_subtype_of(child)

    def test_distance(self):
        parent = self._parent()
        child = NodeType("Vm", order=1, reduction=Reduction.SUM,
                         parent=parent)
        assert child.distance_to(child) == 0
        assert child.distance_to(parent) == 1
        assert parent.distance_to(child) is None

    def test_ancestry(self):
        parent = self._parent()
        child = NodeType("Vm", order=1, reduction=Reduction.SUM,
                         parent=parent)
        assert [t.name for t in child.ancestry()] == ["Vm", "V"]

    def test_lambda_attr_inheritance(self):
        parent = NodeType("Inp", order=0, reduction=Reduction.SUM,
                          attrs={"fn": AttrDecl("fn", lambd(1))})
        child = NodeType("InpM", order=0, reduction=Reduction.SUM,
                         attrs={"fn": AttrDecl("fn", lambd(1))},
                         parent=parent)
        assert child.attrs["fn"].datatype.arity == 1

    def test_lambda_arity_change_rejected(self):
        parent = NodeType("Inp", order=0, reduction=Reduction.SUM,
                          attrs={"fn": AttrDecl("fn", lambd(1))})
        with pytest.raises(InheritanceError):
            NodeType("InpM", order=0, reduction=Reduction.SUM,
                     attrs={"fn": AttrDecl("fn", lambd(2))},
                     parent=parent)


class TestEdgeType:
    def test_basic(self):
        edge_type = EdgeType("E", attrs={"k": AttrDecl("k",
                                                       real(-8, 8))})
        assert not edge_type.fixed
        assert "k" in edge_type.attrs

    def test_fixed_flag(self):
        assert EdgeType("F", fixed=True).fixed

    def test_fixed_inherited(self):
        parent = EdgeType("F", fixed=True)
        with pytest.raises(InheritanceError):
            EdgeType("F2", fixed=False, parent=parent)

    def test_can_fix_unfixed_parent(self):
        parent = EdgeType("E")
        child = EdgeType("Ef", fixed=True, parent=parent)
        assert child.fixed

    def test_cannot_inherit_from_node_type(self):
        with pytest.raises(InheritanceError):
            EdgeType("E", parent=NodeType("V", order=1,
                                          reduction=Reduction.SUM))

    def test_const_override_cannot_unconst(self):
        parent = EdgeType("E", attrs={"k": AttrDecl("k", real(0, 1),
                                                    const=True)})
        with pytest.raises(InheritanceError):
            EdgeType("E2", attrs={"k": AttrDecl("k", real(0, 1),
                                                const=False)},
                     parent=parent)
