"""Unit tests for the §6 validator: the described relation (both
backends), cstr evaluation, rejected patterns, and global checks."""

import pytest

import repro
from repro.core.builder import GraphBuilder
from repro.core.validator import BACKENDS, is_described, validate
from repro.errors import ValidationError
from tests.conftest import build_leaky_language, build_two_pole


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestDescribed:
    def test_two_pole_valid(self, backend):
        lang = build_leaky_language()
        graph = build_two_pole(lang)
        report = validate(graph, backend=backend)
        assert report.valid, report.violations

    def test_missing_self_edge_detected(self, backend):
        lang = build_leaky_language()
        builder = GraphBuilder(lang)
        builder.node("x", "X").set_attr("x", "tau", 1.0)
        graph = builder.finish()
        report = validate(graph, backend=backend)
        assert not report.valid
        assert "x" in report.violations[0]

    def test_double_self_edge_detected(self, backend):
        lang = build_leaky_language()
        builder = GraphBuilder(lang)
        builder.node("x", "X").set_attr("x", "tau", 1.0)
        builder.edge("x", "x", "s1", "W").set_attr("s1", "w", 0.0)
        builder.edge("x", "x", "s2", "W").set_attr("s2", "w", 0.0)
        report = validate(builder.finish(), backend=backend)
        assert not report.valid

    def test_cardinality_upper_bound(self, backend):
        lang = repro.Language("bounded")
        lang.node_type("N", order=1)
        lang.edge_type("E")
        lang.prod("prod(e:E,s:N->t:N) t<=var(s)")
        lang.prod("prod(e:E,s:N->s:N) s<=-var(s)")
        lang.cstr("cstr N {acc[match(0,1,E,[N]->N),"
                  " match(0,inf,E,N->[N]), match(0,1,E,N)]}")
        builder = GraphBuilder(lang)
        for name in ("a", "b", "c"):
            builder.node(name, "N")
        builder.edge("a", "c", "e1", "E")
        builder.edge("b", "c", "e2", "E")  # two incoming: over bound
        report = validate(builder.finish(), backend=backend)
        assert not report.valid
        assert any("c" in v for v in report.violations)

    def test_switched_off_edges_ignored(self, backend):
        lang = build_leaky_language()
        builder = GraphBuilder(lang)
        builder.node("x", "X").set_attr("x", "tau", 1.0)
        builder.edge("x", "x", "s1", "W").set_attr("s1", "w", 0.0)
        builder.edge("x", "x", "s2", "W").set_attr("s2", "w", 0.0)
        builder.set_switch("s2", False)
        report = validate(builder.finish(), backend=backend)
        assert report.valid, report.violations

    def test_is_described_direct(self, backend):
        lang = build_leaky_language()
        graph = build_two_pole(lang)
        rule = lang.constraints()[0]
        node = graph.node("x0")
        assert is_described(graph, lang, node, rule.accepted[0],
                            backend=backend)

    def test_unknown_backend_rejected(self):
        lang = build_leaky_language()
        graph = build_two_pole(lang)
        rule = lang.constraints()[0]
        with pytest.raises(ValidationError):
            is_described(graph, lang, graph.node("x0"),
                         rule.accepted[0], backend="quantum")


class TestRejectedPatterns:
    def _lang(self):
        lang = repro.Language("rejy")
        lang.node_type("N", order=1)
        lang.edge_type("E")
        lang.prod("prod(e:E,s:N->t:N) t<=var(s)")
        lang.prod("prod(e:E,s:N->s:N) s<=-var(s)")
        # Accept anything, but reject nodes with 2+ outgoing edges.
        lang.cstr("cstr N {acc[match(0,inf,E,N->[N]),"
                  " match(0,inf,E,[N]->N), match(0,inf,E,N)]"
                  " rej[match(2,inf,E,N->[N]), match(0,inf,E,[N]->N),"
                  " match(0,inf,E,N)]}")
        return lang

    def test_rejected_pattern_fails_node(self, backend):
        lang = self._lang()
        builder = GraphBuilder(lang)
        for name in ("a", "b", "c"):
            builder.node(name, "N")
        builder.edge("a", "b", "e1", "E")
        builder.edge("a", "c", "e2", "E")
        report = validate(builder.finish(), backend=backend)
        assert not report.valid
        assert "rejected" in report.violations[0]

    def test_below_rejection_threshold_passes(self, backend):
        lang = self._lang()
        builder = GraphBuilder(lang)
        builder.node("a", "N")
        builder.node("b", "N")
        builder.edge("a", "b", "e1", "E")
        report = validate(builder.finish(), backend=backend)
        assert report.valid, report.violations


class TestGlobalChecks:
    def test_extern_check_runs(self):
        lang = build_leaky_language()
        failures = []

        def check(graph):
            failures.append(graph.name)
            return False, "nope"

        lang.extern_check(check, name="always-fails")
        graph = build_two_pole(lang)
        report = validate(graph)
        assert not report.valid
        assert failures  # the check actually ran
        assert "always-fails" in report.violations[0]

    def test_extern_check_bool_result(self):
        lang = build_leaky_language()
        lang.extern_check(lambda g: True, name="ok")
        report = validate(build_two_pole(lang))
        assert report.valid


class TestReport:
    def test_raise_if_invalid(self):
        lang = build_leaky_language()
        builder = GraphBuilder(lang)
        builder.node("x", "X").set_attr("x", "tau", 1.0)
        report = validate(builder.finish())
        with pytest.raises(ValidationError) as info:
            report.raise_if_invalid()
        assert info.value.violations

    def test_bool_protocol(self):
        lang = build_leaky_language()
        assert validate(build_two_pole(lang))

    def test_subtype_matches_parent_clause(self, backend):
        # A node of a derived type must satisfy clauses written against
        # the parent type (inheritance casting, §4.1.1).
        base = build_leaky_language()
        derived = repro.Language("leaky2", parent=base)
        derived.node_type("Xm", inherits="X")
        builder = GraphBuilder(derived)
        builder.node("x", "Xm").set_attr("x", "tau", 1.0)
        builder.edge("x", "x", "leak", "W").set_attr("leak", "w", 0.0)
        report = validate(builder.finish(), backend=backend)
        assert report.valid, report.violations
