"""Unit tests for production rules: parsing, semantic checks, and the
most-specific lookup with inheritance fallback."""

import pytest

from repro.core.production import (ProductionRule, RuleTable,
                                   parse_production)
from repro.core.types import EdgeType, NodeType, Reduction
from repro.errors import CompileError, LanguageError


class TestParseProduction:
    def test_paper_rule(self):
        rule = parse_production("prod(e:E,s:V->t:I) s<=-var(t)/s.c")
        assert rule.edge_type == "E"
        assert rule.src_type == "V"
        assert rule.dst_type == "I"
        assert rule.target == "s"
        assert not rule.off
        assert not rule.is_self_rule

    def test_without_prod_keyword(self):
        rule = parse_production("(e:E, s:V->t:I) t <= var(s)/t.l")
        assert rule.target == "t"

    def test_self_rule(self):
        rule = parse_production("prod(e:E,s:V->s:V) s<=-s.g/s.c*var(s)")
        assert rule.is_self_rule
        assert rule.targets_source

    def test_off_rule(self):
        rule = parse_production("prod(e:E,s:V->t:I) t<=1e-12*var(s) off")
        assert rule.off

    def test_trailing_semicolon(self):
        rule = parse_production("prod(e:E,s:V->t:I) s<=-var(t)/s.c;")
        assert rule.target == "s"

    def test_missing_body_rejected(self):
        with pytest.raises(LanguageError):
            parse_production("prod(e:E,s:V->t:I) novalue")

    def test_malformed_head_rejected(self):
        with pytest.raises(LanguageError):
            parse_production("prod(e:E) s<=1")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(LanguageError):
            parse_production("prod(e:E,s:V->t:I s<=1")


class TestRuleSemantics:
    def test_target_must_be_endpoint(self):
        with pytest.raises(LanguageError):
            parse_production("prod(e:E,s:V->t:I) q<=var(s)")

    def test_expression_scope_checked(self):
        with pytest.raises(LanguageError):
            parse_production("prod(e:E,s:V->t:I) s<=var(other)")

    def test_self_rule_type_consistency(self):
        with pytest.raises(LanguageError):
            ProductionRule("e", "E", "s", "V", "s", "I", "s",
                           parse_production(
                               "prod(e:E,s:V->t:I) s<=1").expr)

    def test_signature_distinguishes_target(self):
        a = parse_production("prod(e:E,s:V->t:I) s<=-var(t)/s.c")
        b = parse_production("prod(e:E,s:V->t:I) t<=var(s)/t.l")
        assert a.signature() != b.signature()

    def test_describe_round_trips(self):
        rule = parse_production("prod(e:E,s:V->t:I) s<=-var(t)/s.c")
        again = parse_production(rule.describe())
        assert again.signature() == rule.signature()


def _type_universe():
    v = NodeType("V", order=1, reduction=Reduction.SUM)
    i = NodeType("I", order=1, reduction=Reduction.SUM)
    vm = NodeType("Vm", order=1, reduction=Reduction.SUM, parent=v)
    im = NodeType("Im", order=1, reduction=Reduction.SUM, parent=i)
    e = EdgeType("E")
    em = EdgeType("Em", parent=e)
    return {"V": v, "I": i, "Vm": vm, "Im": im}, {"E": e, "Em": em}


class TestRuleLookup:
    def _table(self, rules):
        nodes, edges = _type_universe()
        parsed = [parse_production(r) for r in rules]
        return RuleTable(parsed, nodes, edges), nodes, edges

    def test_exact_match(self):
        table, nodes, edges = self._table(
            ["prod(e:E,s:V->t:I) s<=-var(t)",
             "prod(e:E,s:V->t:I) t<=var(s)"])
        winners = table.lookup(edges["E"], nodes["V"], nodes["I"])
        assert len(winners) == 2
        targets = {rule.target for rule in winners}
        assert targets == {"s", "t"}

    def test_fallback_to_parent_types(self):
        table, nodes, edges = self._table(
            ["prod(e:E,s:V->t:I) t<=var(s)"])
        winners = table.lookup(edges["Em"], nodes["Vm"], nodes["Im"])
        assert len(winners) == 1
        assert winners[0].edge_type == "E"

    def test_most_specific_wins(self):
        table, nodes, edges = self._table(
            ["prod(e:E,s:V->t:I) t<=var(s)",
             "prod(e:Em,s:V->t:I) t<=2*var(s)"])
        winners = table.lookup(edges["Em"], nodes["V"], nodes["I"])
        assert winners[0].edge_type == "Em"
        # The base edge still resolves to the base rule.
        winners = table.lookup(edges["E"], nodes["V"], nodes["I"])
        assert winners[0].edge_type == "E"

    def test_ambiguity_detected(self):
        # Two incomparable rules at equal distance for the same target:
        # (Em, V, I) vs (E, Vm, I) for a (Em, Vm, I) connection.
        table, nodes, edges = self._table(
            ["prod(e:Em,s:V->t:I) t<=var(s)",
             "prod(e:E,s:Vm->t:I) t<=2*var(s)"])
        with pytest.raises(CompileError):
            table.lookup(edges["Em"], nodes["Vm"], nodes["I"])

    def test_no_match_returns_empty(self):
        table, nodes, edges = self._table(
            ["prod(e:E,s:V->t:I) t<=var(s)"])
        winners = table.lookup(edges["E"], nodes["I"], nodes["V"])
        assert winners == []

    def test_self_rules_separated(self):
        table, nodes, edges = self._table(
            ["prod(e:E,s:V->s:V) s<=-var(s)",
             "prod(e:E,s:V->t:V) t<=var(s)"])
        self_winners = table.lookup(edges["E"], nodes["V"], nodes["V"],
                                    self_rule=True)
        assert len(self_winners) == 1
        assert self_winners[0].is_self_rule
        cross = table.lookup(edges["E"], nodes["V"], nodes["V"])
        assert len(cross) == 1
        assert not cross[0].is_self_rule

    def test_off_rules_separated(self):
        table, nodes, edges = self._table(
            ["prod(e:E,s:V->t:I) t<=var(s)",
             "prod(e:E,s:V->t:I) t<=1e-12*var(s) off"])
        on = table.lookup(edges["E"], nodes["V"], nodes["I"])
        off = table.lookup(edges["E"], nodes["V"], nodes["I"], off=True)
        assert not on[0].off
        assert off[0].off

    def test_has_rule_for(self):
        table, nodes, edges = self._table(
            ["prod(e:E,s:V->t:I) t<=var(s)"])
        assert table.has_rule_for(edges["Em"], nodes["Vm"], nodes["Im"])
        assert not table.has_rule_for(edges["E"], nodes["I"], nodes["V"])
