"""Tests for the transient-noise core: the ``Noise`` annotation, the
``noise()`` expression term, the drift/diffusion split, and the
deterministic Wiener streams."""

import numpy as np
import pytest

import repro
from repro.core.compiler import compile_graph
from repro.core.datatypes import Noise
from repro.core.noise import stream, stream_seed
from repro.errors import CompileError, DatatypeError, InheritanceError
from repro.lang import parse_program
from repro.lang.unparse import unparse_datatype, unparse_language

OU_SOURCE = """
lang ou {
    ntyp(1,sum) X {attr tau=real[1e-3,10], attr nsig=real[0,inf]};
    etyp R {};
    prod(e:R, s:X->s:X) s <= -var(s)/s.tau + noise(s.nsig);
    cstr X {acc[match(1,1,R,X)]};
}
"""

ANNOT_SOURCE = """
lang oun {
    ntyp(1,sum) X {attr tau=real[1e-3,10] ns(0.1,rel)};
    etyp R {};
    prod(e:R, s:X->s:X) s <= -var(s)/s.tau;
    cstr X {acc[match(1,1,R,X)]};
}
"""


def _ou_graph(tau=1.0, nsig=0.5, name="ou"):
    lang = parse_program(OU_SOURCE).languages["ou"]
    g = repro.GraphBuilder(lang, name)
    g.node("x", "X").set_attr("x", "tau", tau)
    g.set_attr("x", "nsig", nsig)
    g.edge("x", "x", "r0", "R").set_init("x", 1.0)
    return g.finish()


class TestNoiseAnnotation:
    def test_validation(self):
        with pytest.raises(DatatypeError):
            Noise(-0.1)
        with pytest.raises(DatatypeError):
            Noise(0.1, "pink")

    def test_amplitude(self):
        assert Noise(0.5).amplitude(3.0) == 0.5
        assert Noise(0.1, "rel").amplitude(-4.0) == pytest.approx(0.4)

    def test_real_constructor_forms(self):
        a = repro.real(0, 1, ns=0.2)
        b = repro.real(0, 1, ns=(0.2, "abs"))
        c = repro.real(0, 1, ns=Noise(0.2))
        assert a == b == c
        assert repro.real(0, 1, ns=(0.3, "rel")).noise.kind == "rel"

    def test_str_roundtrip(self):
        assert "ns(0.1,rel)" in str(repro.real(0, 1, ns=(0.1, "rel")))
        assert unparse_datatype(repro.real(0, 1, ns=0.2)) == \
            "real[0,1] ns(0.2)"

    def test_parse_unparse_language(self):
        lang = parse_program(ANNOT_SOURCE).languages["oun"]
        decl = lang.find_node_type("X").attrs["tau"]
        assert decl.datatype.noise == Noise(0.1, "rel")
        text = unparse_language(lang)
        reparsed = parse_program(text).languages["oun"]
        assert reparsed.find_node_type("X").attrs["tau"].datatype \
            == decl.datatype

    def test_override_cannot_flip_kind(self):
        lang = repro.Language("flip")
        lang.node_type("X", order=1, reduction="sum",
                       attrs=[("a", repro.real(0, 1, ns=(0.1, "rel")))])
        with pytest.raises(InheritanceError):
            lang.node_type("Y", order=1, reduction="sum",
                           attrs=[("a", repro.real(0, 1, ns=0.1))],
                           inherits="X")

    def test_override_may_add_noise(self):
        lang = repro.Language("add")
        lang.node_type("X", order=1, reduction="sum",
                       attrs=[("a", repro.real(0, 1))])
        derived = lang.node_type(
            "Y", order=1, reduction="sum",
            attrs=[("a", repro.real(0, 1, ns=(0.1, "rel")))],
            inherits="X")
        assert derived.attrs["a"].datatype.noise is not None


class TestDriftDiffusionSplit:
    def test_noise_term_moves_to_diffusion(self):
        system = compile_graph(_ou_graph())
        assert system.has_noise
        assert len(system.diffusion) == 1
        term = system.diffusion[0]
        assert term.element == "r0"
        assert term.state_index == 0
        # The drift is the pure decay: f(1) = -1/tau.
        assert system.rhs()(0.0, np.array([1.0]))[0] == \
            pytest.approx(-1.0)
        # The diffusion amplitude is the nsig attribute.
        assert system.diffusion_values(0.0, np.array([1.0]))[0] == \
            pytest.approx(0.5)

    def test_noiseless_twin_matches_drift(self):
        noisy = compile_graph(_ou_graph(nsig=0.5))
        silent = compile_graph(_ou_graph(nsig=0.0, name="ou0"))
        y = np.array([0.7])
        assert noisy.rhs()(0.0, y) == pytest.approx(silent.rhs()(0.0, y))

    def test_zero_sigma_keeps_diffusion_spec(self):
        # The split is structural; a zero amplitude only folds away in
        # the batched codegen (shared-value simplification).
        system = compile_graph(_ou_graph(nsig=0.0))
        assert system.has_noise

    def test_annotation_diffusion(self):
        lang = parse_program(ANNOT_SOURCE).languages["oun"]
        g = repro.GraphBuilder(lang, "oun1")
        g.node("x", "X").set_attr("x", "tau", 2.0)
        g.edge("x", "x", "r0", "R").set_init("x", 1.0)
        system = compile_graph(g.finish())
        assert system.has_noise
        term = system.diffusion[0]
        assert term.element == "x"
        assert term.path == "a:tau"
        # b(y) = (-y/tau) * 0.1 -> at y=4, tau=2: -0.2
        assert system.diffusion_values(0.0, np.array([4.0]))[0] == \
            pytest.approx(-0.2)

    def test_signature_distinguishes_noise(self):
        noisy = compile_graph(_ou_graph())
        lang = parse_program(OU_SOURCE.replace(
            " + noise(s.nsig)", "")).languages["ou"]
        g = repro.GraphBuilder(lang, "det")
        g.node("x", "X").set_attr("x", "tau", 1.0)
        g.set_attr("x", "nsig", 0.5)
        g.edge("x", "x", "r0", "R").set_init("x", 1.0)
        silent = compile_graph(g.finish())
        assert noisy.structural_signature() != \
            silent.structural_signature()

    def test_signature_shared_across_values(self):
        a = compile_graph(_ou_graph(tau=1.0, nsig=0.1))
        b = compile_graph(_ou_graph(tau=2.0, nsig=0.9, name="ou2"))
        assert a.structural_signature() == b.structural_signature()

    def test_equations_render_diffusion(self):
        lines = compile_graph(_ou_graph()).equations()
        assert any("dW[r0/w0]" in line for line in lines)

    def test_noise_on_mul_node_rejected(self):
        src = OU_SOURCE.replace("ntyp(1,sum) X", "ntyp(1,mul) X")
        lang = parse_program(src).languages["ou"]
        g = repro.GraphBuilder(lang, "mul")
        g.node("x", "X").set_attr("x", "tau", 1.0)
        g.set_attr("x", "nsig", 0.5)
        g.edge("x", "x", "r0", "R").set_init("x", 1.0)
        with pytest.raises(CompileError):
            compile_graph(g.finish())

    def test_noise_on_algebraic_node_rejected(self):
        src = """
        lang alg {
            ntyp(1,sum) X {};
            ntyp(0,sum) A {attr nsig=real[0,inf]};
            etyp R {};
            prod(e:R, s:X->t:A) t <= var(s) + noise(t.nsig);
            prod(e:R, s:X->s:X) s <= -var(s);
        }
        """
        lang = parse_program(src).languages["alg"]
        g = repro.GraphBuilder(lang, "alg1")
        g.node("x", "X").set_init("x", 1.0)
        g.node("a", "A").set_attr("a", "nsig", 0.1)
        g.edge("x", "x", "rs", "R")
        g.edge("x", "a", "ra", "R")
        with pytest.raises(CompileError):
            compile_graph(g.finish())

    def test_abs_annotation_on_zero_value_rejected(self):
        src = ANNOT_SOURCE.replace("ns(0.1,rel)", "ns(0.1)").replace(
            "real[1e-3,10]", "real[0,10]")
        lang = parse_program(src).languages["oun"]
        g = repro.GraphBuilder(lang, "zero")
        g.node("x", "X").set_attr("x", "tau", 0.0)
        g.edge("x", "x", "r0", "R").set_init("x", 1.0)
        with pytest.raises(CompileError, match="zero-valued"):
            compile_graph(g.finish())

    def test_nonlinear_annotation_rejected(self):
        # tau enters additively -> the first-order product
        # linearization would be mis-scaled; must refuse, not guess.
        src = ANNOT_SOURCE.replace("-var(s)/s.tau",
                                   "-var(s)+s.tau")
        lang = parse_program(src).languages["oun"]
        g = repro.GraphBuilder(lang, "addtau")
        g.node("x", "X").set_attr("x", "tau", 1.0)
        g.edge("x", "x", "r0", "R").set_init("x", 1.0)
        with pytest.raises(CompileError, match="multiplicative"):
            compile_graph(g.finish())

    def test_annotation_on_algebraic_rejected(self):
        src = """
        lang alg {
            ntyp(1,sum) X {};
            ntyp(0,sum) A {attr gain=real[0,10] ns(0.1,rel)};
            etyp R {};
            prod(e:R, s:X->t:A) t <= t.gain*var(s);
            prod(e:R, s:X->s:X) s <= -var(s);
        }
        """
        lang = parse_program(src).languages["alg"]
        g = repro.GraphBuilder(lang, "alg2")
        g.node("x", "X").set_init("x", 1.0)
        g.node("a", "A").set_attr("a", "gain", 2.0)
        g.edge("x", "x", "rs", "R")
        g.edge("x", "a", "ra", "R")
        with pytest.raises(CompileError, match="order-0"):
            compile_graph(g.finish())

    def test_noise_arity_checked(self):
        src = OU_SOURCE.replace("noise(s.nsig)", "noise(s.nsig, 2)")
        lang = parse_program(src).languages["ou"]
        g = repro.GraphBuilder(lang, "arity")
        g.node("x", "X").set_attr("x", "tau", 1.0)
        g.set_attr("x", "nsig", 0.5)
        g.edge("x", "x", "r0", "R").set_init("x", 1.0)
        with pytest.raises(CompileError):
            compile_graph(g.finish())


class TestWienerStreams:
    def test_deterministic(self):
        a = stream(7, "E_3", "w0").standard_normal(8)
        b = stream(7, "E_3", "w0").standard_normal(8)
        assert np.array_equal(a, b)

    def test_independent_across_triples(self):
        base = stream_seed(7, "E_3", "w0")
        assert base != stream_seed(8, "E_3", "w0")
        assert base != stream_seed(7, "E_4", "w0")
        assert base != stream_seed(7, "E_3", "w1")

    def test_matches_mismatch_hash_scheme(self):
        # mismatch.py routes through the same helper, so §4.3 samples
        # are unchanged by the refactor.
        from repro.core.mismatch import MismatchSampler
        from repro.core.datatypes import Mismatch

        sampler = MismatchSampler(3)
        value = sampler.sample("el", "a", Mismatch(0.0, 0.1), 1.0)
        expected = float(stream(3, "el", "a").normal(1.0, 0.1))
        assert value == pytest.approx(expected)
