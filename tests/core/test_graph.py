"""Unit tests for the DynamicalGraph structure."""

import pytest

from repro.core.builder import GraphBuilder
from repro.core.graph import DynamicalGraph
from repro.errors import GraphError
from tests.conftest import build_leaky_language


@pytest.fixture()
def lang():
    return build_leaky_language()


class TestConstruction:
    def test_add_node(self, lang):
        graph = DynamicalGraph(lang)
        node = graph.add_node("x", "X")
        assert node.type.name == "X"
        assert graph.has_node("x")

    def test_duplicate_node_rejected(self, lang):
        graph = DynamicalGraph(lang)
        graph.add_node("x", "X")
        with pytest.raises(GraphError):
            graph.add_node("x", "X")

    def test_unknown_node_type_rejected(self, lang):
        graph = DynamicalGraph(lang)
        with pytest.raises(GraphError):
            graph.add_node("x", "Nope")

    def test_edge_requires_endpoints(self, lang):
        graph = DynamicalGraph(lang)
        graph.add_node("x", "X")
        with pytest.raises(GraphError):
            graph.add_edge("e", "x", "ghost", "W")
        with pytest.raises(GraphError):
            graph.add_edge("e", "ghost", "x", "W")

    def test_duplicate_edge_rejected(self, lang):
        graph = DynamicalGraph(lang)
        graph.add_node("x", "X")
        graph.add_edge("e", "x", "x", "W")
        with pytest.raises(GraphError):
            graph.add_edge("e", "x", "x", "W")

    def test_unknown_edge_type_rejected(self, lang):
        graph = DynamicalGraph(lang)
        graph.add_node("x", "X")
        with pytest.raises(GraphError):
            graph.add_edge("e", "x", "x", "Nope")


class TestTopologyQueries:
    def _diamond(self, lang):
        graph = DynamicalGraph(lang)
        for name in ("a", "b", "c"):
            graph.add_node(name, "X")
        graph.add_edge("ab", "a", "b", "W")
        graph.add_edge("bc", "b", "c", "W")
        graph.add_edge("bb", "b", "b", "W")
        return graph

    def test_edges_of(self, lang):
        graph = self._diamond(lang)
        names = {e.name for e in graph.edges_of("b")}
        assert names == {"ab", "bc", "bb"}

    def test_in_out_self_partition(self, lang):
        graph = self._diamond(lang)
        assert [e.name for e in graph.in_edges("b")] == ["ab"]
        assert [e.name for e in graph.out_edges("b")] == ["bc"]
        assert [e.name for e in graph.self_edges("b")] == ["bb"]

    def test_switch_excludes_from_realized_topology(self, lang):
        graph = self._diamond(lang)
        graph.set_switch("ab", False)
        assert [e.name for e in graph.in_edges("b")] == []
        assert [e.name
                for e in graph.in_edges("b", include_off=True)] == ["ab"]
        assert graph.off_edges()[0].name == "ab"

    def test_unknown_node_query_rejected(self, lang):
        graph = self._diamond(lang)
        with pytest.raises(GraphError):
            graph.edges_of("ghost")

    def test_stats(self, lang):
        graph = self._diamond(lang)
        stats = graph.stats()
        assert stats == {"nodes": 3, "edges": 3, "off_edges": 0,
                         "states": 3}


class TestSwitches:
    def test_fixed_edges_cannot_switch_off(self):
        import repro
        lang = build_leaky_language()
        lang.edge_type("F", fixed=True)
        lang.prod("prod(e:F,s:X->t:X) t<=var(s)")
        graph = DynamicalGraph(lang)
        graph.add_node("x", "X")
        graph.add_node("y", "X")
        graph.add_edge("f", "x", "y", "F")
        with pytest.raises(GraphError):
            graph.set_switch("f", False)
        graph.set_switch("f", True)  # turning on is a no-op


class TestCompleteness:
    def test_unset_attribute_detected(self, lang):
        graph = DynamicalGraph(lang)
        graph.add_node("x", "X")
        with pytest.raises(GraphError):
            graph.check_complete()

    def test_unset_init_detected(self, lang):
        builder = GraphBuilder(lang)
        builder.node("x", "X").set_attr("x", "tau", 1.0)
        # init has a type-level default of 0 -> finish() applies it
        graph = builder.finish()
        assert graph.node("x").inits[0] == 0.0

    def test_defaults_applied(self):
        import repro
        lang = build_leaky_language()
        lang.node_type("D", order=1, attrs=[
            ("bias", repro.real(0, 1), {"default": 0.25})])
        graph = DynamicalGraph(lang)
        graph.add_node("d", "D")
        graph.apply_defaults()
        assert graph.node("d").attrs["bias"] == 0.25

    def test_edge_attr_completeness(self, lang):
        builder = GraphBuilder(lang)
        builder.node("x", "X").set_attr("x", "tau", 1.0)
        builder.edge("x", "x", "e", "W")
        with pytest.raises(GraphError):
            builder.finish()


class TestCopy:
    def test_copy_is_deep_enough(self, lang):
        builder = GraphBuilder(lang)
        builder.node("x", "X").set_attr("x", "tau", 1.0)
        builder.edge("x", "x", "e", "W").set_attr("e", "w", 0.5)
        builder.set_init("x", 1.0)
        graph = builder.finish()
        clone = graph.copy()
        clone.node("x").attrs["tau"] = 9.0
        clone.set_switch("e", False)
        assert graph.node("x").attrs["tau"] == 1.0
        assert graph.edge("e").on
        assert clone.edge("e").type is graph.edge("e").type
