"""Unit tests for the compiled ODE system: both RHS backends, the
generated source, and the equation pretty-printer."""

import numpy as np
import pytest

import repro
from repro.core.compiler import compile_graph
from repro.errors import CompileError
from tests.conftest import build_leaky_language, build_two_pole


@pytest.fixture()
def system():
    return compile_graph(build_two_pole(build_leaky_language()))


class TestBackends:
    def test_backends_agree(self, system):
        rhs_i = system.rhs("interpreter")
        rhs_c = system.rhs("codegen")
        for _ in range(10):
            y = np.random.default_rng(0).normal(size=system.n_states)
            assert np.allclose(rhs_i(0.5, y), rhs_c(0.5, y))

    def test_unknown_backend(self, system):
        with pytest.raises(CompileError):
            system.rhs("julia")

    def test_codegen_cached(self, system):
        assert system.rhs_codegen() is system.rhs_codegen()

    def test_expected_derivative_values(self, system):
        rhs = system.rhs("codegen")
        dy = rhs(0.0, np.array([1.0, 0.0]))
        # dx0/dt = -x0/tau0 = -1 ; dx1/dt = -x1/tau1 + w*x0/tau1 = 4
        assert dy[system.index_of("x0")] == pytest.approx(-1.0)
        assert dy[system.index_of("x1")] == pytest.approx(4.0)


class TestGeneratedSource:
    def test_source_is_flat_python(self, system):
        source = system.generate_source()
        assert source.startswith("def _rhs(t, y, dy):")
        assert "dy[0]" in source and "dy[1]" in source
        # Attribute values are inlined (no symbolic references remain;
        # tau=1.0 divisions are simplified away entirely).
        assert "tau" not in source
        assert "y[0]" in source

    def test_source_compiles_standalone(self, system):
        namespace = {}
        source = system.generate_source(namespace)
        exec(compile(source, "<test>", "exec"), namespace)
        dy = namespace["_rhs"](0.0, np.array([1.0, 0.0]),
                               np.empty(2))
        assert dy[0] == pytest.approx(-1.0)


class TestIntrospection:
    def test_state_labels(self, system):
        assert system.state_labels() == ["x0", "x1"]

    def test_equations_render(self, system):
        equations = system.equations()
        assert len(equations) == 2
        assert equations[0].startswith("d x0/dt")

    def test_higher_order_labels(self):
        lang = repro.Language("sho")
        lang.node_type("Q", order=2)
        lang.edge_type("S")
        lang.prod("prod(e:S,s:Q->s:Q) s<=-var(s)")
        builder = repro.GraphBuilder(lang)
        builder.node("q", "Q")
        builder.edge("q", "q", "e", "S")
        system = compile_graph(builder.finish())
        assert system.state_labels() == ["q", "q'"]

    def test_repr(self, system):
        assert "states=2" in repr(system)
