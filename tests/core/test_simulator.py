"""Unit tests for the simulator wrapper and Trajectory container."""

import math

import numpy as np
import pytest

import repro
from repro.core.simulator import simulate, simulate_ensemble
from repro.errors import SimulationError
from tests.conftest import build_leaky_language, build_two_pole


@pytest.fixture()
def graph():
    return build_two_pole(build_leaky_language())


class TestSimulate:
    def test_accepts_graph_or_system(self, graph):
        t1 = simulate(graph, (0.0, 1.0))
        system = repro.compile_graph(graph)
        t2 = simulate(system, (0.0, 1.0))
        assert np.allclose(t1.y, t2.y)

    def test_analytic_decay(self, graph):
        trajectory = simulate(graph, (0.0, 2.0), n_points=100)
        expected = np.exp(-trajectory.t)
        assert np.allclose(trajectory["x0"], expected, atol=1e-5)

    def test_empty_span_rejected(self, graph):
        with pytest.raises(SimulationError):
            simulate(graph, (1.0, 1.0))

    @pytest.mark.parametrize("n_points", [1, 0])
    def test_degenerate_n_points_rejected(self, graph, n_points):
        # Regression: a 1-point grid skipped integration and returned
        # only y0 (silently — and the ensemble driver's auto method
        # used to demote batched groups here, resurfacing the bug).
        with pytest.raises(SimulationError, match="n_points"):
            simulate(graph, (0.0, 1.0), n_points=n_points)

    def test_sample_outside_range_rejected(self, graph):
        trajectory = simulate(graph, (0.0, 1.0))
        with pytest.raises(SimulationError, match="outside"):
            trajectory.sample("x0", [1.5])

    def test_t_eval_override(self, graph):
        times = [0.0, 0.5, 1.0]
        trajectory = simulate(graph, (0.0, 1.0), t_eval=times)
        assert list(trajectory.t) == times

    def test_methods(self, graph):
        for method in ("RK45", "LSODA", "Radau"):
            trajectory = simulate(graph, (0.0, 1.0), method=method)
            assert trajectory.final("x0") == pytest.approx(
                math.exp(-1.0), rel=1e-3)

    def test_interpreter_backend(self, graph):
        a = simulate(graph, (0.0, 1.0), backend="interpreter")
        b = simulate(graph, (0.0, 1.0), backend="codegen")
        assert np.allclose(a.y, b.y)


class TestTrajectory:
    def test_indexing(self, graph):
        trajectory = simulate(graph, (0.0, 1.0))
        assert trajectory["x0"][0] == pytest.approx(1.0)
        assert trajectory.initial("x0") == pytest.approx(1.0)
        assert trajectory.final("x0") == pytest.approx(math.exp(-1.0),
                                                       rel=1e-4)

    def test_sampling_interpolates(self, graph):
        trajectory = simulate(graph, (0.0, 1.0), n_points=400)
        samples = trajectory.sample("x0", [0.25, 0.5])
        assert samples[0] == pytest.approx(math.exp(-0.25), rel=1e-3)
        assert samples[1] == pytest.approx(math.exp(-0.5), rel=1e-3)

    def test_window(self, graph):
        trajectory = simulate(graph, (0.0, 1.0), n_points=101)
        t, v = trajectory.window("x0", 0.2, 0.4)
        assert t[0] >= 0.2 and t[-1] <= 0.4
        assert len(t) == len(v) > 0

    def test_final_state(self, graph):
        trajectory = simulate(graph, (0.0, 1.0))
        state = trajectory.final_state()
        assert state.shape == (2,)

    def test_algebraic_readout(self):
        lang = repro.Language("alg")
        lang.node_type("X", order=1)
        lang.node_type("F", order=0)
        lang.edge_type("E")
        lang.prod("prod(e:E,s:X->s:X) s<=-var(s)")
        lang.prod("prod(e:E,s:X->t:F) t<=2*var(s)")
        builder = repro.GraphBuilder(lang)
        builder.node("x", "X").set_init("x", 1.0)
        builder.edge("x", "x", "leak", "E")
        builder.node("f", "F")
        builder.edge("x", "f", "e", "E")
        trajectory = simulate(builder.finish(), (0.0, 1.0),
                              n_points=50)
        values = trajectory.algebraic("f")
        assert np.allclose(values, 2.0 * trajectory["x"], atol=1e-9)


class TestEnsemble:
    def test_ensemble_over_seeds(self):
        lang = repro.Language("mm")
        lang.node_type("X", order=1,
                       attrs=[("tau", repro.real(0.5, 2.0,
                                                 mm=(0.0, 0.1)))])
        lang.edge_type("S")
        lang.prod("prod(e:S,s:X->s:X) s<=-var(s)/s.tau")

        def factory(seed):
            builder = repro.GraphBuilder(lang, seed=seed)
            builder.node("x", "X").set_attr("x", "tau", 1.0)
            builder.edge("x", "x", "e", "S")
            builder.set_init("x", 1.0)
            return builder.finish()

        trajectories = simulate_ensemble(factory, seeds=range(5),
                                         t_span=(0.0, 1.0))
        finals = {t.final("x") for t in trajectories}
        assert len(trajectories) == 5
        assert len(finals) == 5  # each seed decays differently
