"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.cli import main

PROGRAM = """
lang leaky {
    ntyp(1,sum) X {attr tau=real[0.1,10]};
    etyp W {attr w=real[-5,5]};
    prod(e:W, s:X->s:X) s <= -var(s)/s.tau;
    prod(e:W, s:X->t:X) t <= e.w*var(s)/t.tau;
    cstr X {acc[match(1,1,W,X), match(0,inf,W,X->[X]),
                match(0,inf,W,[X]->X)]};
}

func pair (w:real[-5,5], on:int[0,1]) uses leaky {
    node x0:X; node x1:X;
    edge <x0,x0> l0:W; edge <x1,x1> l1:W; edge <x0,x1> c:W;
    set-attr x0.tau=1.0; set-attr x1.tau=0.5;
    set-attr l0.w=0.0;   set-attr l1.w=0.0;  set-attr c.w=w;
    set-init x0(0)=1.0;
    set-switch c when on == 1;
}
"""

BROKEN = """
lang leaky {
    ntyp(1,sum) X {attr tau=real[0.1,10]};
    etyp W {attr w=real[-5,5]};
    prod(e:W, s:X->s:X) s <= -var(s)/s.tau;
    cstr X {acc[match(1,1,W,X)]};
}

func lonely () uses leaky {
    node x0:X;
    set-attr x0.tau = 1.0;
}
"""


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.ark"
    path.write_text(PROGRAM)
    return str(path)


@pytest.fixture()
def broken_file(tmp_path):
    path = tmp_path / "broken.ark"
    path.write_text(BROKEN)
    return str(path)


class TestInfo:
    def test_pretty_prints(self, program_file, capsys):
        assert main(["info", program_file]) == 0
        out = capsys.readouterr().out
        assert "lang leaky" in out
        assert "func pair" in out
        assert "set-switch c when" in out


class TestValidate:
    def test_valid_program(self, program_file, capsys):
        code = main(["validate", program_file, "--func", "pair",
                     "--arg", "w=1.5", "--arg", "on=1"])
        assert code == 0
        assert "VALID" in capsys.readouterr().out

    def test_invalid_program_exit_code(self, broken_file, capsys):
        code = main(["validate", broken_file, "--func", "lonely"])
        assert code == 1
        out = capsys.readouterr().out
        assert "INVALID" in out

    def test_flow_backend(self, program_file):
        assert main(["validate", program_file, "--func", "pair",
                     "--arg", "w=1.0", "--arg", "on=0",
                     "--backend", "flow"]) == 0

    def test_default_func_when_single(self, program_file):
        assert main(["validate", program_file, "--arg", "w=1.0",
                     "--arg", "on=1"]) == 0

    def test_unknown_func_reports_error(self, program_file, capsys):
        code = main(["validate", program_file, "--func", "ghost"])
        assert code == 2
        assert "unknown function" in capsys.readouterr().err

    def test_bad_arg_syntax(self, program_file, capsys):
        code = main(["validate", program_file, "--func", "pair",
                     "--arg", "w:1"])
        assert code == 2


class TestEquations:
    def test_prints_odes(self, program_file, capsys):
        assert main(["equations", program_file, "--func", "pair",
                     "--arg", "w=2.0", "--arg", "on=1"]) == 0
        out = capsys.readouterr().out
        assert "d x0/dt" in out and "d x1/dt" in out


class TestSimulate:
    def test_prints_samples(self, program_file, capsys):
        code = main(["simulate", program_file, "--func", "pair",
                     "--arg", "w=2.0", "--arg", "on=1",
                     "--t-end", "2.0", "--node", "x0"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "t,x0"

    def test_writes_csv(self, program_file, tmp_path, capsys):
        csv_path = tmp_path / "out.csv"
        code = main(["simulate", program_file, "--func", "pair",
                     "--arg", "w=2.0", "--arg", "on=1",
                     "--t-end", "2.0", "--csv", str(csv_path)])
        assert code == 0
        data = np.genfromtxt(csv_path, delimiter=",", names=True)
        assert set(data.dtype.names) == {"t", "x0", "x1"}
        assert data["x0"][-1] == pytest.approx(np.exp(-2.0), rel=1e-3)

    def test_switch_off_kills_coupling(self, program_file, tmp_path):
        csv_path = tmp_path / "off.csv"
        main(["simulate", program_file, "--func", "pair",
              "--arg", "w=2.0", "--arg", "on=0",
              "--t-end", "2.0", "--csv", str(csv_path)])
        data = np.genfromtxt(csv_path, delimiter=",", names=True)
        assert abs(data["x1"][-1]) < 1e-9

    def test_invalid_graph_fails(self, broken_file, capsys):
        code = main(["simulate", broken_file, "--func", "lonely",
                     "--t-end", "1.0"])
        assert code == 2


class TestDot:
    def test_emits_digraph(self, program_file, capsys):
        assert main(["dot", program_file, "--func", "pair",
                     "--arg", "w=1.0", "--arg", "on=1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert '"x0" -> "x1"' in out


class TestPrelude:
    def test_paradigm_languages_available(self, tmp_path, capsys):
        path = tmp_path / "puf.ark"
        path.write_text("""
        func tiny (br:int[0,1]) uses tln {
            node IN_V:V; node I_0:I; node InpI_0:InpI;
            edge <InpI_0,IN_V> E_in:E;
            edge <IN_V,I_0> E_0:E;
            edge <IN_V,IN_V> Es_0:E; edge <I_0,I_0> Es_1:E;
            set-attr InpI_0.fn = lambd(t): pulse(t, 0, 2e-8);
            set-attr InpI_0.g = 1.0;
            set-attr IN_V.c=1e-09; set-attr IN_V.g=0.0;
            set-attr I_0.l=1e-09;  set-attr I_0.r=1.0;
            set-init IN_V(0)=0.0;  set-init I_0(0)=0.0;
            set-switch E_0 when br;
        }
        """)
        assert main(["validate", str(path), "--arg", "br=1"]) == 0
        assert "VALID" in capsys.readouterr().out


class TestLanguagesCommand:
    def test_lists_all_prelude_languages(self, capsys):
        assert main(["languages"]) == 0
        out = capsys.readouterr().out
        for name in ("tln", "gmc-tln", "cnn", "hw-cnn", "obc",
                     "ofs-obc", "intercon-obc", "color-obc", "gpac",
                     "hw-gpac", "ns-tln", "ns-obc"):
            assert name in out
        assert "parent" in out

    def test_prints_one_language_definition(self, capsys):
        assert main(["languages", "gpac"]) == 0
        out = capsys.readouterr().out
        assert "lang gpac" in out
        assert "ntyp(0,mul) Mul" in out

    def test_unknown_language_fails(self, capsys):
        assert main(["languages", "nope"]) == 2
        assert "unknown language" in capsys.readouterr().err


NOISY_PROGRAM = """
lang leaky-noise {
    ntyp(1,sum) X {attr tau=real[0.1,10] mm(0,0.1),
                   attr nsig=real[0,inf]};
    etyp R {};
    prod(e:R, s:X->s:X) s <= -var(s)/s.tau + noise(s.nsig);
    cstr X {acc[match(1,1,R,X)]};
}

func cell (nsig:real[0,inf]) uses leaky-noise {
    node x:X;
    edge <x,x> r0:R;
    set-attr x.tau = 1.0;
    set-attr x.nsig = nsig;
    set-init x(0) = 1.0;
}
"""


@pytest.fixture()
def noisy_file(tmp_path):
    path = tmp_path / "noisy.ark"
    path.write_text(NOISY_PROGRAM)
    return str(path)


class TestNoise:
    def test_prints_statistics(self, noisy_file, capsys):
        assert main(["noise", noisy_file, "--arg", "nsig=0.3",
                     "--t-end", "2.0", "--seeds", "2", "--trials", "4",
                     "--points", "60", "--node", "x"]) == 0
        out = capsys.readouterr().out
        assert "2 chip(s) x 4 trial(s) = 8 noisy runs" in out
        assert "x_mean" in out and "x_p95" in out

    def test_writes_csv(self, noisy_file, tmp_path, capsys):
        csv = tmp_path / "noise.csv"
        assert main(["noise", noisy_file, "--arg", "nsig=0.3",
                     "--t-end", "2.0", "--seeds", "2", "--trials", "3",
                     "--points", "50", "--node", "x",
                     "--csv", str(csv)]) == 0
        matrix = np.loadtxt(csv, delimiter=",", skiprows=1)
        assert matrix.shape == (50, 5)
        # Noise spreads the trials: the std column is eventually > 0.
        assert matrix[:, 2].max() > 0.0

    def test_equations_show_diffusion(self, noisy_file, capsys):
        assert main(["equations", noisy_file,
                     "--arg", "nsig=0.3"]) == 0
        assert "dW[r0/w0]" in capsys.readouterr().out

    def test_deterministic_program_rejected(self, noisy_file, capsys):
        assert main(["noise", noisy_file, "--arg", "nsig=0",
                     "--t-end", "2.0"]) == 2
        assert "deterministic" in capsys.readouterr().err

    def test_bad_method_rejected(self, noisy_file, capsys):
        assert main(["noise", noisy_file, "--arg", "nsig=0.3",
                     "--t-end", "2.0", "--method", "rk4"]) == 2
        assert "unknown SDE method" in capsys.readouterr().err
