"""PUF reliability on transient noise: the intra-chip stability
question the readout-noise model could not ask — noisy *dynamics*,
batched over (chip x trial), reproducible run-to-run."""

import numpy as np
import pytest

from repro.paradigms.tln import TLineSpec
from repro.puf import (PufDesign, evaluate_puf, evaluate_puf_noisy,
                       evaluate_puf_population, puf_reliability)
from repro.puf.response import encode_response

SPEC = TLineSpec(n_segments=10)
BRANCHES = dict(branch_positions=(3, 6), branch_lengths=(4, 6))
EVAL = dict(n_bits=16, n_points=400)


@pytest.fixture(scope="module")
def noisy_design():
    return PufDesign(spec=SPEC, noise=1e-8, **BRANCHES)


@pytest.fixture(scope="module")
def quiet_design():
    return PufDesign(spec=SPEC, **BRANCHES)


class TestSeededReadoutNoise:
    def test_encode_requires_seeded_rng(self):
        with pytest.raises(ValueError):
            encode_response(np.zeros(8), noise_sigma=0.1)

    def test_encode_seed_is_deterministic(self):
        samples = np.zeros(40)
        a = encode_response(samples, noise_sigma=1.0, seed=5)
        b = encode_response(samples, noise_sigma=1.0, seed=5)
        assert np.array_equal(a, b)
        c = encode_response(samples, noise_sigma=1.0, seed=6)
        assert not np.array_equal(a, c)

    def test_evaluate_puf_derives_reproducible_rng(self, quiet_design):
        a = evaluate_puf(quiet_design, 1, seed=2, noise_sigma=2e-3,
                         **EVAL)
        b = evaluate_puf(quiet_design, 1, seed=2, noise_sigma=2e-3,
                         **EVAL)
        assert np.array_equal(a, b)


class TestBatchedPopulation:
    def test_matches_serial_rows(self, quiet_design):
        seeds = [0, 1, 2, 3]
        population = evaluate_puf_population(quiet_design, 2, seeds,
                                             **EVAL)
        assert population.shape == (4, EVAL["n_bits"])
        for row, seed in enumerate(seeds):
            serial = evaluate_puf(quiet_design, 2, seed=seed, **EVAL)
            assert np.array_equal(population[row], serial)

    def test_readout_noise_matches_serial(self, quiet_design):
        seeds = [0, 1]
        population = evaluate_puf_population(quiet_design, 1, seeds,
                                             noise_sigma=2e-3, **EVAL)
        for row, seed in enumerate(seeds):
            serial = evaluate_puf(quiet_design, 1, seed=seed,
                                  noise_sigma=2e-3, **EVAL)
            assert np.array_equal(population[row], serial)


class TestTransientReliability:
    def test_noisy_design_builds_sde(self, noisy_design):
        from repro.core.compiler import compile_graph

        system = compile_graph(noisy_design.build(1, seed=0))
        assert system.has_noise
        # One Wiener path per damping self edge (V and I segments).
        self_edges = [e for e in system.graph.edges
                      if e.name.startswith("Es_")]
        assert len(system.wiener_paths()) == len(self_edges)

    def test_reference_matches_deterministic_bits(self, noisy_design,
                                                  quiet_design):
        references, _trials = evaluate_puf_noisy(
            noisy_design, 2, seeds=[0, 1], trials=2, **EVAL)
        # The SDE reference run (batched RK4) must encode to the same
        # bits as the legacy scipy path of the noise-free design.
        for row, seed in enumerate([0, 1]):
            serial = evaluate_puf(quiet_design, 2, seed=seed, **EVAL)
            assert np.array_equal(references[row], serial)

    def test_reliability_reproducible_and_sane(self, noisy_design):
        report = puf_reliability(noisy_design, 2, seeds=range(3),
                                 trials=4, **EVAL)
        assert report.mode == "transient"
        assert report.per_chip.shape == (3,)
        assert np.all(report.per_chip > 0.5)
        assert np.all(report.per_chip <= 1.0)
        replay = puf_reliability(noisy_design, 2, seeds=range(3),
                                 trials=4, **EVAL)
        np.testing.assert_array_equal(report.trial_bits,
                                      replay.trial_bits)
        np.testing.assert_array_equal(report.per_chip,
                                      replay.per_chip)

    def test_more_noise_less_reliability(self):
        challenge, seeds = 2, range(3)
        gentle = puf_reliability(
            PufDesign(spec=SPEC, noise=2e-9, **BRANCHES), challenge,
            seeds, trials=4, **EVAL)
        harsh = puf_reliability(
            PufDesign(spec=SPEC, noise=2e-7, **BRANCHES), challenge,
            seeds, trials=4, **EVAL)
        assert harsh.mean < gentle.mean
        assert harsh.bit_error_rate() > gentle.bit_error_rate()

    def test_quiet_design_rejected(self, quiet_design):
        with pytest.raises(ValueError):
            evaluate_puf_noisy(quiet_design, 1, seeds=[0], trials=2,
                               **EVAL)

    def test_readout_mode_kept_as_legacy(self, quiet_design):
        report = puf_reliability(quiet_design, 2, seeds=range(2),
                                 trials=3, mode="readout",
                                 readout_sigma=2e-3, **EVAL)
        assert report.mode == "readout"
        assert np.all(report.per_chip > 0.5)
        replay = puf_reliability(quiet_design, 2, seeds=range(2),
                                 trials=3, mode="readout",
                                 readout_sigma=2e-3, **EVAL)
        np.testing.assert_array_equal(report.trial_bits,
                                      replay.trial_bits)

    def test_unknown_mode(self, quiet_design):
        with pytest.raises(ValueError):
            puf_reliability(quiet_design, 1, seeds=[0],
                            mode="thermal", **EVAL)

    def test_negative_noise_rejected(self):
        import repro

        with pytest.raises(repro.GraphError):
            PufDesign(spec=SPEC, noise=-1e-9, **BRANCHES)
