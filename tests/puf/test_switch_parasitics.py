"""Tests for off-state switch parasitics (`sw-tln`, §4.3 off rules):
the PUF's challenge sensitivity must degrade monotonically with the
switch feedthrough fraction alpha, with exact behavior at both limits."""

import numpy as np
import pytest

import repro
from repro.paradigms.tln import TLineSpec, sw_tln_language
from repro.puf import PufDesign, evaluate_puf
from repro.puf.metrics import hamming_fraction

SPEC = TLineSpec(n_segments=10, pulse_width=4e-9)
EVAL = dict(n_bits=16, window=(8e-9, 4.5e-8), n_points=240)


def design(alpha: float = 0.0) -> PufDesign:
    return PufDesign(spec=SPEC, branch_positions=(2, 6),
                     branch_lengths=(3, 5), switch_alpha=alpha)


def bit_flip_sensitivity(puf: PufDesign, seed: int = 4) -> float:
    """Mean response distance across single-bit-flip challenge pairs."""
    responses = {c: evaluate_puf(puf, c, seed=seed, **EVAL)
                 for c in range(4)}
    pairs = [(0, 1), (0, 2), (3, 1), (3, 2)]
    return float(np.mean([hamming_fraction(responses[a], responses[b])
                          for a, b in pairs]))


class TestLanguage:
    def test_esw_inherits_em(self):
        language = sw_tln_language()
        esw = language.find_edge_type("Esw")
        assert esw.parent.name == "Em"
        assert "alpha" in esw.attrs
        assert "ws" in esw.attrs  # inherited mismatch attributes

    def test_off_rules_registered(self):
        language = sw_tln_language()
        off_rules = [rule for rule in language.productions() if rule.off]
        assert len(off_rules) == 4
        assert all(rule.edge_type == "Esw" for rule in off_rules)

    def test_parasitic_graph_validates_with_off_edges(self):
        graph = design(0.5).build(0, seed=1)  # both switches off
        assert len(graph.off_edges()) == 2
        assert repro.validate(graph, backend="flow").valid


class TestLimits:
    def test_on_state_falls_back_to_em(self):
        # With every switch on, the Esw edges use the inherited Em
        # rules: trajectories match the plain design exactly.
        plain = design(0.0).build(3, seed=4)      # plain Em junctions
        parasitic = design(0.9).build(3, seed=4)  # Esw junctions, all on
        span = (0.0, 5e-8)
        a = repro.simulate(plain, span, n_points=200)
        b = repro.simulate(parasitic, span, n_points=200)
        np.testing.assert_allclose(a["OUT_V"], b["OUT_V"], atol=1e-12)

    def test_tiny_alpha_approaches_ideal_isolation(self):
        plain = design(0.0).build(1, seed=4)      # one switch off
        nearly = design(1e-9).build(1, seed=4)
        span = (0.0, 5e-8)
        a = repro.simulate(plain, span, n_points=200)
        b = repro.simulate(nearly, span, n_points=200)
        np.testing.assert_allclose(a["OUT_V"], b["OUT_V"], atol=1e-7)

    def test_alpha_one_erases_the_challenge(self):
        # A switch with no isolation makes every challenge equivalent:
        # off rules equal the on rules at alpha = 1.
        puf = design(1.0)
        reference = evaluate_puf(puf, 0, seed=4, **EVAL)
        for challenge in range(1, 4):
            response = evaluate_puf(puf, challenge, seed=4, **EVAL)
            assert np.array_equal(response, reference), challenge
        assert bit_flip_sensitivity(puf) == 0.0


class TestDegradation:
    def test_sensitivity_monotone_in_alpha(self):
        sensitivities = [bit_flip_sensitivity(design(alpha))
                         for alpha in (0.0, 0.3, 0.7)]
        assert sensitivities[0] > sensitivities[1] > sensitivities[2]

    def test_ideal_switch_keeps_sensitivity(self):
        assert bit_flip_sensitivity(design(0.0)) > 0.2


class TestValidation:
    def test_alpha_range_checked(self):
        with pytest.raises(repro.GraphError):
            design(-0.1)
        with pytest.raises(repro.GraphError):
            design(1.5)
