"""Tests for the PUF toolkit: challenge topologies, response encoding,
and quality metrics."""

import numpy as np
import pytest

import repro
from repro.paradigms.tln import TLineSpec
from repro.puf import (PufDesign, bit_aliasing, evaluate_puf,
                       hamming_fraction, random_challenges, reliability,
                       uniformity, uniqueness)
from repro.puf.response import encode_response


@pytest.fixture(scope="module")
def design():
    return PufDesign(spec=TLineSpec(n_segments=10),
                     branch_positions=(3, 6), branch_lengths=(4, 6))


class TestChallengeTopology:
    def test_challenge_forms_agree(self, design):
        for form in (2, "01", [0, 1]):
            graph = design.build(form, seed=1)
            # bit 0 (branch at 3) off, bit 1 (branch at 6) on
            assert len(graph.off_edges()) == 1

    def test_challenge_bit_order(self, design):
        graph = design.build(1, seed=1)  # bit 0 set
        off = graph.off_edges()[0]
        assert off.dst == "s1I_0"  # second stub is off

    def test_all_challenges_validate(self, design):
        for challenge in range(4):
            graph = design.build(challenge, seed=0)
            assert repro.validate(graph, backend="flow").valid

    def test_bad_challenges_rejected(self, design):
        with pytest.raises(repro.GraphError):
            design.build(4)
        with pytest.raises(repro.GraphError):
            design.build("0")
        with pytest.raises(repro.GraphError):
            design.build([1, 0, 1])

    def test_misaligned_design_rejected(self):
        with pytest.raises(repro.GraphError):
            PufDesign(branch_positions=(1, 2), branch_lengths=(3,))

    def test_branch_position_bounds(self):
        with pytest.raises(repro.GraphError):
            PufDesign(spec=TLineSpec(n_segments=5),
                      branch_positions=(9,), branch_lengths=(3,))

    def test_challenge_changes_dynamics(self, design):
        a = repro.simulate(design.build(0, seed=1), (0.0, 8e-8),
                           n_points=200)
        b = repro.simulate(design.build(3, seed=1), (0.0, 8e-8),
                           n_points=200)
        assert not np.allclose(a["OUT_V"], b["OUT_V"], atol=1e-3)


class TestResponseEncoding:
    def test_differential_bits(self):
        samples = np.array([1.0, 0.0, 0.0, 1.0, 0.5, 0.2])
        bits = encode_response(samples)
        assert list(bits) == [1, 0, 1]

    def test_noise_flips_bits_near_threshold(self):
        rng = np.random.default_rng(0)
        samples = np.zeros(40)
        noisy = encode_response(samples, rng=rng, noise_sigma=1.0)
        assert 0 < noisy.sum() < len(noisy)

    def test_deterministic_without_noise(self, design):
        a = evaluate_puf(design, 1, seed=3, n_bits=16)
        b = evaluate_puf(design, 1, seed=3, n_bits=16)
        assert np.array_equal(a, b)

    def test_bit_count(self, design):
        assert len(evaluate_puf(design, 1, seed=3, n_bits=16)) == 16


class TestMetrics:
    def test_hamming(self):
        assert hamming_fraction([0, 1, 1], [0, 1, 1]) == 0.0
        assert hamming_fraction([0, 0], [1, 1]) == 1.0
        assert hamming_fraction([0, 1], [0, 0]) == 0.5

    def test_hamming_shape_mismatch(self):
        with pytest.raises(ValueError):
            hamming_fraction([0, 1], [0, 1, 1])

    def test_uniqueness_bounds(self):
        responses = [np.array([0, 0, 0, 0]), np.array([1, 1, 1, 1]),
                     np.array([0, 0, 1, 1])]
        value = uniqueness(responses)
        assert 0.0 < value <= 1.0

    def test_uniqueness_single_chip(self):
        assert uniqueness([np.array([0, 1])]) == 0.0

    def test_reliability_perfect(self):
        ref = np.array([0, 1, 0, 1])
        assert reliability(ref, [ref.copy(), ref.copy()]) == 1.0

    def test_uniformity(self):
        assert uniformity(np.array([0, 1, 0, 1])) == 0.5
        assert uniformity(np.array([1, 1, 1, 1])) == 1.0

    def test_bit_aliasing(self):
        responses = [np.array([0, 1]), np.array([1, 1])]
        assert list(bit_aliasing(responses)) == [0.5, 1.0]


class TestEndToEnd:
    def test_chips_differ_ideal_does_not(self, design):
        mismatched = [evaluate_puf(design, 2, seed=s, n_bits=16)
                      for s in range(4)]
        assert uniqueness(mismatched) > 0.0

        control = PufDesign(spec=design.spec,
                            branch_positions=design.branch_positions,
                            branch_lengths=design.branch_lengths,
                            variant="ideal")
        clones = [evaluate_puf(control, 2, seed=s, n_bits=16)
                  for s in range(3)]
        assert uniqueness(clones) == 0.0

    def test_random_challenges_cover_small_space(self, design):
        picks = random_challenges(design, 10)
        assert sorted(picks) == [0, 1, 2, 3]

    def test_random_challenges_subset(self):
        big = PufDesign(spec=TLineSpec(n_segments=20),
                        branch_positions=(3, 7, 11, 15),
                        branch_lengths=(4, 5, 6, 7))
        picks = random_challenges(big, 5, seed=1)
        assert len(picks) == len(set(picks)) == 5
        assert all(0 <= p < 16 for p in picks)
