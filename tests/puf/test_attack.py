"""Tests for the PUF modeling-attack module (`repro.puf.attack`)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.paradigms.tln import TLineSpec
from repro.puf import PufDesign
from repro.puf.attack import (AttackResult, LogisticModel,
                              challenge_features, collect_crps,
                              cross_validate, learning_curve,
                              n_features, run_attack, split_attack)

WINDOW = (5e-9, 4e-8)


@pytest.fixture(scope="module")
def design():
    """A 4-bit PUF small enough to enumerate quickly in tests."""
    return PufDesign(spec=TLineSpec(n_segments=8, pulse_width=4e-9),
                     branch_positions=(1, 2, 4, 5),
                     branch_lengths=(2, 3, 2, 4))


@pytest.fixture(scope="module")
def crps(design):
    """All 16 CRPs of one chip, shared across the end-to-end tests."""
    return collect_crps(design, list(range(16)), seed=7, n_bits=16,
                        window=WINDOW, n_points=200)


class TestChallengeFeatures:
    def test_degree_one_shape(self):
        features = challenge_features([0, 5, 7], n_bits=3, degree=1)
        assert features.shape == (3, 4)  # constant + 3 bits

    def test_degree_two_shape(self):
        features = challenge_features([0], n_bits=4, degree=2)
        assert features.shape == (1, n_features(4, 2))
        assert n_features(4, 2) == 1 + 4 + 6

    def test_degree_capped_at_n_bits(self):
        # degree beyond the bit count saturates at the full parity basis.
        full = challenge_features([0, 1, 2, 3], n_bits=2, degree=5)
        assert full.shape == (4, 4)  # 1 + 2 singles + 1 pair

    def test_sign_encoding(self):
        features = challenge_features([0b01], n_bits=2, degree=2)
        constant, s0, s1, s0s1 = features[0]
        assert constant == 1.0
        assert s0 == 1.0 and s1 == -1.0 and s0s1 == -1.0

    def test_bit_sequences_accepted(self):
        by_int = challenge_features([5], n_bits=3, degree=2)
        by_bits = challenge_features([[1, 0, 1]], n_bits=3, degree=2)
        assert np.array_equal(by_int, by_bits)

    def test_rejects_out_of_range_challenge(self):
        with pytest.raises(GraphError):
            challenge_features([8], n_bits=3)

    def test_rejects_wrong_width_bits(self):
        with pytest.raises(GraphError):
            challenge_features([[1, 0]], n_bits=3)

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            challenge_features([0], n_bits=3, degree=0)


class TestLogisticModel:
    def test_learns_single_bit_function(self):
        # Label = bit 0: linearly separable in degree-1 features.
        challenges = list(range(16))
        features = challenge_features(challenges, n_bits=4, degree=1)
        labels = np.array([[c & 1] for c in challenges], dtype=float)
        model = LogisticModel().fit(features, labels)
        assert model.accuracy(features, labels)[0] == 1.0

    def test_xor_needs_degree_two(self):
        # Label = bit0 XOR bit1: not linear in the bits, linear in the
        # pair product — the canonical motivation for parity features.
        challenges = list(range(16))
        labels = np.array([[(c & 1) ^ ((c >> 1) & 1)]
                           for c in challenges], dtype=float)
        linear = challenge_features(challenges, n_bits=4, degree=1)
        quadratic = challenge_features(challenges, n_bits=4, degree=2)
        acc_linear = LogisticModel().fit(linear, labels).accuracy(
            linear, labels)[0]
        acc_quadratic = LogisticModel().fit(quadratic, labels).accuracy(
            quadratic, labels)[0]
        assert acc_linear <= 0.75
        assert acc_quadratic == 1.0

    def test_multi_output_independent(self):
        challenges = list(range(8))
        features = challenge_features(challenges, n_bits=3, degree=1)
        labels = np.array([[c & 1, (c >> 2) & 1] for c in challenges],
                          dtype=float)
        model = LogisticModel().fit(features, labels)
        assert model.predict(features).shape == (8, 2)
        assert np.all(model.accuracy(features, labels) == 1.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(ValueError):
            LogisticModel().predict(np.ones((1, 3)))

    def test_row_mismatch_raises(self):
        with pytest.raises(ValueError):
            LogisticModel().fit(np.ones((3, 2)), np.ones((4, 1)))

    def test_bad_hyperparameters_raise(self):
        with pytest.raises(ValueError):
            LogisticModel(learning_rate=0.0)
        with pytest.raises(ValueError):
            LogisticModel(epochs=0)
        with pytest.raises(ValueError):
            LogisticModel(l2=-1.0)

    def test_one_dimensional_labels_accepted(self):
        features = challenge_features(list(range(8)), n_bits=3, degree=1)
        labels = np.array([c & 1 for c in range(8)], dtype=float)
        model = LogisticModel().fit(features, labels)
        assert model.accuracy(features, labels).shape == (1,)


class TestCollectCrps:
    def test_shapes(self, design, crps):
        bits, responses = crps
        assert bits.shape == (16, design.n_bits)
        assert responses.shape == (16, 16)
        assert set(np.unique(responses)) <= {0, 1}

    def test_deterministic(self, design):
        first = collect_crps(design, [3], seed=7, n_bits=16,
                             window=WINDOW, n_points=200)
        second = collect_crps(design, [3], seed=7, n_bits=16,
                              window=WINDOW, n_points=200)
        assert np.array_equal(first[1], second[1])

    def test_challenges_shape_responses(self, crps):
        _, responses = crps
        # Different challenges must produce at least two distinct
        # responses, otherwise the PUF carries no challenge information.
        assert len({r.tobytes() for r in responses}) > 1


class TestRunAttack:
    def test_result_fields(self, design, crps):
        bits, labels = crps
        result = split_attack(bits[:12], labels[:12], bits[12:],
                              labels[12:], n_bits=design.n_bits)
        assert isinstance(result, AttackResult)
        assert result.n_train == 12 and result.n_test == 4
        assert 0.0 <= result.accuracy <= 1.0
        assert 0.5 <= result.baseline <= 1.0
        assert "attack(" in result.describe()

    def test_attack_beats_chance_on_small_puf(self, design):
        # Cross-validated over the full 16-challenge space: the degree-1
        # model must predict far better than a coin flip (it captures
        # the halfspace-like bits of the almost-additive stub echoes).
        # Everything here is deterministic (seeded sims + GD), so the
        # calibrated threshold is stable.
        result = cross_validate(design, seed=7, k=4, degree=1, rng=0,
                                n_bits=16, window=WINDOW, n_points=200)
        assert result.accuracy > 0.75
        assert result.n_test == 16

    def test_degree_two_overfits_small_space(self, design):
        # With 12-challenge training folds, the 11-feature degree-2
        # model memorizes and generalizes *worse* than degree-1 — the
        # analysis the module exists to surface (deterministic setup).
        linear = cross_validate(design, seed=7, k=4, degree=1, rng=0,
                                n_bits=16, window=WINDOW, n_points=200)
        quadratic = cross_validate(design, seed=7, k=4, degree=2, rng=0,
                                   n_bits=16, window=WINDOW,
                                   n_points=200)
        assert linear.accuracy > quadratic.accuracy

    def test_cross_validate_rejects_bad_k(self, design):
        with pytest.raises(ValueError):
            cross_validate(design, seed=0, k=1)
        with pytest.raises(ValueError):
            cross_validate(design, seed=0, k=17)

    def test_run_attack_end_to_end(self, design):
        result = run_attack(design, seed=7, n_train=12, rng=0,
                            n_bits=16, window=WINDOW, n_points=200)
        assert result.n_train == 12
        assert result.n_test == 4
        assert 0.0 <= result.accuracy <= 1.0

    def test_run_attack_seeded_rng_reproducible(self, design):
        kwargs = dict(n_train=10, rng=42, n_bits=16, window=WINDOW,
                      n_points=200)
        a = run_attack(design, seed=7, **kwargs)
        b = run_attack(design, seed=7, **kwargs)
        assert np.array_equal(a.per_bit_accuracy, b.per_bit_accuracy)

    def test_train_budget_validation(self, design):
        with pytest.raises(ValueError):
            run_attack(design, seed=0, n_train=0)
        with pytest.raises(ValueError):
            run_attack(design, seed=0, n_train=16)


class TestLearningCurve:
    def test_monotone_sizes_and_shared_harvest(self, design):
        results = learning_curve(design, seed=7, train_sizes=[4, 8, 12],
                                 rng=1, n_bits=16, window=WINDOW,
                                 n_points=200)
        assert [r.n_train for r in results] == [4, 8, 12]
        assert [r.n_test for r in results] == [12, 8, 4]

    def test_bad_sizes_rejected(self, design):
        with pytest.raises(ValueError):
            learning_curve(design, seed=0, train_sizes=[])
        with pytest.raises(ValueError):
            learning_curve(design, seed=0, train_sizes=[16])
        with pytest.raises(ValueError):
            learning_curve(design, seed=0, train_sizes=[0, 4])
