"""Tests for the TLN language and t-line builders (§2, §4.4, Figs. 2/8)."""

import numpy as np
import pytest

import repro
from repro.core.builder import GraphBuilder
from repro.paradigms.tln import (TLineSpec, branched_tline,
                                 branched_tline_function, linear_tline,
                                 pulse, trapezoid)


class TestWaveforms:
    def test_pulse_shape(self):
        width = 2e-8
        assert pulse(-1e-9, 0.0, width) == 0.0
        assert pulse(width / 2, 0.0, width) == 1.0
        assert pulse(width, 0.0, width) == 0.0
        assert 0.0 < pulse(width * 0.05, 0.0, width) < 1.0

    def test_trapezoid_ramps(self):
        assert trapezoid(0.5, 0.0, 10.0, rise=1.0) == pytest.approx(0.5)
        assert trapezoid(9.5, 0.0, 10.0, rise=1.0) == pytest.approx(0.5)
        assert trapezoid(5.0, 0.0, 10.0, rise=1.0) == 1.0

    def test_zero_rise_is_square(self):
        assert trapezoid(0.0, 0.0, 1.0, rise=0.0) == 1.0
        assert trapezoid(0.999, 0.0, 1.0, rise=0.0) == 1.0
        assert trapezoid(1.0, 0.0, 1.0, rise=0.0) == 0.0


class TestLanguage:
    def test_type_inventory(self, tln):
        assert set(tln.node_types()) == {"V", "I", "InpV", "InpI"}
        assert set(tln.edge_types()) == {"E"}

    def test_vv_connection_invalid(self, tln):
        """The malformed t-line of Fig. 2(iii)."""
        builder = GraphBuilder(tln, "malformed")
        for name in ("V_a", "V_b"):
            builder.node(name, "V")
            builder.set_attr(name, "c", 1e-9)
            builder.set_attr(name, "g", 0.0)
            builder.edge(name, name, f"Es_{name}", "E")
        builder.edge("V_a", "V_b", "bad", "E")
        report = repro.validate(builder.finish(), backend="flow")
        assert not report.valid

    def test_ii_connection_invalid(self, tln):
        builder = GraphBuilder(tln, "malformed-ii")
        for name in ("I_a", "I_b"):
            builder.node(name, "I")
            builder.set_attr(name, "l", 1e-9)
            builder.set_attr(name, "r", 0.0)
            builder.edge(name, name, f"Es_{name}", "E")
        builder.edge("I_a", "I_b", "bad", "E")
        report = repro.validate(builder.finish(), backend="flow")
        assert not report.valid

    def test_missing_self_edge_invalid(self, tln, small_spec):
        graph = linear_tline(small_spec)
        # Remove one damping self edge by switching: self edges are
        # switchable E edges in this encoding.
        graph.set_switch("Es_IN_V", False)
        report = repro.validate(graph, backend="flow")
        assert not report.valid


class TestLinearTline:
    def test_default_node_count_matches_paper(self):
        graph = linear_tline()
        # 53-node line (+1 for the input source node).
        assert graph.stats()["nodes"] == 54
        assert graph.stats()["states"] == 53

    def test_valid(self, small_spec):
        report = repro.validate(linear_tline(small_spec),
                                backend="flow")
        assert report.valid, report.violations

    def test_pulse_arrives_with_delay(self, small_spec):
        trajectory = repro.simulate(linear_tline(small_spec),
                                    (0.0, 4e-8), n_points=400)
        out = trajectory["OUT_V"]
        # Matched line: ~0.5 plateau after ~n_segments ns.
        assert out.max() == pytest.approx(0.5, abs=0.12)
        arrival = trajectory.t[np.argmax(out > 0.25)]
        expected = small_spec.n_segments * 1e-9
        assert arrival == pytest.approx(expected, rel=0.5)

    def test_signal_settles_to_zero(self, small_spec):
        trajectory = repro.simulate(linear_tline(small_spec),
                                    (0.0, 2e-7), n_points=300)
        assert abs(trajectory.final("OUT_V")) < 0.02

    def test_custom_waveform(self, small_spec):
        flat = linear_tline(small_spec, waveform=lambda t: 0.0)
        trajectory = repro.simulate(flat, (0.0, 2e-8), n_points=50)
        assert np.allclose(trajectory["OUT_V"], 0.0, atol=1e-12)


class TestBranchedTline:
    def test_valid(self, small_spec):
        graph = branched_tline(small_spec, branch_segments=3)
        assert repro.validate(graph, backend="flow").valid

    def test_junction_weakens_pulse(self):
        # The pulse must be short relative to the line so the branch
        # echo does not overlap the main pulse at OUT_V.
        spec = TLineSpec(n_segments=12, pulse_width=4e-9)
        lin = repro.simulate(linear_tline(spec), (0.0, 2e-8),
                             n_points=300)
        brn = repro.simulate(
            branched_tline(spec, branch_segments=6), (0.0, 2e-8),
            n_points=300)
        # Fig. 4: 0.5 -> ~0.3 at the junction split.
        ratio = brn["OUT_V"].max() / lin["OUT_V"].max()
        assert 0.4 < ratio < 0.85

    def test_echo_appears(self):
        spec = TLineSpec(n_segments=10)
        branch = 6
        trajectory = repro.simulate(
            branched_tline(spec, branch_segments=branch), (0.0, 8e-8),
            n_points=600)
        out = trajectory["OUT_V"]
        # Main pulse ends by ~(n_segments + width) ns; the echo arrives
        # ~2*branch ns after the main pulse.
        main_end = (spec.n_segments + 25) * 1e-9
        echo_window = trajectory.t > main_end
        assert np.abs(out[echo_window]).max() > 0.03


class TestBrFunc:
    def test_switch_selects_topology(self):
        spec = TLineSpec(n_segments=4)
        br_func = branched_tline_function(spec, branch_segments=2)
        linear = br_func(br=0)
        branched = br_func(br=1)
        assert len(linear.off_edges()) == 1
        assert len(branched.off_edges()) == 0
        assert repro.validate(linear, backend="flow").valid
        assert repro.validate(branched, backend="flow").valid

    def test_br_zero_matches_plain_linear(self):
        spec = TLineSpec(n_segments=4)
        br_func = branched_tline_function(spec, branch_segments=2)
        switched = repro.simulate(br_func(br=0), (0.0, 2e-8),
                                  n_points=100)
        # The dangling (off) branch must not affect the line: compare
        # against the line with the branch physically absent.
        plain = repro.simulate(linear_tline(spec), (0.0, 2e-8),
                               n_points=100)
        assert np.allclose(switched["OUT_V"], plain["OUT_V"],
                           atol=1e-9)
