"""Tests for the OBC family: Kuramoto dynamics, max-cut solving, the
offset extension, and the interconnect extension."""

import math

import pytest

import repro
from repro.core.builder import GraphBuilder
from repro.analysis import phase_distance
from repro.paradigms.obc import (brute_force_maxcut, classify_phase,
                                 cut_value, extract_partition,
                                 intercon_obc_language,
                                 interconnect_cost, maxcut_experiment,
                                 maxcut_network, obc_language,
                                 ofs_obc_language, random_graphs,
                                 solve_maxcut)


class TestGraphsModule:
    def test_random_graphs_deterministic(self):
        a = random_graphs(5, 4, seed=1)
        b = random_graphs(5, 4, seed=1)
        assert a == b

    def test_random_graphs_nonempty(self):
        for edges in random_graphs(30, 4, seed=2):
            assert len(edges) >= 1

    def test_cut_value(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        assert cut_value(edges, [0, 1, 0]) == 2
        assert cut_value(edges, [0, 0, 0]) == 0

    def test_brute_force_triangle(self):
        assert brute_force_maxcut([(0, 1), (1, 2), (0, 2)], 3) == 2

    def test_brute_force_bipartite(self):
        square = [(0, 1), (1, 2), (2, 3), (3, 0)]
        assert brute_force_maxcut(square, 4) == 4


class TestPhaseClassification:
    def test_near_zero(self):
        assert classify_phase(0.01, d=0.1) == 0
        assert classify_phase(2 * math.pi - 0.01, d=0.1) == 0
        assert classify_phase(-0.01, d=0.1) == 0

    def test_near_pi(self):
        assert classify_phase(math.pi + 0.05, d=0.1) == 1

    def test_unknown(self):
        assert classify_phase(math.pi / 2, d=0.1) is None

    def test_tolerance_boundary(self):
        assert classify_phase(0.1, d=0.1) == 0
        assert classify_phase(0.11, d=0.1) is None

    def test_many_wraps(self):
        assert classify_phase(10 * math.pi + 0.02, d=0.1) == 1 or \
            classify_phase(10 * math.pi + 0.02, d=0.1) == 0
        # 10*pi folds to 0 (mod 2*pi).
        assert classify_phase(10 * math.pi + 0.02, d=0.1) == 0


class TestNetworkDynamics:
    def test_two_oscillators_antiphase(self):
        """k=-1 coupling drives a connected pair to opposite phases."""
        graph = maxcut_network([(0, 1)], 2,
                               initial_phases=[0.3, 0.4])
        trajectory = repro.simulate(graph, (0.0, 100e-9), n_points=50,
                                    rtol=1e-8, atol=1e-10)
        p0 = trajectory.final("Osc_0")
        p1 = trajectory.final("Osc_1")
        assert phase_distance(p0 - p1, math.pi) < 0.05

    def test_shil_binarizes_isolated_oscillator(self):
        builder = GraphBuilder(obc_language(), "single")
        builder.node("Osc_0", "Osc")
        builder.set_init("Osc_0", 1.0)  # between 0 and pi
        builder.edge("Osc_0", "Osc_0", "Shil_0", "Cpl")
        builder.set_attr("Shil_0", "k", 0.0)
        trajectory = repro.simulate(builder.finish(), (0.0, 50e-9),
                                    n_points=50)
        final = trajectory.final("Osc_0")
        near0 = phase_distance(final, 0.0) < 0.05
        near_pi = phase_distance(final, math.pi) < 0.05
        assert near0 or near_pi

    def test_network_validates(self):
        graph = maxcut_network([(0, 1), (1, 2)], 3)
        assert repro.validate(graph, backend="flow").valid


class TestSolveMaxcut:
    def test_triangle_solves(self):
        result = solve_maxcut([(0, 1), (1, 2), (0, 2)], 3,
                              d=0.1 * math.pi, seed=4)
        assert result.synchronized
        assert result.solved
        assert result.cut == 2

    def test_multi_tolerance_readout(self):
        results = solve_maxcut([(0, 1)], 2,
                               d=(0.01 * math.pi, 0.1 * math.pi),
                               seed=1)
        assert len(results) == 2
        assert results[0].d < results[1].d
        # Same trajectory: the looser readout can only be more lenient.
        assert results[1].synchronized or not results[0].synchronized

    def test_unsynchronized_has_no_cut(self):
        result = solve_maxcut([(0, 1)], 2, d=1e-9, seed=1,
                              t_end=1e-12)  # no time to lock
        assert not result.synchronized
        assert result.cut is None
        assert not result.solved


class TestTable1Shape:
    """Reduced-size Table 1: the orderings the paper reports must hold."""

    @pytest.fixture(scope="class")
    def sweeps(self):
        graphs = random_graphs(40, 4, seed=11)
        tolerances = (0.01 * math.pi, 0.1 * math.pi)
        ideal = maxcut_experiment(graphs, 4, tolerances=tolerances,
                                  edge_type="Cpl")
        offset = maxcut_experiment(graphs, 4, tolerances=tolerances,
                                   edge_type="Cpl_ofs",
                                   mismatch_seeds=True)
        return ideal, offset, tolerances

    def test_ideal_solves_most(self, sweeps):
        ideal, _, (tight, loose) = sweeps
        assert ideal[tight].solved_probability > 0.8
        assert ideal[loose].solved_probability > 0.8

    def test_offset_hurts_tight_readout(self, sweeps):
        ideal, offset, (tight, _) = sweeps
        assert offset[tight].solved_probability < \
            ideal[tight].solved_probability - 0.1

    def test_wide_tolerance_recovers(self, sweeps):
        _, offset, (tight, loose) = sweeps
        assert offset[loose].solved_probability > \
            offset[tight].solved_probability + 0.1
        assert offset[loose].solved_probability > 0.8


class TestOfsLanguage:
    def test_offset_attr(self):
        ofs = ofs_obc_language()
        offset = ofs.find_edge_type("Cpl_ofs").attrs["offset"]
        assert offset.datatype.lo == 0.0 == offset.datatype.hi
        assert offset.datatype.mismatch.s0 == 0.02

    def test_offset_sampled_per_seed(self):
        a = maxcut_network([(0, 1)], 2, edge_type="Cpl_ofs", seed=1)
        b = maxcut_network([(0, 1)], 2, edge_type="Cpl_ofs", seed=2)
        assert a.edge("Cpl_0").attrs["offset"] != \
            b.edge("Cpl_0").attrs["offset"]

    def test_no_seed_is_ideal(self):
        graph = maxcut_network([(0, 1)], 2, edge_type="Cpl_ofs",
                               seed=None)
        assert graph.edge("Cpl_0").attrs["offset"] == 0.0


class TestInterconObc:
    def _network(self, cross_type):
        language = intercon_obc_language()
        builder = GraphBuilder(language, "grouped")
        for vertex, group in enumerate([0, 0, 1, 1]):
            name = f"Osc_{vertex}"
            builder.node(name, f"Osc_G{group}")
            builder.set_init(name, 0.5 * vertex)
            builder.edge(name, name, f"Shil_{vertex}", "Cpl_l")
            builder.set_attr(f"Shil_{vertex}", "k", 0.0)
            builder.set_attr(f"Shil_{vertex}", "cost", 1)
        spec = [("e0", 0, 1, "Cpl_l", 1), ("e1", 2, 3, "Cpl_l", 1),
                ("e2", 1, 2, cross_type,
                 10 if cross_type == "Cpl_g" else 1)]
        for name, i, j, edge_type, cost in spec:
            builder.edge(f"Osc_{i}", f"Osc_{j}", name, edge_type)
            builder.set_attr(name, "k", -1.0)
            builder.set_attr(name, "cost", cost)
        return builder.finish()

    def test_legal_topology_validates(self):
        graph = self._network("Cpl_g")
        report = repro.validate(graph, backend="flow")
        assert report.valid, report.violations

    def test_local_cross_edge_rejected(self):
        graph = self._network("Cpl_l")
        report = repro.validate(graph, backend="flow")
        assert not report.valid

    def test_cost_accounting(self):
        graph = self._network("Cpl_g")
        # 4 SHIL (1) + 2 local (1) + 1 global (10) = 16
        assert interconnect_cost(graph) == 16

    def test_cost_ranges_fixed_by_type(self):
        language = intercon_obc_language()
        builder = GraphBuilder(language, "bad-cost")
        builder.node("a", "Osc_G0")
        builder.node("b", "Osc_G0")
        builder.edge("a", "b", "e", "Cpl_l")
        builder.set_attr("e", "k", 1.0)
        with pytest.raises(repro.DatatypeError):
            builder.set_attr("e", "cost", 10)  # Cpl_l cost is int[1,1]

    def test_grouped_network_still_solves(self):
        graph = self._network("Cpl_g")
        trajectory = repro.simulate(graph, (0.0, 100e-9), n_points=50,
                                    rtol=1e-8, atol=1e-10)
        partition = extract_partition(trajectory, 4, d=0.1 * math.pi)
        assert all(p is not None for p in partition)
        # Path 0-1-2-3 with k=-1: optimal cut alternates.
        edges = [(0, 1), (2, 3), (1, 2)]
        assert cut_value(edges, partition) == \
            brute_force_maxcut(edges, 4)
