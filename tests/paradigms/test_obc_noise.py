"""OBC under phase noise: solution quality vs. amplitude (the noisy
counterpart of the Table 1 study)."""


import pytest

from repro.core.compiler import compile_graph
from repro.paradigms.obc import (maxcut_network, maxcut_noise_sweep,
                                 ns_obc_language)
from repro.paradigms.obc.maxcut import NOISE_MAX_STEP

EDGES_4CYCLE = [(0, 1), (1, 2), (2, 3), (3, 0)]


class TestNoisyNetwork:
    def test_noise_sigma_builds_sde(self):
        graph = maxcut_network(EDGES_4CYCLE, 4, noise_sigma=100.0)
        system = compile_graph(graph)
        assert system.has_noise
        # One independent Wiener path per oscillator (its SHIL edge).
        assert len(system.wiener_paths()) == 4

    def test_zero_sigma_stays_deterministic(self):
        system = compile_graph(maxcut_network(EDGES_4CYCLE, 4))
        assert not system.has_noise

    def test_noise_composes_with_offset(self):
        graph = maxcut_network(EDGES_4CYCLE, 4, edge_type="Cpl_ofs",
                               seed=3, noise_sigma=50.0,
                               language=ns_obc_language())
        system = compile_graph(graph)
        assert system.has_noise
        offsets = [edge.attrs["offset"] for edge in graph.edges
                   if edge.type.name == "Cpl_ofs"]
        assert any(abs(value) > 0 for value in offsets)


class TestNoiseSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return maxcut_noise_sweep(EDGES_4CYCLE, 4,
                                  [0.0, 2e4, 2e5], trials=8, seed=1)

    def test_zero_noise_solves(self, sweep):
        assert sweep[0].noise_sigma == 0.0
        assert sweep[0].sync_probability == 1.0
        assert sweep[0].solved_probability == 1.0
        assert sweep[0].mean_cut_ratio == pytest.approx(1.0)

    def test_quality_degrades_with_amplitude(self, sweep):
        sync = [point.sync_probability for point in sweep]
        assert sync[0] >= sync[1] >= sync[2]
        assert sync[2] < 1.0

    def test_sweep_is_reproducible(self):
        kwargs = dict(trials=4, seed=7)
        a = maxcut_noise_sweep(EDGES_4CYCLE, 4, [3e4], **kwargs)
        b = maxcut_noise_sweep(EDGES_4CYCLE, 4, [3e4], **kwargs)
        assert a[0].synchronized == b[0].synchronized
        assert a[0].cut_ratios == b[0].cut_ratios

    def test_max_step_guards_stability(self):
        # The Kuramoto Jacobian (~5e9 rad/s) demands sub-4e-10 steps;
        # the sweep's default cap must respect that.
        assert NOISE_MAX_STEP < 4e-10
