"""Tests for CNN-based PDE solving (`repro.paradigms.cnn.pde`): the
diffusion CNN must track the exact solution of the discretized heat
equation."""

import numpy as np
import pytest

import repro
from repro.paradigms.cnn import (diffusion_step_response,
                                 diffusion_template, heat_cnn,
                                 laplacian_matrix, reference_diffusion,
                                 solve_diffusion)


def hot_square(size: int = 6) -> np.ndarray:
    initial = np.zeros((size, size))
    initial[2:4, 2:4] = 1.0
    return initial


class TestTemplate:
    def test_entries(self):
        template = diffusion_template(0.5)
        a = template.a_array
        assert a[1, 1] == pytest.approx(1.0 - 4 * 0.5)
        assert a[0, 1] == a[1, 0] == a[1, 2] == a[2, 1] == 0.5
        assert a[0, 0] == a[0, 2] == a[2, 0] == a[2, 2] == 0.0
        assert (template.b_array == 0).all()
        assert template.z == 0.0

    def test_rate_bounds(self):
        with pytest.raises(repro.GraphError):
            diffusion_template(0.0)
        with pytest.raises(repro.GraphError):
            diffusion_template(2.5)
        with pytest.raises(repro.GraphError):
            diffusion_template(-1.0)


class TestLaplacian:
    def test_interior_row(self):
        matrix = laplacian_matrix(3, 3)
        center = 4  # (1, 1)
        assert matrix[center, center] == -4.0
        assert matrix[center].sum() == 0.0  # 4 neighbors of +1

    def test_corner_row_is_dirichlet(self):
        matrix = laplacian_matrix(3, 3)
        corner = 0
        assert matrix[corner, corner] == -4.0
        assert matrix[corner].sum() == -2.0  # only 2 real neighbors

    def test_symmetric_negative_semidefinite(self):
        matrix = laplacian_matrix(4, 5)
        assert np.array_equal(matrix, matrix.T)
        assert np.linalg.eigvalsh(matrix).max() < 0.0  # Dirichlet: < 0


class TestHeatCnn:
    def test_graph_validates(self):
        graph = heat_cnn(hot_square(), rate=0.5)
        assert repro.validate(graph, backend="flow").valid

    def test_rejects_out_of_range_initial(self):
        with pytest.raises(repro.GraphError):
            heat_cnn(np.full((4, 4), 1.5))

    def test_rejects_non_2d(self):
        with pytest.raises(repro.GraphError):
            heat_cnn(np.zeros(5))


class TestAgainstExactSolution:
    def test_step_response_tracks_reference(self):
        result = diffusion_step_response(size=6, rate=0.5,
                                         times=(0.0, 0.5, 1.5))
        # Dominated by the trajectory's linear interpolation between
        # stored samples, not by solver error.
        assert result["rmse"].max() < 1e-5

    def test_pointwise_solution(self):
        initial = hot_square()
        times = np.array([0.0, 0.4, 1.2])
        cnn_frames = solve_diffusion(initial, 0.5, times)
        exact_frames = reference_diffusion(initial, 0.5, times)
        assert np.allclose(cnn_frames, exact_frames, atol=1e-6)

    def test_heat_decays_with_dirichlet_boundary(self):
        initial = hot_square()
        frames = solve_diffusion(initial, 0.5, [0.0, 1.0, 3.0])
        totals = frames.sum(axis=(1, 2))
        assert totals[0] > totals[1] > totals[2] > 0.0

    def test_negative_times_rejected(self):
        with pytest.raises(repro.GraphError):
            solve_diffusion(hot_square(), 0.5, [-1.0, 0.0])

    def test_rate_scales_time(self):
        # Doubling the rate is a pure time rescaling of the linear
        # system: x(t; 2r) == x(2t; r).
        initial = hot_square()
        fast = solve_diffusion(initial, 1.0, [0.5])
        slow = solve_diffusion(initial, 0.5, [1.0])
        assert np.allclose(fast, slow, atol=1e-6)

    def test_symmetry_preserved(self):
        # A symmetric initial condition must stay symmetric.
        size = 6
        initial = np.zeros((size, size))
        initial[2:4, 2:4] = 1.0  # centered for even size
        frames = solve_diffusion(initial, 0.5, [0.8])
        frame = frames[0]
        assert np.allclose(frame, frame[::-1, :], atol=1e-7)
        assert np.allclose(frame, frame[:, ::-1], atol=1e-7)
        assert np.allclose(frame, frame.T, atol=1e-7)
