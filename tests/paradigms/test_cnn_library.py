"""Tests for the extended CNN template library
(`repro.paradigms.cnn.library`): every template's analog fixed point
must match its independent discrete reference, pixel-exact."""

import numpy as np
import pytest

from repro.paradigms.cnn import (CORNER_TEMPLATE, DILATION_TEMPLATE,
                                 EROSION_TEMPLATE, LIBRARY, WHITE,
                                 CnnTemplate, apply_template, cnn_grid,
                                 expected_corners, expected_dilation,
                                 expected_opening,
                                 run_library_template)
from repro.paradigms.cnn.templates import _boundary_bias


def random_image(seed: int, size: int = 8,
                 black_fraction: float = 0.4) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.where(rng.random((size, size)) < black_fraction, 1.0, -1.0)


def ring_image(size: int = 8) -> np.ndarray:
    """A black ring enclosing a white hole."""
    image = np.full((size, size), -1.0)
    image[2:size - 2, 2:size - 2] = 1.0
    image[3:size - 3, 3:size - 3] = -1.0
    return image


class TestBoundaryFolding:
    def test_interior_cell_unchanged(self):
        bias = _boundary_bias(DILATION_TEMPLATE, 2, 2, 8, 8, WHITE)
        assert bias == 0.0

    def test_corner_cell_folds_missing_entries(self):
        # Dilation's B has the 4-neighbor cross; a corner misses two of
        # those (plus no A ring), each worth boundary * 1.
        bias = _boundary_bias(DILATION_TEMPLATE, 0, 0, 8, 8, WHITE)
        assert bias == WHITE * 2.0

    def test_boundary_folds_into_bias_attribute(self):
        image = np.full((4, 4), 1.0)
        zero_bc = cnn_grid(image, EROSION_TEMPLATE)
        white_bc = cnn_grid(image, EROSION_TEMPLATE, boundary=WHITE)
        # Interior cells keep the template bias either way ...
        assert zero_bc.node("V_1_1").attrs["z"] == \
            white_bc.node("V_1_1").attrs["z"] == EROSION_TEMPLATE.z
        # ... but the white frame shifts border biases by the folded
        # missing B entries (corner misses two cross neighbors).
        assert white_bc.node("V_0_0").attrs["z"] == \
            EROSION_TEMPLATE.z + WHITE * 2.0
        assert zero_bc.node("V_0_0").attrs["z"] == EROSION_TEMPLATE.z

    def test_white_frame_erodes_border(self):
        image = np.full((4, 4), 1.0)  # all black
        white_bc = apply_template(image, EROSION_TEMPLATE,
                                  boundary=WHITE)
        assert (white_bc[0] == WHITE).all()
        assert (white_bc[1:3, 1:3] == 1.0).all()

    def test_fold_exceeding_bias_range_rejected(self):
        # The fold lands in the cell bias (z in [-10, 10]); a template
        # whose folded border bias leaves that range is not
        # implementable on the fabric, and the datatype check says so.
        import repro
        extreme = CnnTemplate(
            a=((0, 0, 0), (0, 2, 0), (0, 0, 0)),
            b=((-2, -2, -2), (-2, 0, -2), (-2, -2, -2)),
            z=4.0, name="overflow")
        image = np.full((5, 5), -1.0)
        with pytest.raises(repro.DatatypeError):
            cnn_grid(image, extreme, boundary=WHITE)
        # Without the white frame the same template is fine.
        cnn_grid(image, extreme)


class TestMorphology:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_dilation_matches_reference(self, seed):
        output, reference = run_library_template(random_image(seed),
                                                 "dilation")
        assert np.array_equal(output, reference)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_erosion_matches_reference(self, seed):
        output, reference = run_library_template(random_image(seed),
                                                 "erosion")
        assert np.array_equal(output, reference)

    def test_opening_removes_salt_noise(self):
        image = np.full((8, 8), -1.0)
        image[2:6, 2:6] = 1.0     # a solid square ...
        image[0, 7] = 1.0          # ... plus an isolated noise pixel
        eroded = apply_template(image, EROSION_TEMPLATE)
        opened = apply_template(eroded, DILATION_TEMPLATE)
        assert np.array_equal(opened, expected_opening(image))
        assert opened[0, 7] == WHITE          # noise gone
        assert (opened[3:5, 3:5] == 1.0).all()  # object interior kept

    def test_erosion_dilation_duality_on_empty(self):
        image = np.full((6, 6), -1.0)
        assert (apply_template(image, DILATION_TEMPLATE)
                == WHITE).all()
        assert (apply_template(image, EROSION_TEMPLATE) == WHITE).all()


class TestShadow:
    @pytest.mark.parametrize("seed", [3, 4])
    def test_matches_reference_on_random_images(self, seed):
        output, reference = run_library_template(
            random_image(seed, black_fraction=0.25), "shadow")
        assert np.array_equal(output, reference)

    def test_single_pixel_casts_left(self):
        image = np.full((5, 5), -1.0)
        image[2, 3] = 1.0
        output, reference = run_library_template(image, "shadow")
        assert np.array_equal(output, reference)
        assert (output[2, :4] == 1.0).all()
        assert output[2, 4] == WHITE
        assert (output[[0, 1, 3, 4], :] == WHITE).all()


class TestHoleFill:
    def test_fills_enclosed_hole(self):
        output, reference = run_library_template(ring_image(), "hole-fill")
        assert np.array_equal(output, reference)
        assert (output[3:5, 3:5] == 1.0).all()

    def test_open_region_not_filled(self):
        image = ring_image()
        image[2, 3] = -1.0  # breach the ring: hole connects to frame
        output, reference = run_library_template(image, "hole-fill")
        assert np.array_equal(output, reference)
        assert output[4, 4] == WHITE

    @pytest.mark.parametrize("seed", [5, 6])
    def test_matches_reference_on_random_images(self, seed):
        output, reference = run_library_template(
            random_image(seed, black_fraction=0.45), "hole-fill")
        assert np.array_equal(output, reference)


class TestCornerReference:
    def test_corner_template_matches_reference(self):
        image = np.full((8, 8), -1.0)
        image[2:6, 2:6] = 1.0
        output = apply_template(image, CORNER_TEMPLATE, boundary=WHITE)
        assert np.array_equal(output, expected_corners(image))
        # Exactly the four corners of the square are detected.
        assert (output == 1.0).sum() == 4
        assert output[2, 2] == output[2, 5] == 1.0
        assert output[5, 2] == output[5, 5] == 1.0


class TestRegistry:
    def test_all_registered_templates_run(self):
        image = random_image(9, size=6)
        for name in LIBRARY:
            output, reference = run_library_template(image, name,
                                                     t_end=12.0)
            assert output.shape == image.shape, name

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            run_library_template(np.full((4, 4), -1.0), "sharpen")

    def test_library_under_mismatch_variants(self):
        # The hw-cnn Vm substitution must keep robust-margin templates
        # correct at 10% bias mismatch (margins are >= 1).
        image = random_image(10, size=6)
        output = apply_template(image, DILATION_TEMPLATE,
                                cell_type="Vm", seed=4)
        assert np.array_equal(output, expected_dilation(image))
