"""Tests for the FHN excitable-neuron paradigm
(`repro.paradigms.fhn`): language rules, excitability, wave
propagation vs the scipy reference, and the hw-fhn mismatch study."""

import numpy as np
import pytest

import repro
from repro.core.builder import GraphBuilder
from repro.paradigms.fhn import (NeuronSpec, fhn_language,
                                 fhn_reference, hw_fhn_language,
                                 neuron_chain, neuron_ring,
                                 resting_point, single_neuron,
                                 spike_times, wave_arrival_times)

TIGHT = dict(rtol=1e-9, atol=1e-11)


class TestLanguageRules:
    def test_paradigm_graphs_validate(self):
        for graph in (single_neuron(), neuron_chain(4),
                      neuron_ring(4)):
            report = repro.validate(graph)
            assert report.valid, report

    def test_membrane_without_recovery_rejected(self):
        builder = GraphBuilder(fhn_language(), "lonely-u")
        builder.node("U_0", "U")
        builder.set_attr("U_0", "i", 0.0)
        builder.set_init("U_0", 0.0)
        builder.edge("U_0", "U_0", "Su", "S")
        assert not repro.validate(builder.finish()).valid

    def test_membrane_without_cubic_self_edge_rejected(self):
        builder = GraphBuilder(fhn_language(), "no-cubic")
        builder.node("U_0", "U")
        builder.set_attr("U_0", "i", 0.0)
        builder.set_init("U_0", 0.0)
        builder.node("W_0", "W")
        for attr, value in (("eps", 0.08), ("a", 0.7), ("b", 0.8)):
            builder.set_attr("W_0", attr, value)
        builder.set_init("W_0", 0.0)
        builder.edge("W_0", "U_0", "Swu", "S")
        builder.edge("U_0", "W_0", "Suw", "S")
        assert not repro.validate(builder.finish()).valid

    def test_recovery_to_recovery_rejected(self):
        graph = neuron_chain(2)
        graph.add_edge("bad", "W_0", "W_1", "S")
        assert not repro.validate(graph).valid

    def test_spec_validation(self):
        with pytest.raises(repro.GraphError):
            NeuronSpec(eps=0.0)
        with pytest.raises(repro.GraphError):
            NeuronSpec(bias=3.0)
        with pytest.raises(repro.GraphError):
            neuron_chain(1)
        with pytest.raises(repro.GraphError):
            neuron_ring(2)  # would double the coupling: degenerate
        with pytest.raises(repro.GraphError):
            neuron_chain(4, coupling=-1.0)
        with pytest.raises(repro.GraphError):
            neuron_chain(4, stimulate=7)


class TestExcitability:
    def test_resting_point_is_a_fixed_point(self):
        spec = NeuronSpec()
        v, w = resting_point(spec)
        assert v - v ** 3 / 3.0 - w + spec.bias == \
            pytest.approx(0.0, abs=1e-12)
        assert v + spec.a - spec.b * w == pytest.approx(0.0, abs=1e-12)

    def test_quiescent_at_rest(self):
        v, w = resting_point()
        run = repro.simulate(single_neuron(v0=v, w0=w), (0.0, 100.0),
                             n_points=201, **TIGHT)
        assert np.abs(run["U_0"] - v).max() < 1e-9

    def test_subthreshold_perturbation_decays(self):
        v, w = resting_point()
        run = repro.simulate(single_neuron(v0=v + 0.05, w0=w),
                             (0.0, 100.0), n_points=501, **TIGHT)
        assert len(spike_times(run.t, run["U_0"])) == 0
        assert abs(run.final("U_0") - v) < 1e-3

    def test_suprathreshold_kick_fires_once(self):
        v, w = resting_point()
        run = repro.simulate(single_neuron(v0=1.5, w0=w), (0.0, 100.0),
                             n_points=1001, **TIGHT)
        # One excursion, then return to rest: excitability.
        assert run["U_0"].max() > 1.5
        assert abs(run.final("U_0") - v) < 1e-2

    def test_strong_bias_gives_tonic_spiking(self):
        spec = NeuronSpec(bias=0.5)
        v, w = resting_point(NeuronSpec())
        run = repro.simulate(single_neuron(spec, v0=v, w0=w),
                             (0.0, 200.0), n_points=2001, **TIGHT)
        times = spike_times(run.t, run["U_0"])
        assert len(times) >= 4
        periods = np.diff(times)
        assert periods.std() < 0.02 * periods.mean()  # regular train


class TestWavePropagation:
    def test_chain_matches_scipy_reference(self):
        n = 6
        graph = neuron_chain(n, coupling=0.8, stimulate=0,
                             stimulus=1.5)
        run = repro.simulate(graph, (0.0, 80.0), n_points=801, **TIGHT)
        rest_v, rest_w = resting_point()
        v0 = np.full(n, rest_v)
        v0[0] = 1.5
        w0 = np.full(n, rest_w)
        reference = fhn_reference(n, NeuronSpec(), 0.8, False, v0, w0,
                                  run.t)
        worst = max(np.abs(run[f"U_{k}"] - reference[k]).max()
                    for k in range(n))
        assert worst < 1e-7

    def test_wave_travels_in_order(self):
        n = 6
        run = repro.simulate(neuron_chain(n, coupling=0.8),
                             (0.0, 80.0), n_points=801, **TIGHT)
        arrivals = wave_arrival_times(run, n)
        assert all(a is not None for a in arrivals)
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0.0  # the stimulated site

    def test_uncoupled_chain_does_not_propagate(self):
        n = 4
        run = repro.simulate(
            neuron_chain(n, coupling=0.0), (0.0, 80.0), n_points=401,
            **TIGHT)
        arrivals = wave_arrival_times(run, n)
        assert arrivals[0] == 0.0
        assert all(a is None for a in arrivals[1:])

    def test_ring_wave_reaches_everywhere(self):
        n = 8
        run = repro.simulate(neuron_ring(n, coupling=0.8), (0.0, 80.0),
                             n_points=801, **TIGHT)
        arrivals = wave_arrival_times(run, n)
        assert all(a is not None for a in arrivals)
        # On a ring the wave splits both ways: the antipode is last.
        latest = max(range(n), key=lambda k: arrivals[k])
        assert latest == n // 2


class TestHwExtension:
    def test_hw_graphs_validate(self):
        graph = neuron_chain(4, mismatched_bias=True,
                             mismatched_coupling=True, seed=1)
        assert repro.validate(graph).valid

    def test_mismatch_jitters_arrival_times(self):
        n = 5
        ideal = repro.simulate(neuron_chain(n, coupling=0.8),
                               (0.0, 80.0), n_points=801, **TIGHT)
        ideal_arrivals = wave_arrival_times(ideal, n)
        jittered = []
        for seed in (1, 2):
            run = repro.simulate(
                neuron_chain(n, coupling=0.8,
                             mismatched_coupling=True, seed=seed),
                (0.0, 80.0), n_points=801, **TIGHT)
            jittered.append(wave_arrival_times(run, n))
        assert jittered[0] != jittered[1]  # chip signature
        assert jittered[0] != ideal_arrivals

    def test_mismatch_deterministic_per_seed(self):
        def make():
            return neuron_chain(4, mismatched_coupling=True, seed=9)
        a = repro.simulate(make(), (0.0, 40.0), n_points=201)
        b = repro.simulate(make(), (0.0, 40.0), n_points=201)
        assert np.array_equal(a["U_2"], b["U_2"])

    def test_ideal_types_simulate_identically_in_hw_language(self):
        base = repro.simulate(neuron_chain(4), (0.0, 40.0),
                              n_points=201, **TIGHT)
        cast = repro.simulate(
            neuron_chain(4, language=hw_fhn_language()), (0.0, 40.0),
            n_points=201, **TIGHT)
        assert np.allclose(base["U_3"], cast["U_3"], atol=1e-12)
