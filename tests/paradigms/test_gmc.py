"""Tests for the GmC-TLN extension (§2.3-2.4, §4.5, Figs. 5/9/14)."""

import numpy as np
import pytest

import repro
from repro.paradigms.tln import (TLineSpec, linear_tline,
                                 mismatched_tline, tln_language)


class TestInheritance:
    def test_language_chain(self, gmc, tln):
        assert gmc.parent is tln
        assert gmc.find_node_type("Vm").is_subtype_of(
            tln.find_node_type("V"))
        assert gmc.find_edge_type("Em").is_subtype_of(
            tln.find_edge_type("E"))

    def test_mm_annotations(self, gmc):
        vm = gmc.find_node_type("Vm")
        assert vm.attrs["c"].datatype.mismatch.s1 == 0.1
        em = gmc.find_edge_type("Em")
        assert em.attrs["ws"].datatype.mismatch.s1 == 0.1
        assert em.attrs["wt"].datatype.mismatch.s1 == 0.1

    def test_parent_graph_validates_in_derived_language(self, gmc,
                                                        small_spec):
        graph = linear_tline(small_spec)  # pure TLN types
        report = repro.validate(graph, language=gmc, backend="flow")
        assert report.valid, report.violations

    def test_parent_graph_same_dynamics_in_derived_language(
            self, gmc, small_spec):
        """The §2.4 guarantee: TLN computations simulate identically
        under GmC-TLN."""
        graph = linear_tline(small_spec)
        base = repro.simulate(repro.compile_graph(graph, tln_language()),
                              (0.0, 2e-8), n_points=100)
        derived = repro.simulate(repro.compile_graph(graph, gmc),
                                 (0.0, 2e-8), n_points=100)
        assert np.allclose(base.y, derived.y)


class TestMismatchedLines:
    def test_cint_substitution_types(self, small_spec):
        graph = mismatched_tline("cint", small_spec, seed=1)
        assert graph.node("IN_V").type.name == "Vm"
        assert graph.node("I_0").type.name == "Im"

    def test_gm_substitution_types(self, small_spec):
        graph = mismatched_tline("gm", small_spec, seed=1)
        line_edges = [e for e in graph.edges
                      if not e.is_self and e.src != "InpI_0"]
        assert all(e.type.name == "Em" for e in line_edges)
        # Damping self edges stay plain E (their rules are inherited).
        assert graph.edge("Es_IN_V").type.name == "E"

    def test_unknown_kind_rejected(self, small_spec):
        with pytest.raises(repro.GraphError):
            mismatched_tline("thermal", small_spec)

    def test_both_validate(self, small_spec):
        for kind in ("cint", "gm"):
            graph = mismatched_tline(kind, small_spec, seed=3)
            assert repro.validate(graph, backend="flow").valid

    def test_seed_none_recovers_ideal_dynamics(self, small_spec):
        ideal = repro.simulate(linear_tline(small_spec), (0.0, 2e-8),
                               n_points=100)
        for kind in ("cint", "gm"):
            nominal = repro.simulate(
                mismatched_tline(kind, small_spec, seed=None),
                (0.0, 2e-8), n_points=100)
            assert np.allclose(ideal["OUT_V"], nominal["OUT_V"],
                               atol=1e-9), kind

    def test_seeds_change_dynamics(self, small_spec):
        a = repro.simulate(mismatched_tline("gm", small_spec, seed=1),
                           (0.0, 2e-8), n_points=100)
        b = repro.simulate(mismatched_tline("gm", small_spec, seed=2),
                           (0.0, 2e-8), n_points=100)
        assert not np.allclose(a["OUT_V"], b["OUT_V"], atol=1e-6)

    def test_same_seed_reproducible(self, small_spec):
        a = repro.simulate(mismatched_tline("gm", small_spec, seed=9),
                           (0.0, 2e-8), n_points=100)
        b = repro.simulate(mismatched_tline("gm", small_spec, seed=9),
                           (0.0, 2e-8), n_points=100)
        assert np.allclose(a["OUT_V"], b["OUT_V"])


class TestFig4cd:
    """Reduced-size version of the Figs. 4c/4d spread comparison."""

    def test_gm_spreads_more_than_cint(self):
        from repro.analysis import window_spread
        spec = TLineSpec(n_segments=10)
        window = (0.5e-8, 2.5e-8)
        spreads = {}
        for kind in ("cint", "gm"):
            trajectories = repro.simulate_ensemble(
                lambda seed, kind=kind: mismatched_tline(
                    kind, spec, seed=seed),
                seeds=range(12), t_span=(0.0, 4e-8), n_points=200)
            spreads[kind] = window_spread(trajectories, "OUT_V",
                                          window)
        assert spreads["gm"] > spreads["cint"]
