"""Tests for weighted max-cut (the weighted Ising machine workload)."""

import math

import numpy as np

from repro.paradigms.obc import (brute_force_maxcut, cut_value,
                                 random_graphs, random_weights,
                                 solve_maxcut)


class TestWeightedBaselines:
    def test_weighted_cut_value(self):
        edges = [(0, 1), (1, 2)]
        weights = [2.0, 3.0]
        assert cut_value(edges, [0, 1, 0], weights) == 5.0
        assert cut_value(edges, [0, 1, 1], weights) == 2.0

    def test_weighted_brute_force(self):
        # Triangle with one heavy edge: the optimum cuts the two
        # heaviest edges.
        edges = [(0, 1), (1, 2), (0, 2)]
        weights = [10.0, 1.0, 1.0]
        assert brute_force_maxcut(edges, 3, weights) == 11.0

    def test_unweighted_equals_unit_weights(self):
        edges = [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]
        assert brute_force_maxcut(edges, 4) == \
            brute_force_maxcut(edges, 4, [1.0] * len(edges))

    def test_random_weights_bounds(self):
        rng = np.random.default_rng(0)
        edges = [(0, 1)] * 50
        weights = random_weights(edges, rng, lo=0.5, hi=4.0)
        assert all(0.5 <= w <= 4.0 for w in weights)


class TestWeightedSolver:
    def test_heavy_edge_dominates(self):
        # Triangle with one overwhelming edge: solver must cut it.
        edges = [(0, 1), (1, 2), (0, 2)]
        weights = [6.0, 1.0, 1.0]
        result = solve_maxcut(edges, 3, d=0.1 * math.pi,
                              weights=weights, seed=2)
        assert result.synchronized
        assert result.partition[0] != result.partition[1]

    def test_weighted_success_rate(self):
        rng = np.random.default_rng(42)
        graphs = random_graphs(20, 4, seed=9)
        solved = 0
        for index, edges in enumerate(graphs):
            weights = random_weights(edges, rng)
            result = solve_maxcut(edges, 4, d=0.1 * math.pi,
                                  weights=weights, seed=index)
            solved += int(result.solved)
        # Weighted instances are harder, but the solver should still
        # find the optimum most of the time at this size.
        assert solved >= 14

    def test_optimal_cut_recorded(self):
        edges = [(0, 1)]
        result = solve_maxcut(edges, 2, d=0.1 * math.pi,
                              weights=[2.5], seed=1)
        assert result.optimal_cut == 2.5
        if result.synchronized:
            assert result.cut in (0.0, 2.5)
