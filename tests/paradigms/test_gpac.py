"""Tests for the GPAC paradigm (`repro.paradigms.gpac`): language rules,
circuit builders vs scipy references, and the hw-gpac extension."""

import numpy as np
import pytest

import repro
from repro.core.builder import GraphBuilder
from repro.paradigms.gpac import (GpacTypes, acyclic_algebraic_check,
                                  amplitude_envelope, decay_reference,
                                  driven_oscillator, exponential_decay,
                                  gpac_language, harmonic_oscillator,
                                  hw_gpac_language, leaky,
                                  limit_cycle_amplitude, lorenz,
                                  lorenz_reference, lotka_volterra,
                                  lotka_volterra_invariant,
                                  lotka_volterra_reference,
                                  oscillator_reference,
                                  resonance_amplitude, van_der_pol,
                                  van_der_pol_reference)

TIGHT = dict(rtol=1e-9, atol=1e-11)


class TestLanguageRules:
    def test_paradigm_graphs_validate(self):
        for graph in (exponential_decay(), harmonic_oscillator(),
                      lotka_volterra(), van_der_pol(), lorenz()):
            report = repro.validate(graph)
            assert report.valid, report

    def test_single_input_multiplier_rejected(self):
        builder = GraphBuilder(gpac_language(), "bad-mul")
        builder.node("x", "Int").set_init("x", 1.0)
        builder.node("m", "Mul")
        builder.edge("x", "x", "l", "W").set_attr("l", "w", -1.0)
        builder.edge("x", "m", "e", "W").set_attr("e", "w", 1.0)
        builder.node("y", "Int").set_init("y", 0.0)
        builder.edge("m", "y", "o", "W").set_attr("o", "w", 1.0)
        graph = builder.finish()
        assert not repro.validate(graph).valid

    def test_dangling_source_rejected(self):
        builder = GraphBuilder(gpac_language(), "dangling-src")
        builder.node("s", "Src")
        builder.set_attr("s", "fn", lambda t: 1.0)
        graph = builder.finish()
        assert not repro.validate(graph).valid

    def test_algebraic_cycle_rejected_globally(self):
        # Two multipliers feeding each other satisfy every local rule
        # but form an algebraic loop; the extern check must reject it.
        builder = GraphBuilder(gpac_language(), "mul-cycle")
        builder.node("x", "Int").set_init("x", 1.0)
        builder.edge("x", "x", "l", "W").set_attr("l", "w", -1.0)
        builder.node("m1", "Mul")
        builder.node("m2", "Mul")
        for name, (src, dst) in (("a", ("x", "m1")), ("b", ("m2", "m1")),
                                 ("c", ("x", "m2")), ("d", ("m1", "m2"))):
            builder.edge(src, dst, name, "W")
            builder.set_attr(name, "w", 1.0)
        builder.node("y", "Int").set_init("y", 0.0)
        builder.edge("m1", "y", "o", "W").set_attr("o", "w", 1.0)
        graph = builder.finish()
        report = repro.validate(graph)
        assert not report.valid
        assert "cycle" in str(report).lower()

    def test_acyclic_check_accepts_mul_chain(self):
        # A *chain* of multipliers is fine — only cycles are rejected.
        graph = van_der_pol()
        ok, message = acyclic_algebraic_check(graph)
        assert ok, message

    def test_mul_reduction_declared(self):
        assert gpac_language().find_node_type("Mul").reduction.value \
            == "mul"


class TestCircuitsAgainstReferences:
    def test_exponential_decay(self):
        trajectory = repro.simulate(exponential_decay(rate=0.7,
                                                      initial=2.0),
                                    (0.0, 5.0), n_points=101, **TIGHT)
        expected = decay_reference(0.7, 2.0, trajectory.t)
        assert np.allclose(trajectory["x"], expected, atol=1e-8)

    def test_harmonic_oscillator(self):
        trajectory = repro.simulate(harmonic_oscillator(omega=2.0),
                                    (0.0, 8.0), n_points=201, **TIGHT)
        expected = oscillator_reference(2.0, 1.0, trajectory.t)
        assert np.allclose(trajectory["x"], expected, atol=1e-7)

    def test_lotka_volterra(self):
        trajectory = repro.simulate(lotka_volterra(), (0.0, 20.0),
                                    n_points=201, **TIGHT)
        expected = lotka_volterra_reference(1.1, 0.4, 0.1, 0.4, 10.0,
                                            10.0, trajectory.t)
        assert np.allclose(trajectory["x"], expected[0], atol=1e-6)
        assert np.allclose(trajectory["y"], expected[1], atol=1e-6)

    def test_lotka_volterra_conserves_invariant(self):
        trajectory = repro.simulate(lotka_volterra(), (0.0, 30.0),
                                    n_points=301, **TIGHT)
        invariant = lotka_volterra_invariant(1.1, 0.4, 0.1, 0.4,
                                             trajectory["x"],
                                             trajectory["y"])
        assert invariant.std() < 1e-6 * abs(invariant.mean())

    def test_van_der_pol(self):
        trajectory = repro.simulate(van_der_pol(mu=1.0), (0.0, 20.0),
                                    n_points=401, **TIGHT)
        expected = van_der_pol_reference(1.0, 0.5, 0.0, trajectory.t)
        assert np.allclose(trajectory["x"], expected[0], atol=1e-6)

    def test_van_der_pol_limit_cycle_amplitude(self):
        # The classic result: amplitude -> ~2 regardless of start.
        trajectory = repro.simulate(van_der_pol(mu=1.0, x0=0.1),
                                    (0.0, 40.0), n_points=801, **TIGHT)
        amplitude = limit_cycle_amplitude(trajectory.t, trajectory["x"])
        assert amplitude == pytest.approx(2.0, abs=0.05)

    def test_lorenz_short_horizon(self):
        # Chaos limits the comparison horizon; before divergence the
        # GPAC program must track the reference tightly.
        trajectory = repro.simulate(lorenz(), (0.0, 2.0), n_points=201,
                                    rtol=1e-10, atol=1e-12)
        expected = lorenz_reference(10.0, 28.0, 8.0 / 3.0, 1.0, 1.0,
                                    1.0, trajectory.t)
        assert np.allclose(trajectory["x"], expected[0], atol=1e-5)
        assert np.allclose(trajectory["z"], expected[2], atol=1e-5)

    def test_driven_oscillator_resonance_curve(self):
        # Steady-state amplitude vs the textbook formula at, below,
        # and above resonance — exercises the Src node's fn(time)
        # production rule end to end.
        omega, damping, amplitude = 2.0, 0.3, 1.0
        for wd in (1.0, 2.0, 3.0):
            graph = driven_oscillator(omega, damping, amplitude, wd)
            assert repro.validate(graph).valid
            run = repro.simulate(graph, (0.0, 80.0), n_points=2001,
                                 rtol=1e-9, atol=1e-11)
            measured = float(np.abs(run["x"][run.t > 60.0]).max())
            analytic = resonance_amplitude(omega, damping, amplitude,
                                           wd)
            assert measured == pytest.approx(analytic, rel=2e-3), wd

    def test_driven_oscillator_peaks_at_resonance(self):
        omega, damping = 2.0, 0.3
        amplitudes = []
        for wd in (1.0, 2.0, 3.0):
            run = repro.simulate(
                driven_oscillator(omega, damping, 1.0, wd),
                (0.0, 80.0), n_points=1001)
            amplitudes.append(float(np.abs(run["x"][run.t > 60]).max()))
        assert amplitudes[1] > amplitudes[0]
        assert amplitudes[1] > amplitudes[2]

    def test_parameter_validation(self):
        with pytest.raises(repro.GraphError):
            exponential_decay(rate=0.0)
        with pytest.raises(repro.GraphError):
            harmonic_oscillator(omega=-1.0)
        with pytest.raises(repro.GraphError):
            lotka_volterra(beta=0.0)
        with pytest.raises(repro.GraphError):
            van_der_pol(mu=-2.0)
        with pytest.raises(repro.GraphError):
            leaky(-0.1)
        with pytest.raises(repro.GraphError):
            driven_oscillator(damping=-0.1)
        with pytest.raises(repro.GraphError):
            driven_oscillator(drive_frequency=0.0)


class TestHwExtension:
    def test_leaky_graphs_validate(self):
        for graph in (harmonic_oscillator(types=leaky(0.1)),
                      van_der_pol(types=leaky(0.1)),
                      lotka_volterra(types=leaky(0.05))):
            report = repro.validate(graph)
            assert report.valid, report

    def test_leaky_oscillator_matches_damped_reference(self):
        trajectory = repro.simulate(
            harmonic_oscillator(omega=2.0, types=leaky(0.1)),
            (0.0, 8.0), n_points=201, **TIGHT)
        expected = oscillator_reference(2.0, 1.0, trajectory.t,
                                        leak=0.1)
        assert np.allclose(trajectory["x"], expected, atol=1e-7)

    def test_zero_leak_matches_ideal(self):
        ideal = repro.simulate(harmonic_oscillator(), (0.0, 6.0),
                               n_points=121, **TIGHT)
        zero_leak = repro.simulate(harmonic_oscillator(types=leaky(0.0)),
                                   (0.0, 6.0), n_points=121, **TIGHT)
        assert np.allclose(ideal["x"], zero_leak["x"], atol=1e-9)

    def test_leak_decays_oscillator_envelope(self):
        trajectory = repro.simulate(
            harmonic_oscillator(types=leaky(0.2)), (0.0, 20.0),
            n_points=401)
        envelope = amplitude_envelope(trajectory.t, trajectory["x"],
                                      n_segments=4)
        assert envelope[0] > envelope[1] > envelope[2] > envelope[3]

    def test_van_der_pol_limit_cycle_survives_leak(self):
        # The robustness finding: at a leak that collapses the harmonic
        # oscillator to noise (amplitude ~ exp(-0.2*40) of 1), the Van
        # der Pol limit cycle persists at O(1) amplitude — its
        # nonlinear feedback re-injects the energy the leak removes,
        # shrinking the cycle (here to ~1.5 from 2.0) but not killing
        # it. Computations with self-restoring dynamics tolerate this
        # nonideality; pure integration does not.
        span, leak = (0.0, 40.0), 0.2
        vdp = repro.simulate(van_der_pol(types=leaky(leak)), span,
                             n_points=801)
        osc = repro.simulate(harmonic_oscillator(types=leaky(leak)),
                             span, n_points=801)
        vdp_amp = limit_cycle_amplitude(vdp.t, vdp["x"])
        osc_amp = limit_cycle_amplitude(osc.t, osc["x"])
        assert vdp_amp > 1.2
        assert osc_amp < 0.05

    def test_weight_mismatch_varies_across_seeds(self):
        runs = [repro.simulate(
            harmonic_oscillator(
                types=leaky(0.0, mismatched_weights=True), seed=seed),
            (0.0, 6.0), n_points=121) for seed in (1, 2)]
        assert not np.allclose(runs[0]["x"], runs[1]["x"], atol=1e-3)

    def test_weight_mismatch_deterministic_per_seed(self):
        def make():
            return harmonic_oscillator(
                types=leaky(0.0, mismatched_weights=True), seed=9)
        first = repro.simulate(make(), (0.0, 6.0), n_points=121)
        second = repro.simulate(make(), (0.0, 6.0), n_points=121)
        assert np.array_equal(first["x"], second["x"])

    def test_ideal_graph_validates_in_hw_language(self):
        # §4.1.1 casting: a base-language graph is a valid hw-gpac
        # program with identical dynamics.
        base = harmonic_oscillator()
        hw_graph = harmonic_oscillator(
            types=GpacTypes(language=hw_gpac_language()))
        assert repro.validate(hw_graph).valid
        a = repro.simulate(base, (0.0, 5.0), n_points=101, **TIGHT)
        b = repro.simulate(hw_graph, (0.0, 5.0), n_points=101, **TIGHT)
        assert np.allclose(a["x"], b["x"], atol=1e-12)


class TestGpacTypes:
    def test_default_resolves_to_base_language(self):
        types = GpacTypes().resolve()
        assert types.language is gpac_language()

    def test_substitution_resolves_to_hw_language(self):
        types = leaky(0.1).resolve()
        assert types.language is hw_gpac_language()
        assert types.int_type == "IntL"

    def test_mismatched_weights_flag(self):
        assert leaky(0.0, mismatched_weights=True).edge_type == "Wm"
        assert leaky(0.0).edge_type == "W"
