"""Tests for the color-obc extension (oscillator graph coloring)."""

import math


import repro
from repro.paradigms.obc import (classify_color, color_obc_language,
                                 coloring_network, obc_language,
                                 solve_coloring)


class TestLanguage:
    def test_inherits_obc(self):
        lang = color_obc_language()
        assert lang.parent is obc_language()
        osck = lang.find_node_type("OscK")
        assert osck.parent.name == "Osc"
        assert "k" in osck.attrs

    def test_new_self_rule_most_specific(self):
        lang = color_obc_language()
        table = lang.rule_table()
        osck = lang.find_node_type("OscK")
        cpl = lang.find_edge_type("Cpl")
        winners = table.lookup(cpl, osck, osck, self_rule=True)
        assert len(winners) == 1
        # The OscK-specific rule (with s.k harmonic) wins over Osc's.
        assert winners[0].src_type == "OscK"

    def test_base_osc_keeps_second_harmonic(self):
        lang = color_obc_language()
        table = lang.rule_table()
        osc = lang.find_node_type("Osc")
        cpl = lang.find_edge_type("Cpl")
        winners = table.lookup(cpl, osc, osc, self_rule=True)
        assert winners[0].src_type == "Osc"


class TestClassifyColor:
    def test_roots_of_unity(self):
        third = 2 * math.pi / 3
        assert classify_color(0.0, 3, d=0.1) == 0
        assert classify_color(third, 3, d=0.1) == 1
        assert classify_color(2 * third, 3, d=0.1) == 2

    def test_wraparound(self):
        assert classify_color(2 * math.pi - 0.01, 3, d=0.1) == 0

    def test_unknown_between_bins(self):
        assert classify_color(math.pi / 3, 3, d=0.1) is None

    def test_two_colors_match_maxcut_bins(self):
        assert classify_color(0.02, 2, d=0.1) == 0
        assert classify_color(math.pi, 2, d=0.1) == 1


class TestSolver:
    def test_network_validates(self):
        graph = coloring_network([(0, 1)], 2, 3)
        assert repro.validate(graph, backend="flow").valid

    def test_square_two_coloring(self):
        square = [(0, 1), (1, 2), (2, 3), (3, 0)]
        result = solve_coloring(square, 4, 2, seed=1)
        assert result.proper, result.colors

    def test_triangle_three_coloring(self):
        result = solve_coloring([(0, 1), (1, 2), (0, 2)], 3, 3,
                                seed=0)
        assert result.proper, result.colors
        assert sorted(result.colors) == [0, 1, 2]

    def test_triangle_not_two_colorable(self):
        # With 2 colors the triangle has no proper coloring: whatever
        # the dynamics settle on has a conflict (or doesn't settle).
        result = solve_coloring([(0, 1), (1, 2), (0, 2)], 3, 2,
                                seed=3)
        assert not result.proper

    def test_conflicts_none_when_unsynced(self):
        result = solve_coloring([(0, 1)], 2, 3, seed=1, t_end=1e-12)
        assert not result.synchronized
        assert result.conflicts is None
