"""Tests for oscillator placement onto the intercon-obc fabric
(`repro.paradigms.obc.placement`)."""

import math

import numpy as np
import pytest

import repro
from repro.core.builder import GraphBuilder
from repro.core.simulator import simulate
from repro.paradigms.obc import (GLOBAL_COST, LOCAL_COST,
                                 evaluate_placement, extract_partition,
                                 intercon_obc_language,
                                 interconnect_cost, maxcut_network,
                                 place_greedy, place_kernighan_lin,
                                 place_random, placed_network,
                                 placement_study)

RING_PLUS_CHORD = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
TWO_CLUSTERS = [(0, 1), (1, 2), (0, 2),        # triangle A
                (3, 4), (4, 5), (3, 5),        # triangle B
                (2, 3)]                        # one bridge


class TestEvaluatePlacement:
    def test_counts_local_and_global(self):
        placement = evaluate_placement(TWO_CLUSTERS,
                                       [0, 0, 0, 1, 1, 1])
        assert placement.n_local == 6
        assert placement.n_global == 1
        assert placement.coupling_cost == 6 * LOCAL_COST + GLOBAL_COST

    def test_single_group_has_no_global_edges(self):
        placement = evaluate_placement(RING_PLUS_CHORD, [0, 0, 0, 0])
        assert placement.n_global == 0
        assert placement.coupling_cost == 5 * LOCAL_COST

    def test_rejects_bad_group_labels(self):
        with pytest.raises(repro.GraphError):
            evaluate_placement(RING_PLUS_CHORD, [0, 1, 2, 0])

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(repro.GraphError):
            evaluate_placement([(0, 7)], [0, 1])

    def test_rejects_self_loops(self):
        with pytest.raises(repro.GraphError):
            evaluate_placement([(1, 1)], [0, 1])

    def test_describe_mentions_cost(self):
        placement = evaluate_placement(RING_PLUS_CHORD, [0, 1, 0, 1])
        assert str(placement.coupling_cost) in placement.describe()


class TestPlacers:
    def test_greedy_beats_or_ties_random(self):
        for seed in range(5):
            random_cost = place_random(TWO_CLUSTERS, 6,
                                       seed=seed).coupling_cost
            greedy_cost = place_greedy(TWO_CLUSTERS, 6,
                                       seed=seed).coupling_cost
            assert greedy_cost <= random_cost

    def test_greedy_finds_zero_global_on_clusters(self):
        placement = place_greedy(TWO_CLUSTERS, 6, seed=1)
        assert placement.n_global <= 1  # at most the bridge

    def test_kernighan_lin_balanced(self):
        placement = place_kernighan_lin(TWO_CLUSTERS, 6, seed=0)
        assert placement.groups.count(0) == 3
        assert placement.groups.count(1) == 3

    def test_kernighan_lin_cuts_only_the_bridge(self):
        placement = place_kernighan_lin(TWO_CLUSTERS, 6, seed=0)
        assert placement.n_global == 1

    def test_study_runs_all_placers(self):
        study = placement_study(RING_PLUS_CHORD, 4, seed=2)
        assert set(study) == {"random", "greedy", "kernighan-lin"}
        assert study["greedy"].coupling_cost <= \
            study["random"].coupling_cost


class TestPlacedNetwork:
    def test_network_validates(self):
        placement = place_kernighan_lin(TWO_CLUSTERS, 6, seed=0)
        graph = placed_network(TWO_CLUSTERS, placement)
        assert repro.validate(graph).valid

    def test_interconnect_cost_matches_model(self):
        placement = place_kernighan_lin(TWO_CLUSTERS, 6, seed=0)
        graph = placed_network(TWO_CLUSTERS, placement)
        # graph cost = coupling cost + one local SHIL edge per vertex.
        assert interconnect_cost(graph) == \
            placement.coupling_cost + 6 * LOCAL_COST

    def test_node_types_follow_groups(self):
        placement = evaluate_placement(RING_PLUS_CHORD, [0, 1, 1, 0])
        graph = placed_network(RING_PLUS_CHORD, placement)
        for vertex, group in enumerate(placement.groups):
            assert graph.node(f"Osc_{vertex}").type.name == \
                f"Osc_G{group}"

    def test_cross_group_local_edge_rejected_by_language(self):
        builder = GraphBuilder(intercon_obc_language(), "bad-local")
        for vertex, group in ((0, 0), (1, 1)):
            name = f"Osc_{vertex}"
            builder.node(name, f"Osc_G{group}")
            builder.set_init(name, 0.0)
            builder.edge(name, name, f"S{vertex}", "Cpl_l")
            builder.set_attr(f"S{vertex}", "k", 0.0)
            builder.set_attr(f"S{vertex}", "cost", 1)
        builder.edge("Osc_0", "Osc_1", "bad", "Cpl_l")
        builder.set_attr("bad", "k", -1.0)
        builder.set_attr("bad", "cost", 1)
        assert not repro.validate(builder.finish()).valid

    def test_global_edge_within_group_allowed(self):
        # Paying for a global wire inside a group is wasteful but legal
        # (Fig. 13 restricts local edges only).
        placement = evaluate_placement([(0, 1)], [0, 0])
        graph = placed_network([(0, 1)], placement)
        builder = GraphBuilder(intercon_obc_language(), "waste")
        for vertex in (0, 1):
            name = f"Osc_{vertex}"
            builder.node(name, "Osc_G0")
            builder.set_init(name, 0.0)
            builder.edge(name, name, f"S{vertex}", "Cpl_l")
            builder.set_attr(f"S{vertex}", "k", 0.0)
            builder.set_attr(f"S{vertex}", "cost", 1)
        builder.edge("Osc_0", "Osc_1", "g", "Cpl_g")
        builder.set_attr("g", "k", -1.0)
        builder.set_attr("g", "cost", 10)
        assert repro.validate(builder.finish()).valid
        assert interconnect_cost(builder.graph) > \
            interconnect_cost(graph)


class TestDynamicsInvariance:
    def test_placement_does_not_change_the_computation(self):
        # Cpl_l/Cpl_g inherit Cpl's Kuramoto rules, so a placed network
        # must produce the *identical* trajectory as the flat obc
        # network — cost varies, accuracy does not (the §7.2 tradeoff
        # is purely programmability/area).
        rng = np.random.default_rng(3)
        phases = rng.uniform(0.0, 2.0 * math.pi, 4)
        flat = maxcut_network(RING_PLUS_CHORD, 4,
                              initial_phases=phases)
        placement = place_kernighan_lin(RING_PLUS_CHORD, 4, seed=0)
        placed = placed_network(RING_PLUS_CHORD, placement,
                                initial_phases=phases)
        span = (0.0, 100e-9)
        options = dict(n_points=60, rtol=1e-8, atol=1e-10)
        flat_run = simulate(flat, span, **options)
        placed_run = simulate(placed, span, **options)
        for vertex in range(4):
            assert np.array_equal(flat_run[f"Osc_{vertex}"],
                                  placed_run[f"Osc_{vertex}"])
        d = 0.1 * math.pi
        assert extract_partition(flat_run, 4, d) == \
            extract_partition(placed_run, 4, d)

    def test_different_placements_same_partition(self):
        rng = np.random.default_rng(4)
        phases = rng.uniform(0.0, 2.0 * math.pi, 6)
        partitions = []
        costs = []
        for placer in (place_random, place_greedy,
                       place_kernighan_lin):
            placement = placer(TWO_CLUSTERS, 6, seed=1)
            graph = placed_network(TWO_CLUSTERS, placement,
                                   initial_phases=phases)
            run = simulate(graph, (0.0, 100e-9), n_points=60,
                           rtol=1e-8, atol=1e-10)
            partitions.append(extract_partition(run, 6,
                                                0.1 * math.pi))
            costs.append(placement.coupling_cost)
        assert partitions[0] == partitions[1] == partitions[2]
        assert len(set(costs)) > 1  # placements genuinely differ
