"""Tests for the CNN language, templates, and the Fig. 11 experiment."""

import numpy as np
import pytest

import repro
from repro.paradigms.cnn import (BLACK, WHITE, CORNER_TEMPLATE,
                                 EDGE_TEMPLATE, CnnTemplate,
                                 cnn_grid, cnn_language, default_image,
                                 edge_detector, expected_edges,
                                 hw_cnn_language, pixel_errors, run_cnn,
                                 sat, sat_ni, state_grid, to_ascii)


class TestActivations:
    def test_sat_linear_region(self):
        assert sat(0.5) == 0.5
        assert sat(-0.5) == -0.5

    def test_sat_saturates(self):
        assert sat(3.0) == 1.0
        assert sat(-3.0) == -1.0

    def test_sat_corners(self):
        assert sat(1.0) == 1.0
        assert sat(-1.0) == -1.0

    def test_sat_ni_saturates_smoothly(self):
        assert sat_ni(1.0) == 1.0
        assert sat_ni(-1.0) == -1.0
        assert sat_ni(5.0) == 1.0
        # Smooth approach: value just below 1 stays below 1.
        assert sat_ni(0.99) < 1.0

    def test_sat_ni_steeper_at_origin(self):
        x = 0.05
        assert sat_ni(x) > sat(x)

    def test_both_odd_functions(self):
        for x in (0.2, 0.7, 1.5):
            assert sat(-x) == -sat(x)
            assert sat_ni(-x) == pytest.approx(-sat_ni(x))


class TestImages:
    def test_default_image_binary_with_margin(self):
        image = default_image(16)
        assert set(np.unique(image)) <= {BLACK, WHITE}
        assert (image[0:2, :] == WHITE).all()
        assert (image[:, -2:] == WHITE).all()
        assert (image == BLACK).any()

    def test_expected_edges_hollow_out_interior(self):
        image = np.full((7, 7), WHITE)
        image[1:6, 1:6] = BLACK
        edges = expected_edges(image)
        assert edges[3, 3] == WHITE   # interior
        assert edges[1, 1] == BLACK   # corner of the square
        assert edges[1, 3] == BLACK   # edge of the square
        assert edges[0, 0] == WHITE   # background

    def test_binarize_and_errors(self):
        actual = np.array([[0.8, -0.2], [0.1, -0.9]])
        expected = np.array([[1.0, -1.0], [-1.0, -1.0]])
        assert pixel_errors(actual, expected) == 1

    def test_ascii_roundtrip_symbols(self):
        art = to_ascii(np.array([[1.0, -1.0, 0.0]]))
        assert art == "#.?"


class TestGridBuilder:
    def test_counts(self):
        image = default_image(8)
        graph = cnn_grid(image, EDGE_TEMPLATE)
        stats = graph.stats()
        assert stats["nodes"] == 3 * 64          # V + Out + Inp
        assert stats["states"] == 64             # one per cell

    def test_validates(self):
        image = default_image(8)
        graph = cnn_grid(image, EDGE_TEMPLATE)
        report = repro.validate(graph, backend="flow")
        assert report.valid, report.violations[:3]

    def test_bad_template_shape_rejected(self):
        with pytest.raises(repro.GraphError):
            CnnTemplate(a=((0, 0), (0, 0)), b=EDGE_TEMPLATE.b, z=0.0)

    def test_non_2d_image_rejected(self):
        with pytest.raises(repro.GraphError):
            cnn_grid(np.zeros(5), EDGE_TEMPLATE)

    def test_grid_check_rejects_non_neighbor_edge(self):
        language = cnn_language()
        image = default_image(8)
        graph = cnn_grid(image, EDGE_TEMPLATE, language=language)
        # Smuggle in a long-range feedback edge.
        graph.add_edge("cheat", "Out_0_0", "V_5_5", "fE")
        graph.edge("cheat").attrs["g"] = 1.0
        report = repro.validate(graph, backend="flow")
        assert not report.valid
        assert any("non-neighbor" in v for v in report.violations)

    def test_unknown_variant_rejected(self):
        with pytest.raises(repro.GraphError):
            edge_detector(default_image(8), "cosmic_rays")


class TestEdgeDetection:
    @pytest.fixture(scope="class")
    def image(self):
        return default_image(10)

    @pytest.fixture(scope="class")
    def expected(self, image):
        return expected_edges(image)

    def test_ideal_detects_edges(self, image, expected):
        run = run_cnn(edge_detector(image), 10, 10, expected=expected)
        assert run.errors == 0
        assert run.converged

    def test_bias_mismatch_slower_but_correct(self, image, expected):
        ideal = run_cnn(edge_detector(image), 10, 10,
                        expected=expected)
        bias = run_cnn(edge_detector(image, "bias_mismatch", seed=3),
                       10, 10, expected=expected)
        assert bias.errors == 0
        assert bias.converged_at > ideal.converged_at

    def test_nonideal_sat_faster_and_correct(self, image, expected):
        ideal = run_cnn(edge_detector(image), 10, 10,
                        expected=expected)
        nonideal = run_cnn(edge_detector(image, "nonideal_sat"),
                           10, 10, expected=expected)
        assert nonideal.errors == 0
        assert nonideal.converged_at < ideal.converged_at

    def test_template_mismatch_perturbs(self, image, expected):
        # Over a few seeds, g-mismatch must corrupt at least one run
        # (the paper's column C shows an incorrect output image).
        total_errors = 0
        for seed in range(4):
            run = run_cnn(
                edge_detector(image, "template_mismatch", seed=seed),
                10, 10, expected=expected)
            total_errors += run.errors
        assert total_errors > 0

    def test_snapshots_track_time(self, image, expected):
        run = run_cnn(edge_detector(image), 10, 10, expected=expected)
        assert set(run.snapshots) == {0.0, 0.25, 0.5, 0.75, 1.0}
        start = run.snapshots[0.0]
        assert np.allclose(start, 0.0)  # initial state

    def test_state_grid_reads_trajectory(self, image):
        run = run_cnn(edge_detector(image), 10, 10)
        grid = state_grid(run.trajectory, 10, 10, -1)
        assert grid.shape == (10, 10)
        assert np.abs(grid).max() > 0.9  # settled to saturations


class TestCornerTemplate:
    def test_detects_only_corners(self):
        image = np.full((9, 9), WHITE)
        image[2:7, 2:7] = BLACK
        graph = cnn_grid(image, CORNER_TEMPLATE)
        run = run_cnn(graph, 9, 9)
        output = run.output
        corners = {(2, 2), (2, 6), (6, 2), (6, 6)}
        for i in range(9):
            for j in range(9):
                expected = BLACK if (i, j) in corners else WHITE
                assert output[i, j] == expected, (i, j)


class TestDiffusionTemplate:
    def test_smoothing_reduces_spatial_variance(self):
        from repro.paradigms.cnn import DIFFUSION_TEMPLATE
        rng = np.random.default_rng(0)
        noise = rng.uniform(-0.5, 0.5, (8, 8))
        graph = cnn_grid(noise, DIFFUSION_TEMPLATE,
                         initial_state=noise)
        run = run_cnn(graph, 8, 8, t_end=2.0)
        initial_var = float(np.var(noise))
        final_var = float(np.var(run.snapshots[1.0]))
        assert final_var < 0.5 * initial_var

    def test_mean_roughly_preserved(self):
        from repro.paradigms.cnn import DIFFUSION_TEMPLATE
        rng = np.random.default_rng(1)
        noise = rng.uniform(-0.4, 0.4, (8, 8))
        graph = cnn_grid(noise, DIFFUSION_TEMPLATE,
                         initial_state=noise)
        run = run_cnn(graph, 8, 8, t_end=1.0)
        assert abs(float(run.snapshots[1.0].mean())) < \
            abs(float(noise.mean())) + 0.1


class TestHwCnnLanguage:
    def test_fEm_inherits_fE_rules_with_mismatched_weights(self):
        hw = hw_cnn_language()
        fem = hw.find_edge_type("fEm")
        assert fem.parent.name == "fE"
        assert fem.attrs["g"].datatype.mismatch is not None

    def test_vm_keeps_equilibria(self):
        """The Vm `mm` factor scales the whole RHS -> equilibria are
        unchanged; the final image must match the ideal one exactly."""
        image = default_image(8)
        expected = expected_edges(image)
        run = run_cnn(edge_detector(image, "bias_mismatch", seed=11),
                      8, 8, expected=expected, t_end=20.0)
        assert run.errors == 0
