"""Property tests for the GPAC paradigm: random linear ODE systems
compiled through the full Ark pipeline must match the matrix-exponential
solution, and the Π reduction must compute exact products."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.linalg import expm

import repro
from repro.core.builder import GraphBuilder
from repro.paradigms.gpac import gpac_language

FINITE = dict(allow_nan=False, allow_infinity=False)


@st.composite
def linear_system(draw):
    """A random stable-ish linear system dx/dt = A x with x(0) = x0."""
    n = draw(st.integers(1, 4))
    entries = st.floats(-1.0, 1.0, **FINITE)
    matrix = np.array([[draw(entries) for _ in range(n)]
                       for _ in range(n)])
    initial = np.array([draw(st.floats(-2.0, 2.0, **FINITE))
                        for _ in range(n)])
    return matrix, initial


def build_linear_graph(matrix: np.ndarray,
                       initial: np.ndarray):
    """Wire dx/dt = A x as integrators with W edges."""
    n = len(initial)
    builder = GraphBuilder(gpac_language(), "prop-linear")
    for i in range(n):
        builder.node(f"x{i}", "Int")
        builder.set_init(f"x{i}", float(initial[i]))
    edge = 0
    for i in range(n):
        for j in range(n):
            if i == j:
                builder.edge(f"x{i}", f"x{i}", f"e{edge}", "W")
            else:
                builder.edge(f"x{j}", f"x{i}", f"e{edge}", "W")
            builder.set_attr(f"e{edge}", "w", float(matrix[i, j]))
            edge += 1
    return builder.finish()


class TestLinearSystems:
    @given(linear_system())
    @settings(max_examples=20, deadline=None)
    def test_matches_matrix_exponential(self, system):
        matrix, initial = system
        graph = build_linear_graph(matrix, initial)
        assert repro.validate(graph).valid
        t_end = 1.0
        trajectory = repro.simulate(graph, (0.0, t_end), n_points=11,
                                    rtol=1e-10, atol=1e-12)
        for index, t in enumerate(trajectory.t):
            expected = expm(matrix * t) @ initial
            actual = np.array([trajectory[f"x{i}"][index]
                               for i in range(len(initial))])
            assert np.allclose(actual, expected, atol=1e-6), t


class TestMulReduction:
    @given(st.lists(st.tuples(st.floats(-2.0, 2.0, **FINITE),
                              st.floats(-2.0, 2.0, **FINITE)),
                    min_size=2, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_product_of_constants(self, factors):
        """A Mul fed by constant integrators computes the exact product
        of its weighted inputs (Π over w_k * x_k)."""
        builder = GraphBuilder(gpac_language(), "prop-mul")
        builder.node("p", "Mul")
        for k, (value, weight) in enumerate(factors):
            # An integrator with no incoming edges has dx/dt = 0: a
            # held constant.
            builder.node(f"c{k}", "Int")
            builder.set_init(f"c{k}", value)
            builder.edge(f"c{k}", "p", f"e{k}", "W")
            builder.set_attr(f"e{k}", "w", weight)
        # Ground the product into a sink integrator so validity holds.
        builder.node("sink", "Int")
        builder.set_init("sink", 0.0)
        builder.edge("p", "sink", "out", "W")
        builder.set_attr("out", "w", 1.0)
        graph = builder.finish()
        assert repro.validate(graph).valid

        trajectory = repro.simulate(graph, (0.0, 1.0), n_points=5)
        expected = float(np.prod([w * x for x, w in factors]))
        product = trajectory.algebraic("p")
        assert np.allclose(product, expected, rtol=1e-9, atol=1e-12)
        # The sink integrates the constant product: x(1) = expected.
        np.testing.assert_allclose(trajectory["sink"][-1], expected,
                                   rtol=1e-6, atol=1e-8)
