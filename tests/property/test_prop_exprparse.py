"""Property tests on the expression parser: printing an expression tree
and reparsing it must be semantics-preserving."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import expr as E
from repro.core.exprparse import parse_expression

_ROLES = ("s", "t", "e")
_ATTRS = ("c", "g", "k", "w")


@st.composite
def expressions(draw, depth=0):
    if depth >= 3:
        choices = ["const", "var", "attr", "time"]
    else:
        choices = ["const", "var", "attr", "time", "binop", "unop",
                   "call", "ite"]
    kind = draw(st.sampled_from(choices))
    if kind == "const":
        return E.Const(draw(st.floats(min_value=-100, max_value=100,
                                      allow_nan=False)))
    if kind == "var":
        return E.VarOf(draw(st.sampled_from(_ROLES[:2])))
    if kind == "attr":
        return E.AttrRef(draw(st.sampled_from(_ROLES)),
                         draw(st.sampled_from(_ATTRS)))
    if kind == "time":
        return E.Time()
    if kind == "binop":
        op = draw(st.sampled_from(["+", "-", "*"]))
        return E.BinOp(op, draw(expressions(depth=depth + 1)),
                       draw(expressions(depth=depth + 1)))
    if kind == "unop":
        return E.UnOp("-", draw(expressions(depth=depth + 1)))
    if kind == "call":
        fn = draw(st.sampled_from(["sin", "cos", "tanh"]))
        return E.Call(fn, (draw(expressions(depth=depth + 1)),))
    cond = E.Compare(draw(st.sampled_from(["<", "<=", ">", ">="])),
                     draw(expressions(depth=depth + 1)),
                     draw(expressions(depth=depth + 1)))
    return E.IfThenElse(cond, draw(expressions(depth=depth + 1)),
                        draw(expressions(depth=depth + 1)))


class Env(E.EvalContext):
    def time(self):
        return 1.25

    def var(self, node):
        return {"s": 0.75, "t": -0.5}[node]

    def attr(self, kind, owner, attr):
        return {"c": 2.0, "g": 0.5, "k": -1.0, "w": 3.0}[attr]


@given(expressions())
@settings(max_examples=150, deadline=None)
def test_print_parse_roundtrip(expr):
    printed = str(expr)
    reparsed = parse_expression(printed)
    env = Env()
    original = expr.evaluate(env)
    again = reparsed.evaluate(env)
    if isinstance(original, float) and math.isnan(original):
        assert isinstance(again, float) and math.isnan(again)
    else:
        assert again == original


@given(expressions())
@settings(max_examples=100, deadline=None)
def test_substitute_then_print_parses(expr):
    mapping = {"s": E.Substitution("V_0", "node"),
               "t": E.Substitution("I_0", "node"),
               "e": E.Substitution("E_0", "edge")}
    rewritten = expr.substitute(mapping)
    reparsed = parse_expression(str(rewritten))
    assert isinstance(reparsed, E.Expr)
    assert E.referenced_roles(reparsed) <= {"V_0", "I_0", "E_0"}
