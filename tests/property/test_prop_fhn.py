"""Property test: random FHN chains compiled through the full Ark
pipeline must match the independent scipy integration of the same
network."""

import numpy as np
from hypothesis import example, given, settings
from hypothesis import strategies as st

import repro
from repro.paradigms.fhn import (NeuronSpec, fhn_reference,
                                 neuron_chain, neuron_ring,
                                 resting_point)


@st.composite
def chain_case(draw):
    n = draw(st.integers(2, 5))
    coupling = draw(st.floats(0.0, 2.0, allow_nan=False))
    stimulate = draw(st.integers(0, n - 1))
    # Rings need >= 3 neurons (a 2-ring is rejected by the builder).
    ring = draw(st.booleans()) if n >= 3 else False
    spec = NeuronSpec(
        a=draw(st.floats(0.5, 0.9, allow_nan=False)),
        b=draw(st.floats(0.6, 1.0, allow_nan=False)),
        eps=draw(st.floats(0.05, 0.2, allow_nan=False)),
        bias=draw(st.floats(-0.2, 0.6, allow_nan=False)))
    return n, coupling, stimulate, ring, spec


@given(chain_case())
# Near-threshold neurons (this bias/b corner sits next to the spiking
# bifurcation) amplify integration error to O(1e-2) at rtol=1e-9, so
# the comparison runs tighter; keep the discovered corner pinned.
@example(case=(2, 0.0, 0, False,
               NeuronSpec(a=0.5, b=0.8492995777448051, eps=0.125,
                          bias=0.5703125)))
@settings(max_examples=10, deadline=None)
def test_network_matches_scipy(case):
    n, coupling, stimulate, ring, spec = case
    build = neuron_ring if ring else neuron_chain
    graph = build(n, spec, coupling=coupling, stimulate=stimulate,
                  stimulus=1.5)
    assert repro.validate(graph).valid
    run = repro.simulate(graph, (0.0, 40.0), n_points=201, rtol=1e-11,
                         atol=1e-13)
    rest_v, rest_w = resting_point(spec)
    v0 = np.full(n, rest_v)
    v0[stimulate] = 1.5
    reference = fhn_reference(n, spec, coupling, ring, v0,
                              np.full(n, rest_w), run.t)
    worst = max(np.abs(run[f"U_{k}"] - reference[k]).max()
                for k in range(n))
    assert worst < 1e-6
