"""Property test: time dilation commutes with simulation for random
speedups and horizons — x_dilated(t) == x_base(speedup * t)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.dilation import dilate
from repro.paradigms.gpac import harmonic_oscillator

TIGHT = dict(rtol=1e-10, atol=1e-12)


@given(st.floats(0.05, 50.0, allow_nan=False),
       st.floats(1.0, 8.0, allow_nan=False))
@settings(max_examples=15, deadline=None)
def test_dilation_rescales_time(speedup, horizon):
    graph = harmonic_oscillator(omega=1.3)
    base = repro.simulate(graph, (0.0, horizon), n_points=41, **TIGHT)
    fast = repro.simulate(dilate(graph, speedup),
                          (0.0, horizon / speedup), n_points=41,
                          **TIGHT)
    np.testing.assert_allclose(fast["x"], base["x"], atol=1e-6)
    np.testing.assert_allclose(fast["v"], base["v"], atol=1e-6)
