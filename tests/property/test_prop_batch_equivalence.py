"""Property tests: the batched ensemble engine must reproduce the
serial scipy path row for row — same seeds, same output grid,
solver-tolerance agreement — on real paradigm workloads (one OBC and
one TLN, per the mismatch studies the engine exists for)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.compiler import compile_graph
from repro.paradigms.obc import maxcut_network
from repro.paradigms.tln import TLineSpec, mismatched_tline
from repro.sim import NumpyBackend, compile_batch, solve_batch

#: Comparison threshold: both solvers run at rtol=1e-7/atol=1e-9 but
#: accumulate *global* error independently, so row agreement is checked
#: a few orders above the local tolerance (and far below signal scale).
#: ATOL sits at 5e-6 — hypothesis found mismatch draws (e.g. gm seed
#: 9870) where the two error-control histories legitimately diverge by
#: ~2e-6 on a 2e-3-amplitude tail sample.
RTOL = 1e-4
ATOL = 5e-6

EDGES_4CYCLE = [(0, 1), (1, 2), (2, 3), (3, 0)]


def _serial_rows(systems, t_span, grid):
    return [repro.simulate(system, t_span, t_eval=grid)
            for system in systems]


class TestObcMaxcutEquivalence:
    @given(base_seed=st.integers(0, 10_000),
           n_instances=st.integers(2, 6))
    @settings(max_examples=8, deadline=None)
    def test_rows_match_serial(self, base_seed, n_instances):
        rng = np.random.default_rng(base_seed)
        phases = rng.uniform(0.0, 2.0 * math.pi, 4)
        t_span = (0.0, 30e-9)
        systems = [
            compile_graph(maxcut_network(
                EDGES_4CYCLE, 4, initial_phases=phases,
                edge_type="Cpl_ofs", seed=base_seed * 100 + k))
            for k in range(n_instances)]
        grid = np.linspace(*t_span, 40)
        batch = solve_batch(compile_batch(systems), t_span, t_eval=grid)
        for row, reference in enumerate(
                _serial_rows(systems, t_span, grid)):
            np.testing.assert_allclose(
                batch.instance(row).y, reference.y,
                rtol=RTOL, atol=RTOL * 2.0 * math.pi)


class TestArrayBackendEquivalence:
    """numpy-vs-xp: the default backend must be *bit-identical* under
    every spelling, and the functional (immutable-kernel) emission —
    the contract jax receives — must agree at float64 round-off on
    arbitrary mismatch draws."""

    @given(kind=st.sampled_from(["cint", "gm"]),
           base_seed=st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_explicit_numpy_spec_bit_identical(self, kind, base_seed):
        spec = TLineSpec(n_segments=6)
        t_span = (0.0, 4e-8)
        systems = [
            compile_graph(mismatched_tline(kind, spec,
                                           seed=base_seed * 10 + k))
            for k in range(3)]
        grid = np.linspace(*t_span, 60)
        default = solve_batch(compile_batch(systems), t_span,
                              t_eval=grid)
        explicit = solve_batch(systems, t_span, t_eval=grid,
                               array_backend="numpy:float64")
        np.testing.assert_array_equal(default.y, explicit.y)

    @given(base_seed=st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_functional_emission_matches_mutable(self, base_seed):
        spec = TLineSpec(n_segments=6)
        t_span = (0.0, 4e-8)
        systems = [
            compile_graph(mismatched_tline("gm", spec,
                                           seed=base_seed * 10 + k))
            for k in range(3)]
        grid = np.linspace(*t_span, 60)
        mutable = solve_batch(compile_batch(systems), t_span,
                              t_eval=grid)
        functional = solve_batch(
            systems, t_span, t_eval=grid,
            array_backend=NumpyBackend(mutable_kernels=False))
        np.testing.assert_allclose(functional.y, mutable.y,
                                   rtol=1e-12, atol=1e-12)


class TestTlnMismatchEquivalence:
    @given(kind=st.sampled_from(["cint", "gm"]),
           base_seed=st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_rows_match_serial(self, kind, base_seed):
        spec = TLineSpec(n_segments=6)
        t_span = (0.0, 4e-8)
        systems = [
            compile_graph(mismatched_tline(kind, spec,
                                           seed=base_seed * 10 + k))
            for k in range(3)]
        grid = np.linspace(*t_span, 60)
        batch = solve_batch(compile_batch(systems), t_span, t_eval=grid)
        for row, reference in enumerate(
                _serial_rows(systems, t_span, grid)):
            np.testing.assert_allclose(
                batch.instance(row)["OUT_V"], reference["OUT_V"],
                rtol=RTOL, atol=ATOL)
