"""Property test: random *uncoupled* CNN templates (B-template only,
self-feedback A-center 2) settle to the sign of their net drive — the
fixed-point theorem behind every thresholding template, checked through
the full language -> graph -> compiler -> simulator pipeline."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paradigms.cnn import (WHITE, CnnTemplate, binarize, cnn_grid,
                                 run_cnn)

SIZE = 5


@st.composite
def uncoupled_case(draw):
    """A random B template + bias and a random binary image, built so
    that every constraint holds by construction (no filtering):

    * kernel entries in {-1, 0, 1} and |z| <= 1.5 keep the folded
      border bias inside the language's z range [-10, 10] (the fold
      adds at most the 8 off-center entries);
    * a half-integer z makes every net drive a half-integer, so the
      drive never sits on the decision boundary (margin >= 0.5).
    """
    entries = st.integers(-1, 1)
    b = tuple(tuple(draw(entries) for _ in range(3)) for _ in range(3))
    z = draw(st.integers(-2, 1)) + 0.5
    bits = draw(st.lists(st.booleans(), min_size=SIZE * SIZE,
                         max_size=SIZE * SIZE))
    image = np.where(np.array(bits).reshape(SIZE, SIZE), 1.0, -1.0)

    # Net drive per cell: w_ij = sum B * u_neighborhood + z, with the
    # white virtual frame folded in at the borders.
    padded = np.pad(image, 1, constant_values=WHITE)
    drives = np.empty((SIZE, SIZE))
    kernel = np.asarray(b, dtype=float)
    for i in range(SIZE):
        for j in range(SIZE):
            patch = padded[i:i + 3, j:j + 3]
            drives[i, j] = float((kernel * patch).sum()) + z
    assert np.abs(drives).min() >= 0.5
    return b, z, image, drives


@given(uncoupled_case())
@settings(max_examples=12, deadline=None)
def test_uncoupled_template_settles_to_drive_sign(case):
    b, z, image, drives = case
    template = CnnTemplate(
        a=((0, 0, 0), (0, 2, 0), (0, 0, 0)),
        b=b, z=z, name="prop-uncoupled")
    graph = cnn_grid(image, template, boundary=WHITE)
    run = run_cnn(graph, SIZE, SIZE, t_end=16.0)
    expected = binarize(drives)
    assert np.array_equal(run.output, expected)
