"""Property tests on datatypes, mismatch sampling, and range algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.datatypes import Mismatch, RealType, integer
from repro.core.mismatch import MismatchSampler
from repro.errors import DatatypeError

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e9, max_value=1e9)


@st.composite
def real_types(draw):
    lo = draw(finite)
    width = draw(st.floats(min_value=0.0, max_value=1e9,
                           allow_nan=False))
    return RealType(lo, lo + width)


@given(real_types(), finite)
def test_check_accepts_iff_in_range(datatype, value):
    inside = datatype.lo <= value <= datatype.hi
    if inside:
        assert datatype.check(value) == value
    else:
        try:
            datatype.check(value)
            raised = False
        except DatatypeError:
            raised = True
        assert raised


@given(real_types(), real_types())
def test_subrange_is_containment(a, b):
    assert a.is_subrange_of(b) == (b.lo <= a.lo and a.hi <= b.hi)


@given(real_types())
def test_subrange_reflexive(datatype):
    assert datatype.is_subrange_of(datatype)


@given(real_types(), real_types(), real_types())
def test_subrange_transitive(a, b, c):
    if a.is_subrange_of(b) and b.is_subrange_of(c):
        assert a.is_subrange_of(c)


@given(st.integers(0, 2**31 - 1), st.text(min_size=1, max_size=8),
       st.text(min_size=1, max_size=8),
       st.floats(min_value=-100, max_value=100, allow_nan=False))
@settings(max_examples=60)
def test_mismatch_deterministic_per_key(seed, element, attr, nominal):
    annotation = Mismatch(0.01, 0.05)
    a = MismatchSampler(seed).sample(element, attr, annotation, nominal)
    b = MismatchSampler(seed).sample(element, attr, annotation, nominal)
    assert a == b


@given(st.integers(0, 2**31 - 1),
       st.floats(min_value=0.1, max_value=100, allow_nan=False))
@settings(max_examples=60)
def test_mismatch_within_ten_sigma(seed, nominal):
    annotation = Mismatch(0.0, 0.1)
    value = MismatchSampler(seed).sample("n", "a", annotation, nominal)
    assert abs(value - nominal) <= 10 * annotation.sigma(nominal)


@given(st.integers(0, 2**31 - 1))
def test_integer_mismatch_stays_integer(seed):
    value = MismatchSampler(seed).resolve(
        "n", "k", integer(-1000, 1000, mm=(5.0, 0.0)), 10)
    assert isinstance(value, int)


@given(st.floats(min_value=-50, max_value=50, allow_nan=False),
       st.floats(min_value=0, max_value=5),
       st.floats(min_value=0, max_value=5))
def test_sigma_formula(nominal, s0, s1):
    annotation = Mismatch(s0, s1)
    assert annotation.sigma(nominal) == s0 + abs(nominal) * s1
