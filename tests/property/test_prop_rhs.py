"""Property tests: the codegen RHS must match the interpreter RHS on
randomly generated graphs and states — the two backends are independent
implementations of the compiled equations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.builder import GraphBuilder
from repro.core.compiler import compile_graph


def _random_language():
    lang = repro.Language("prop")
    lang.node_type("X", order=1,
                   attrs=[("tau", repro.real(0.1, 10.0))])
    lang.node_type("F", order=0)
    lang.edge_type("W", attrs=[("w", repro.real(-3.0, 3.0))])
    lang.prod("prod(e:W,s:X->s:X) s <= -var(s)/s.tau")
    lang.prod("prod(e:W,s:X->t:X) t <= e.w*var(s)/t.tau")
    lang.prod("prod(e:W,s:X->t:F) t <= sin(var(s))*e.w")
    lang.prod("prod(e:W,s:F->t:X) t <= e.w*var(s)")
    return lang


@st.composite
def random_graph(draw):
    lang = _random_language()
    n_nodes = draw(st.integers(2, 6))
    builder = GraphBuilder(lang, "prop-graph")
    names = []
    for k in range(n_nodes):
        # The first node is always dynamic so coupling targets exist.
        kind = "X" if k == 0 else draw(st.sampled_from(["X", "X",
                                                        "F"]))
        name = f"n{k}_{kind}"
        builder.node(name, kind)
        names.append((name, kind))
        if kind == "X":
            builder.set_attr(name, "tau",
                             draw(st.floats(0.5, 5.0)))
            builder.set_init(name, draw(st.floats(-2.0, 2.0)))
            builder.edge(name, name, f"self{k}", "W")
            builder.set_attr(f"self{k}", "w", 0.0)
    x_nodes = [n for n, kind in names if kind == "X"]
    f_nodes = [n for n, kind in names if kind == "F"]
    edge_id = 0
    for src, kind in names:
        targets = draw(st.lists(
            st.sampled_from(x_nodes), max_size=2, unique=True))
        for dst in targets:
            if src == dst:
                continue
            builder.edge(src, dst, f"e{edge_id}", "W")
            builder.set_attr(f"e{edge_id}", "w",
                             draw(st.floats(-2.0, 2.0)))
            edge_id += 1
    # Feed every F node from some X so it has a defining production.
    for index, f_node in enumerate(f_nodes):
        if x_nodes:
            builder.edge(x_nodes[index % len(x_nodes)], f_node,
                         f"feed{index}", "W")
            builder.set_attr(f"feed{index}", "w",
                             draw(st.floats(-2.0, 2.0)))
    return builder.finish()


@given(random_graph(), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_codegen_matches_interpreter(graph, state_seed):
    system = compile_graph(graph)
    rng = np.random.default_rng(state_seed)
    y = rng.normal(scale=2.0, size=system.n_states)
    t = float(rng.uniform(0.0, 10.0))
    dy_interp = system.rhs("interpreter")(t, y)
    dy_codegen = system.rhs("codegen")(t, y)
    assert np.allclose(dy_interp, dy_codegen, rtol=1e-12, atol=1e-12)


@given(random_graph())
@settings(max_examples=15, deadline=None)
def test_short_simulations_agree(graph):
    system = compile_graph(graph)
    a = repro.simulate(system, (0.0, 0.5), n_points=20,
                       backend="interpreter")
    b = repro.simulate(system, (0.0, 0.5), n_points=20,
                       backend="codegen")
    assert np.allclose(a.y, b.y, rtol=1e-8, atol=1e-10)
