"""Property tests: the ILP and max-flow `described` backends must agree
on arbitrary assignment problems, and both must match a brute-force
enumerator on small instances."""

from itertools import product

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validation import MatchClause, SELF
from repro.core.validator import _described_flow, _described_milp


def _clauses(bounds):
    return [MatchClause(lo, hi, "E", SELF) for lo, hi in bounds]


def _brute_force(matrix: np.ndarray, clauses) -> bool:
    """Enumerate every edge->clause assignment (tiny instances only)."""
    n_edges, n_clauses = matrix.shape
    if n_edges == 0:
        return all(c.lo == 0 for c in clauses)
    for assignment in product(range(n_clauses), repeat=n_edges):
        if any(not matrix[i, j] for i, j in enumerate(assignment)):
            continue
        counts = [0] * n_clauses
        for j in assignment:
            counts[j] += 1
        if all(c.lo <= counts[j] <= c.hi
               for j, c in enumerate(clauses)):
            return True
    return False


@st.composite
def assignment_problem(draw):
    n_edges = draw(st.integers(0, 5))
    n_clauses = draw(st.integers(1, 4))
    matrix = np.array(
        [[draw(st.booleans()) for _ in range(n_clauses)]
         for _ in range(n_edges)], dtype=bool).reshape(n_edges,
                                                       n_clauses)
    bounds = []
    for _ in range(n_clauses):
        lo = draw(st.integers(0, 3))
        extra = draw(st.integers(0, 3))
        hi = lo + extra if draw(st.booleans()) else float("inf")
        bounds.append((lo, hi))
    return matrix, _clauses(bounds)


@given(assignment_problem())
@settings(max_examples=120, deadline=None)
def test_backends_agree(problem):
    matrix, clauses = problem
    assert _described_milp(matrix, clauses) == \
        _described_flow(matrix, clauses)


@given(assignment_problem())
@settings(max_examples=80, deadline=None)
def test_backends_match_brute_force(problem):
    matrix, clauses = problem
    expected = _brute_force(matrix, clauses)
    assert _described_flow(matrix, clauses) == expected
    assert _described_milp(matrix, clauses) == expected


@given(st.integers(0, 6), st.integers(0, 6))
@settings(max_examples=40, deadline=None)
def test_exact_cardinality_on_full_matrix(n_edges, required):
    """With every edge matching a single clause [k,k], feasibility is
    exactly n_edges == k."""
    matrix = np.ones((n_edges, 1), dtype=bool)
    clauses = _clauses([(required, required)])
    expected = n_edges == required
    assert _described_flow(matrix, clauses) == expected
    assert _described_milp(matrix, clauses) == expected
