"""Property tests: unparse -> parse round trips on randomly generated
languages preserve the type system and the compiled dynamics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.builder import GraphBuilder
from repro.lang import parse_program
from repro.lang.unparse import unparse_language

_REDUCTIONS = ("sum", "mul")


@st.composite
def random_language(draw):
    lang = repro.Language("randlang")
    n_node_types = draw(st.integers(1, 3))
    node_types = []
    for index in range(n_node_types):
        attrs = []
        for a in range(draw(st.integers(0, 2))):
            lo = draw(st.floats(-10, 0))
            hi = draw(st.floats(0, 10))
            mm = (0.0, draw(st.floats(0.01, 0.5))) if draw(
                st.booleans()) else None
            attrs.append((f"a{a}", repro.real(lo, hi, mm=mm)))
        name = f"N{index}"
        lang.node_type(name, order=draw(st.integers(1, 2)),
                       reduction=draw(st.sampled_from(_REDUCTIONS)),
                       attrs=attrs)
        node_types.append(name)
    lang.edge_type("E", attrs=[("w", repro.real(-5, 5))])
    # A self rule per node type plus one cross rule.
    for name in node_types:
        lang.prod(f"prod(e:E,s:{name}->s:{name}) s <= -var(s)")
    src = draw(st.sampled_from(node_types))
    dst = draw(st.sampled_from(node_types))
    lang.prod(f"prod(e:E,s:{src}->t:{dst}) t <= e.w*var(s)")
    lang.cstr(f"cstr {node_types[0]} "
              f"{{acc[match(0,inf,E,{node_types[0]}->"
              f"[{','.join(node_types)}]),"
              f" match(0,inf,E,[{','.join(node_types)}]->"
              f"{node_types[0]}), match(0,inf,E,{node_types[0]})]}}")
    return lang, (src, dst)


@given(random_language())
@settings(max_examples=30, deadline=None)
def test_round_trip_structure(case):
    lang, _ = case
    source = unparse_language(lang)
    reparsed = parse_program(source).languages["randlang"]
    assert set(reparsed.node_types()) == set(lang.node_types())
    assert set(reparsed.edge_types()) == set(lang.edge_types())
    assert len(reparsed.productions()) == len(lang.productions())
    assert len(reparsed.constraints()) == len(lang.constraints())
    for name, node_type in lang.node_types().items():
        again = reparsed.find_node_type(name)
        assert again.order == node_type.order
        assert again.reduction == node_type.reduction
        assert set(again.attrs) == set(node_type.attrs)
        for attr, decl in node_type.attrs.items():
            assert again.attrs[attr].datatype == decl.datatype


@given(random_language(), st.floats(-1.0, 1.0))
@settings(max_examples=20, deadline=None)
def test_round_trip_dynamics(case, w):
    lang, (src, dst) = case
    reparsed = parse_program(
        unparse_language(lang)).languages["randlang"]

    def build(language):
        builder = GraphBuilder(language, "pair")
        for name, type_name in (("a", src), ("b", dst)):
            if not builder.graph.has_node(name):
                builder.node(name, type_name)
                node_type = language.find_node_type(type_name)
                for attr in node_type.attrs:
                    builder.set_attr(name, attr, 0.0)
                builder.set_init(name, 1.0)
                builder.edge(name, name, f"s_{name}", "E")
                builder.set_attr(f"s_{name}", "w", 0.0)
        if src != dst:
            builder.edge("a", "b", "c", "E")
            builder.set_attr("c", "w", w)
        return builder.finish()

    t_orig = repro.simulate(build(lang), (0.0, 0.5), n_points=20)
    t_new = repro.simulate(build(reparsed), (0.0, 0.5), n_points=20)
    assert np.allclose(t_orig.y, t_new.y)
