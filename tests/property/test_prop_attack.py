"""Property tests for the PUF attack feature map: the parity expansion
must be a well-formed (and, at full degree, orthogonal) basis."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.puf.attack import (LogisticModel, challenge_features,
                              n_features)


@given(st.integers(1, 6), st.integers(1, 6))
@settings(max_examples=60)
def test_feature_width_matches_formula(n_bits, degree):
    challenges = [0, (1 << n_bits) - 1]
    features = challenge_features(challenges, n_bits, degree)
    assert features.shape == (2, n_features(n_bits, degree))


@given(st.integers(1, 5), st.integers(1, 5), st.data())
@settings(max_examples=60)
def test_features_are_signs(n_bits, degree, data):
    challenge = data.draw(st.integers(0, (1 << n_bits) - 1))
    features = challenge_features([challenge], n_bits, degree)
    assert set(np.unique(features)) <= {-1.0, 1.0}


@given(st.integers(1, 4))
@settings(max_examples=20)
def test_full_degree_basis_is_orthogonal(n_bits):
    """Over the complete challenge space, the degree-n parity basis is
    orthogonal: X^T X = 2^n I. This is what makes the features a
    lossless re-encoding of the challenge."""
    space = 1 << n_bits
    features = challenge_features(list(range(space)), n_bits,
                                  degree=n_bits)
    gram = features.T @ features
    assert np.array_equal(gram, space * np.eye(features.shape[1]))


@given(st.integers(2, 4), st.data())
@settings(max_examples=20, deadline=None)
def test_any_boolean_function_learnable_at_full_degree(n_bits, data):
    """With the complete orthogonal basis and the full truth table, the
    logistic model represents *any* boolean function of the challenge —
    the reason attack degree is the security-relevant knob."""
    space = 1 << n_bits
    labels = np.array([[data.draw(st.integers(0, 1))]
                       for _ in range(space)], dtype=float)
    features = challenge_features(list(range(space)), n_bits,
                                  degree=n_bits)
    model = LogisticModel(learning_rate=2.0, epochs=3000, l2=0.0)
    model.fit(features, labels)
    assert model.accuracy(features, labels)[0] == 1.0


@given(st.integers(1, 5), st.integers(1, 5))
@settings(max_examples=40)
def test_degree_monotone_in_features(n_bits, degree):
    narrower = n_features(n_bits, degree)
    wider = n_features(n_bits, degree + 1)
    assert wider >= narrower
    if degree < n_bits:
        assert wider > narrower
