"""Tests for the GmC circuit substrate: netlist model, nodal analysis,
synthesis, and the §4.5 DG-vs-circuit comparison."""

import numpy as np
import pytest

import repro
from repro.circuits import (Capacitor, Conductance, CurrentSource,
                            Netlist, Transconductor, assemble,
                            compare_dg_netlist, relative_rmse,
                            simulate_netlist, synthesize_gmc)
from repro.errors import GraphError
from repro.paradigms.tln import (TLineSpec, branched_tline,
                                 linear_tline, mismatched_tline)


class TestNetlistModel:
    def test_nets_enumerated_in_order(self):
        netlist = Netlist()
        netlist.capacitors.append(Capacitor("a", 1e-9))
        netlist.capacitors.append(Capacitor("b", 1e-9))
        netlist.transconductors.append(Transconductor("b", "a", 1.0))
        assert netlist.nets() == ["a", "b"]

    def test_check_requires_capacitor_everywhere(self):
        netlist = Netlist()
        netlist.capacitors.append(Capacitor("a", 1e-9))
        netlist.conductances.append(Conductance("b", 1.0))
        with pytest.raises(GraphError):
            netlist.check()

    def test_check_rejects_double_capacitor(self):
        netlist = Netlist()
        netlist.capacitors.append(Capacitor("a", 1e-9))
        netlist.capacitors.append(Capacitor("a", 1e-9))
        with pytest.raises(GraphError):
            netlist.check()

    def test_element_validation(self):
        with pytest.raises(GraphError):
            Capacitor("a", -1e-9)
        with pytest.raises(GraphError):
            Conductance("a", -1.0)


class TestNodalAnalysis:
    def test_rc_decay(self):
        netlist = Netlist()
        netlist.capacitors.append(Capacitor("v", 1.0))
        netlist.conductances.append(Conductance("v", 1.0))
        netlist.initial_voltages["v"] = 1.0
        trajectory = simulate_netlist(netlist, (0.0, 2.0),
                                      n_points=100)
        assert trajectory["v"][-1] == pytest.approx(np.exp(-2.0),
                                                    rel=1e-4)

    def test_vccs_integrator(self):
        # C dv/dt = gm * u with u held at 1 V by a stiff source.
        netlist = Netlist()
        netlist.capacitors.append(Capacitor("u", 1.0))
        netlist.conductances.append(Conductance("u", 1e6))
        netlist.sources.append(CurrentSource("u", lambda t: 1e6))
        netlist.capacitors.append(Capacitor("v", 1.0))
        netlist.transconductors.append(Transconductor("v", "u", 2.0))
        trajectory = simulate_netlist(netlist, (0.0, 1.0),
                                      n_points=100, method="LSODA")
        assert trajectory["v"][-1] == pytest.approx(2.0, rel=1e-2)

    def test_assemble_shapes(self):
        netlist = Netlist()
        netlist.capacitors.append(Capacitor("a", 1e-9))
        netlist.capacitors.append(Capacitor("b", 2e-9))
        netlist.transconductors.append(Transconductor("b", "a", 0.5))
        system = assemble(netlist)
        assert system.n_nets == 2
        assert system.capacitance[system.index["b"]] == 2e-9
        assert system.conductance[system.index["b"],
                                  system.index["a"]] == -0.5


class TestSynthesis:
    def test_line_synthesizes(self, small_spec):
        netlist = synthesize_gmc(linear_tline(small_spec))
        counts = netlist.element_count()
        # One capacitor per V/I node; two transconductors per line edge.
        graph = linear_tline(small_spec)
        n_line_nodes = sum(1 for n in graph.nodes
                           if n.type.name in ("V", "I"))
        assert counts["capacitors"] == n_line_nodes
        assert counts["sources"] == 1

    def test_off_edges_skipped(self, small_spec):
        from repro.paradigms.tln import branched_tline_function
        fn = branched_tline_function(TLineSpec(n_segments=4),
                                     branch_segments=2)
        on = synthesize_gmc(fn(br=1))
        off = synthesize_gmc(fn(br=0))
        assert off.element_count()["transconductors"] == \
            on.element_count()["transconductors"] - 2

    def test_mismatch_propagates(self, small_spec):
        nominal = synthesize_gmc(mismatched_tline("gm", small_spec,
                                                  seed=None))
        mismatched = synthesize_gmc(mismatched_tline("gm", small_spec,
                                                     seed=1))
        gm_nominal = sorted(t.gm for t in nominal.transconductors)
        gm_mm = sorted(t.gm for t in mismatched.transconductors)
        assert gm_nominal != gm_mm

    def test_rejects_foreign_graphs(self):
        lang = repro.Language("foreign")
        lang.node_type("Q", order=1)
        graph = repro.DynamicalGraph(lang)
        graph.add_node("q", "Q")
        with pytest.raises(GraphError):
            synthesize_gmc(graph)

    def test_scale_must_be_positive(self, small_spec):
        with pytest.raises(GraphError):
            synthesize_gmc(linear_tline(small_spec), scale=0.0)


class TestRelativeRmse:
    def test_identical_signals(self):
        signal = np.sin(np.linspace(0, 5, 100))
        assert relative_rmse(signal, signal) == 0.0

    def test_scaled_error(self):
        signal = np.ones(100)
        assert relative_rmse(signal, signal * 1.01) == \
            pytest.approx(0.01)

    def test_zero_reference_floored(self):
        assert relative_rmse(np.zeros(10), np.zeros(10)) == 0.0


class TestSection45:
    """The paper's empirical validation: DG dynamics match the
    synthesized circuit within 1% RMSE."""

    def test_linear_line(self, small_spec):
        report = compare_dg_netlist(linear_tline(small_spec),
                                    (0.0, 4e-8))
        assert report.within(0.01), report.per_node

    def test_branched_line(self, small_spec):
        graph = branched_tline(small_spec, branch_segments=3)
        report = compare_dg_netlist(graph, (0.0, 4e-8))
        assert report.within(0.01)

    @pytest.mark.parametrize("kind", ["cint", "gm"])
    def test_mismatched_lines(self, kind, small_spec):
        graph = mismatched_tline(kind, small_spec, seed=7)
        report = compare_dg_netlist(graph, (0.0, 4e-8))
        assert report.within(0.01)

    def test_cint_scale_invariance(self, small_spec):
        graph = mismatched_tline("gm", small_spec, seed=2)
        a = compare_dg_netlist(graph, (0.0, 4e-8), scale=1.0)
        b = compare_dg_netlist(graph, (0.0, 4e-8), scale=1e-3)
        assert a.within(0.01) and b.within(0.01)

    def test_report_statistics(self, small_spec):
        report = compare_dg_netlist(linear_tline(small_spec),
                                    (0.0, 4e-8))
        assert 0.0 <= report.mean <= report.worst
        assert len(report.per_node) == \
            linear_tline(small_spec).stats()["states"]
