"""Tests for SPICE-deck emission from GmC netlists."""

import pytest

from repro.circuits import synthesize_gmc
from repro.circuits.netlist import (Capacitor, Conductance,
                                    CurrentSource, Netlist,
                                    Transconductor)
from repro.errors import GraphError
from repro.paradigms.tln import TLineSpec, linear_tline


@pytest.fixture()
def small_netlist():
    netlist = Netlist(name="unit")
    netlist.capacitors.append(Capacitor("a", 1e-9))
    netlist.capacitors.append(Capacitor("b", 2e-9))
    netlist.conductances.append(Conductance("a", 0.5))
    netlist.transconductors.append(Transconductor("b", "a", 1.5))
    netlist.sources.append(CurrentSource("a", lambda t: 1.0))
    netlist.initial_voltages["b"] = 0.25
    return netlist


class TestSpiceDeck:
    def test_cards_present(self, small_netlist):
        deck = small_netlist.to_spice(t_stop=1e-9, t_step=1e-10)
        assert deck.startswith("* unit")
        assert "C0 1 0 1.000000e-09" in deck
        assert "C1 2 0 2.000000e-09" in deck
        assert "R0 1 0 2.000000e+00" in deck  # 1/0.5 S
        assert "G0 0 2 1 0 1.500000e+00" in deck
        assert "I0 0 1 PWL(" in deck
        assert ".ic V(2)=2.500000e-01" in deck
        assert deck.rstrip().endswith(".end")

    def test_tran_card(self, small_netlist):
        deck = small_netlist.to_spice(t_stop=5e-8, t_step=1e-10)
        assert ".tran 1.000e-10 5.000e-08 uic" in deck

    def test_zero_conductances_omitted(self):
        netlist = Netlist()
        netlist.capacitors.append(Capacitor("a", 1e-9))
        netlist.conductances.append(Conductance("a", 0.0))
        deck = netlist.to_spice()
        assert "R0" not in deck

    def test_incomplete_netlist_rejected(self):
        netlist = Netlist()
        netlist.conductances.append(Conductance("a", 1.0))
        with pytest.raises(GraphError):
            netlist.to_spice()

    def test_full_line_deck(self):
        netlist = synthesize_gmc(linear_tline(TLineSpec(n_segments=4)))
        deck = netlist.to_spice(t_stop=2e-8, t_step=1e-9)
        # One C card per line node, VCCS pairs per coupling edge.
        assert deck.count("\nC") == \
            netlist.element_count()["capacitors"]
        assert deck.count("\nG") == \
            netlist.element_count()["transconductors"]
        assert deck.count("PWL(") == 1

    def test_pwl_tracks_waveform(self, small_netlist):
        deck = small_netlist.to_spice(t_stop=1e-9, t_step=5e-10)
        pwl = deck[deck.index("PWL("):]
        assert "0.0000e+00 1.000000e+00" in pwl  # fn(0) == 1.0
