"""Tests for the sensitivity-analysis toolkit
(`repro.analysis.sensitivity`), driven by GPAC and TLN graph families."""

import numpy as np
import pytest

from repro.analysis import (Sensitivity, SweepResult, format_tornado,
                            sweep, tornado)
from repro.paradigms.gpac import exponential_decay, harmonic_oscillator
from repro.paradigms.tln import TLineSpec, linear_tline


def final_x(trajectory):
    return trajectory.final("x")


class TestSweep:
    def test_decay_rate_sweep_monotone(self):
        result = sweep(lambda r: exponential_decay(rate=r),
                       final_x, [0.5, 1.0, 2.0], parameter="rate",
                       t_span=(0.0, 2.0), n_points=41)
        assert isinstance(result, SweepResult)
        # Faster decay -> smaller x(2).
        assert result.metrics[0] > result.metrics[1] > result.metrics[2]
        assert np.array_equal(result.values, [0.5, 1.0, 2.0])

    def test_metric_range_and_argbest(self):
        result = sweep(lambda r: exponential_decay(rate=r),
                       final_x, [0.5, 2.0], t_span=(0.0, 2.0),
                       n_points=21)
        assert result.metric_range == pytest.approx(
            result.metrics.max() - result.metrics.min())
        assert result.argbest(maximize=True).value == 0.5
        assert result.argbest(maximize=False).value == 2.0

    def test_sweep_accepts_tline_family(self):
        def family(termination):
            return linear_tline(TLineSpec(n_segments=8,
                                          termination=termination))

        def peak_out(trajectory):
            return float(np.abs(trajectory["OUT_V"]).max())

        result = sweep(family, peak_out, [0.5, 1.0, 2.0],
                       parameter="termination", t_span=(0.0, 4e-8),
                       n_points=81)
        # Matched termination (1.0) absorbs; mismatched reflects more
        # or less — the three runs must genuinely differ.
        assert len(set(np.round(result.metrics, 6))) == 3


class TestTornado:
    def test_ranks_omega_over_amplitude_for_frequency_metric(self):
        # Metric: x at a fixed time. Nudging omega shifts the phase
        # (large swing); nudging the amplitude only rescales (smaller
        # swing at t where cos is near +/-1... use a time where phase
        # sensitivity dominates).
        def factory(omega, amplitude):
            return harmonic_oscillator(omega=omega,
                                       amplitude=amplitude)

        sensitivities = tornado(
            factory, final_x,
            {"omega": 2.0, "amplitude": 1.0},
            relative_delta=0.1, t_span=(0.0, 10.0), n_points=201)
        assert [s.parameter for s in sensitivities][0] == "omega"
        assert sensitivities[0].swing > sensitivities[1].swing

    def test_sorted_descending(self):
        def factory(rate, unused):
            return exponential_decay(rate=rate)

        sensitivities = tornado(factory, final_x,
                                {"rate": 1.0, "unused": 3.0},
                                t_span=(0.0, 2.0), n_points=21)
        swings = [s.swing for s in sensitivities]
        assert swings == sorted(swings, reverse=True)
        # The dead parameter produces (numerically) zero swing.
        dead = [s for s in sensitivities if s.parameter == "unused"][0]
        assert dead.swing == pytest.approx(0.0, abs=1e-12)

    def test_zero_nominal_uses_absolute_delta(self):
        def factory(rate, bias):
            # bias shifts the initial value.
            return exponential_decay(rate=rate, initial=1.0 + bias)

        sensitivities = tornado(factory, final_x,
                                {"rate": 1.0, "bias": 0.0},
                                relative_delta=0.2,
                                t_span=(0.0, 1.0), n_points=21)
        bias_entry = [s for s in sensitivities
                      if s.parameter == "bias"][0]
        assert bias_entry.swing > 0.0

    def test_slope_sign(self):
        def factory(initial):
            return exponential_decay(rate=1.0, initial=initial)

        entry = tornado(factory, final_x, {"initial": 1.0},
                        t_span=(0.0, 1.0), n_points=21)[0]
        assert entry.slope > 0.0  # larger x0 -> larger x(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            tornado(lambda: None, final_x, {})
        with pytest.raises(ValueError):
            tornado(lambda x: None, final_x, {"x": 1.0},
                    relative_delta=0.0)


class TestFormatTornado:
    def test_bars_scale_with_swing(self):
        entries = [
            Sensitivity("big", 1.0, 0.0, 0.5, 1.0),
            Sensitivity("small", 1.0, 0.45, 0.5, 0.55),
        ]
        text = format_tornado(entries, width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert 1 <= lines[1].count("#") <= 3
        assert "big" in lines[0] and "small" in lines[1]

    def test_empty(self):
        assert "no parameters" in format_tornado([])
