"""Tests for the analysis toolkit (windows, spread, steady state,
phase)."""

import math

import numpy as np
import pytest

import repro
from repro.analysis import (energy_capture, ensemble_matrix,
                            ensemble_spread, fold_phase, is_settled,
                            observation_window, phase_distance,
                            settling_time, window_covers, window_spread)
from repro.core.simulator import Trajectory
from repro.paradigms.tln import TLineSpec, branched_tline, linear_tline


def _fake_trajectory(t, values, node="OUT_V"):
    """Minimal Trajectory stub over one named node."""

    class _Sys:
        def index_of(self, name, deriv=0):
            assert name == node
            return 0

    return Trajectory(t=np.asarray(t, dtype=float),
                      y=np.asarray(values, dtype=float)[None, :],
                      system=_Sys())


class TestObservationWindow:
    def test_window_brackets_activity(self):
        t = np.linspace(0, 10, 101)
        v = np.where((t > 2) & (t < 4), 1.0, 0.0)
        trajectory = _fake_trajectory(t, v)
        window = observation_window(trajectory, "OUT_V")
        assert 1.8 <= window[0] <= 2.2
        assert 3.8 <= window[1] <= 4.2

    def test_zero_signal_raises(self):
        trajectory = _fake_trajectory([0, 1, 2], [0, 0, 0])
        with pytest.raises(repro.SimulationError):
            observation_window(trajectory, "OUT_V")

    def test_branched_window_wider_than_linear(self):
        spec = TLineSpec(n_segments=10)
        lin = repro.simulate(linear_tline(spec), (0.0, 8e-8),
                             n_points=500)
        brn = repro.simulate(branched_tline(spec, branch_segments=6),
                             (0.0, 8e-8), n_points=500)
        w_lin = observation_window(lin, "OUT_V", threshold=0.1)
        w_brn = observation_window(brn, "OUT_V", threshold=0.1)
        # §2.2: the branched line needs a wider window for its echo.
        assert (w_brn[1] - w_brn[0]) > (w_lin[1] - w_lin[0])

    def test_energy_capture(self):
        t = np.linspace(0, 10, 101)
        v = np.where((t > 2) & (t < 4), 1.0, 0.0)
        trajectory = _fake_trajectory(t, v)
        assert energy_capture(trajectory, "OUT_V", (0, 10)) == \
            pytest.approx(1.0)
        assert energy_capture(trajectory, "OUT_V", (5, 10)) == \
            pytest.approx(0.0, abs=0.05)

    def test_window_covers(self):
        assert window_covers((0, 10), (2, 4))
        assert not window_covers((3, 10), (2, 4))


class TestSpread:
    def _ensemble(self):
        t = np.linspace(0, 1, 11)
        return [
            _fake_trajectory(t, np.full(11, level))
            for level in (0.0, 1.0, 2.0)
        ], t

    def test_matrix_shape(self):
        trajectories, t = self._ensemble()
        matrix = ensemble_matrix(trajectories, "OUT_V", t)
        assert matrix.shape == (3, 11)

    def test_spread_statistics(self):
        trajectories, t = self._ensemble()
        stats = ensemble_spread(trajectories, "OUT_V", t)
        assert np.allclose(stats["mean"], 1.0)
        assert np.allclose(stats["min"], 0.0)
        assert np.allclose(stats["max"], 2.0)
        assert np.allclose(stats["std"], np.std([0.0, 1.0, 2.0]))

    def test_window_spread_scalar(self):
        trajectories, _ = self._ensemble()
        score = window_spread(trajectories, "OUT_V", (0.2, 0.8))
        assert score == pytest.approx(np.std([0.0, 1.0, 2.0]))

    def test_identical_ensemble_zero_spread(self):
        t = np.linspace(0, 1, 11)
        trajectories = [_fake_trajectory(t, np.sin(t))
                        for _ in range(4)]
        assert window_spread(trajectories, "OUT_V", (0, 1)) == 0.0

    def test_percentile_band_ordering(self):
        from repro.analysis import percentile_band
        t = np.linspace(0, 1, 11)
        trajectories = [_fake_trajectory(t, np.full(11, float(level)))
                        for level in range(10)]
        band = percentile_band(trajectories, "OUT_V", t)
        assert (band["lower"] <= band["median"]).all()
        assert (band["median"] <= band["upper"]).all()
        assert band["median"][0] == pytest.approx(4.5)

    def test_percentile_band_validates_bounds(self):
        from repro.analysis import percentile_band
        t = np.linspace(0, 1, 5)
        trajectories = [_fake_trajectory(t, t)]
        with pytest.raises(ValueError):
            percentile_band(trajectories, "OUT_V", t, lower=90,
                            upper=10)


class TestSteadyState:
    def test_settled_tail(self):
        t = np.linspace(0, 10, 101)
        v = np.exp(-t)
        trajectory = _fake_trajectory(t, v)
        assert is_settled(trajectory, "OUT_V", tolerance=1e-2)

    def test_not_settled(self):
        t = np.linspace(0, 10, 101)
        trajectory = _fake_trajectory(t, np.sin(t))
        assert not is_settled(trajectory, "OUT_V", tolerance=1e-2)

    def test_settling_time(self):
        t = np.linspace(0, 10, 1001)
        trajectory = _fake_trajectory(t, np.exp(-t))
        settle = settling_time(trajectory, "OUT_V", tolerance=1e-2)
        assert settle == pytest.approx(-math.log(1e-2), abs=0.3)

    def test_never_settles(self):
        t = np.linspace(0, 10, 101)
        trajectory = _fake_trajectory(t, t)  # still moving at the end
        assert settling_time(trajectory, "OUT_V",
                             tolerance=1e-6) is None


class TestPhase:
    def test_fold_phase_range(self):
        for phase in (-7.0, -0.1, 0.0, 3.0, 10 * math.pi):
            folded = fold_phase(phase)
            assert 0.0 <= folded < 2 * math.pi

    def test_fold_preserves_angle(self):
        assert fold_phase(2 * math.pi + 0.5) == pytest.approx(0.5)
        assert fold_phase(-0.5) == pytest.approx(2 * math.pi - 0.5)

    def test_phase_distance_symmetry(self):
        assert phase_distance(0.1, 2 * math.pi - 0.1) == \
            pytest.approx(0.2)

    def test_phase_distance_max_is_pi(self):
        assert phase_distance(0.0, math.pi) == pytest.approx(math.pi)
