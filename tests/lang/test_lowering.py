"""Unit tests for lowering parsed programs onto core objects."""

import pytest

import repro
from repro.errors import LanguageError, ParseError
from repro.lang import (parse_function, parse_language, parse_program)


class TestLanguageLowering:
    def test_types_lowered(self):
        lang = parse_language("""
        lang l {
            ntyp(1,sum) V {attr c=real[1e-10,1e-08], attr g=real[0,inf]};
            etyp E {};
        }
        """)
        v = lang.find_node_type("V")
        assert v.order == 1
        assert v.attrs["c"].datatype.lo == pytest.approx(1e-10)
        assert lang.find_edge_type("E") is not None

    def test_mm_lowered(self):
        lang = parse_language(
            "lang l { ntyp(1,sum) V {attr c=real[0,1] mm(0,0.1)}; }")
        annotation = lang.find_node_type("V").attrs["c"].datatype.mismatch
        assert annotation.s0 == 0.0 and annotation.s1 == 0.1

    def test_const_lowered(self):
        lang = parse_language(
            "lang l { ntyp(1,sum) V {attr c=real[0,1] const}; }")
        assert lang.find_node_type("V").attrs["c"].const

    def test_rules_lowered_and_checked(self):
        with pytest.raises(LanguageError):
            parse_language("""
            lang l { ntyp(1,sum) V {};
                     prod(e:E, s:V->t:V) t <= var(s); }
            """)

    def test_inheritance_across_programs(self):
        base = parse_language("lang base { ntyp(1,sum) V {}; etyp E {};"
                              " }")
        program = parse_program(
            "lang derived inherits base { ntyp(1,sum) Vm inherit V {};"
            " }",
            languages={"base": base})
        derived = program.languages["derived"]
        assert derived.parent is base
        assert derived.find_node_type("Vm").parent is \
            base.find_node_type("V")

    def test_unknown_parent_language(self):
        with pytest.raises(LanguageError):
            parse_program("lang d inherits ghost { ntyp(1,sum) X {}; }")

    def test_duplicate_language_rejected(self):
        with pytest.raises(LanguageError):
            parse_program("lang a { ntyp(1,sum) X {}; }"
                          " lang a { ntyp(1,sum) Y {}; }")

    def test_extern_binding_required(self):
        with pytest.raises(LanguageError):
            parse_program("lang l { ntyp(1,sum) V {};"
                          " extern-func grid; }")

    def test_extern_binding_used(self):
        calls = []

        def grid(graph):
            calls.append(graph)
            return True

        program = parse_program(
            "lang l { ntyp(1,sum) V {}; etyp E {};"
            " prod(e:E,s:V->s:V) s<=-var(s); extern-func grid; }",
            extern={"grid": grid})
        lang = program.languages["l"]
        builder = repro.GraphBuilder(lang)
        builder.node("v", "V")
        builder.edge("v", "v", "e", "E")
        repro.validate(builder.finish())
        assert calls

    def test_functions_registered(self):
        program = parse_program(
            "lang l { ntyp(1,sum) V {}; etyp E {};"
            " prod(e:E,s:V->s:V) s<=boost(var(s)); }",
            functions={"boost": lambda x: 2 * x})
        assert "boost" in program.languages["l"].functions()

    def test_parse_language_requires_single(self):
        with pytest.raises(ParseError):
            parse_language("lang a { ntyp(1,sum) X {}; }"
                           " lang b { ntyp(1,sum) Y {}; }")


class TestFunctionLowering:
    BASE = """
    lang l { ntyp(1,sum) X {attr tau=real[0,10]}; etyp W
    {attr w=real[-5,5]}; prod(e:W,s:X->s:X) s<=-var(s)/s.tau;
    prod(e:W,s:X->t:X) t<=e.w*var(s)/t.tau; }
    """

    def test_function_invocable(self):
        program = parse_program(self.BASE + """
        func f (w:real[-5,5]) uses l {
            node x:X; node y:X;
            edge <x,x> sx:W; edge <y,y> sy:W;
            edge <x,y> c:W;
            set-attr x.tau=1.0; set-attr y.tau=1.0;
            set-attr sx.w=0.0;  set-attr sy.w=0.0;
            set-attr c.w=w;
            set-init x(0)=1.0;
        }
        """)
        graph = program.functions["f"](w=1.5)
        assert graph.edge("c").attrs["w"] == 1.5

    def test_uses_unknown_language(self):
        with pytest.raises(LanguageError):
            parse_program("func f () uses ghost { }")

    def test_parse_function_helper(self):
        base = parse_language(self.BASE)
        fn = parse_function("""
        func g () uses l {
            node x:X; edge <x,x> s:W;
            set-attr x.tau=1.0; set-attr s.w=0.0;
        }
        """, languages={"l": base})
        graph = fn()
        assert graph.has_node("x")

    def test_lambda_func_val_lowered(self):
        program = parse_program("""
        lang wv { ntyp(0,sum) S {attr fn=fn(a0)}; }
        func f () uses wv {
            node s:S;
            set-attr s.fn = lambd(t): t*2;
        }
        """)
        graph = program.functions["f"]()
        assert graph.node("s").attrs["fn"](3.0) == 6.0

    def test_static_checks_run_at_lowering(self):
        with pytest.raises(Exception):
            parse_program(self.BASE + """
            func f () uses l { set-attr ghost.tau = 1.0; }
            """)
