"""Unit tests for the textual Ark parser (syntax level)."""

import math

import pytest

from repro.errors import ParseError
from repro.lang import parse
from repro.lang import ast


class TestLanguageSyntax:
    def test_minimal_language(self):
        program = parse("lang tiny { ntyp(1,sum) X {}; etyp E {}; }")
        lang = program.languages[0]
        assert lang.name == "tiny"
        assert lang.node_types[0].name == "X"
        assert lang.edge_types[0].name == "E"

    def test_dashed_language_name(self):
        program = parse("lang gmc-tln { ntyp(1,sum) X {}; }")
        assert program.languages[0].name == "gmc-tln"

    def test_dash_with_spaces_not_joined(self):
        with pytest.raises(ParseError):
            parse("lang gmc - tln { }")

    def test_inherits(self):
        program = parse("lang a { ntyp(1,sum) X {}; }"
                        " lang b inherits a { ntyp(1,sum) Y inherit X"
                        " {}; }")
        assert program.languages[1].inherits == "a"
        assert program.languages[1].node_types[0].inherits == "X"

    def test_node_type_attrs(self):
        program = parse(
            "lang l { ntyp(1,sum) V {attr c=real[1e-10,1e-08],"
            " attr g=real[0,inf]}; }")
        attrs = program.languages[0].node_types[0].attrs
        assert attrs[0].name == "c"
        assert attrs[0].sig.lo == pytest.approx(1e-10)
        assert math.isinf(attrs[1].sig.hi)

    def test_mm_annotation(self):
        program = parse(
            "lang l { ntyp(1,sum) V {attr c=real[0,1] mm(0,0.1)}; }")
        sig = program.languages[0].node_types[0].attrs[0].sig
        assert sig.mm == (0.0, 0.1)

    def test_const_marker(self):
        program = parse(
            "lang l { ntyp(1,sum) V {attr c=real[0,1] const}; }")
        assert program.languages[0].node_types[0].attrs[0].sig.const

    def test_lambda_datatypes(self):
        program = parse(
            "lang l { ntyp(0,sum) S {attr fn=fn(a0),"
            " attr g2=lambd(a0,a1)}; }")
        attrs = program.languages[0].node_types[0].attrs
        assert attrs[0].sig.kind == "lambda" and attrs[0].sig.arity == 1
        assert attrs[1].sig.arity == 2

    def test_init_declaration(self):
        program = parse(
            "lang l { ntyp(2,sum) V {attr c=real[0,1],"
            " init(0) real[-1,1], init(1) real[-1,1]}; }")
        inits = program.languages[0].node_types[0].inits
        assert [i.index for i in inits] == [0, 1]

    def test_fixed_edge_type(self):
        program = parse("lang l { etyp fixed F {}; edge-type G fixed"
                        " {}; }")
        assert program.languages[0].edge_types[0].fixed
        assert program.languages[0].edge_types[1].fixed

    def test_negative_bounds(self):
        program = parse("lang l { ntyp(1,sum) V {attr z=real[-10,10]};"
                        " }")
        sig = program.languages[0].node_types[0].attrs[0].sig
        assert sig.lo == -10.0

    def test_long_form_keywords(self):
        program = parse(
            "lang l { node-type(1,sum) X {}; edge-type E {}; }")
        assert program.languages[0].node_types[0].name == "X"

    def test_unknown_statement_rejected(self):
        with pytest.raises(ParseError):
            parse("lang l { banana X {}; }")


class TestProdSyntax:
    def test_basic(self):
        program = parse(
            "lang l { ntyp(1,sum) V {attr c=real[0,1]}; etyp E {};"
            " prod(e:E, s:V->t:V) s <= -var(t)/s.c; }")
        rule = program.languages[0].prods[0]
        assert rule.edge_type == "E"
        assert rule.target == "s"
        assert not rule.off

    def test_off_suffix(self):
        program = parse(
            "lang l { ntyp(1,sum) V {}; etyp E {};"
            " prod(e:E, s:V->t:V) t <= 1e-12*var(s) off; }")
        assert program.languages[0].prods[0].off

    def test_self_rule(self):
        program = parse(
            "lang l { ntyp(1,sum) V {}; etyp E {};"
            " prod(e:E, s:V->s:V) s <= -var(s); }")
        rule = program.languages[0].prods[0]
        assert rule.src_role == rule.dst_role


class TestCstrSyntax:
    def test_acc_patterns(self):
        program = parse(
            "lang l { ntyp(1,sum) V {}; ntyp(1,sum) I {}; etyp E {};"
            " cstr V {acc[match(0,inf,E,V->[I]), match(1,1,E,V),"
            " match(0,1,E,[I]->V)]}; }")
        cstr = program.languages[0].cstrs[0]
        clauses = cstr.patterns[0].clauses
        assert [c.kind for c in clauses] == ["out", "self", "in"]

    def test_acc_and_rej(self):
        program = parse(
            "lang l { ntyp(1,sum) V {}; etyp E {};"
            " cstr V {acc[match(0,inf,E,V->[V])]"
            " rej[match(2,inf,E,V->[V])]}; }")
        cstr = program.languages[0].cstrs[0]
        assert [p.polarity for p in cstr.patterns] == ["acc", "rej"]

    def test_fig13_self_form(self):
        program = parse(
            "lang l { ntyp(1,sum) O {}; etyp C {};"
            " cstr O {acc[match(1,1,C,O)]}; }")
        clause = program.languages[0].cstrs[0].patterns[0].clauses[0]
        assert clause.kind == "self"

    def test_extern_func(self):
        program = parse("lang l { ntyp(1,sum) V {};"
                        " extern-func grid_check; }")
        assert program.languages[0].externs[0].name == "grid_check"


class TestFuncSyntax:
    SRC = """
    lang l { ntyp(1,sum) X {attr tau=real[0,10]}; etyp W {attr
    w=real[-5,5]}; }
    func br-func (br:int[0,1], w:real[-5,5]) uses l {
        node x0:X; node x1:X;
        edge <x0,x1> e0:W;
        set-attr x0.tau = 1.0;
        set-attr x1.tau = 2.0;
        set-attr e0.w = w;
        set-init x0(0) = 1.0;
        set-switch e0 when br == 1;
    }
    """

    def test_function_parsed(self):
        program = parse(self.SRC)
        fn = program.functions[0]
        assert fn.name == "br-func"
        assert fn.uses == "l"
        assert [a.name for a in fn.args] == ["br", "w"]

    def test_statement_kinds(self):
        program = parse(self.SRC)
        statements = program.functions[0].statements
        kinds = [type(s).__name__ for s in statements]
        assert kinds == ["NodeStmtAst", "NodeStmtAst", "EdgeStmtAst",
                         "SetAttrAst", "SetAttrAst", "SetAttrAst",
                         "SetInitAst", "SetSwitchAst"]

    def test_arg_reference_value(self):
        program = parse(self.SRC)
        set_w = program.functions[0].statements[5]
        assert set_w.value.kind == "arg"
        assert set_w.value.value == "w"

    def test_lambda_value(self):
        program = parse("""
        lang l { ntyp(0,sum) S {attr fn=fn(a0)}; }
        func f () uses l {
            node s:S;
            set-attr s.fn = lambd(t): sin(t)*2;
        }
        """)
        value = program.functions[0].statements[1].value
        assert value.kind == "lambda"
        assert value.value.params == ("t",)

    def test_set_edge_alias(self):
        program = parse("""
        lang l { ntyp(1,sum) X {}; etyp W {}; }
        func f (b:int[0,1]) uses l {
            node x:X; edge <x,x> e:W;
            set-edge e when b;
        }
        """)
        assert isinstance(program.functions[0].statements[-1],
                          ast.SetSwitchAst)

    def test_dotted_function_arg(self):
        program = parse("""
        lang l { ntyp(1,sum) X {attr tau=real[0,10]}; }
        func f (x.tau:real[0,10]) uses l { node x:X; }
        """)
        arg = program.functions[0].args[0]
        assert arg.applies_to == ("x", "tau")

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse("""
            lang l { ntyp(1,sum) X {}; }
            func f () uses l { destroy x; }
            """)
