"""Parse the paper's listings (Figs. 7-10, 12-14) through the textual
front-end — the shipped paradigm DSLs are written in this syntax, so
these tests pin the concrete syntax compatibility."""

import pytest

import repro
from repro.lang import parse_program
from repro.paradigms.cnn import CNN_SOURCE, HW_CNN_SOURCE, sat, sat_ni
from repro.paradigms.obc import (INTERCON_OBC_SOURCE, OBC_SOURCE,
                                 OFS_OBC_SOURCE)
from repro.paradigms.tln import GMC_TLN_SOURCE, TLN_SOURCE, pulse


class TestShippedSources:
    def test_tln_parses(self):
        program = parse_program(TLN_SOURCE,
                                functions={"pulse": pulse})
        lang = program.languages["tln"]
        assert set(lang.node_types()) == {"V", "I", "InpV", "InpI"}
        assert len(lang.productions()) == 10
        assert len(lang.constraints()) == 4

    def test_gmc_tln_parses_on_top(self):
        base = parse_program(TLN_SOURCE, functions={"pulse": pulse})
        program = parse_program(GMC_TLN_SOURCE,
                                languages=base.languages)
        gmc = program.languages["gmc-tln"]
        assert gmc.find_node_type("Vm").parent.name == "V"
        assert gmc.find_edge_type("Em").parent.name == "E"
        # Inherited + own production rules.
        assert len(gmc.productions()) == 18

    def test_cnn_parses(self):
        program = parse_program(CNN_SOURCE,
                                functions={"sat": sat,
                                           "sat_ni": sat_ni})
        lang = program.languages["cnn"]
        assert set(lang.node_types()) == {"V", "Out", "Inp"}
        assert set(lang.edge_types()) == {"iE", "fE"}

    def test_hw_cnn_parses_on_top(self):
        base = parse_program(CNN_SOURCE,
                             functions={"sat": sat, "sat_ni": sat_ni})
        program = parse_program(HW_CNN_SOURCE,
                                languages=base.languages)
        hw = program.languages["hw-cnn"]
        assert hw.find_node_type("Vm").attrs["mm"].datatype.mismatch \
            is not None
        assert hw.find_node_type("OutNL").parent.name == "Out"

    def test_obc_family_parses(self):
        base = parse_program(OBC_SOURCE)
        ofs = parse_program(OFS_OBC_SOURCE, languages=base.languages)
        intercon = parse_program(INTERCON_OBC_SOURCE,
                                 languages=base.languages)
        assert ofs.languages["ofs-obc"].find_edge_type(
            "Cpl_ofs").attrs["offset"].datatype.mismatch.s0 == 0.02
        cpl_g = intercon.languages["intercon-obc"].find_edge_type(
            "Cpl_g")
        assert cpl_g.attrs["cost"].datatype.lo == 10


class TestFig8Function:
    """The br-func listing of Fig. 8 (lightly completed: the paper's
    `...` elisions filled in on a 2-segment line)."""

    SOURCE = """
    func br-func (br:int[0,1]) uses tln {
        node IN_V:V; node OUT_V:V; node InpI_0:InpI;
        node I_0:I; node I_1:I; node V_0:V;
        node bI_0:I; node bV_end:V;

        edge <InpI_0,IN_V> E_in:E;
        edge <IN_V,I_0> E_0:E;   edge <I_0,V_0> E_1:E;
        edge <V_0,I_1> E_2:E;    edge <I_1,OUT_V> E_3:E;
        edge <IN_V,bI_0> E_6:E;  edge <bI_0,bV_end> E_7:E;

        edge <IN_V,IN_V> Es_0:E;   edge <OUT_V,OUT_V> Es_1:E;
        edge <V_0,V_0> Es_2:E;     edge <bV_end,bV_end> Es_3:E;
        edge <I_0,I_0> Es_4:E;     edge <I_1,I_1> Es_5:E;
        edge <bI_0,bI_0> Es_6:E;

        set-switch E_6 when br;

        set-attr InpI_0.fn = lambd(t): pulse(t, 0, 2e-8);
        set-attr InpI_0.g = 1.0;
        set-attr IN_V.c=1e-09;  set-attr IN_V.g=0.0;
        set-attr OUT_V.c=1e-09; set-attr OUT_V.g=1.0;
        set-attr V_0.c=1e-09;   set-attr V_0.g=0.0;
        set-attr bV_end.c=1e-09; set-attr bV_end.g=0.0;
        set-attr I_0.l=1e-09;   set-attr I_0.r=0.0;
        set-attr I_1.l=1e-09;   set-attr I_1.r=0.0;
        set-attr bI_0.l=1e-09;  set-attr bI_0.r=0.0;
        set-init IN_V(0)=0.0;   set-init OUT_V(0)=0.0;
        set-init V_0(0)=0.0;    set-init bV_end(0)=0.0;
        set-init I_0(0)=0.0;    set-init I_1(0)=0.0;
        set-init bI_0(0)=0.0;
    }
    """

    @pytest.fixture()
    def br_func(self):
        from repro.paradigms.tln import tln_language
        program = parse_program(self.SOURCE,
                                languages={"tln": tln_language()})
        return program.functions["br-func"]

    def test_br_zero_is_linear(self, br_func):
        graph = br_func(br=0)
        assert not graph.edge("E_6").on
        assert repro.validate(graph, backend="flow").valid

    def test_br_one_is_branched(self, br_func):
        graph = br_func(br=1)
        assert graph.edge("E_6").on
        assert repro.validate(graph, backend="flow").valid

    def test_both_simulate(self, br_func):
        for br in (0, 1):
            trajectory = repro.simulate(br_func(br=br), (0.0, 2e-8),
                                        n_points=50)
            assert abs(trajectory.final("OUT_V")) < 10.0


class TestGpacSources:
    def test_gpac_parses(self):
        from repro.paradigms.gpac import GPAC_SOURCE
        from repro.paradigms.tln import pulse
        program = parse_program(GPAC_SOURCE,
                                functions={"pulse": pulse})
        lang = program.languages["gpac"]
        assert set(lang.node_types()) == {"Int", "Mul", "Sum", "Src"}
        assert lang.find_node_type("Mul").reduction.value == "mul"
        assert len(lang.productions()) == 13

    def test_hw_gpac_parses_on_top(self):
        from repro.paradigms.gpac import GPAC_SOURCE, HW_GPAC_SOURCE
        from repro.paradigms.tln import pulse
        base = parse_program(GPAC_SOURCE, functions={"pulse": pulse})
        program = parse_program(HW_GPAC_SOURCE,
                                languages=base.languages)
        hw = program.languages["hw-gpac"]
        assert hw.find_node_type("IntL").parent.name == "Int"
        assert hw.find_node_type("IntL").attrs["leak"].datatype \
            .mismatch.s1 == 0.1
        assert hw.find_edge_type("Wm").attrs["w"].datatype \
            .mismatch.s1 == 0.05

    def test_gpac_unparse_roundtrip(self):
        from repro.lang.unparse import unparse_language
        from repro.paradigms.gpac import build_gpac_language
        from repro.paradigms.tln import pulse
        source = unparse_language(build_gpac_language())
        reparsed = parse_program(source, functions={"pulse": pulse})
        lang = reparsed.languages["gpac"]
        assert set(lang.node_types()) == {"Int", "Mul", "Sum", "Src"}
        assert len(lang.productions()) == 13
        assert len(lang.constraints()) == 4


class TestFhnSources:
    def test_fhn_parses(self):
        from repro.paradigms.fhn import FHN_SOURCE
        program = parse_program(FHN_SOURCE)
        lang = program.languages["fhn"]
        assert set(lang.node_types()) == {"U", "W"}
        assert set(lang.edge_types()) == {"S", "D"}
        assert len(lang.productions()) == 5

    def test_hw_fhn_parses_on_top(self):
        from repro.paradigms.fhn import FHN_SOURCE, HW_FHN_SOURCE
        base = parse_program(FHN_SOURCE)
        program = parse_program(HW_FHN_SOURCE,
                                languages=base.languages)
        hw = program.languages["hw-fhn"]
        assert hw.find_node_type("Um").attrs["i"].datatype \
            .mismatch.s0 == 0.02
        assert hw.find_edge_type("Dm").attrs["g"].datatype \
            .mismatch.s1 == 0.1
        # No new production rules: pure fallback inheritance.
        assert len(hw.productions()) == len(base.languages["fhn"]
                                            .productions())
