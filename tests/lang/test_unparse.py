"""Tests for the pretty-printer: unparse -> reparse round trips."""

import numpy as np
import pytest

import repro
from repro.core import function as F
from repro.core.exprparse import parse_expression
from repro.errors import ParseError
from repro.lang import parse_program
from repro.lang.unparse import (unparse_chain, unparse_datatype,
                                unparse_function, unparse_language)
from tests.conftest import build_leaky_language


class TestDatatypes:
    def test_real(self):
        assert unparse_datatype(repro.real(0, 1)) == "real[0,1]"

    def test_real_mm(self):
        text = unparse_datatype(repro.real(0.5, 2.0, mm=(0, 0.1)))
        assert text == "real[0.5,2] mm(0,0.1)"

    def test_int(self):
        assert unparse_datatype(repro.integer(1, 1)) == "int[1,1]"

    def test_inf_bounds(self):
        assert unparse_datatype(repro.real(0, repro.INF)) == \
            "real[0,inf]"

    def test_lambda(self):
        assert unparse_datatype(repro.lambd(2)) == "lambd(a0,a1)"


class TestLanguageRoundTrip:
    def test_leaky_round_trip(self):
        original = build_leaky_language()
        source = unparse_language(original)
        reparsed = parse_program(source).languages["leaky"]
        assert set(reparsed.node_types()) == set(original.node_types())
        assert len(reparsed.productions()) == \
            len(original.productions())
        assert len(reparsed.constraints()) == \
            len(original.constraints())

    def test_round_trip_preserves_dynamics(self):
        from tests.conftest import build_two_pole
        original = build_leaky_language()
        reparsed = parse_program(
            unparse_language(original)).languages["leaky"]
        t_orig = repro.simulate(build_two_pole(original), (0.0, 2.0),
                                n_points=50)
        t_new = repro.simulate(build_two_pole(reparsed), (0.0, 2.0),
                               n_points=50)
        assert np.allclose(t_orig.y, t_new.y)

    def test_chain_renders_ancestors_first(self, gmc):
        source = unparse_chain(gmc)
        assert source.index("lang tln") < source.index("lang gmc-tln")

    def test_tln_chain_round_trip_dynamics(self, gmc):
        from repro.paradigms.tln import (TLineSpec, linear_tline,
                                         pulse)
        source = unparse_chain(gmc)
        program = parse_program(source, functions={"pulse": pulse})
        reparsed = program.languages["gmc-tln"]
        spec = TLineSpec(n_segments=5)
        t_orig = repro.simulate(
            linear_tline(spec, edge_variant="gm", seed=3),
            (0.0, 2e-8), n_points=80)
        t_new = repro.simulate(
            linear_tline(spec, edge_variant="gm", seed=3,
                         language=reparsed),
            (0.0, 2e-8), n_points=80)
        assert np.allclose(t_orig["OUT_V"], t_new["OUT_V"])

    def test_cnn_chain_round_trip(self):
        from repro.paradigms.cnn import (hw_cnn_language, sat, sat_ni)
        source = unparse_chain(hw_cnn_language())
        program = parse_program(source,
                                functions={"sat": sat,
                                           "sat_ni": sat_ni},
                                extern={"grid_check": lambda g: True})
        reparsed = program.languages["hw-cnn"]
        assert set(reparsed.node_types()) == \
            {"V", "Out", "Inp", "Vm", "OutNL"}

    def test_const_marker_preserved(self):
        lang = repro.Language("c")
        lang.node_type("N", order=1, attrs=[
            ("fixed", repro.real(0, 1), {"const": True})])
        reparsed = parse_program(
            unparse_language(lang)).languages["c"]
        assert reparsed.find_node_type("N").attrs["fixed"].const

    def test_fixed_edge_preserved(self):
        lang = repro.Language("f")
        lang.node_type("N", order=1)
        lang.edge_type("F", fixed=True)
        reparsed = parse_program(
            unparse_language(lang)).languages["f"]
        assert reparsed.find_edge_type("F").fixed


class TestFunctionRoundTrip:
    def _function(self, lang):
        return F.ArkFunction(
            "pair", lang,
            args=[F.FuncArg("w", repro.real(-5, 5)),
                  F.FuncArg("on", repro.integer(0, 1))],
            statements=[
                F.NodeStmt("x0", "X"), F.NodeStmt("x1", "X"),
                F.EdgeStmt("x0", "x0", "l0", "W"),
                F.EdgeStmt("x1", "x1", "l1", "W"),
                F.EdgeStmt("x0", "x1", "c", "W"),
                F.SetAttrStmt("x0", "tau", F.Literal(1.0)),
                F.SetAttrStmt("x1", "tau", F.Literal(0.5)),
                F.SetAttrStmt("l0", "w", F.Literal(0.0)),
                F.SetAttrStmt("l1", "w", F.Literal(0.0)),
                F.SetAttrStmt("c", "w", F.ArgRef("w")),
                F.SetInitStmt("x0", 0, F.Literal(1.0)),
                F.SetSwitchStmt("c", parse_expression("on == 1")),
            ])

    def test_round_trip_same_graph(self):
        lang = build_leaky_language()
        original = self._function(lang)
        source = unparse_function(original)
        program = parse_program(source, languages={"leaky": lang})
        reparsed = program.functions["pair"]
        g1 = original(w=2.0, on=1)
        g2 = reparsed(w=2.0, on=1)
        assert g1.stats() == g2.stats()
        assert g1.edge("c").attrs == g2.edge("c").attrs
        t1 = repro.simulate(g1, (0.0, 1.0), n_points=30)
        t2 = repro.simulate(g2, (0.0, 1.0), n_points=30)
        assert np.allclose(t1.y, t2.y)

    def test_lambda_value_round_trip(self):
        lang = repro.Language("wave")
        lang.node_type("S", order=0, attrs=[("fn", repro.lambd(1))])
        fn = F.ArkFunction("f", lang, statements=[
            F.NodeStmt("s", "S"),
            F.SetAttrStmt("s", "fn", F.LambdaVal(
                ("t",), parse_expression("sin(t)+1")))])
        source = unparse_function(fn)
        reparsed = parse_program(source,
                                 languages={"wave": lang}).functions["f"]
        assert reparsed().node("s").attrs["fn"](0.0) == \
            pytest.approx(1.0)

    def test_opaque_callable_rejected(self):
        lang = repro.Language("opaque")
        lang.node_type("S", order=0, attrs=[("fn", repro.lambd(1))])
        fn = F.ArkFunction("f", lang, statements=[
            F.NodeStmt("s", "S"),
            F.SetAttrStmt("s", "fn", F.Literal(lambda t: t))])
        with pytest.raises(ParseError):
            unparse_function(fn)
