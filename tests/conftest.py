"""Shared fixtures: small reusable languages and graphs.

The *leaky* language (weighted leaky integrators) is the smallest
non-trivial Ark language: one node type, one edge type, a self rule and a
coupling rule, and a cardinality constraint. Most core tests use it; the
paradigm tests use the real TLN/CNN/OBC languages.
"""

from __future__ import annotations

import pytest

import repro
from repro.core.builder import GraphBuilder
from repro.core.language import Language


def build_leaky_language() -> Language:
    lang = Language("leaky")
    lang.node_type("X", order=1, reduction="sum",
                   attrs=[("tau", repro.real(0.1, 10.0))])
    lang.edge_type("W", attrs=[("w", repro.real(-5.0, 5.0))])
    lang.prod("prod(e:W, s:X->s:X) s <= -var(s)/s.tau")
    lang.prod("prod(e:W, s:X->t:X) t <= e.w*var(s)/t.tau")
    lang.cstr("cstr X {acc[match(1,1,W,X), match(0,inf,W,X->[X]),"
              " match(0,inf,W,[X]->X)]}")
    return lang


@pytest.fixture(scope="session")
def leaky_language() -> Language:
    return build_leaky_language()


def build_two_pole(language: Language, w: float = 2.0):
    builder = GraphBuilder(language, "two-pole")
    builder.node("x0", "X").set_attr("x0", "tau", 1.0)
    builder.node("x1", "X").set_attr("x1", "tau", 0.5)
    builder.edge("x0", "x0", "leak0", "W").set_attr("leak0", "w", 0.0)
    builder.edge("x1", "x1", "leak1", "W").set_attr("leak1", "w", 0.0)
    builder.edge("x0", "x1", "couple", "W").set_attr("couple", "w", w)
    builder.set_init("x0", 1.0).set_init("x1", 0.0)
    return builder.finish()


@pytest.fixture()
def two_pole(leaky_language):
    return build_two_pole(leaky_language)


@pytest.fixture(scope="session")
def tln():
    from repro.paradigms.tln import tln_language
    return tln_language()


@pytest.fixture(scope="session")
def gmc():
    from repro.paradigms.tln import gmc_tln_language
    return gmc_tln_language()


@pytest.fixture(scope="session")
def small_spec():
    from repro.paradigms.tln import TLineSpec
    return TLineSpec(n_segments=6)
