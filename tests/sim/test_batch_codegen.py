"""Unit tests for the batched RHS code generator."""

import numpy as np
import pytest

import repro
from repro.core.compiler import compile_graph
from repro.errors import SimulationError
from repro.sim import compile_batch, generate_batch_source, \
    group_by_signature
from repro.sim.batch_codegen import _AutoVector, _PerInstanceFn


def _mismatch_language():
    lang = repro.Language("mm")
    lang.node_type("X", order=1,
                   attrs=[("tau", repro.real(0.5, 2.0, mm=(0.0, 0.1))),
                          ("gain", repro.real(-5.0, 5.0))])
    lang.edge_type("S")
    lang.prod("prod(e:S,s:X->s:X) s <= -s.gain*var(s)/s.tau")
    return lang


def _instance(lang, seed, gain=1.0, init=1.0):
    builder = repro.GraphBuilder(lang, f"inst", seed=seed)
    builder.node("x", "X").set_attr("x", "tau", 1.0)
    builder.set_attr("x", "gain", gain)
    builder.edge("x", "x", "e", "S")
    builder.set_init("x", init)
    return compile_graph(builder.finish())


class TestStructuralSignature:
    def test_mismatch_seeds_share_signature(self):
        lang = _mismatch_language()
        signatures = {_instance(lang, seed).structural_signature()
                      for seed in range(4)}
        assert len(signatures) == 1

    def test_different_topology_differs(self, leaky_language):
        def build(coupled):
            builder = repro.GraphBuilder(leaky_language, "sig")
            builder.node("a", "X").set_attr("a", "tau", 1.0)
            builder.node("b", "X").set_attr("b", "tau", 1.0)
            builder.edge("a", "a", "la", "W")
            builder.set_attr("la", "w", 0.0)
            builder.edge("b", "b", "lb", "W")
            builder.set_attr("lb", "w", 0.0)
            if coupled:
                builder.edge("a", "b", "c", "W")
                builder.set_attr("c", "w", 1.0)
            builder.set_init("a", 1.0)
            return compile_graph(builder.finish())

        assert build(True).structural_signature() != \
            build(False).structural_signature()

    def test_group_by_signature_preserves_order(self):
        lang = _mismatch_language()
        systems = [_instance(lang, seed) for seed in range(3)]
        assert group_by_signature(systems) == [[0, 1, 2]]


class TestSourceGeneration:
    def test_shared_attributes_inline_per_instance_become_arrays(self):
        lang = _mismatch_language()
        # tau is mismatched (per-instance), gain is shared.
        systems = [_instance(lang, seed, gain=2.0) for seed in range(3)]
        namespace = {"_np": np}
        source = generate_batch_source(systems, namespace)
        assert "y[:, 0]" in source
        assert "2.0" in source              # shared gain inlined
        arrays = [v for k, v in namespace.items()
                  if k.startswith("_attr_")]
        assert len(arrays) == 1             # only tau is stacked
        assert arrays[0].shape == (3,)

    def test_incompatible_batch_raises(self, leaky_language):
        lang = _mismatch_language()
        a = _instance(lang, 0)
        builder = repro.GraphBuilder(leaky_language, "other")
        builder.node("x", "X").set_attr("x", "tau", 1.0)
        builder.edge("x", "x", "e", "W")
        builder.set_attr("e", "w", 0.0)
        builder.set_init("x", 1.0)
        b = compile_graph(builder.finish())
        with pytest.raises(SimulationError, match="compatible"):
            compile_batch([a, b])

    def test_empty_batch_raises(self):
        with pytest.raises(SimulationError):
            compile_batch([])


class TestBatchEvaluation:
    def test_matches_serial_rhs_rows(self):
        lang = _mismatch_language()
        systems = [_instance(lang, seed) for seed in range(5)]
        batch = compile_batch(systems)
        rng = np.random.default_rng(7)
        y = rng.normal(size=(5, 1))
        dy = batch(0.0, y)
        for row, system in enumerate(systems):
            expected = system.rhs("codegen")(0.0, y[row])
            np.testing.assert_allclose(dy[row], expected, rtol=1e-12)

    def test_y0_stacks_initial_states(self):
        lang = _mismatch_language()
        systems = [_instance(lang, seed, init=float(seed))
                   for seed in range(3)]
        batch = compile_batch(systems)
        np.testing.assert_allclose(batch.y0[:, 0], [0.0, 1.0, 2.0])

    def test_algebraic_values_broadcast(self):
        lang = repro.Language("alg")
        lang.node_type("X", order=1)
        lang.node_type("F", order=0)
        lang.edge_type("W", attrs=[("w", repro.real(-5, 5,
                                                    mm=(0.0, 0.2)))])
        lang.prod("prod(e:W,s:X->s:X) s <= -var(s)")
        lang.prod("prod(e:W,s:X->t:F) t <= e.w*var(s)")

        def instance(seed):
            builder = repro.GraphBuilder(lang, "alg", seed=seed)
            builder.node("x", "X").node("f", "F")
            builder.edge("x", "x", "s", "W").set_attr("s", "w", 0.0)
            builder.edge("x", "f", "e", "W").set_attr("e", "w", 2.0)
            builder.set_init("x", 1.0)
            return compile_graph(builder.finish())

        systems = [instance(seed) for seed in range(4)]
        batch = compile_batch(systems)
        y = np.ones((4, 1))
        values = batch.algebraic_values(0.0, y)["f"]
        assert values.shape == (4,)
        for row, system in enumerate(systems):
            expected = system.algebraic_values(0.0, y[row])["f"]
            assert values[row] == pytest.approx(expected)


class TestCallableAttributeSlots:
    def test_distinct_untagged_callables_get_distinct_slots(self):
        # Regression: multiple untagged callable attributes on one
        # system must not collide into one namespace slot (slot names
        # were once derived from a shadowed memoization key).
        lang = repro.Language("multi-src")
        lang.node_type("X", order=1,
                       attrs=[("f", repro.lambd(1)),
                              ("g", repro.lambd(1))])
        lang.edge_type("S")
        lang.prod("prod(e:S,s:X->s:X) s <= s.f(time) + s.g(time)")

        def instance():
            builder = repro.GraphBuilder(lang, "multi")
            builder.node("x", "X")
            builder.set_attr("x", "f", lambda t: 10.0)
            builder.set_attr("x", "g", lambda t: 1.0)
            builder.edge("x", "x", "e", "S")
            builder.set_init("x", 0.0)
            return compile_graph(builder.finish())

        systems = [instance() for _ in range(2)]
        batch = compile_batch(systems)
        dy = batch(0.0, np.zeros((2, 1)))
        np.testing.assert_allclose(dy[:, 0], [11.0, 11.0])
        for row, system in enumerate(systems):
            expected = system.rhs("codegen")(0.0, np.zeros(1))
            np.testing.assert_allclose(dy[row], expected)

    def test_repeated_attr_reference_reuses_slot(self):
        lang = repro.Language("reuse")
        lang.node_type("X", order=1,
                       attrs=[("f", repro.lambd(1))])
        lang.edge_type("S")
        lang.prod("prod(e:S,s:X->s:X) s <= s.f(time) + s.f(time)")
        builder = repro.GraphBuilder(lang, "reuse")
        builder.node("x", "X").set_attr("x", "f", lambda t: 3.0)
        builder.edge("x", "x", "e", "S")
        builder.set_init("x", 0.0)
        batch = compile_batch([compile_graph(builder.finish())])
        assert batch.source.count("_attr_0") == 2
        assert "_attr_1" not in batch.source
        np.testing.assert_allclose(batch(0.0, np.zeros((1, 1)))[:, 0],
                                   [6.0])


class TestVectorWrappers:
    def test_autovector_passes_arrays_through_broadcastable_fn(self):
        fn = _AutoVector(lambda x: x * 2.0)
        np.testing.assert_allclose(fn(np.array([1.0, 2.0])), [2.0, 4.0])

    def test_autovector_wraps_piecewise_fn(self):
        from repro.paradigms.cnn import sat_ni
        fn = _AutoVector(sat_ni)
        out = fn(np.array([-2.0, 0.5, 2.0]))
        np.testing.assert_allclose(
            out, [sat_ni(-2.0), sat_ni(0.5), sat_ni(2.0)])

    def test_per_instance_fn_indexes_array_args(self):
        fns = [lambda t, k=k: t + k for k in range(3)]
        fn = _PerInstanceFn(fns)
        np.testing.assert_allclose(fn(1.0), [1.0, 2.0, 3.0])
        np.testing.assert_allclose(fn(np.array([1.0, 2.0, 3.0])),
                                   [1.0, 3.0, 5.0])
