"""Tests for the trajectory cache: keying, bit-identity, backends."""

import numpy as np
import pytest

import repro
from repro.core.compiler import compile_graph
from repro.sim import (TrajectoryCache, run_ensemble,
                       run_noisy_ensemble)
from repro.sim.cache import resolve_cache


_LANG = repro.Language("cache-lang")
_LANG.node_type("X", order=1,
                attrs=[("tau", repro.real(0.2, 5.0, mm=(0.0, 0.1)))])
_LANG.edge_type("S")
_LANG.prod("prod(e:S,s:X->s:X) s <= -var(s)/s.tau")


def _factory(seed):
    builder = repro.GraphBuilder(_LANG, "cached", seed=seed)
    builder.node("x", "X").set_attr("x", "tau", 1.0)
    builder.edge("x", "x", "e", "S")
    builder.set_init("x", 1.0)
    return builder.finish()


def _systems(seeds):
    return [compile_graph(_factory(seed)) for seed in seeds]


_OPTIONS = {"t_span": (0.0, 1.0), "n_points": 40, "method": "rkf45",
            "rtol": 1e-7, "atol": 1e-9, "max_step": None,
            "t_eval": None, "dense": True}


class TestKeying:
    def test_key_is_deterministic(self):
        cache = TrajectoryCache()
        systems = _systems(range(3))
        assert cache.key_for(systems, "batch", _OPTIONS) == \
            cache.key_for(systems, "batch", _OPTIONS)

    def test_key_is_stable_across_recompiles(self):
        cache = TrajectoryCache()
        assert cache.key_for(_systems(range(3)), "batch", _OPTIONS) == \
            cache.key_for(_systems(range(3)), "batch", _OPTIONS)

    def test_key_tracks_attributes_grid_options_and_kind(self):
        cache = TrajectoryCache()
        base = cache.key_for(_systems(range(3)), "batch", _OPTIONS)
        assert cache.key_for(_systems(range(1, 4)), "batch",
                             _OPTIONS) != base
        assert cache.key_for(_systems(range(3)), "sde",
                             _OPTIONS) != base
        for name, value in (("n_points", 41), ("rtol", 1e-6),
                            ("t_span", (0.0, 2.0)), ("dense", False)):
            changed = dict(_OPTIONS, **{name: value})
            assert cache.key_for(_systems(range(3)), "batch",
                                 changed) != base

    def test_array_backend_spellings_share_one_key(self):
        # Regression (CACHE_SCHEMA 3): the array_backend option is
        # canonicalized before hashing, so every spelling of the
        # default resolves to the same entry — a sweep that sets
        # array_backend="numpy" must hit the cache a plain sweep
        # populated.
        cache = TrajectoryCache()
        base = cache.key_for(_systems(range(3)), "batch",
                             dict(_OPTIONS, array_backend=None))
        for spelling in ("numpy", "numpy:float64"):
            spelled = cache.key_for(
                _systems(range(3)), "batch",
                dict(_OPTIONS, array_backend=spelling))
            assert spelled == base, spelling

    def test_array_backend_name_and_dtype_change_key(self):
        # ...while a different backend or dtype policy — numerically
        # different results — can never collide with the default.
        cache = TrajectoryCache()
        base = cache.key_for(_systems(range(3)), "batch",
                             dict(_OPTIONS, array_backend=None))
        for spec in ("numpy:float32", "jax", "jax:float32", "cupy"):
            other = cache.key_for(_systems(range(3)), "batch",
                                  dict(_OPTIONS, array_backend=spec))
            assert other != base, spec

    def test_ndarray_option_values_hash(self):
        cache = TrajectoryCache()
        a = dict(_OPTIONS, t_eval=np.linspace(0.0, 1.0, 7))
        b = dict(_OPTIONS, t_eval=np.linspace(0.0, 1.0, 8))
        systems = _systems(range(2))
        assert cache.key_for(systems, "batch", a) != \
            cache.key_for(systems, "batch", b)

    def test_closure_functions_are_uncachable(self):
        # id()-keyed function identities can be recycled within a
        # process; refusing a key beats a wrong-answer collision.
        lang = repro.Language("cache-closure")
        lang.node_type("X", order=1)
        lang.edge_type("S")
        lang.register_function("rate", lambda x: 2.0 * x)
        lang.prod("prod(e:S,s:X->s:X) s <= -rate(var(s))")
        builder = repro.GraphBuilder(lang, "closure")
        builder.node("x", "X")
        builder.edge("x", "x", "e", "S")
        builder.set_init("x", 1.0)
        cache = TrajectoryCache()
        key = cache.key_for([compile_graph(builder.finish())], "batch",
                            _OPTIONS)
        assert key is None
        assert cache.stats.uncachable == 1


class TestStore:
    def test_lru_eviction(self):
        cache = TrajectoryCache(maxsize=2)
        t = np.linspace(0.0, 1.0, 3)
        for tag in ("a", "b", "c"):
            cache.put(tag, t, np.full((1, 1, 3), ord(tag), dtype=float))
        assert len(cache) == 2
        assert cache.get("a") is None  # evicted
        assert cache.get("c") is not None

    def test_get_returns_copies(self):
        cache = TrajectoryCache()
        t = np.linspace(0.0, 1.0, 3)
        cache.put("k", t, np.ones((1, 1, 3)))
        first_t, first_y = cache.get("k")
        first_y[:] = -1.0
        _, second_y = cache.get("k")
        assert np.all(second_y == 1.0)

    def test_disk_roundtrip(self, tmp_path):
        writer = TrajectoryCache(directory=tmp_path)
        t = np.linspace(0.0, 1.0, 5)
        y = np.arange(10.0).reshape(1, 2, 5)
        writer.put("deadbeef", t, y)
        reader = TrajectoryCache(directory=tmp_path)  # fresh memory
        hit = reader.get("deadbeef")
        assert hit is not None
        np.testing.assert_array_equal(hit[0], t)
        np.testing.assert_array_equal(hit[1], y)

    def test_disk_write_is_atomic_no_temp_leftovers(self, tmp_path):
        cache = TrajectoryCache(directory=tmp_path)
        cache.put("aa" * 8, np.linspace(0.0, 1.0, 4),
                  np.ones((2, 1, 4)))
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [f"{'aa' * 8}.npz"]  # no .tmp.npz survived

    def test_failed_disk_write_publishes_nothing(self, tmp_path,
                                                 monkeypatch):
        # A writer dying mid-serialization (ENOSPC, crash) must never
        # leave a torn .npz behind for a concurrent pool worker to
        # load: the destination name only ever appears via os.replace
        # of a fully fsynced temp file.
        cache = TrajectoryCache(directory=tmp_path)

        def explode(handle, **arrays):
            handle.write(b"partial garbage")
            raise OSError("disk full (forced)")

        monkeypatch.setattr(np, "savez", explode)
        with pytest.raises(OSError, match="disk full"):
            cache.put("bb" * 8, np.linspace(0.0, 1.0, 4),
                      np.ones((1, 1, 4)))
        assert list(tmp_path.iterdir()) == []  # no entry, no temp
        monkeypatch.undo()
        # The same key stores cleanly afterwards and loads back.
        cache.put("bb" * 8, np.linspace(0.0, 1.0, 4),
                  np.ones((1, 1, 4)))
        fresh = TrajectoryCache(directory=tmp_path)
        assert fresh.get("bb" * 8) is not None

    def test_concurrent_writers_same_key_leave_valid_entry(self,
                                                           tmp_path):
        # Two stores racing on one key (pool workers sharing a
        # --cache-dir): last rename wins, the entry is always a
        # complete npz, and no per-writer temp files leak.
        t = np.linspace(0.0, 1.0, 4)
        for value in (1.0, 2.0):
            TrajectoryCache(directory=tmp_path).put(
                "cc" * 8, t, np.full((1, 1, 4), value))
        reader = TrajectoryCache(directory=tmp_path)
        hit = reader.get("cc" * 8)
        assert hit is not None and np.all(hit[1] == 2.0)
        assert sorted(p.name for p in tmp_path.iterdir()) == \
            [f"{'cc' * 8}.npz"]

    def test_resolve_cache_forms(self, tmp_path):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        assert resolve_cache(True) is resolve_cache(True)
        disk = resolve_cache(str(tmp_path))
        assert isinstance(disk, TrajectoryCache)
        assert disk.directory == str(tmp_path)
        cache = TrajectoryCache()
        assert resolve_cache(cache) is cache
        with pytest.raises(TypeError):
            resolve_cache(42)


class TestEnsembleIntegration:
    def test_rerun_hits_and_is_bit_identical(self):
        cache = TrajectoryCache()
        first = run_ensemble(_factory, range(4), (0.0, 1.0),
                             n_points=40, cache=cache)
        second = run_ensemble(_factory, range(4), (0.0, 1.0),
                              n_points=40, cache=cache)
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        for a, b in zip(first.batches, second.batches):
            np.testing.assert_array_equal(a.y, b.y)
            np.testing.assert_array_equal(a.t, b.t)

    def test_explicit_numpy_spelling_hits_default_entry(self):
        cache = TrajectoryCache()
        first = run_ensemble(_factory, range(4), (0.0, 1.0),
                             n_points=40, cache=cache)
        second = run_ensemble(_factory, range(4), (0.0, 1.0),
                              n_points=40, cache=cache,
                              array_backend="numpy:float64")
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        for a, b in zip(first.batches, second.batches):
            np.testing.assert_array_equal(a.y, b.y)

    def test_float32_never_replays_float64_entry(self):
        cache = TrajectoryCache()
        run_ensemble(_factory, range(4), (0.0, 1.0), n_points=40,
                     cache=cache)
        single = run_ensemble(_factory, range(4), (0.0, 1.0),
                              n_points=40, cache=cache,
                              array_backend="numpy:float32")
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2
        assert single.batches[0].y.dtype == np.float32
        # ...and the float32 entry replays as float32, not widened.
        warm = run_ensemble(_factory, range(4), (0.0, 1.0),
                            n_points=40, cache=cache,
                            array_backend="numpy:float32")
        assert cache.stats.hits == 1
        assert warm.batches[0].y.dtype == np.float32
        np.testing.assert_array_equal(warm.batches[0].y,
                                      single.batches[0].y)

    def test_grid_change_misses(self):
        cache = TrajectoryCache()
        run_ensemble(_factory, range(4), (0.0, 1.0), n_points=40,
                     cache=cache)
        run_ensemble(_factory, range(4), (0.0, 1.0), n_points=50,
                     cache=cache)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2

    def test_disk_cache_survives_new_store(self, tmp_path):
        first = run_ensemble(_factory, range(4), (0.0, 1.0),
                             n_points=40, cache=str(tmp_path))
        fresh = TrajectoryCache(directory=tmp_path)
        second = run_ensemble(_factory, range(4), (0.0, 1.0),
                              n_points=40, cache=fresh)
        assert fresh.stats.hits == 1
        for a, b in zip(first.batches, second.batches):
            np.testing.assert_array_equal(a.y, b.y)


_NS_LANG = repro.Language("cache-ns")
_NS_LANG.node_type("X", order=1,
                   attrs=[("tau", repro.real(0.2, 5.0, mm=(0.0, 0.1)))])
_NS_LANG.edge_type("S")
_NS_LANG.prod("prod(e:S,s:X->s:X) s <= -var(s)/s.tau + noise(0.05)")


def _noisy_factory(seed):
    builder = repro.GraphBuilder(_NS_LANG, "noisy-cached", seed=seed)
    builder.node("x", "X").set_attr("x", "tau", 1.0)
    builder.edge("x", "x", "e", "S")
    builder.set_init("x", 1.0)
    return builder.finish()


class TestNoisyEnsembleIntegration:
    def test_noisy_rerun_is_bit_identical(self):
        cache = TrajectoryCache()
        first = run_noisy_ensemble(_noisy_factory, range(2), (0.0, 1.0),
                                   trials=3, n_points=30, cache=cache)
        second = run_noisy_ensemble(_noisy_factory, range(2),
                                    (0.0, 1.0), trials=3, n_points=30,
                                    cache=cache)
        assert cache.stats.hits >= 1
        for a, b in zip(first.batches, second.batches):
            np.testing.assert_array_equal(a.y, b.y)

    def test_trial_base_shift_misses(self):
        cache = TrajectoryCache()
        run_noisy_ensemble(_noisy_factory, range(2), (0.0, 1.0),
                           trials=3, n_points=30, cache=cache)
        hits_before = cache.stats.hits
        shifted = run_noisy_ensemble(_noisy_factory, range(2),
                                     (0.0, 1.0), trials=3, n_points=30,
                                     trial_base=7, cache=cache)
        # The SDE batch must re-integrate (fresh realizations); only
        # the deterministic reference may hit.
        assert shifted.batches
        assert cache.stats.hits == hits_before + 1
