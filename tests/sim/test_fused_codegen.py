"""Tests for the fused-RHS emitter (affine terms -> one batched matmul).

The fused path must be a pure performance transform: for every system it
applies to, the emitted RHS has to agree with the per-line emitter to
floating-point noise, and systems it cannot fuse (nonlinear reductions,
too-large dense tensors) must transparently keep the per-line source.
"""

import numpy as np

import repro
from repro.core.compiler import compile_graph
from repro.paradigms.tln import mismatched_tline
from repro.sim import compile_batch, solve_batch
from repro.sim import batch_codegen


def _chain_language():
    lang = repro.Language("fuse-chain")
    lang.node_type("X", order=1,
                   attrs=[("tau", repro.real(0.2, 5.0, mm=(0.0, 0.1))),
                          ("bias", repro.real(-2.0, 2.0))])
    lang.edge_type("W", attrs=[("w", repro.real(-5.0, 5.0,
                                                mm=(0.0, 0.05)))])
    lang.prod("prod(e:W,s:X->s:X) s <= -var(s)/s.tau + s.bias")
    lang.prod("prod(e:W,s:X->t:X) t <= e.w*var(s)")
    return lang


def _chain_systems(n_instances=5, n_nodes=4):
    lang = _chain_language()
    systems = []
    for seed in range(n_instances):
        builder = repro.GraphBuilder(lang, "chain", seed=seed)
        for i in range(n_nodes):
            builder.node(f"x{i}", "X")
            builder.set_attr(f"x{i}", "tau", 1.0 + 0.3 * i)
            builder.set_attr(f"x{i}", "bias", 0.1 * i)
            builder.edge(f"x{i}", f"x{i}", f"l{i}", "W")
            builder.set_attr(f"l{i}", "w", 0.0)
            builder.set_init(f"x{i}", 1.0 - 0.1 * i)
        for i in range(n_nodes - 1):
            builder.edge(f"x{i}", f"x{i+1}", f"c{i}", "W")
            builder.set_attr(f"c{i}", "w", 0.8)
        systems.append(compile_graph(builder.finish()))
    return systems


class TestFusedEmitter:
    def test_linear_system_fuses(self):
        batch = compile_batch(_chain_systems())
        assert batch.fused
        assert "_lin_A" in batch.source

    def test_fuse_false_keeps_per_line_source(self):
        batch = compile_batch(_chain_systems(), fuse=False)
        assert not batch.fused
        assert "_lin_A" not in batch.source

    def test_fused_rhs_matches_per_line(self):
        systems = _chain_systems()
        fused = compile_batch(systems)
        per_line = compile_batch(systems, fuse=False)
        rng = np.random.default_rng(3)
        for t in (0.0, 0.7):
            y = rng.normal(size=(len(systems), fused.n_states))
            np.testing.assert_allclose(fused(t, y.copy()),
                                       per_line(t, y.copy()),
                                       rtol=1e-12, atol=1e-12)

    def test_tline_fuses_with_input_residual(self):
        # The Fig. 4 t-line is affine plus one time-dependent pulse
        # input: everything except the input term must land in the
        # matmul, the pulse survives as a per-line residual.
        systems = [compile_graph(mismatched_tline("gm", seed=s))
                   for s in range(3)]
        fused = compile_batch(systems)
        assert fused.fused
        rhs_lines = [line for line in fused.source.splitlines()
                     if "dy[" in line]
        assert len(rhs_lines) == 2  # the matmul + the pulse residual
        per_line = compile_batch(systems, fuse=False)
        rng = np.random.default_rng(5)
        y = rng.normal(size=(3, fused.n_states))
        for t in (0.0, 2e-9, 5e-8):
            a, b = fused(t, y.copy()), per_line(t, y.copy())
            np.testing.assert_allclose(a, b, rtol=1e-10,
                                       atol=1e-10 * np.abs(b).max())

    def test_nonlinear_system_falls_back(self):
        # Kuramoto-style sin() coupling cannot fuse; the emitter must
        # keep the per-line source (and say so via `fused`).
        lang = repro.Language("fuse-nl")
        lang.node_type("P", order=1)
        lang.edge_type("K")
        lang.prod("prod(e:K,s:P->t:P) t <= sin(var(s)-var(t))")
        systems = []
        for seed in range(3):
            builder = repro.GraphBuilder(lang, "nl", seed=seed)
            builder.node("a", "P")
            builder.node("b", "P")
            builder.edge("a", "b", "e1", "K")
            builder.edge("b", "a", "e2", "K")
            builder.set_init("a", 0.3)
            builder.set_init("b", 1.1)
            systems.append(compile_graph(builder.finish()))
        batch = compile_batch(systems)
        assert not batch.fused

    def test_dense_limit_guards_memory(self, monkeypatch):
        monkeypatch.setattr(batch_codegen, "FUSE_DENSE_LIMIT", 4)
        batch = compile_batch(_chain_systems())
        assert not batch.fused

    def test_solve_batch_agrees_across_emitters(self):
        systems = _chain_systems()
        fused = solve_batch(compile_batch(systems), (0.0, 2.0),
                            n_points=60)
        per_line = solve_batch(compile_batch(systems, fuse=False),
                               (0.0, 2.0), n_points=60)
        np.testing.assert_allclose(fused.y, per_line.y, rtol=1e-6,
                                   atol=1e-9)

    def test_fused_matches_serial_scipy(self):
        systems = _chain_systems(n_instances=3)
        batch = solve_batch(compile_batch(systems), (0.0, 2.0),
                            n_points=60)
        for row, system in enumerate(systems):
            serial = repro.simulate(system, (0.0, 2.0), n_points=60)
            np.testing.assert_allclose(batch.y[row], serial.y,
                                       rtol=1e-4, atol=1e-7)
