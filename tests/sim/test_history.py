"""Tests for :mod:`repro.telemetry.history`: the benchmark history
store and the noise-aware regression check.

Covers the summarize/append/load round trip, corrupt-line resilience,
every ``check`` verdict (ok / regression / insufficient-history, with
and without ``exclude_latest``), atomic concurrent appends from
multiple processes, and the ``repro bench check`` CLI gate (exit 0
clean, exit 1 on an injected 2x slowdown).
"""

import json
import multiprocessing

import pytest

from repro.telemetry import RunReport
from repro.telemetry import history


def entry(workload="w", wall=1.0, timestamp=0.0, **extra):
    data = {"entry_schema": history.ENTRY_SCHEMA, "workload": workload,
            "sha": "abc1234", "timestamp": timestamp,
            "wall_seconds": wall, "counters": {}, "gauges": {},
            "meta": {}}
    data.update(extra)
    return data


def seed_history(path, walls, workload="w"):
    for k, wall in enumerate(walls):
        history.append_entry(path, entry(workload, wall, timestamp=k))


class TestStore:

    def test_summarize_append_load_round_trip(self, tmp_path):
        report = RunReport(
            meta={"driver": "bench", "n": 3},
            wall_seconds=1.25,
            counters={"solver.nfev": 42, "cache.hits": 7,
                      "not.summarized": 9},
            gauges={"mem.peak_rss_bytes": 1024,
                    "stream.rows": [1, 2]})
        made = history.summarize(report, "tline_ode[8x60]",
                                 sha="deadbee", timestamp=123.0)
        path = history.append_entry(tmp_path / "h.jsonl", made)
        loaded = history.load_history(path)
        assert len(loaded) == 1
        got = loaded[0]
        assert got["workload"] == "tline_ode[8x60]"
        assert got["sha"] == "deadbee"
        assert got["timestamp"] == 123.0
        assert got["wall_seconds"] == 1.25
        assert got["counters"] == {"solver.nfev": 42, "cache.hits": 7}
        assert got["gauges"] == {"mem.peak_rss_bytes": 1024}
        assert got["meta"] == {"driver": "bench", "n": "3"}

    def test_summarize_defaults_sha_and_timestamp(self):
        made = history.summarize(RunReport(wall_seconds=0.1), "w")
        assert isinstance(made["sha"], str) and made["sha"]
        assert made["timestamp"] > 0

    def test_load_sorts_and_filters_by_workload(self, tmp_path):
        path = tmp_path / "h.jsonl"
        history.append_entry(path, entry("b", 2.0, timestamp=5.0))
        history.append_entry(path, entry("a", 1.0, timestamp=9.0))
        history.append_entry(path, entry("a", 3.0, timestamp=1.0))
        assert [e["wall_seconds"] for e in
                history.load_history(path, "a")] == [3.0, 1.0]
        assert history.workloads(path) == ["a", "b"]
        assert history.latest(path, "a")["wall_seconds"] == 1.0
        assert history.latest(path, "zzz") is None

    def test_missing_file_is_empty(self, tmp_path):
        assert history.load_history(tmp_path / "absent.jsonl") == []
        assert history.workloads(tmp_path / "absent.jsonl") == []

    def test_corrupt_lines_cost_only_themselves(self, tmp_path):
        path = tmp_path / "h.jsonl"
        history.append_entry(path, entry("w", 1.0, timestamp=0.0))
        with path.open("a") as fh:
            fh.write("{truncated by a crashed wr\n")
            fh.write("[1, 2, 3]\n")
            fh.write(json.dumps({"entry_schema": 999,
                                 "workload": "w",
                                 "wall_seconds": 1.0}) + "\n")
            fh.write(json.dumps({"workload": "w",
                                 "wall_seconds": "fast"}) + "\n")
            fh.write("\n")
        history.append_entry(path, entry("w", 2.0, timestamp=1.0))
        walls = [e["wall_seconds"] for e in history.load_history(path)]
        assert walls == [1.0, 2.0]

    def test_entry_report_feeds_the_report_comparator(self):
        made = entry("w", 1.5, counters={"solver.nfev": 10},
                     gauges={"mem.peak_rss_bytes": 2048},
                     meta={"driver": "bench"})
        report = history.entry_report(made)
        assert report.wall_seconds == 1.5
        assert report.counters == {"solver.nfev": 10}
        assert report.gauges == {"mem.peak_rss_bytes": 2048}
        assert report.meta["workload"] == "w"
        assert report.meta["sha"] == "abc1234"


class TestCheck:

    def test_insufficient_history_is_soft(self, tmp_path):
        path = tmp_path / "h.jsonl"
        seed_history(path, [1.0, 1.0])
        verdict = history.check(path, "w", 1.0)
        assert verdict["status"] == "insufficient-history"
        assert verdict["points"] == 2
        assert verdict["baseline"] is None
        assert history.check(tmp_path / "none.jsonl", "w",
                             1.0)["status"] == "insufficient-history"

    def test_ok_within_allowance(self, tmp_path):
        path = tmp_path / "h.jsonl"
        seed_history(path, [1.0, 1.0, 1.0, 1.0])
        verdict = history.check(path, "w", 1.2)
        assert verdict["status"] == "ok"
        assert verdict["baseline"] == 1.0
        assert verdict["mad"] == 0.0
        assert verdict["allowed"] == pytest.approx(1.25)
        assert verdict["ratio"] == pytest.approx(1.2)

    def test_regression_beyond_allowance(self, tmp_path):
        path = tmp_path / "h.jsonl"
        seed_history(path, [1.0, 1.0, 1.0, 1.0])
        assert history.check(path, "w", 2.0)["status"] == "regression"

    def test_noisy_history_earns_slack(self, tmp_path):
        # MAD of [0.8, 1.0, 1.2, 1.0] around the 1.0 median is 0.1:
        # allowed = 1.25 + 3 * 0.1 = 1.55, so 1.5 passes here but
        # would fail a flat history (allowed 1.25).
        noisy, flat = tmp_path / "noisy.jsonl", tmp_path / "flat.jsonl"
        seed_history(noisy, [0.8, 1.0, 1.2, 1.0])
        seed_history(flat, [1.0, 1.0, 1.0, 1.0])
        assert history.check(noisy, "w", 1.5)["status"] == "ok"
        assert history.check(flat, "w", 1.5)["status"] == "regression"

    def test_implicit_candidate_is_newest_entry(self, tmp_path):
        path = tmp_path / "h.jsonl"
        seed_history(path, [1.0, 1.0, 1.0, 5.0])
        verdict = history.check(path, "w")
        assert verdict["measured"] == 5.0
        assert verdict["points"] == 3  # newest judged, not baseline
        assert verdict["status"] == "regression"

    def test_exclude_latest_keeps_candidate_out_of_baseline(
            self, tmp_path):
        # A 5.0 outlier baselined against itself would judge leniently;
        # exclude_latest is the --scale path's guard against that.
        path = tmp_path / "h.jsonl"
        seed_history(path, [1.0, 1.0, 1.0, 5.0])
        excl = history.check(path, "w", 5.0, exclude_latest=True)
        assert excl["points"] == 3
        assert excl["baseline"] == 1.0
        assert excl["status"] == "regression"
        incl = history.check(path, "w", 5.0)
        assert incl["points"] == 4

    def test_window_bounds_the_baseline(self, tmp_path):
        path = tmp_path / "h.jsonl"
        seed_history(path, [9.0] * 10 + [1.0] * 5)
        verdict = history.check(path, "w", 1.1, window=5)
        assert verdict["points"] == 5
        assert verdict["baseline"] == 1.0


def _append_batch(job):
    path, worker, count = job
    for k in range(count):
        history.append_entry(path, entry(f"w{worker}", 1.0 + k,
                                         timestamp=worker * count + k))
    return worker


class TestConcurrentAppend:

    def test_parallel_appenders_never_tear_lines(self, tmp_path):
        path = tmp_path / "h.jsonl"
        workers, per_worker = 4, 25
        jobs = [(str(path), w, per_worker) for w in range(workers)]
        with multiprocessing.Pool(workers) as pool:
            assert sorted(pool.map(_append_batch, jobs)) == [0, 1, 2, 3]
        lines = path.read_text().splitlines()
        assert len(lines) == workers * per_worker
        for line in lines:
            json.loads(line)  # every line parses — no interleaving
        loaded = history.load_history(path)
        assert len(loaded) == workers * per_worker
        for w in range(workers):
            assert len(history.load_history(path, f"w{w}")) == per_worker


class TestBenchCheckCli:
    """The CI gate: ``repro bench check`` exits 0 on a clean history,
    1 on an injected 2x slowdown, and soft-passes thin history."""

    def _seeded(self, tmp_path):
        path = tmp_path / "h.jsonl"
        seed_history(path, [1.0, 1.0, 1.0, 1.0],
                     workload="tline_ode[8x60]")
        return str(path)

    def test_clean_history_exits_zero(self, tmp_path, capsys):
        from repro.cli import main
        code = main(["bench", "check", "--history",
                     self._seeded(tmp_path)])
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_injected_slowdown_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main
        code = main(["bench", "check", "--history",
                     self._seeded(tmp_path), "--scale", "2.0"])
        assert code == 1
        assert "regression" in capsys.readouterr().out

    def test_thin_history_soft_passes(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "h.jsonl"
        seed_history(path, [1.0], workload="tline_ode[8x60]")
        code = main(["bench", "check", "--history", str(path)])
        assert code == 0
        assert "soft pass" in capsys.readouterr().out

    def test_json_verdicts(self, tmp_path, capsys):
        from repro.cli import main
        code = main(["bench", "check", "--history",
                     self._seeded(tmp_path), "--json"])
        assert code == 0
        verdicts = json.loads(capsys.readouterr().out)
        assert len(verdicts) == 1
        assert verdicts[0]["workload"] == "tline_ode[8x60]"
        assert verdicts[0]["status"] == "ok"
