"""Tests for :mod:`repro.telemetry`: zero-perturbation collection.

The non-negotiable property: trajectories are bit-identical with
collection on or off, across every engine x (ODE, SDE) combination —
telemetry observes the run, it never steers it. On top of that the
suite covers the RunReport schema round trip, worker-counter merging
from a >=2-process pool run, stream-gauge monotonicity, the cache and
shm satellites, and the ``repro report`` CLI surface.
"""

import json
import warnings

import numpy as np
import pytest

from repro import telemetry
from repro.paradigms.tln import TLineSpec, mismatched_tline
from repro.paradigms.tln.noisy import NoisyTlineFactory
from repro.sim import run_ensemble, shm
from repro.sim.cache import TrajectoryCache
from repro.telemetry import (SCHEMA_VERSION, RunReport, collect_metrics,
                             diff_reports, render_report,
                             validate_report)


class TlineFactory:
    """Module-level (picklable) deterministic factory."""

    def __call__(self, seed):
        return mismatched_tline("gm", seed=seed)


class TwoGroupFactory:
    """Two structural groups: 3- and 4-segment lines alternate."""

    def __call__(self, seed):
        spec = TLineSpec(n_segments=3 if seed % 2 else 4)
        return mismatched_tline("gm", seed=seed, spec=spec)


SPAN = (0.0, 4e-8)

ENGINE_KWARGS = {
    "serial": dict(engine="serial"),
    "batch": dict(engine="batch"),
    "shard": dict(engine="shard", processes=2, shard_min=2),
    "pool": dict(engine="pool", processes=2, shard_min=2),
}


def _stacked(result):
    """Every solved array of a result, for exact comparison."""
    arrays = [batch.y for batch in result.batches]
    arrays += [t.y for i, t in enumerate(result.trajectories)
               if getattr(result, "serial_indices", None)
               and i in result.serial_indices]
    return arrays


class TestBitIdentity:
    """Telemetry on vs off must not move a single bit."""

    @pytest.mark.parametrize("engine", list(ENGINE_KWARGS))
    def test_ode(self, engine):
        kwargs = dict(n_points=40, min_batch=2, **ENGINE_KWARGS[engine])
        off = run_ensemble(TlineFactory(), range(4), SPAN,
                           cache=TrajectoryCache(), **kwargs)
        on = run_ensemble(TlineFactory(), range(4), SPAN,
                          cache=TrajectoryCache(), telemetry=True,
                          **kwargs)
        assert off.telemetry is None
        assert isinstance(on.telemetry, RunReport)
        assert on.telemetry.wall_seconds > 0.0
        for a, b in zip(_stacked(off), _stacked(on)):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(off.trajectories, on.trajectories):
            np.testing.assert_array_equal(a.y, b.y)

    @pytest.mark.parametrize("engine", list(ENGINE_KWARGS))
    def test_sde(self, engine):
        factory = NoisyTlineFactory(TLineSpec(n_segments=3),
                                    noise=1e-9)
        kwargs = dict(trials=2, n_points=30, min_batch=2,
                      **ENGINE_KWARGS[engine])
        off = run_ensemble(factory, range(3), SPAN,
                           cache=TrajectoryCache(), **kwargs)
        on = run_ensemble(factory, range(3), SPAN,
                          cache=TrajectoryCache(), telemetry=True,
                          **kwargs)
        assert isinstance(on.telemetry, RunReport)
        for a, b in zip(off.batches, on.batches):
            np.testing.assert_array_equal(a.y, b.y)
        for chip in range(3):
            np.testing.assert_array_equal(off.reference(chip).y,
                                          on.reference(chip).y)

    def test_disabled_outside_window(self):
        assert not telemetry.enabled()
        assert telemetry.current() is None
        # All helpers are no-ops when disabled — no error, no state.
        telemetry.add("solver.nfev", 5)
        telemetry.gauge("x", 1.0)
        telemetry.append("y", 2.0)
        with telemetry.span("nothing"):
            pass
        assert not telemetry.enabled()

    def test_true_with_stream_rejected(self):
        with pytest.raises(ValueError, match="barriered result"):
            run_ensemble(TlineFactory(), range(2), SPAN,
                         telemetry=True, stream=True)

    def test_bad_telemetry_type_rejected(self):
        with pytest.raises(TypeError, match="RunReport"):
            run_ensemble(TlineFactory(), range(2), SPAN,
                         telemetry="yes")


class TestCounters:
    def test_batch_ode_counters(self):
        result = run_ensemble(TlineFactory(), range(4), SPAN,
                              n_points=40, cache=TrajectoryCache(),
                              telemetry=True)
        report = result.telemetry
        assert report.counter("plan.instances") == 4
        assert report.counter("solver.nfev") > 0
        assert report.counter("solver.solves") >= 1
        assert report.counter("solver.steps_accepted") > 0
        assert report.counter("codegen.batch_compiles") >= 1
        assert report.counter("cache.misses") >= 1
        assert report.counter("cache.stores") >= 1
        assert report.meta["driver"] == "run_ensemble"
        assert report.meta["seeds"] == 4
        # Spans nest under real names.
        names = [node["name"] for node in report.spans]
        assert "plan.compile" in names
        assert any(name.startswith("group[0].solve") for name in names)

    def test_cache_hit_counters_on_rerun(self):
        cache = TrajectoryCache()
        run_ensemble(TlineFactory(), range(3), SPAN, n_points=40,
                     cache=cache)
        result = run_ensemble(TlineFactory(), range(3), SPAN,
                              n_points=40, cache=cache, telemetry=True)
        report = result.telemetry
        assert report.counter("cache.hits") >= 1
        assert report.counter("solver.solves") == 0

    def test_pool_sde_counters_and_worker_merge(self):
        """The acceptance-critical run: pool SDE sweep on >=2
        processes, bit-identical to the unsharded batch, with non-zero
        solver/cache/shm/pool counters and per-worker blocks merged
        back from the workers."""
        factory = NoisyTlineFactory(TLineSpec(n_segments=3),
                                    noise=1e-9)
        kwargs = dict(trials=4, n_points=30, engine="pool",
                      processes=2, shard_min=2, min_batch=2)
        off = run_ensemble(factory, range(4), SPAN,
                           cache=TrajectoryCache(), **kwargs)
        on = run_ensemble(factory, range(4), SPAN,
                          cache=TrajectoryCache(), telemetry=True,
                          **kwargs)
        for a, b in zip(off.batches, on.batches):
            np.testing.assert_array_equal(a.y, b.y)
        report = on.telemetry
        assert report.counter("solver.nfev") > 0
        assert report.counter("cache.misses") > 0
        assert report.counter("pool.shards") >= 2
        assert report.counter("pool.shm_bytes_transferred") > 0
        assert report.counter("pool.pickle_bytes_avoided") > 0
        assert report.counter("shm.blocks") >= 1
        assert report.counter("shm.bytes_allocated") > 0
        assert report.counter("pool.queue_wait_seconds") >= 0.0
        assert report.counter("pool.worker_busy_seconds") > 0.0
        # Per-worker blocks rode home in the result metadata and were
        # merged; every block carries non-zero work.
        assert report.workers
        for name, block in report.workers.items():
            assert name.startswith("ark-pool-")
            assert block["shards"] >= 1
            assert block["nfev"] > 0
            assert block["busy_seconds"] > 0.0
        assert sum(b["shards"] for b in report.workers.values()) \
            == report.counter("pool.shards")
        merged = report.merged_worker_counters()
        assert merged["nfev"] > 0

    def test_stream_gauges_monotone(self):
        """Chunk arrivals are monotone in delivery order; TTFC is the
        first arrival; per-chunk stats ride on the chunk itself."""
        report = RunReport()
        stream = run_ensemble(TwoGroupFactory(), range(4), SPAN,
                              n_points=40, min_batch=2, stream=True,
                              cache=TrajectoryCache(),
                              telemetry=report)
        chunks = list(stream)
        assert len(chunks) == 2
        arrivals = [chunk.stats["arrival_seconds"] for chunk in chunks]
        assert all(a >= 0.0 for a in arrivals)
        assert arrivals == sorted(arrivals)
        assert report.counter("stream.chunks") == 2
        ttfc = report.gauges["stream.time_to_first_chunk_seconds"]
        assert ttfc == pytest.approx(arrivals[0])
        recorded = report.gauges["stream.chunk_arrival_seconds"]
        assert recorded == pytest.approx(arrivals)
        assert all(ttfc <= a for a in arrivals)
        for chunk in chunks:
            assert chunk.stats["rows"] == len(chunk.indices)
            assert chunk.stats["order"] == chunk.order

    def test_stream_without_telemetry_has_no_stats(self):
        stream = run_ensemble(TwoGroupFactory(), range(4), SPAN,
                              n_points=40, min_batch=2, stream=True,
                              cache=TrajectoryCache())
        assert all(chunk.stats is None for chunk in stream)


class TestRunReportSchema:
    def _populated(self):
        result = run_ensemble(TlineFactory(), range(3), SPAN,
                              n_points=40, cache=TrajectoryCache(),
                              telemetry=True)
        return result.telemetry

    def test_round_trip_is_identity(self, tmp_path):
        report = self._populated()
        data = report.to_dict()
        assert validate_report(data) == []
        again = RunReport.from_dict(data)
        assert again.to_dict() == data
        text = report.to_json()
        assert RunReport.from_json(text).to_dict() == data
        path = tmp_path / "report.json"
        report.save(path)
        assert RunReport.load(path).to_dict() == data
        # JSON is plain data with the stable schema tag.
        parsed = json.loads(path.read_text())
        assert parsed["schema"] == SCHEMA_VERSION

    def test_validate_rejects_bad_shapes(self):
        good = self._populated().to_dict()
        assert validate_report({"schema": SCHEMA_VERSION}) != []
        assert any("schema" in p for p in
                   validate_report({**good, "schema": 99}))
        assert any("counter" in p for p in validate_report(
            {**good, "counters": {"x": "not-a-number"}}))
        assert any("spans" in p or "span" in p for p in validate_report(
            {**good, "spans": [{"name": "s"}]}))
        assert validate_report([1, 2, 3]) != []
        with pytest.raises(ValueError):
            RunReport.from_dict({**good, "schema": 99})

    def test_collect_metrics_standalone(self):
        report = RunReport()
        with collect_metrics(into=report, meta={"driver": "test"}):
            telemetry.add("a.b", 2)
            telemetry.add("a.b", 3)
            telemetry.gauge("g", 1.5)
            telemetry.append("lst", 0.1)
            telemetry.append("lst", 0.2)
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    pass
        assert not telemetry.enabled()
        assert report.counters["a.b"] == 5
        assert report.gauges["g"] == 1.5
        assert report.gauges["lst"] == [0.1, 0.2]
        assert report.spans[0]["name"] == "outer"
        assert report.spans[0]["children"][0]["name"] == "inner"
        assert report.wall_seconds >= report.spans[0]["seconds"] >= 0.0
        assert validate_report(report.to_dict()) == []

    def test_numpy_scalars_coerced_to_builtins(self, tmp_path):
        # Regression: np.int64 is NOT an int subclass, so a counter fed
        # from solver internals used to crash json.dumps in save().
        report = RunReport()
        with collect_metrics(into=report):
            telemetry.add("n.int64", np.int64(3))
            telemetry.gauge("g.float64", np.float64(1.5))
            telemetry.gauge("g.zero_d", np.array(7))
            telemetry.append("lst", np.float32(0.5))
            telemetry.merge_worker({"worker": "w0",
                                    "busy_seconds": np.float64(0.25)})
        assert type(report.counters["n.int64"]) is int
        assert type(report.gauges["g.float64"]) is float
        assert type(report.gauges["g.zero_d"]) is int
        assert type(report.gauges["lst"][0]) is float
        assert type(report.workers["w0"]["busy_seconds"]) is float
        path = report.save(tmp_path / "np.json")  # must not raise
        assert validate_report(json.loads(path.read_text())) == []

    def test_memory_gauges_recorded_and_rendered(self):
        report = self._populated()
        assert report.gauges["mem.peak_rss_bytes"] > 0
        assert "mem.shm_bytes_high_water" in report.gauges
        text = render_report(report)
        assert "memory:" in text
        assert "mem.peak_rss_bytes" in text

    def test_render_and_diff_are_text(self):
        report = self._populated()
        text = render_report(report)
        assert "RunReport (schema" in text
        assert "solver.nfev" in text
        assert "plan.compile" in text
        empty = RunReport()
        delta = diff_reports(report, empty, label_a="a", label_b="b")
        assert "a -> b" in delta
        assert "solver.nfev" in delta


class TestCacheSatellite:
    def test_stats_snapshot_callable(self):
        cache = TrajectoryCache()
        snapshot = cache.stats()
        assert {"hits", "misses", "stores", "evictions", "corrupt",
                "bytes_stored", "hit_rate"} <= set(snapshot)
        # Attribute access keeps working (bench code reads .hits).
        assert cache.stats.hits == snapshot["hits"] == 0

    def test_corrupt_npz_is_a_miss_not_a_crash(self, tmp_path):
        cache_dir = tmp_path / "cache"
        baseline = run_ensemble(TlineFactory(), range(2), SPAN,
                                n_points=40, cache=str(cache_dir))
        stored = list(cache_dir.glob("*.npz"))
        assert stored
        for path in stored:
            path.write_bytes(b"this is not a numpy archive")
        cache = TrajectoryCache(directory=str(cache_dir))
        report = RunReport()
        with collect_metrics(into=report), \
                pytest.warns(RuntimeWarning, match="treating as a miss"):
            again = run_ensemble(TlineFactory(), range(2), SPAN,
                                 n_points=40, cache=cache)
        np.testing.assert_array_equal(baseline.batches[0].y,
                                      again.batches[0].y)
        assert cache.stats.corrupt >= 1
        assert cache.stats()["corrupt"] >= 1
        assert report.counter("cache.corrupt") >= 1
        assert report.counter("cache.misses") >= 1


class TestShmSatellite:
    def test_warn_leaked_blocks_names_and_sizes(self):
        block = shm.ShmBlock.create((4, 8))
        name = block.header[0]
        try:
            with pytest.warns(ResourceWarning) as captured:
                leaked = shm.warn_leaked_blocks("unit test")
            assert leaked == [name]
            message = str(captured[0].message)
            assert name in message
            assert str(4 * 8 * 8) in message
            assert "unit test" in message
        finally:
            block.close()
            block.unlink()
        assert shm.active_blocks() == []

    def test_no_warning_when_clean(self):
        assert shm.active_blocks() == []
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert shm.warn_leaked_blocks("unit test") == []

    def test_create_counts_into_telemetry(self):
        report = RunReport()
        with collect_metrics(into=report):
            block = shm.ShmBlock.create((2, 4))
            block.close()
            block.unlink()
        assert report.counter("shm.blocks") == 1
        assert report.counter("shm.bytes_allocated") == 2 * 4 * 8


PROGRAM = """
lang leaky-mm {
    ntyp(1,sum) X {attr tau=real[0.1,10] mm(0,0.1)};
    etyp W {attr w=real[-5,5]};
    prod(e:W, s:X->s:X) s <= -var(s)/s.tau;
    prod(e:W, s:X->t:X) t <= e.w*var(s)/t.tau;
    cstr X {acc[match(1,1,W,X), match(0,inf,W,X->[X]),
                match(0,inf,W,[X]->X)]};
}

func pair (w:real[-5,5]) uses leaky-mm {
    node x0:X; node x1:X;
    edge <x0,x0> l0:W; edge <x1,x1> l1:W; edge <x0,x1> c:W;
    set-attr x0.tau=1.0; set-attr x1.tau=0.5;
    set-attr l0.w=0.0;   set-attr l1.w=0.0;  set-attr c.w=w;
    set-init x0(0)=1.0;
}
"""


class TestCliSurface:
    @pytest.fixture()
    def program_file(self, tmp_path):
        path = tmp_path / "prog.ark"
        path.write_text(PROGRAM)
        return str(path)

    def _run(self, program_file, out_path, extra=()):
        from repro.cli import main

        return main(["ensemble", program_file, "--arg", "w=1.0",
                     "--t-end", "1.0", "--seeds", "4", "--node", "x0",
                     "--print-rows", "2", "--metrics-out",
                     str(out_path), *extra])

    def test_metrics_out_writes_valid_schema(self, program_file,
                                             tmp_path, capsys):
        out = tmp_path / "report.json"
        assert self._run(program_file, out) == 0
        assert "wrote run metrics" in capsys.readouterr().out
        data = json.loads(out.read_text())
        assert validate_report(data) == []
        report = RunReport.from_dict(data)
        assert report.counter("plan.instances") == 4
        assert report.counter("solver.nfev") > 0
        assert report.meta["driver"] == "cli.ensemble"

    def test_trace_prints_span_tree(self, program_file, tmp_path,
                                    capsys):
        out = tmp_path / "report.json"
        assert self._run(program_file, out, ["--trace"]) == 0
        printed = capsys.readouterr().out
        assert "RunReport (schema" in printed
        assert "plan.compile" in printed

    def test_metrics_out_does_not_move_results(self, program_file,
                                               tmp_path, capsys):
        from repro.cli import main

        csvs = {}
        for tag in ("plain", "metered"):
            path = tmp_path / f"{tag}.csv"
            extra = ["--metrics-out", str(tmp_path / "m.json")] \
                if tag == "metered" else []
            assert main(["ensemble", program_file, "--arg", "w=1.0",
                         "--t-end", "1.0", "--seeds", "4",
                         "--node", "x0", "--csv", str(path)]
                        + extra) == 0
            csvs[tag] = np.genfromtxt(path, delimiter=",", names=True)
        for name in csvs["plain"].dtype.names:
            np.testing.assert_array_equal(csvs["plain"][name],
                                          csvs["metered"][name])

    def test_report_renders_one_file(self, program_file, tmp_path,
                                     capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        assert self._run(program_file, out) == 0
        capsys.readouterr()
        assert main(["report", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "RunReport (schema" in printed
        assert "solver.nfev" in printed

    def test_report_diffs_two_files(self, program_file, tmp_path,
                                    capsys):
        from repro.cli import main

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert self._run(program_file, a) == 0
        assert self._run(program_file, b) == 0
        capsys.readouterr()
        assert main(["report", str(a), str(b)]) == 0
        printed = capsys.readouterr().out
        assert "diff:" in printed
        assert "wall time:" in printed

    def test_report_validate_flags_garbage(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": 99}')
        assert main(["report", "--validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_report_validate_accepts_good(self, program_file, tmp_path,
                                          capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        assert self._run(program_file, out) == 0
        capsys.readouterr()
        assert main(["report", "--validate", str(out)]) == 0
        assert "OK (schema v2)" in capsys.readouterr().out

    def test_report_rejects_three_files(self, tmp_path, capsys):
        from repro.cli import main

        paths = []
        for k in range(3):
            path = tmp_path / f"r{k}.json"
            path.write_text(RunReport().to_json())
            paths.append(str(path))
        assert main(["report", *paths]) == 2
        assert "one file" in capsys.readouterr().err
