"""Tests for the no-direct-numpy CI lint
(``tools/check_no_direct_numpy.py``): the repo's backend zones are
clean, violations are flagged with file:line, the host-boundary pragma
excuses deliberate crossings, and a renamed zone cannot silently drop
coverage."""

import importlib.util
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
TOOL = REPO_ROOT / "tools" / "check_no_direct_numpy.py"

spec = importlib.util.spec_from_file_location("check_no_direct_numpy",
                                              TOOL)
lint = importlib.util.module_from_spec(spec)
spec.loader.exec_module(lint)


def _check_source(tmp_path, source, zones):
    path = tmp_path / "zone.py"
    path.write_text(source)
    return lint.check_file(path, zones, "zone.py")


class TestRepoIsClean:
    def test_main_exits_zero(self, capsys):
        assert lint.main([]) == 0
        assert "zones clean" in capsys.readouterr().out

    def test_every_zone_exists(self):
        # The zone table names real functions — a refactor that renames
        # one must update the table (and this asserts it did).
        for file, zones in lint.FORBIDDEN_ZONES.items():
            path = REPO_ROOT / file
            problems = lint.check_file(path, zones, file)
            missing = [p for p in problems if "not found" in p]
            assert not missing, missing


class TestViolations:
    def test_np_reference_flagged_with_line(self, tmp_path):
        problems = _check_source(tmp_path, (
            "import numpy as np\n"
            "def step(y, xp):\n"
            "    return xp.abs(y) + np.zeros(3)\n"
        ), ("step",))
        assert len(problems) == 1
        assert problems[0].startswith("zone.py:3:")

    def test_import_numpy_inside_zone_flagged(self, tmp_path):
        problems = _check_source(tmp_path, (
            "def step(y):\n"
            "    import numpy\n"
            "    return numpy.abs(y)\n"
        ), ("step",))
        assert any("import numpy" in p for p in problems)

    def test_from_numpy_import_flagged(self, tmp_path):
        problems = _check_source(tmp_path, (
            "def step(y):\n"
            "    from numpy import abs as np_abs\n"
            "    return np_abs(y)\n"
        ), ("step",))
        assert len(problems) == 1

    def test_method_zone_notation(self, tmp_path):
        problems = _check_source(tmp_path, (
            "import numpy as np\n"
            "class Rhs:\n"
            "    def __call__(self, y):\n"
            "        return np.empty_like(y)\n"
        ), ("Rhs.__call__",))
        assert len(problems) == 1
        assert "zone.py:4" in problems[0]


class TestAllowances:
    def test_pragma_excuses_statement(self, tmp_path):
        problems = _check_source(tmp_path, (
            "import numpy as np\n"
            "def step(y, xp):\n"
            "    out = np.empty(3)  # ark: host-boundary\n"
            "    return xp.abs(y)\n"
        ), ("step",))
        assert problems == []

    def test_pragma_covers_multiline_statement(self, tmp_path):
        problems = _check_source(tmp_path, (
            "import numpy as np\n"
            "def step(y, xp):\n"
            "    out = np.empty(\n"
            "        (3, 4))  # ark: host-boundary\n"
            "    return xp.abs(y)\n"
        ), ("step",))
        assert problems == []

    def test_outside_zone_untouched(self, tmp_path):
        problems = _check_source(tmp_path, (
            "import numpy as np\n"
            "def assemble(y):\n"
            "    return np.asarray(y)\n"
            "def step(y, xp):\n"
            "    return xp.abs(y)\n"
        ), ("step",))
        assert problems == []

    def test_signature_defaults_allowed(self, tmp_path):
        # ``xp=np`` defaults and ``np.ndarray`` annotations state the
        # host-facing contract; they run at import, not per step.
        problems = _check_source(tmp_path, (
            "import numpy as np\n"
            "def step(y: np.ndarray, xp=np) -> np.ndarray:\n"
            "    return xp.abs(y)\n"
        ), ("step",))
        assert problems == []


class TestZoneDrift:
    def test_missing_zone_is_an_error(self, tmp_path):
        problems = _check_source(tmp_path, (
            "def other():\n"
            "    pass\n"
        ), ("vanished",))
        assert len(problems) == 1
        assert "not found" in problems[0]
        assert "FORBIDDEN_ZONES" in problems[0]

    def test_missing_file_is_an_error(self, monkeypatch, capsys):
        monkeypatch.setattr(lint, "FORBIDDEN_ZONES",
                            {"no/such/file.py": ("f",)})
        assert lint.main([]) == 1
        assert "zone file missing" in capsys.readouterr().err


def test_cli_runs_standalone():
    import subprocess

    done = subprocess.run([sys.executable, str(TOOL)],
                          capture_output=True, text=True)
    assert done.returncode == 0, done.stderr
    assert "zones clean" in done.stdout
