"""Tests for the adaptive scheduling layer (:mod:`repro.sim.sched`):
partition math with synthetic per-row costs, profile persistence and
corrupt-file fallback, overshard fan-out, adaptive-method pinning,
worker CPU pinning, and the bit-identity gates ``schedule="cost"`` vs
``schedule="even"`` across serial/shard/pool x rk4/rkf45/SDE."""

import glob
import json
import os

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.paradigms.tln import TLineSpec, mismatched_tline
from repro.paradigms.tln.noisy import NoisyTlineFactory
from repro.sim import run_ensemble, shm
from repro.sim.plan import ExecutionPlan, _shard_parts
from repro.sim.pool import _POOLS, get_pool, shutdown_pools
from repro.sim.sched import (ADAPTIVE_METHODS, CostProfile, Scheduler,
                             balanced_parts, even_parts,
                             pin_worker_processes, static_row_cost)
from repro.telemetry import RunReport


class TlineFactory:
    """Module-level (picklable) deterministic factory."""

    def __call__(self, seed):
        return mismatched_tline("gm", seed=seed)


class TwoGroupFactory:
    """Two structural groups: 3- and 4-segment lines alternate."""

    def __call__(self, seed):
        spec = TLineSpec(n_segments=3 if seed % 2 else 4)
        return mismatched_tline("gm", seed=seed, spec=spec)


SPAN = (0.0, 4e-8)


def _assert_no_leaks():
    assert shm.active_blocks() == []
    assert glob.glob("/dev/shm/arkshm_*") == []


def _assert_partition(parts, n_rows):
    """Contiguous, ordered, nonempty, covers every row exactly once."""
    assert all(len(part) for part in parts)
    flat = np.concatenate(parts)
    np.testing.assert_array_equal(flat, np.arange(n_rows))


class TestEvenParts:
    def test_matches_array_split(self):
        parts = even_parts(10, 3)
        expected = np.array_split(np.arange(10), 3)
        assert len(parts) == 3
        for part, want in zip(parts, expected):
            np.testing.assert_array_equal(part, want)

    def test_more_shards_than_rows_never_emits_empty(self):
        # n_rows < processes must clamp, not emit empty shards.
        parts = even_parts(3, 8)
        assert len(parts) == 3
        _assert_partition(parts, 3)

    def test_single_row_bypasses_sharding(self):
        assert even_parts(1, 4) == []
        assert even_parts(0, 4) == []

    def test_single_shard_bypasses_sharding(self):
        assert even_parts(10, 1) == []

    def test_shard_parts_delegates(self):
        parts = _shard_parts(7, 3)
        _assert_partition(parts, 7)
        assert _shard_parts(1, 4) == []
        assert _shard_parts(5, 1) == []


class TestBalancedParts:
    def test_uniform_costs_match_even(self):
        parts = balanced_parts(np.ones(10), 3)
        even = even_parts(10, 3)
        for part, want in zip(parts, even):
            np.testing.assert_array_equal(part, want)

    def test_isolates_expensive_rows(self):
        costs = np.ones(16)
        costs[0] = 100.0
        parts = balanced_parts(costs, 4)
        _assert_partition(parts, 16)
        # The expensive head row gets a shard of its own; the cheap
        # tail is spread across the rest.
        assert len(parts[0]) == 1
        sums = [costs[part].sum() for part in parts]
        assert max(sums) == pytest.approx(100.0)

    def test_balances_synthetic_skew(self):
        costs = np.array([10, 1, 1, 1, 1, 1, 1, 10], dtype=float)
        parts = balanced_parts(costs, 4)
        _assert_partition(parts, 8)
        sums = [costs[part].sum() for part in parts]
        # Even split would put 10+1 in the first and last shard (cost
        # 11 each); the balanced cut isolates each expensive row.
        assert max(sums) <= 11.0
        assert len(parts[0]) == 1 and len(parts[-1]) == 1

    def test_every_part_nonempty_under_extreme_skew(self):
        costs = np.zeros(6)
        costs[0] = 1e9
        parts = balanced_parts(costs, 4)
        assert len(parts) == 4
        _assert_partition(parts, 6)

    def test_degenerate_costs_fall_back_to_even(self):
        for costs in (np.zeros(8), -np.ones(8),
                      np.full(8, np.nan), np.full(8, np.inf)):
            parts = balanced_parts(costs, 3)
            even = even_parts(8, 3)
            for part, want in zip(parts, even):
                np.testing.assert_array_equal(part, want)

    def test_small_inputs_bypass(self):
        assert balanced_parts([1.0], 4) == []
        assert balanced_parts([], 4) == []
        assert balanced_parts([1.0, 2.0, 3.0], 1) == []


class TestCostProfile:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "cost_profile.json")
        profile = CostProfile(path)
        profile.observe("ode:rk4:abc", 8,
                        [(0, 4, 0.4), (4, 4, 0.1)])
        profile.save()
        assert os.path.exists(path)
        loaded = CostProfile.load(path)
        costs = loaded.row_costs("ode:rk4:abc", 8)
        assert costs is not None
        # Front rows observed slower than back rows.
        assert costs[0] > costs[-1]
        np.testing.assert_allclose(costs, profile.row_costs(
            "ode:rk4:abc", 8))

    def test_unknown_key_and_missing_file(self, tmp_path):
        loaded = CostProfile.load(str(tmp_path / "nope.json"))
        assert loaded.entries == {}
        assert loaded.row_costs("ode:rk4:abc", 8) is None

    def test_resized_group_degrades_to_scalar(self):
        profile = CostProfile()
        profile.observe("k", 8, [(0, 4, 0.4), (4, 4, 0.1)])
        costs = profile.row_costs("k", 6)  # group shrank between runs
        assert costs is not None
        assert len(costs) == 6
        assert np.all(costs == costs[0])

    def test_corrupt_file_discarded_with_warning(self, tmp_path):
        path = tmp_path / "cost_profile.json"
        path.write_text("{ not json !!")
        with pytest.warns(RuntimeWarning, match="corrupt cost profile"):
            loaded = CostProfile.load(str(path))
        assert loaded.entries == {}

    def test_wrong_version_discarded(self, tmp_path):
        path = tmp_path / "cost_profile.json"
        path.write_text(json.dumps({"version": 999, "groups": {}}))
        with pytest.warns(RuntimeWarning):
            loaded = CostProfile.load(str(path))
        assert loaded.entries == {}

    def test_save_without_observations_is_noop(self, tmp_path):
        path = str(tmp_path / "cost_profile.json")
        CostProfile(path).save()
        assert not os.path.exists(path)

    def test_ewma_converges_on_repeated_observations(self):
        profile = CostProfile()
        for _ in range(8):
            profile.observe("k", 4, [(0, 4, 4.0)])  # 1 s/row
        costs = profile.row_costs("k", 4)
        np.testing.assert_allclose(costs, 1.0, rtol=0.05)


class TestScheduler:
    def test_default_scheduler_is_inactive_and_even(self):
        scheduler = Scheduler()
        assert not scheduler.active
        parts = scheduler.parts(10, 3, method="rk4")
        for part, want in zip(parts, even_parts(10, 3)):
            np.testing.assert_array_equal(part, want)

    def test_overshard_fans_out(self):
        scheduler = Scheduler(overshard=4)
        assert scheduler.active
        parts = scheduler.parts(64, 2, method="rk4")
        assert len(parts) == 8  # processes x overshard
        _assert_partition(parts, 64)

    def test_overshard_clamps_to_rows(self):
        scheduler = Scheduler(overshard=4)
        parts = scheduler.parts(5, 2, method="rk4")
        assert len(parts) == 5  # min(processes x overshard, n_rows)
        _assert_partition(parts, 5)

    def test_no_pool_or_single_row_bypass(self):
        scheduler = Scheduler(schedule="cost", overshard=4)
        assert scheduler.parts(100, 1, method="rk4") == []
        assert scheduler.parts(1, 4, method="rk4") == []

    def test_cost_schedule_uses_profile(self):
        profile = CostProfile()
        profile.observe("k", 16, [(0, 1, 1.0), (1, 15, 0.15)])
        scheduler = Scheduler(schedule="cost", profile=profile)
        parts = scheduler.parts(16, 4, method="rk4", key="k")
        _assert_partition(parts, 16)
        # Row 0 observed ~100x slower: it gets isolated.
        assert len(parts[0]) == 1

    def test_cost_schedule_without_profile_falls_back_to_even(self):
        scheduler = Scheduler(schedule="cost")
        parts = scheduler.parts(10, 3, method="rk4", key="unseen")
        for part, want in zip(parts, even_parts(10, 3)):
            np.testing.assert_array_equal(part, want)

    @pytest.mark.parametrize("method", ADAPTIVE_METHODS)
    def test_adaptive_methods_pinned_to_even(self, method):
        profile = CostProfile()
        profile.observe("k", 16, [(0, 1, 1.0), (1, 15, 0.15)])
        scheduler = Scheduler(schedule="cost", overshard=4,
                              profile=profile)
        parts = scheduler.parts(16, 2, method=method, key="k")
        even = even_parts(16, 2)  # NOT 2 x 4 shards, NOT cost cuts
        assert len(parts) == len(even)
        for part, want in zip(parts, even):
            np.testing.assert_array_equal(part, want)
        assert not scheduler.wants_timing(method)
        assert scheduler.wants_timing("rk4")

    def test_group_cost_ranks_by_profile_then_structure(self):
        profile = CostProfile()
        profile.observe("seen", 8, [(0, 8, 8.0)])
        scheduler = Scheduler(schedule="cost", profile=profile)
        assert scheduler.group_cost("seen", 8, 5, "rk4") == \
            pytest.approx(8.0)
        static = scheduler.group_cost("unseen", 8, 5, "rk4")
        assert static == pytest.approx(static_row_cost(5, "rk4") * 8)

    def test_observe_refines_profile(self):
        scheduler = Scheduler(schedule="cost")
        scheduler.observe("k", 8, [
            {"offset": 0, "rows": 4, "seconds": 0.4, "worker": "w0"},
            {"offset": 4, "rows": 4, "seconds": 0.1, "worker": "w1"},
        ], processes=2)
        costs = scheduler.profile.row_costs("k", 8)
        assert costs[0] > costs[-1]

    def test_validate_rejects_unknown_schedule_and_overshard(self):
        def plan(**kwargs):
            return ExecutionPlan(factory=TlineFactory(), seeds=[0],
                                 t_span=SPAN, **kwargs)

        with pytest.raises(SimulationError, match="schedule"):
            plan(schedule="fastest").validate()
        with pytest.raises(SimulationError, match="overshard"):
            plan(overshard=0).validate()
        plan(schedule="cost", overshard=4).validate()


class TestEndToEndBitIdentity:
    """``schedule="cost"`` (+ overshard) must be bit-identical to the
    default even split for every backend x method combination."""

    def _pair(self, factory, seeds, tmp_path, engine, **kwargs):
        even = run_ensemble(factory, seeds, SPAN, engine=engine,
                            processes=2, n_points=40, **kwargs)
        profile = str(tmp_path / "profile.json")
        cost = run_ensemble(factory, seeds, SPAN, engine=engine,
                            processes=2, n_points=40, schedule="cost",
                            overshard=4, cost_profile=profile,
                            **kwargs)
        return even, cost

    @pytest.mark.parametrize("engine", ["serial", "shard", "pool"])
    def test_cost_overshard_matches_even_rk4(self, engine, tmp_path):
        # The serial backend never shards, so the knobs must be inert
        # there; shard/pool must repartition without changing bits.
        even, cost = self._pair(TlineFactory(), range(6), tmp_path,
                                engine, method="rk4")
        assert len(even) == len(cost) == 6
        for a, b in zip(even, cost):
            np.testing.assert_array_equal(a.y, b.y)
        _assert_no_leaks()

    @pytest.mark.parametrize("engine", ["shard", "pool"])
    def test_cost_overshard_matches_even_rkf45(self, engine, tmp_path):
        # Adaptive method: scheduler pins to the canonical split, so
        # results are identical even though rkf45 is partition-
        # sensitive.
        even, cost = self._pair(TwoGroupFactory(), range(8), tmp_path,
                                engine)
        assert len(even.batches) == len(cost.batches) == 2
        for a, b in zip(even.batches, cost.batches):
            np.testing.assert_array_equal(a.y, b.y)
        _assert_no_leaks()

    @pytest.mark.parametrize("engine", ["shard", "pool"])
    def test_cost_overshard_matches_even_sde(self, engine, tmp_path):
        factory = NoisyTlineFactory(TLineSpec(n_segments=4),
                                    noise=1e-9)
        even, cost = self._pair(factory, range(4), tmp_path, engine,
                                trials=2)
        np.testing.assert_array_equal(even.batches[0].y,
                                      cost.batches[0].y)
        for chip in range(4):
            np.testing.assert_array_equal(even.reference(chip).y,
                                          cost.reference(chip).y)
        _assert_no_leaks()

    def test_warm_profile_rebalances_and_stays_identical(self,
                                                         tmp_path):
        factory = TlineFactory()
        profile = str(tmp_path / "profile.json")
        kwargs = dict(n_points=40, method="rk4", engine="pool",
                      processes=2, schedule="cost",
                      cost_profile=profile)
        report_cold = RunReport()
        cold = run_ensemble(factory, range(8), SPAN,
                            telemetry=report_cold, **kwargs)
        # Cold run: no profile yet -> even split, but timings recorded.
        assert report_cold.counters.get("sched.groups.even", 0) >= 1
        assert os.path.exists(profile)
        report_warm = RunReport()
        warm = run_ensemble(factory, range(8), SPAN,
                            telemetry=report_warm, **kwargs)
        # Warm run: the persisted profile drives a cost-balanced cut.
        assert report_warm.counters.get("sched.groups.cost", 0) >= 1
        assert report_warm.counters.get(
            "sched.actual_shard_seconds", 0) > 0
        np.testing.assert_array_equal(cold.batches[0].y,
                                      warm.batches[0].y)
        _assert_no_leaks()

    def test_corrupt_profile_falls_back_to_even_split(self, tmp_path):
        profile = tmp_path / "profile.json"
        profile.write_text("][ definitely not json")
        report = RunReport()
        with pytest.warns(RuntimeWarning, match="corrupt cost profile"):
            result = run_ensemble(
                TlineFactory(), range(6), SPAN, n_points=40,
                method="rk4", engine="pool", processes=2,
                schedule="cost", cost_profile=str(profile),
                telemetry=report)
        assert report.counters.get("sched.profile.corrupt", 0) == 1
        assert report.counters.get("sched.groups.even", 0) >= 1
        baseline = run_ensemble(TlineFactory(), range(6), SPAN,
                                n_points=40, method="rk4")
        np.testing.assert_array_equal(result.batches[0].y,
                                      baseline.batches[0].y)
        # The corrupt file was replaced by fresh observations.
        saved = json.loads(profile.read_text())
        assert saved["version"] == 1 and saved["groups"]
        _assert_no_leaks()

    def test_overshard_fans_out_through_the_pool(self, tmp_path):
        report = RunReport()
        run_ensemble(TlineFactory(), range(8), SPAN, n_points=40,
                     method="rk4", engine="pool", processes=2,
                     overshard=4, telemetry=report)
        # 8 rows, 2 processes x overshard 4 -> 8 single-row shards.
        assert report.counters.get("sched.shards") == 8
        assert report.counters.get("pool.shards") == 8
        _assert_no_leaks()

    def test_default_schedule_keeps_cost_machinery_off(self):
        # The default path still reports which split each group got
        # (structural counters), but none of the cost-model machinery
        # — timing, profile observation, steal accounting — engages.
        report = RunReport()
        run_ensemble(TlineFactory(), range(6), SPAN, n_points=40,
                     method="rk4", engine="pool", processes=2,
                     telemetry=report)
        assert report.counters.get("sched.groups.even") == 1
        assert "sched.groups.cost" not in report.counters
        assert "sched.actual_shard_seconds" not in report.counters
        assert "sched.steals" not in report.counters
        _assert_no_leaks()


@pytest.mark.skipif(not hasattr(os, "sched_setaffinity"),
                    reason="CPU affinity is Linux-only")
class TestWorkerPinning:
    def test_pool_workers_pinned_round_robin(self):
        shutdown_pools()
        try:
            pool = get_pool(2, pin_workers=True)
            assert pool.pin
            assert pool.pinned == 2
            cores = sorted(os.sched_getaffinity(0))
            for index, worker in enumerate(pool._workers):
                assert os.sched_getaffinity(worker.pid) == \
                    {cores[index % len(cores)]}
            # _POOLS stays keyed by width alone.
            assert sorted(_POOLS) == [2]
        finally:
            shutdown_pools()

    def test_idle_pool_respawns_on_pin_mismatch(self):
        shutdown_pools()
        try:
            pinned = get_pool(2, pin_workers=True)
            unpinned = get_pool(2)
            assert unpinned is not pinned
            assert unpinned.pin is False
            assert sorted(_POOLS) == [2]
            # Same pin preference reuses the live pool.
            assert get_pool(2) is unpinned
        finally:
            shutdown_pools()

    def test_pin_worker_processes_skips_dead_pids(self):
        # A PID that no longer exists must be skipped, not raised.
        assert pin_worker_processes([2 ** 22 + 12345]) == 0

    def test_run_ensemble_pin_workers_flag(self):
        shutdown_pools()
        try:
            result = run_ensemble(TlineFactory(), range(6), SPAN,
                                  n_points=40, method="rk4",
                                  engine="pool", processes=2,
                                  pin_workers=True)
            assert result.batches[0].y.shape[0] == 6
            assert _POOLS[2].pin
        finally:
            shutdown_pools()
        _assert_no_leaks()
