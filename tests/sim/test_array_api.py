"""Tests for the pluggable array-namespace layer
(:mod:`repro.sim.array_api`).

The abstraction's contract has three tiers, all covered here:

* **numpy/float64 is bit-identical** — the default backend (and every
  spelling of it) reproduces the pre-abstraction engine exactly, on
  the ODE and the SDE path;
* **the functional emission is equivalent** — ``NumpyBackend(
  mutable_kernels=False)`` runs the column-stacking kernels an
  immutable backend (jax) receives, on plain numpy, and must agree
  with the mutable emission at float64 round-off;
* **other dtypes/backends are tolerance-gated** — float32 is
  self-consistent and tracks float64 within a documented band on the
  paper's workloads; jax (when installed) matches numpy at tolerance.

Plus the plumbing: registry/spec behavior, pool/shard refusal of
non-numpy backends, Wiener backend-independence, and telemetry tags.
"""

import numpy as np
import pytest

import repro
from repro.core.compiler import compile_graph
from repro.errors import SimulationError
from repro.lang import parse_program
from repro.paradigms.obc import maxcut_network
from repro.paradigms.tln import mismatched_tline
from repro.sim import (ExecutionPlan, NumpyBackend, array_backend_names,
                       canonical_spec, compile_batch,
                       register_array_backend, resolve_array_backend,
                       run_ensemble, solve_batch, solve_sde)
from repro.sim.array_api import ARRAY_BACKENDS, parse_backend_spec

OU_SOURCE = """
lang ou {
    ntyp(1,sum) X {attr tau=real[1e-3,10] mm(0,0.05),
                   attr nsig=real[0,inf]};
    etyp R {};
    prod(e:R, s:X->s:X) s <= -var(s)/s.tau + noise(s.nsig);
    cstr X {acc[match(1,1,R,X)]};
}
"""


def _ou_system(tau=1.0, nsig=0.5, name="ou", x0=1.0):
    lang = parse_program(OU_SOURCE).languages["ou"]
    g = repro.GraphBuilder(lang, name)
    g.node("x", "X").set_attr("x", "tau", tau)
    g.set_attr("x", "nsig", nsig)
    g.edge("x", "x", "r0", "R").set_init("x", x0)
    return compile_graph(g.finish())


def _tline_systems(n=4):
    return [compile_graph(mismatched_tline("gm", seed=s))
            for s in range(n)]


def _maxcut_systems(n=3):
    edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
    phases = np.random.default_rng(7).uniform(0.0, 2.0 * np.pi, 4)
    return [compile_graph(
        maxcut_network(edges, 4, initial_phases=phases,
                       edge_type="Cpl_ofs", seed=seed))
        for seed in range(n)]


# ----------------------------------------------------------------------
# Registry / spec plumbing
# ----------------------------------------------------------------------

class TestRegistry:
    def test_names_include_numpy_jax_cupy(self):
        assert set(array_backend_names()) >= {"numpy", "jax", "cupy"}

    def test_resolve_default_is_shared_numpy_float64(self):
        a = resolve_array_backend(None)
        b = resolve_array_backend("numpy")
        c = resolve_array_backend("numpy:float64")
        assert a is b is c
        assert a.name == "numpy"
        assert a.dtype == np.float64
        assert a.mutable_kernels

    def test_instance_passes_through(self):
        backend = NumpyBackend("float32")
        assert resolve_array_backend(backend) is backend

    def test_unknown_name_lists_registry(self):
        with pytest.raises(SimulationError,
                           match="unknown array backend 'torch'.*"
                                 "registered array backends"):
            resolve_array_backend("torch")

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(SimulationError, match="dtype"):
            resolve_array_backend("numpy:int32")
        with pytest.raises(SimulationError, match="dtype"):
            NumpyBackend("complex128")

    def test_non_spec_type_rejected(self):
        with pytest.raises(SimulationError, match="spec string"):
            resolve_array_backend(42)

    def test_canonical_spec(self):
        assert canonical_spec(None) == "numpy:float64"
        assert canonical_spec("numpy") == "numpy:float64"
        assert canonical_spec("numpy:float32") == "numpy:float32"
        assert canonical_spec("jax") == "jax:float64"  # no import
        assert (canonical_spec(NumpyBackend("float32"))
                == "numpy:float32")

    def test_parse_backend_spec(self):
        assert parse_backend_spec("numpy") == ("numpy", None)
        assert parse_backend_spec("jax:float32") == ("jax", "float32")
        assert parse_backend_spec(" cupy : float64 ") == ("cupy",
                                                          "float64")

    def test_optional_backends_raise_clear_error_when_absent(self):
        for name in ("jax", "cupy"):
            try:
                __import__(name)
            except ImportError:
                with pytest.raises(SimulationError,
                                   match=f"requires {name}"):
                    resolve_array_backend(name)

    def test_register_custom_backend(self):
        class Doubled(NumpyBackend):
            name = "doubled"

        register_array_backend("doubled", Doubled)
        try:
            backend = resolve_array_backend("doubled:float32")
            assert backend.name == "doubled"
            assert backend.dtype == np.float32
            assert "doubled" in array_backend_names()
        finally:
            ARRAY_BACKENDS.pop("doubled", None)
            from repro.sim.array_api import _RESOLVED
            _RESOLVED.pop(("doubled", "float32"), None)


# ----------------------------------------------------------------------
# numpy/float64 bit-identity (the tentpole's hard gate)
# ----------------------------------------------------------------------

class TestNumpyBitIdentity:
    def test_rkf45_dense_explicit_spec_identical(self):
        systems = _tline_systems()
        default = solve_batch(compile_batch(systems), (0.0, 8e-8),
                              n_points=200)
        explicit = solve_batch(systems, (0.0, 8e-8), n_points=200,
                               array_backend="numpy:float64")
        np.testing.assert_array_equal(default.y, explicit.y)
        assert explicit.y.dtype == np.float64

    def test_rk4_explicit_spec_identical(self):
        systems = _tline_systems(2)
        default = solve_batch(compile_batch(systems), (0.0, 8e-8),
                              method="rk4", n_points=120)
        explicit = solve_batch(systems, (0.0, 8e-8), method="rk4",
                               n_points=120, array_backend="numpy")
        np.testing.assert_array_equal(default.y, explicit.y)

    def test_rkf45_clipped_explicit_spec_identical(self):
        systems = _tline_systems(2)
        default = solve_batch(compile_batch(systems), (0.0, 8e-8),
                              n_points=120, dense=False)
        explicit = solve_batch(systems, (0.0, 8e-8), n_points=120,
                               dense=False, array_backend="numpy")
        np.testing.assert_array_equal(default.y, explicit.y)

    @pytest.mark.parametrize("method", ["em", "heun"])
    def test_sde_explicit_spec_identical(self, method):
        systems = [_ou_system(name=f"ou{k}") for k in range(3)]
        seeds = ["a", "b", "c"]
        default = solve_sde(compile_batch(systems), (0.0, 2.0),
                            noise_seeds=seeds, method=method,
                            n_points=100)
        explicit = solve_sde(compile_batch(systems), (0.0, 2.0),
                             noise_seeds=seeds, method=method,
                             n_points=100, array_backend="numpy")
        np.testing.assert_array_equal(default.y, explicit.y)

    def test_step_mask_explicit_spec_identical(self):
        systems = _tline_systems()
        default = solve_batch(compile_batch(systems), (0.0, 8e-8),
                              n_points=150, freeze_tol=1e-8)
        explicit = solve_batch(systems, (0.0, 8e-8), n_points=150,
                               freeze_tol=1e-8, array_backend="numpy")
        np.testing.assert_array_equal(default.y, explicit.y)
        np.testing.assert_array_equal(default.frozen, explicit.frozen)

    def test_ensemble_driver_explicit_spec_identical(self):
        def factory(seed):
            return mismatched_tline("gm", seed=seed)

        default = run_ensemble(factory, range(4), (0.0, 8e-8),
                               n_points=100)
        explicit = run_ensemble(factory, range(4), (0.0, 8e-8),
                                n_points=100, array_backend="numpy")
        for a, b in zip(default.batches, explicit.batches):
            np.testing.assert_array_equal(a.y, b.y)

    def test_precompiled_batch_conflicting_spec_raises(self):
        batch = compile_batch(_tline_systems(2),
                              array_backend="numpy:float32")
        with pytest.raises(SimulationError, match="conflicts"):
            solve_batch(batch, (0.0, 8e-8), n_points=50,
                        array_backend="numpy:float64")

    def test_precompiled_batch_carries_its_backend(self):
        batch = compile_batch(_tline_systems(2),
                              array_backend="numpy:float32")
        trajectory = solve_batch(batch, (0.0, 8e-8), n_points=50)
        assert trajectory.y.dtype == np.float32


# ----------------------------------------------------------------------
# Functional emission (the immutable-kernel contract, on numpy)
# ----------------------------------------------------------------------

class TestFunctionalEmission:
    def test_ode_functional_matches_mutable(self):
        systems = _tline_systems()
        mutable = solve_batch(compile_batch(systems), (0.0, 8e-8),
                              n_points=150)
        functional = solve_batch(
            systems, (0.0, 8e-8), n_points=150,
            array_backend=NumpyBackend(mutable_kernels=False))
        np.testing.assert_allclose(functional.y, mutable.y,
                                   rtol=1e-12, atol=1e-12)

    def test_ode_unfused_functional_matches_mutable(self):
        systems = _tline_systems(2)
        mutable = solve_batch(compile_batch(systems, fuse=False),
                              (0.0, 8e-8), n_points=100)
        functional = solve_batch(
            compile_batch(systems, fuse=False,
                          array_backend=NumpyBackend(
                              mutable_kernels=False)),
            (0.0, 8e-8), n_points=100)
        np.testing.assert_allclose(functional.y, mutable.y,
                                   rtol=1e-12, atol=1e-12)

    def test_sde_functional_matches_mutable(self):
        systems = [_ou_system(name=f"ou{k}") for k in range(2)]
        seeds = ["p", "q"]
        mutable = solve_sde(compile_batch(systems), (0.0, 2.0),
                            noise_seeds=seeds, n_points=80)
        functional = solve_sde(
            compile_batch(systems,
                          array_backend=NumpyBackend(
                              mutable_kernels=False)),
            (0.0, 2.0), noise_seeds=seeds, n_points=80)
        np.testing.assert_allclose(functional.y, mutable.y,
                                   rtol=1e-12, atol=1e-12)

    def test_maxcut_functional_matches_mutable(self):
        systems = _maxcut_systems(2)
        mutable = solve_batch(compile_batch(systems), (0.0, 100e-9),
                              n_points=60)
        functional = solve_batch(
            systems, (0.0, 100e-9), n_points=60,
            array_backend=NumpyBackend(mutable_kernels=False))
        np.testing.assert_allclose(functional.y, mutable.y,
                                   rtol=1e-10, atol=1e-12)


# ----------------------------------------------------------------------
# dtype policy (satellite: float32 self-consistency + tolerance)
# ----------------------------------------------------------------------

class TestDtypePolicy:
    def test_float32_self_consistent(self):
        systems = _tline_systems()
        a = solve_batch(systems, (0.0, 8e-8), n_points=120,
                        array_backend="numpy:float32")
        b = solve_batch(systems, (0.0, 8e-8), n_points=120,
                        array_backend="numpy:float32")
        np.testing.assert_array_equal(a.y, b.y)
        assert a.y.dtype == np.float32

    def test_float32_tracks_float64_on_tline(self):
        # Documented band (README "Array backends"): single precision
        # carries ~7 significant digits; after adaptive integration
        # the paper's tline transient stays within 1e-3 relative of
        # the float64 trajectory.
        systems = _tline_systems()
        double = solve_batch(systems, (0.0, 8e-8), n_points=120,
                             array_backend="numpy:float64")
        single = solve_batch(systems, (0.0, 8e-8), n_points=120,
                             array_backend="numpy:float32")
        scale = np.max(np.abs(double.y))
        assert np.max(np.abs(single.y.astype(np.float64) - double.y)) \
            < 1e-3 * scale

    def test_float32_tracks_float64_on_maxcut(self):
        systems = _maxcut_systems(2)
        double = solve_batch(systems, (0.0, 100e-9), n_points=60,
                             array_backend="numpy:float64")
        single = solve_batch(systems, (0.0, 100e-9), n_points=60,
                             array_backend="numpy:float32")
        scale = np.max(np.abs(double.y))
        assert np.max(np.abs(single.y.astype(np.float64) - double.y)) \
            < 5e-3 * scale

    def test_float32_ensemble_self_consistent(self):
        def factory(seed):
            return mismatched_tline("gm", seed=seed)

        a = run_ensemble(factory, range(3), (0.0, 8e-8), n_points=80,
                         array_backend="numpy:float32")
        b = run_ensemble(factory, range(3), (0.0, 8e-8), n_points=80,
                         array_backend="numpy:float32")
        for batch_a, batch_b in zip(a.batches, b.batches):
            np.testing.assert_array_equal(batch_a.y, batch_b.y)

    def test_sde_float32_wiener_backend_independent(self):
        # The float32 run consumes the same host PCG64 realization as
        # the float64 run (converted at the boundary), so the noisy
        # trajectories track at single-precision tolerance.
        systems = [_ou_system(name=f"ou{k}") for k in range(2)]
        seeds = ["a", "b"]
        double = solve_sde(compile_batch(systems), (0.0, 1.0),
                           noise_seeds=seeds, n_points=60)
        single = solve_sde(
            compile_batch(systems, array_backend="numpy:float32"),
            (0.0, 1.0), noise_seeds=seeds, n_points=60)
        scale = np.max(np.abs(double.y))
        assert np.max(np.abs(single.y.astype(np.float64) - double.y)) \
            < 1e-3 * scale


# ----------------------------------------------------------------------
# Execution-plan integration: refusal + errors (satellite)
# ----------------------------------------------------------------------

class TestPlanIntegration:
    @pytest.mark.parametrize("engine", ["pool", "shard"])
    def test_pool_and_shard_refuse_non_numpy(self, engine):
        # Name-based: refusing 'jax' must not require jax installed.
        def factory(seed):
            return mismatched_tline("gm", seed=seed)

        with pytest.raises(SimulationError,
                           match=f"execution backend '{engine}'.*jax"):
            run_ensemble(factory, range(2), (0.0, 8e-8),
                         engine=engine, array_backend="jax")

    def test_auto_engine_stays_in_process_on_non_numpy(self):
        # auto + processes normally picks the pool for big groups; a
        # non-numpy array backend must keep it on batch. Name-based —
        # probing the policy must not import jax.
        from repro.sim.plan import BACKENDS, GroupTask

        plan = ExecutionPlan(
            factory=lambda s: None, seeds=list(range(64)),
            t_span=(0.0, 1.0), backend="auto", processes=8,
            array_backend="jax")
        task = GroupTask(plan=plan, indices=list(range(64)),
                         group_systems=[object()] * 64, options={})
        assert BACKENDS["auto"]._pick(task) is BACKENDS["batch"]
        numpy_plan = ExecutionPlan(
            factory=lambda s: None, seeds=list(range(64)),
            t_span=(0.0, 1.0), backend="auto", processes=8)
        numpy_task = GroupTask(plan=numpy_plan,
                               indices=list(range(64)),
                               group_systems=[object()] * 64,
                               options={})
        assert BACKENDS["auto"]._pick(numpy_task) is BACKENDS["pool"]

    def test_unknown_array_backend_lists_both_registries(self):
        def factory(seed):
            return mismatched_tline("gm", seed=seed)

        with pytest.raises(SimulationError,
                           match="registered array backends.*"
                                 "registered execution backends"):
            run_ensemble(factory, range(2), (0.0, 8e-8),
                         array_backend="torch")

    def test_unknown_execution_backend_lists_both_registries(self):
        plan = ExecutionPlan(factory=lambda s: None, seeds=[0],
                             t_span=(0.0, 1.0), backend="bogus")
        with pytest.raises(SimulationError,
                           match="registered execution backends.*"
                                 "registered array backends"):
            plan.validate()

    def test_float32_pool_allowed(self):
        # The refusal is about device arrays, not dtype: numpy:float32
        # is host memory and pools fine.
        def factory(seed):
            return mismatched_tline("gm", seed=seed)

        result = run_ensemble(factory, range(2), (0.0, 8e-8),
                              n_points=50, engine="pool", processes=2,
                              array_backend="numpy:float32")
        assert result.batches[0].y.dtype == np.float32

    def test_missing_optional_backend_fails_eagerly(self):
        # Without eager resolution in validate(), the solve-time
        # "jax is not installed" SimulationError would be swallowed by
        # the auto-method serial fallback and the sweep would silently
        # run on numpy.
        import repro.sim.array_api as array_api

        def factory(seed):
            return mismatched_tline("gm", seed=seed)

        def unavailable(dtype):
            raise SimulationError(
                "jax is not installed in this environment")

        original = array_api.ARRAY_BACKENDS["jax"]
        resolved = dict(array_api._RESOLVED)
        array_api.ARRAY_BACKENDS["jax"] = unavailable
        array_api._RESOLVED.clear()
        try:
            with pytest.raises(SimulationError, match="not installed"):
                run_ensemble(factory, range(4), (0.0, 8e-8),
                             n_points=50, array_backend="jax")
        finally:
            array_api.ARRAY_BACKENDS["jax"] = original
            array_api._RESOLVED.clear()
            array_api._RESOLVED.update(resolved)


# ----------------------------------------------------------------------
# Telemetry tags
# ----------------------------------------------------------------------

class TestTelemetryTags:
    def test_backend_tags_recorded(self):
        def factory(seed):
            return mismatched_tline("gm", seed=seed)

        result = run_ensemble(factory, range(2), (0.0, 8e-8),
                              n_points=50, telemetry=True)
        counters = result.telemetry.counters
        assert counters.get("codegen.backend.numpy", 0) >= 1
        assert counters.get("solver.array_backend.numpy", 0) >= 1


# ----------------------------------------------------------------------
# jax equivalence (skips cleanly when jax is absent)
# ----------------------------------------------------------------------

def _has_jax() -> bool:
    try:
        import jax  # noqa: F401
    except ImportError:
        return False
    return True


@pytest.mark.skipif(not _has_jax(),
                    reason="jax not installed; the numpy-vs-jax "
                    "equivalence gate runs in the optional CI leg")
class TestJaxEquivalence:
    def test_tline_ode_matches_numpy(self):
        systems = _tline_systems()
        host = solve_batch(systems, (0.0, 8e-8), n_points=120)
        device = solve_batch(
            compile_batch(systems, array_backend="jax"),
            (0.0, 8e-8), n_points=120)
        scale = np.max(np.abs(host.y))
        assert np.max(np.abs(device.y - host.y)) < 1e-9 * scale
        assert isinstance(device.y, np.ndarray)

    def test_ou_sde_matches_numpy(self):
        systems = [_ou_system(name=f"ou{k}") for k in range(2)]
        seeds = ["a", "b"]
        host = solve_sde(compile_batch(systems), (0.0, 1.0),
                         noise_seeds=seeds, n_points=60)
        device = solve_sde(
            compile_batch(systems, array_backend="jax"),
            (0.0, 1.0), noise_seeds=seeds, n_points=60)
        scale = np.max(np.abs(host.y))
        assert np.max(np.abs(device.y - host.y)) < 1e-9 * scale

    def test_ensemble_driver_jax(self):
        def factory(seed):
            return mismatched_tline("gm", seed=seed)

        host = run_ensemble(factory, range(3), (0.0, 8e-8),
                            n_points=80)
        device = run_ensemble(factory, range(3), (0.0, 8e-8),
                              n_points=80, array_backend="jax")
        for a, b in zip(host.batches, device.batches):
            scale = np.max(np.abs(a.y))
            assert np.max(np.abs(b.y - a.y)) < 1e-9 * scale
