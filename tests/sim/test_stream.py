"""Tests for the streaming executor: chunks arrive before the sweep
completes (test-enforced), the union of a drained stream reassembles
bit-identically to the barriered run (in any completion order), and the
CLI ``--stream`` mode emits identical statistics."""

import random

import numpy as np
import pytest

import repro
from repro.paradigms.tln import TLineSpec, mismatched_tline
from repro.paradigms.tln.noisy import NoisyTlineFactory
from repro.sim import (BACKENDS, EnsembleChunk, ExecutionPlan,
                       NoisyEnsembleChunk, assemble_chunks,
                       register_backend, run_ensemble,
                       run_noisy_ensemble, stream_ensemble,
                       stream_plan)
from repro.sim.plan import BatchBackend

SPAN = (0.0, 4e-8)


def _two_group_factory(seed):
    spec = TLineSpec(n_segments=3 if seed % 2 else 4)
    return mismatched_tline("gm", seed=seed, spec=spec)


class PicklableTwoGroupFactory:
    def __call__(self, seed):
        return _two_group_factory(seed)


class TestFirstChunkBeforeCompletion:
    """The acceptance criterion: stream=True provably yields its first
    group before the sweep has finished integrating."""

    def test_first_chunk_arrives_before_other_groups_solve(self):
        calls = []

        class CountingBackend(BatchBackend):
            name = "counting-stream"

            def solve_ode(self, task):
                calls.append(list(task.indices))
                return super().solve_ode(task)

        register_backend(CountingBackend())
        try:
            plan = ExecutionPlan(factory=_two_group_factory,
                                 seeds=list(range(6)), t_span=SPAN,
                                 backend="counting-stream", n_points=30)
            stream = stream_plan(plan)
            assert calls == []  # nothing integrates until consumed
            first = next(stream)
            assert isinstance(first, EnsembleChunk)
            # Exactly one of the two structural groups has been
            # integrated when the first chunk is delivered.
            assert len(calls) == 1
            rest = list(stream)
            assert len(calls) == 2
            assert len(rest) == 1
        finally:
            del BACKENDS["counting-stream"]

    def test_sde_stream_is_lazy_too(self):
        solved = []

        class CountingBackend(BatchBackend):
            name = "counting-sde"

            def solve_sde(self, task):
                solved.append(list(task.indices))
                return super().solve_sde(task)

        register_backend(CountingBackend())
        try:
            factory = NoisyTlineFactory(TLineSpec(n_segments=4),
                                        noise=1e-9)
            chunks = run_noisy_ensemble(factory, range(3), SPAN,
                                        trials=2, n_points=30,
                                        engine="batch", stream=True,
                                        reference=False)
            # run_noisy_ensemble(engine="batch") maps to the auto
            # policy; force the counting backend through the plan form
            # instead.
            list(chunks)
            from repro.sim import NoiseSpec

            plan = ExecutionPlan(factory=factory,
                                 seeds=list(range(3)), t_span=SPAN,
                                 backend="counting-sde", n_points=30,
                                 noise=NoiseSpec(trials=2,
                                                 reference=False))
            stream = stream_plan(plan)
            assert solved == []
            first = next(stream)
            assert isinstance(first, NoisyEnsembleChunk)
            assert len(solved) == 1
        finally:
            del BACKENDS["counting-sde"]


class TestUnionEqualsBarrier:
    def test_ode_stream_assembles_bit_identically(self):
        seeds = list(range(6))
        barrier = run_ensemble(_two_group_factory, seeds, SPAN,
                               n_points=30)
        chunks = list(stream_ensemble(_two_group_factory, seeds, SPAN,
                                      n_points=30))
        assert len(chunks) == 2
        result = assemble_chunks(chunks, seeds)
        assert result.groups == barrier.groups
        assert result.serial_indices == barrier.serial_indices
        for a, b in zip(barrier.batches, result.batches):
            np.testing.assert_array_equal(a.y, b.y)
        for a, b in zip(barrier.trajectories, result.trajectories):
            np.testing.assert_array_equal(a.y, b.y)

    def test_assembly_is_order_independent(self):
        seeds = list(range(6))
        barrier = run_ensemble(_two_group_factory, seeds, SPAN,
                               n_points=30)
        chunks = list(stream_ensemble(_two_group_factory, seeds, SPAN,
                                      n_points=30))
        random.Random(7).shuffle(chunks)
        result = assemble_chunks(chunks, seeds)
        assert result.groups == barrier.groups
        for a, b in zip(barrier.batches, result.batches):
            np.testing.assert_array_equal(a.y, b.y)

    def test_mixed_serial_and_batched_chunks(self):
        # Odd one out: a unique structure lands in the serial chunk.
        def factory(seed):
            spec = TLineSpec(n_segments=5 if seed == 2 else 4)
            return mismatched_tline("gm", seed=seed, spec=spec)

        seeds = list(range(5))
        barrier = run_ensemble(factory, seeds, SPAN, n_points=30)
        assert barrier.serial_indices == [2]
        chunks = list(stream_ensemble(factory, seeds, SPAN,
                                      n_points=30))
        serial_chunks = [c for c in chunks if not c.batches]
        assert len(serial_chunks) == 1
        assert serial_chunks[0].indices == [2]
        result = assemble_chunks(chunks, seeds)
        assert result.serial_indices == [2]
        for a, b in zip(barrier.trajectories, result.trajectories):
            np.testing.assert_array_equal(a.y, b.y)

    def test_noisy_stream_assembles_bit_identically(self):
        factory = NoisyTlineFactory(TLineSpec(n_segments=4),
                                    noise=1e-9)
        seeds = list(range(4))
        barrier = run_noisy_ensemble(factory, seeds, SPAN, trials=2,
                                     n_points=30)
        chunks = list(run_noisy_ensemble(factory, seeds, SPAN,
                                         trials=2, n_points=30,
                                         stream=True))
        result = assemble_chunks(chunks, seeds)
        assert result.trials == barrier.trials
        assert result.groups == barrier.groups
        assert result._rows == barrier._rows
        for a, b in zip(barrier.batches, result.batches):
            np.testing.assert_array_equal(a.y, b.y)
        for chip in seeds:
            np.testing.assert_array_equal(barrier.reference(chip).y,
                                          result.reference(chip).y)
            for trial in range(2):
                np.testing.assert_array_equal(
                    barrier.trajectory(chip, trial).y,
                    result.trajectory(chip, trial).y)

    def test_noisy_chunk_accessors_are_chunk_local(self):
        factory = NoisyTlineFactory(TLineSpec(n_segments=4),
                                    noise=1e-9)
        barrier = run_noisy_ensemble(factory, range(3), SPAN, trials=2,
                                     n_points=30)
        (chunk,) = run_noisy_ensemble(factory, range(3), SPAN,
                                      trials=2, n_points=30,
                                      stream=True)
        assert chunk.indices == [0, 1, 2]
        assert chunk.n_chips == 3
        np.testing.assert_array_equal(chunk.trajectory(1, 1).y,
                                      barrier.trajectory(1, 1).y)
        np.testing.assert_array_equal(chunk.reference(2).y,
                                      barrier.reference(2).y)


class TestPoolStreaming:
    """Chunks under the pool backend arrive in completion order while
    other groups are still in flight."""

    def test_pool_stream_union_and_hygiene(self):
        from repro.sim import shm

        factory = PicklableTwoGroupFactory()
        seeds = list(range(8))
        barrier = run_ensemble(factory, seeds, SPAN, n_points=30,
                               engine="pool", processes=2)
        chunks = list(stream_ensemble(factory, seeds, SPAN,
                                      n_points=30, engine="pool",
                                      processes=2))
        assert sorted(chunk.order for chunk in chunks) == [0, 1]
        result = assemble_chunks(chunks, seeds)
        for a, b in zip(barrier.batches, result.batches):
            np.testing.assert_array_equal(a.y, b.y)
        assert shm.active_blocks() == []

    def test_abandoned_stream_releases_blocks(self):
        from repro.sim import shm

        factory = PicklableTwoGroupFactory()
        stream = stream_ensemble(factory, list(range(8)), SPAN,
                                 n_points=30, engine="pool",
                                 processes=2)
        next(stream)
        stream.close()  # consumer walks away mid-sweep
        assert shm.active_blocks() == []


class TestCliStream:
    PROGRAM = """
lang leaky-noise {
    ntyp(1,sum) X {attr tau=real[0.1,10] mm(0,0.1),
                   attr nsig=real[0,inf]};
    etyp R {};
    prod(e:R, s:X->s:X) s <= -var(s)/s.tau + noise(s.nsig);
    cstr X {acc[match(1,1,R,X)]};
}

func cell (nsig:real[0,inf]) uses leaky-noise {
    node x:X;
    edge <x,x> r0:R;
    set-attr x.tau = 1.0;
    set-attr x.nsig = nsig;
    set-init x(0) = 1.0;
}
"""

    @pytest.fixture()
    def noisy_file(self, tmp_path):
        path = tmp_path / "noisy.ark"
        path.write_text(self.PROGRAM)
        return str(path)

    def test_stream_csv_is_bit_identical(self, noisy_file, tmp_path,
                                         capsys):
        from repro.cli import main

        streamed = tmp_path / "streamed.csv"
        barriered = tmp_path / "barriered.csv"
        assert main(["ensemble", noisy_file, "--arg", "nsig=0.3",
                     "--t-end", "2.0", "--seeds", "2", "--trials", "3",
                     "--points", "40", "--node", "x", "--stream",
                     "--csv", str(streamed)]) == 0
        out = capsys.readouterr().out
        assert "[stream] group 0:" in out
        assert main(["ensemble", noisy_file, "--arg", "nsig=0.3",
                     "--t-end", "2.0", "--seeds", "2", "--trials", "3",
                     "--points", "40", "--node", "x",
                     "--csv", str(barriered)]) == 0
        assert "[stream]" not in capsys.readouterr().out
        assert streamed.read_bytes() == barriered.read_bytes()

    def test_stream_with_pool_engine(self, noisy_file, tmp_path,
                                     capsys):
        from repro.cli import main

        streamed = tmp_path / "pool.csv"
        plain = tmp_path / "plain.csv"
        assert main(["ensemble", noisy_file, "--arg", "nsig=0.3",
                     "--t-end", "2.0", "--seeds", "2", "--trials", "3",
                     "--points", "40", "--node", "x", "--stream",
                     "--engine", "pool", "--processes", "2",
                     "--csv", str(streamed)]) == 0
        capsys.readouterr()
        assert main(["ensemble", noisy_file, "--arg", "nsig=0.3",
                     "--t-end", "2.0", "--seeds", "2", "--trials", "3",
                     "--points", "40", "--node", "x",
                     "--csv", str(plain)]) == 0
        capsys.readouterr()
        assert streamed.read_bytes() == plain.read_bytes()
        from repro.sim import shm

        assert shm.active_blocks() == []


class TestStreamValidation:
    def test_validation_raises_at_call_time(self):
        with pytest.raises(ValueError, match="unknown engine"):
            stream_ensemble(_two_group_factory, range(2), SPAN,
                            engine="bogus")

    def test_trials_guard_still_applies(self):
        with pytest.raises(repro.SimulationError, match="trials"):
            list(run_ensemble(_two_group_factory, range(2), SPAN,
                              trials=0, stream=True))
