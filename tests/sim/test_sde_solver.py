"""Tests for the batched SDE engine: solver correctness in the
zero-noise limit, statistical sanity against closed-form OU moments,
stream determinism, and the noisy-ensemble driver."""

import numpy as np
import pytest

import repro
from repro.core.compiler import compile_graph
from repro.errors import SimulationError
from repro.lang import parse_program
from repro.sim import (WienerSource, compile_batch, run_noisy_ensemble,
                       simulate_sde, solve_batch, solve_sde)

OU_SOURCE = """
lang ou {
    ntyp(1,sum) X {attr tau=real[1e-3,10], attr nsig=real[0,inf]};
    etyp R {};
    prod(e:R, s:X->s:X) s <= -var(s)/s.tau + noise(s.nsig);
    cstr X {acc[match(1,1,R,X)]};
}
"""


def _ou_system(tau=1.0, nsig=0.5, name="ou", x0=1.0):
    lang = parse_program(OU_SOURCE).languages["ou"]
    g = repro.GraphBuilder(lang, name)
    g.node("x", "X").set_attr("x", "tau", tau)
    g.set_attr("x", "nsig", nsig)
    g.edge("x", "x", "r0", "R").set_init("x", x0)
    return compile_graph(g.finish())


class TestWienerSource:
    def test_block_size_independent(self):
        paths = [("e0", "w0"), ("e1", "w0")]
        a = WienerSource([0, 1], paths, block=256)
        b = WienerSource([0, 1], paths, block=3)
        draws_a = np.stack([a.normals(k) for k in range(20)])
        draws_b = np.stack([b.normals(k) for k in range(20)])
        assert np.array_equal(draws_a, draws_b)

    def test_rewind_within_block_allowed(self):
        source = WienerSource([0], [("e0", "w0")], block=16)
        later = source.normals(5).copy()
        again = source.normals(5)
        assert np.array_equal(later, again)

    def test_rewind_past_block_rejected(self):
        source = WienerSource([0], [("e0", "w0")], block=4)
        source.normals(10)
        with pytest.raises(SimulationError):
            source.normals(1)

    def test_no_paths_short_circuits(self):
        source = WienerSource([0, 1, 2], [])
        assert source.normals(0).shape == (3, 0)


class TestZeroDiffusionEquivalence:
    """Property: with every noise amplitude at 0, the SDE solvers are
    plain fixed-step ODE solvers and must track RK4 within solver
    tolerance — on the OU cell and on real paradigm workloads."""

    @pytest.mark.parametrize("method,atol", [("em", 2e-2),
                                             ("heun", 2e-4)])
    def test_ou_matches_rk4(self, method, atol):
        system = _ou_system(nsig=0.0)
        batch = compile_batch([system])
        grid_kw = dict(n_points=400)
        sde = solve_sde(batch, (0.0, 5.0), method=method, **grid_kw)
        rk4 = solve_batch(batch, (0.0, 5.0), method="rk4", **grid_kw)
        np.testing.assert_allclose(sde.y, rk4.y, atol=atol)

    def test_tline_matches_rk4(self):
        # Heun only: the lossless interior of a t-line puts eigenvalues
        # on the imaginary axis, where plain Euler-Maruyama's drift
        # update is marginally unstable — exactly why heun is the
        # default method.
        from repro.paradigms.tln import TLineSpec, linear_tline

        # Tiny noise amplitude via the noisy language: diffusion terms
        # exist but fold to ~0, so the SDE path runs end to end.
        from repro.paradigms.tln.noisy import ns_tln_language

        graph = linear_tline(TLineSpec(n_segments=6), noise=1e-30,
                             language=ns_tln_language())
        system = compile_graph(graph)
        assert system.has_noise
        batch = compile_batch([system])
        sde = solve_sde(batch, (0.0, 4e-8), n_points=400,
                        method="heun")
        rk4 = solve_batch(batch, (0.0, 4e-8), n_points=400,
                          method="rk4")
        scale = np.abs(rk4.y).max()
        assert np.abs(sde.y - rk4.y).max() <= 1e-2 * scale

    def test_obc_matches_rk4(self):
        from repro.paradigms.obc import maxcut_network

        rng = np.random.default_rng(0)
        graph = maxcut_network([(0, 1), (1, 2), (2, 0)], 3,
                               initial_phases=rng.uniform(0, 6.28, 3),
                               noise_sigma=1e-30)
        batch = compile_batch([compile_graph(graph)])
        sde = solve_sde(batch, (0.0, 50e-9), n_points=50,
                        max_step=5e-11)
        rk4 = solve_batch(batch, (0.0, 50e-9), n_points=50,
                          method="rk4", max_step=5e-11)
        np.testing.assert_allclose(sde.y, rk4.y, atol=1e-3)


class TestNoiseStatistics:
    def test_ou_stationary_moments(self):
        """A batch of OU processes must reproduce the closed-form
        stationary variance sigma^2 * tau / 2 and zero mean."""
        tau, sigma = 0.5, 0.8
        system = _ou_system(tau=tau, nsig=sigma, x0=0.0)
        batch = compile_batch([system] * 256)
        traj = solve_sde(batch, (0.0, 6.0), noise_seeds=range(256),
                        n_points=300, method="heun")
        late = traj.state("x")[:, 150:]
        expected_std = sigma * np.sqrt(tau / 2.0)
        assert abs(late.mean()) < 0.05
        assert late.std() == pytest.approx(expected_std, rel=0.12)

    def test_noise_scales_with_sigma(self):
        spreads = []
        for sigma in (0.1, 0.4):
            batch = compile_batch(
                [_ou_system(nsig=sigma, name=f"s{sigma}")] * 32)
            traj = solve_sde(batch, (0.0, 3.0),
                             noise_seeds=range(32), n_points=150)
            spreads.append(traj.spread("x", (1.0, 3.0)))
        assert spreads[1] > 2.0 * spreads[0]


class TestDeterminism:
    def test_same_seed_same_path(self):
        system = _ou_system()
        kwargs = dict(noise_seeds=["a", "a"], n_points=100)
        traj = solve_sde(compile_batch([system] * 2), (0.0, 2.0),
                         **kwargs)
        np.testing.assert_array_equal(traj.y[0], traj.y[1])

    def test_different_seed_different_path(self):
        system = _ou_system()
        traj = solve_sde(compile_batch([system] * 2), (0.0, 2.0),
                         noise_seeds=["a", "b"], n_points=100)
        assert not np.array_equal(traj.y[0], traj.y[1])

    def test_rerun_replays_realization(self):
        system = _ou_system()
        a = simulate_sde(system, (0.0, 2.0), noise_seed=3,
                         n_points=100)
        b = simulate_sde(system, (0.0, 2.0), noise_seed=3,
                         n_points=100)
        np.testing.assert_array_equal(a.y, b.y)

    def test_serial_matches_batched_row(self):
        systems = [_ou_system(name=f"c{k}") for k in range(3)]
        batched = solve_sde(compile_batch(systems), (0.0, 2.0),
                            noise_seeds=["s0", "s1", "s2"],
                            n_points=100)
        serial = simulate_sde(systems[1], (0.0, 2.0), noise_seed="s1",
                              n_points=100)
        np.testing.assert_array_equal(batched.instance(1).y, serial.y)


class TestSolverValidation:
    def test_unknown_method(self):
        with pytest.raises(SimulationError, match="rk99.*expected one"):
            solve_sde(compile_batch([_ou_system()]), (0.0, 1.0),
                      method="rk99")

    def test_unknown_method_rejected_before_compile(self):
        # Validation must fire even on an uncompiled system list (no
        # late AttributeError from a half-built batch).
        with pytest.raises(SimulationError, match="expected one of"):
            solve_sde([_ou_system()], (0.0, 1.0), method="euler")

    def test_seed_count_mismatch(self):
        with pytest.raises(SimulationError):
            solve_sde(compile_batch([_ou_system()] * 2), (0.0, 1.0),
                      noise_seeds=[1])

    def test_deterministic_batch_has_no_diffusion(self):
        silent = _ou_system(nsig=0.0, name="quiet")
        batch = compile_batch([silent])
        assert not batch.has_noise
        with pytest.raises(SimulationError):
            batch.diffusion(0.0, batch.y0)

    @pytest.mark.parametrize("max_step", [0.0, -0.5, float("nan")])
    def test_invalid_max_step_rejected(self, max_step):
        # Regression: max_step=0 died in int(np.ceil(dt/0)) and
        # negative values were silently ignored by max(1, ...) in the
        # substep plan.
        with pytest.raises(SimulationError, match="max_step"):
            solve_sde(compile_batch([_ou_system()]), (0.0, 1.0),
                      max_step=max_step)

    @pytest.mark.parametrize("n_points", [1, 0])
    def test_degenerate_n_points_rejected(self, n_points):
        # Regression: a 1-point grid skipped integration and returned
        # only y0; a 0-point grid crashed with a bare IndexError.
        with pytest.raises(SimulationError, match="n_points"):
            solve_sde(compile_batch([_ou_system()]), (0.0, 1.0),
                      n_points=n_points)


class TestNoisyEnsembleDriver:
    def _factory(self, seed):
        return _ou_system(nsig=0.3, name=f"chip{seed}")

    def test_layout_and_accessors(self):
        result = run_noisy_ensemble(self._factory, seeds=[0, 1, 2],
                                    t_span=(0.0, 2.0), trials=4,
                                    n_points=80)
        assert result.n_chips == 3 and result.trials == 4
        assert len(result.batches) == 1
        assert result.batches[0].n_instances == 12
        assert len(result.trials_of(2)) == 4
        batch, rows = result.trial_rows(1)
        assert rows == slice(4, 8)

    def test_reference_is_deterministic_run(self):
        result = run_noisy_ensemble(self._factory, seeds=[0],
                                    t_span=(0.0, 2.0), trials=2,
                                    n_points=80)
        reference = result.reference(0)
        rk4 = solve_batch(compile_batch([self._factory(0)]),
                          (0.0, 2.0), n_points=80, method="rk4")
        np.testing.assert_allclose(reference.y, rk4.instance(0).y)

    def test_chip_trial_streams_stable(self):
        """A (chip, trial) realization must not depend on which other
        chips ride in the ensemble."""
        full = run_noisy_ensemble(self._factory, seeds=[0, 1, 2],
                                  t_span=(0.0, 2.0), trials=3,
                                  n_points=80)
        alone = run_noisy_ensemble(self._factory, seeds=[2],
                                   t_span=(0.0, 2.0), trials=3,
                                   n_points=80)
        np.testing.assert_array_equal(
            full.trajectory(2, 1).y, alone.trajectory(0, 1).y)

    def test_trial_base_shifts_realizations(self):
        a = run_noisy_ensemble(self._factory, seeds=[0],
                               t_span=(0.0, 2.0), trials=2,
                               n_points=80)
        b = run_noisy_ensemble(self._factory, seeds=[0],
                               t_span=(0.0, 2.0), trials=2,
                               n_points=80, trial_base=2)
        assert not np.array_equal(a.trajectory(0, 0).y,
                                  b.trajectory(0, 0).y)

    def test_no_reference_raises(self):
        result = run_noisy_ensemble(self._factory, seeds=[0],
                                    t_span=(0.0, 2.0), trials=1,
                                    n_points=50, reference=False)
        with pytest.raises(SimulationError):
            result.reference(0)


class TestAnalysisHelpers:
    def test_trial_spread_and_snr(self):
        from repro.analysis import noise_snr, trial_spread

        result = run_noisy_ensemble(
            lambda seed: _ou_system(nsig=0.3, name=f"c{seed}"),
            seeds=[0, 1], t_span=(0.0, 2.0), trials=6, n_points=80)
        spread = trial_spread(result, "x", (0.5, 2.0))
        assert spread.shape == (2,)
        assert np.all(spread > 0)
        snr = noise_snr(result, "x", (0.5, 2.0))
        assert np.all(snr > 0)

    def test_bit_error_rate(self):
        from repro.analysis import bit_error_rate

        refs = np.array([[0, 1, 0, 1]])
        trials = np.array([[[0, 1, 0, 1], [1, 1, 0, 1]]])
        assert bit_error_rate(refs, trials) == pytest.approx(1 / 8)
