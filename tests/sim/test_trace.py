"""Tests for :mod:`repro.telemetry.trace`: Chrome-Trace export.

The golden property: every exported trace is a *valid* Trace Event
Format document — required keys on every event, globally monotone
timestamps among duration events, and matched B/E pairs per
``(pid, tid)`` lane — first on a synthetic report (deterministic),
then on a real 2-process pool run (the acceptance criterion: >= 2
worker lanes). Plus the v1 -> v2 report migration that makes old
saved reports exportable.
"""

import json

from repro.paradigms.tln import mismatched_tline
from repro.sim import run_ensemble
from repro.sim.cache import TrajectoryCache
from repro.telemetry import (READABLE_SCHEMAS, SCHEMA_VERSION, RunReport,
                             migrate_report, to_chrome_trace,
                             validate_report)
from repro.telemetry.trace import (PARENT_PID, WORKER_PID, export_trace,
                                   trace_events, worker_lanes)


class TlineFactory:
    """Module-level (picklable) deterministic factory."""

    def __call__(self, seed):
        return mismatched_tline("gm", seed=seed)


SPAN = (0.0, 4e-8)


def synthetic_report():
    """A deterministic report: a 2-deep span tree + 2 worker lanes."""
    return RunReport(
        schema=SCHEMA_VERSION,
        meta={"driver": "test"},
        wall_seconds=0.5,
        spans=[
            {"name": "plan.compile", "seconds": 0.1, "start": 0.0,
             "children": []},
            {"name": "plan.solve", "seconds": 0.3, "start": 0.1,
             "children": [
                 {"name": "group[0].solve:pool", "seconds": 0.2,
                  "start": 0.15, "children": []},
             ]},
        ],
        events=[
            {"name": "shard.solve:ode", "lane": "ark-pool-0",
             "start": 0.16, "seconds": 0.1, "rows": 8},
            {"name": "shard.solve:ode", "lane": "ark-pool-1",
             "start": 0.17, "seconds": 0.12, "rows": 8},
            {"name": "shard.solve:ode", "lane": "ark-pool-0",
             "start": 0.28, "seconds": 0.05, "rows": 4},
        ],
    )


def assert_valid_trace(trace):
    """The golden Chrome-Trace validity predicate."""
    assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
    events = trace["traceEvents"]
    assert events, "empty trace"
    for event in events:
        for key in ("name", "ph", "ts", "pid", "tid"):
            assert key in event, f"missing {key!r}: {event}"
        assert event["ph"] in ("B", "E", "M")
        assert event["ts"] >= 0
    durations = [e for e in events if e["ph"] in ("B", "E")]
    # Globally monotone timestamps (viewers rely on this).
    stamps = [e["ts"] for e in durations]
    assert stamps == sorted(stamps)
    # Matched B/E pairs per lane: depth never dips below zero and
    # every lane ends balanced.
    depth = {}
    for event in durations:
        lane = (event["pid"], event["tid"])
        depth[lane] = depth.get(lane, 0) + (1 if event["ph"] == "B"
                                            else -1)
        assert depth[lane] >= 0, f"E before B on lane {lane}"
    assert all(d == 0 for d in depth.values()), f"unbalanced: {depth}"
    # The document must be JSON-serializable as-is.
    json.dumps(trace)


class TestSyntheticTrace:

    def test_valid_and_complete(self):
        trace = to_chrome_trace(synthetic_report())
        assert_valid_trace(trace)
        events = trace["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "B"}
        assert {"plan.compile", "plan.solve", "group[0].solve:pool",
                "shard.solve:ode"} <= names
        # 3 span nodes + 3 worker events = 6 B/E pairs.
        assert sum(1 for e in events if e["ph"] == "B") == 6
        assert sum(1 for e in events if e["ph"] == "E") == 6

    def test_lane_layout_and_metadata(self):
        events = trace_events(synthetic_report())
        meta = [e for e in events if e["ph"] == "M"]
        labels = {(e["pid"], e["tid"], e["name"]): e["args"]["name"]
                  for e in meta}
        assert labels[(PARENT_PID, 0, "process_name")] == "main"
        assert labels[(WORKER_PID, 0, "thread_name")] == "ark-pool-0"
        assert labels[(WORKER_PID, 1, "thread_name")] == "ark-pool-1"
        assert labels[(WORKER_PID, 0, "process_name")] == "pool workers"
        # Worker events land on their lane's tid; extras ride in args.
        worker = [e for e in events
                  if e["ph"] == "B" and e["pid"] == WORKER_PID]
        assert {e["tid"] for e in worker} == {0, 1}
        assert worker[0]["args"]["rows"] == 8

    def test_timestamps_are_microseconds(self):
        events = trace_events(synthetic_report())
        compile_begin = next(e for e in events
                             if e["name"] == "plan.compile"
                             and e["ph"] == "B")
        compile_end = next(e for e in events
                           if e["name"] == "plan.compile"
                           and e["ph"] == "E")
        assert compile_begin["ts"] == 0.0
        assert compile_end["ts"] == 0.1 * 1e6

    def test_children_clamped_into_parent(self):
        # A child overshooting its parent (separate clock reads) must
        # be clamped, or viewers render a corrupt stack.
        report = synthetic_report()
        report.spans = [
            {"name": "parent", "seconds": 0.1, "start": 0.0,
             "children": [
                 {"name": "child", "seconds": 0.2, "start": 0.05,
                  "children": []},
             ]},
        ]
        report.events = []
        trace = to_chrome_trace(report)
        assert_valid_trace(trace)
        child_end = next(e for e in trace["traceEvents"]
                         if e["name"] == "child" and e["ph"] == "E")
        parent_end = next(e for e in trace["traceEvents"]
                          if e["name"] == "parent" and e["ph"] == "E")
        assert child_end["ts"] <= parent_end["ts"]

    def test_worker_lanes_helper(self):
        assert worker_lanes(synthetic_report()) == ["ark-pool-0",
                                                    "ark-pool-1"]
        assert worker_lanes(RunReport()) == []

    def test_other_data_carries_meta(self):
        trace = to_chrome_trace(synthetic_report())
        other = trace["otherData"]
        assert other["schema"] == SCHEMA_VERSION
        assert other["wall_seconds"] == 0.5
        assert other["meta.driver"] == "test"

    def test_export_round_trip(self, tmp_path):
        path = export_trace(synthetic_report(), tmp_path / "t.json")
        loaded = json.loads(path.read_text())
        assert_valid_trace(loaded)


class TestSchemaMigration:
    """v1 reports (no span starts, no events) stay loadable and
    exportable after the v2 bump."""

    V1 = {
        "schema": 1,
        "meta": {"driver": "old"},
        "wall_seconds": 1.0,
        "counters": {"solver.nfev": 10},
        "gauges": {},
        "spans": [
            {"name": "outer", "seconds": 0.5,
             "children": [{"name": "inner", "seconds": 0.2,
                           "children": []}]},
        ],
        "workers": {},
    }

    def test_readable_schemas(self):
        assert 1 in READABLE_SCHEMAS
        assert SCHEMA_VERSION in READABLE_SCHEMAS
        assert SCHEMA_VERSION == 2

    def test_v1_loads_and_migrates(self):
        report = RunReport.from_dict(self.V1)
        assert report.schema == SCHEMA_VERSION
        assert report.events == []
        assert report.spans[0]["start"] == 0.0
        assert report.spans[0]["children"][0]["start"] == 0.0
        # The migrated dict passes current validation.
        assert validate_report(report.to_dict()) == []

    def test_migrate_is_pure_and_idempotent(self):
        original = json.loads(json.dumps(self.V1))
        migrated = migrate_report(self.V1)
        assert self.V1 == original, "migrate_report mutated its input"
        assert migrate_report(migrated) == migrated

    def test_v1_report_exports_degenerate_trace(self):
        # All spans at offset 0 — degenerate, but structurally valid.
        trace = to_chrome_trace(RunReport.from_dict(self.V1))
        assert_valid_trace(trace)
        begins = [e["ts"] for e in trace["traceEvents"]
                  if e["ph"] == "B"]
        assert begins == [0.0, 0.0]

    def test_save_load_round_trip_is_v2(self, tmp_path):
        report = RunReport.from_dict(self.V1)
        path = report.save(tmp_path / "r.json")
        data = json.loads(path.read_text())
        assert data["schema"] == SCHEMA_VERSION
        again = RunReport.load(path)
        assert again.to_dict() == report.to_dict()


class TestLiveTrace:
    """A real pool run produces a valid trace with worker lanes."""

    def test_pool_run_traces_worker_lanes(self, tmp_path):
        result = run_ensemble(TlineFactory(), range(8), SPAN,
                              n_points=40, engine="pool", processes=2,
                              shard_min=2, cache=TrajectoryCache(),
                              telemetry=True)
        report = result.telemetry
        assert report.schema == SCHEMA_VERSION
        assert report.events, "pool run recorded no worker events"
        for event in report.events:
            assert event["start"] >= 0.0
            assert event["seconds"] >= 0.0
            assert event["lane"].startswith("ark-pool-")
        lanes = worker_lanes(report)
        assert len(lanes) >= 1  # >= 2 whenever both workers get shards
        trace = to_chrome_trace(report)
        assert_valid_trace(trace)
        worker_events = [e for e in trace["traceEvents"]
                         if e.get("cat") == "worker"]
        assert len(worker_events) == 2 * len(report.events)
        # Worker activity sits inside the collection window.
        wall_us = report.wall_seconds * 1e6
        assert all(e["ts"] <= wall_us * 1.5 for e in worker_events)

    def test_span_starts_recorded(self):
        result = run_ensemble(TlineFactory(), range(3), SPAN,
                              n_points=40, cache=TrajectoryCache(),
                              telemetry=True)
        spans = result.telemetry.spans

        def starts(nodes):
            for node in nodes:
                yield node["start"]
                yield from starts(node.get("children", []))

        values = list(starts(spans))
        assert values and all(isinstance(v, float) for v in values)
        assert any(v > 0.0 for v in values)
