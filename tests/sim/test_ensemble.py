"""Tests for the ensemble driver: grouping, fallback, API compat."""

import os

import numpy as np
import pytest

import repro
from repro.core.compiler import compile_graph
from repro.core.simulator import Trajectory, simulate, simulate_ensemble
from repro.sim import run_ensemble

_LANG = repro.Language("mm-ens")
_LANG.node_type("X", order=1,
                attrs=[("tau", repro.real(0.2, 5.0, mm=(0.0, 0.1)))])
_LANG.edge_type("W", attrs=[("w", repro.real(-5.0, 5.0))])
_LANG.prod("prod(e:W,s:X->s:X) s <= -var(s)/s.tau")
_LANG.prod("prod(e:W,s:X->t:X) t <= e.w*var(s)")


def _pair_factory(seed, coupled=True):
    builder = repro.GraphBuilder(_LANG, "pair", seed=seed)
    builder.node("a", "X").set_attr("a", "tau", 1.0)
    builder.node("b", "X").set_attr("b", "tau", 0.5)
    builder.edge("a", "a", "la", "W").set_attr("la", "w", 0.0)
    builder.edge("b", "b", "lb", "W").set_attr("lb", "w", 0.0)
    if coupled:
        builder.edge("a", "b", "c", "W").set_attr("c", "w", 1.5)
    builder.set_init("a", 1.0)
    builder.set_init("b", 0.0)
    return builder.finish()


# Module-level so it pickles into a multiprocessing pool.
def _picklable_factory(seed):
    return _pair_factory(seed)


def _boom_in_worker_factory(seed):
    """Picklable factory that works in the parent (whose pid is in
    ARK_ENSEMBLE_TEST_PID) but raises TypeError inside pool workers."""
    if os.getpid() != int(os.environ.get("ARK_ENSEMBLE_TEST_PID", "-1")):
        raise TypeError("worker-side failure must propagate")
    return _pair_factory(seed)


class TestRunEnsemble:
    def test_uniform_structure_lands_in_one_batch(self):
        result = run_ensemble(_pair_factory, range(6), (0.0, 2.0),
                              n_points=60)
        assert len(result) == 6
        assert len(result.batches) == 1
        assert result.groups == [[0, 1, 2, 3, 4, 5]]
        assert result.serial_indices == []
        assert result.batched_fraction == 1.0
        finals = {traj.final("a") for traj in result}
        assert len(finals) == 6  # every seed decays differently

    def test_mixed_structures_split_into_batches(self):
        result = run_ensemble(
            lambda seed: _pair_factory(seed, coupled=seed % 2 == 0),
            range(8), (0.0, 1.0), n_points=40)
        assert len(result.batches) == 2
        assert sorted(i for g in result.groups for i in g) == \
            list(range(8))
        assert result.serial_indices == []

    def test_singleton_group_falls_back_to_serial(self):
        result = run_ensemble(
            lambda seed: _pair_factory(seed, coupled=seed == 0),
            range(5), (0.0, 1.0), n_points=40)
        assert result.serial_indices == [0]
        assert len(result.batches) == 1
        assert result.batched_fraction == pytest.approx(0.8)

    def test_batch_failure_demotes_group_to_serial(self, monkeypatch):
        # The auto method must not let a batched-solve failure kill the
        # whole ensemble; the group falls back to the serial scipy path.
        from repro.errors import SimulationError
        from repro.sim import ensemble as ens
        from repro.sim import plan as plan_module

        def explode(*args, **kwargs):
            raise SimulationError("rkf45 step size underflow (forced)")

        monkeypatch.setattr(plan_module, "solve_batch", explode)
        result = ens.run_ensemble(_pair_factory, range(3), (0.0, 1.0),
                                  n_points=40)
        assert result.batches == []
        assert result.serial_indices == [0, 1, 2]
        assert all(t is not None for t in result.trajectories)

    def test_batch_failure_with_explicit_method_raises(self,
                                                       monkeypatch):
        from repro.errors import SimulationError
        from repro.sim import ensemble as ens
        from repro.sim import plan as plan_module

        def explode(*args, **kwargs):
            raise SimulationError("forced failure")

        monkeypatch.setattr(plan_module, "solve_batch", explode)
        with pytest.raises(SimulationError, match="forced"):
            ens.run_ensemble(_pair_factory, range(3), (0.0, 1.0),
                             n_points=40, method="rkf45")

    def test_scipy_method_forces_serial(self):
        result = run_ensemble(_pair_factory, range(3), (0.0, 1.0),
                              n_points=40, method="LSODA")
        assert result.batches == []
        assert result.serial_indices == [0, 1, 2]

    def test_serial_engine_matches_batch(self):
        batch = run_ensemble(_pair_factory, range(4), (0.0, 2.0),
                             n_points=80)
        serial = run_ensemble(_pair_factory, range(4), (0.0, 2.0),
                              n_points=80, engine="serial")
        for left, right in zip(batch, serial):
            np.testing.assert_allclose(left["b"], right["b"],
                                       rtol=1e-4, atol=1e-7)

    def test_per_seed_registered_functions_do_not_share_a_batch(self):
        # Regression: per-seed closures registered under one function
        # name must split the ensemble (signature includes function
        # identity), not silently evaluate every instance with seed
        # 0's closure.
        def factory(seed):
            lang = repro.Language("perseed")
            lang.node_type("X", order=1)
            lang.edge_type("S")
            lang.register_function("rate",
                                   lambda x, k=float(seed + 1): k * x)
            lang.prod("prod(e:S,s:X->s:X) s <= -rate(var(s))")
            builder = repro.GraphBuilder(lang, "perseed")
            builder.node("x", "X")
            builder.edge("x", "x", "e", "S")
            builder.set_init("x", 1.0)
            return builder.finish()

        result = run_ensemble(factory, range(3), (0.0, 1.0),
                              n_points=40)
        finals = [traj.final("x") for traj in result]
        expected = [np.exp(-(seed + 1.0)) for seed in range(3)]
        np.testing.assert_allclose(finals, expected, rtol=1e-4)

    def test_t_eval_starting_mid_span_integrates_from_t0(self):
        # Regression: a t_eval window that starts after t_span[0] must
        # still integrate from t0 (scipy semantics), not pin y0 at
        # t_eval[0].
        grid = np.linspace(0.5, 1.0, 20)
        result = run_ensemble(_pair_factory, range(3), (0.0, 1.0),
                              t_eval=grid)
        serial = run_ensemble(_pair_factory, range(3), (0.0, 1.0),
                              t_eval=grid, engine="serial")
        assert len(result.batches) == 1
        np.testing.assert_allclose(result.batches[0].t, grid)
        for left, right in zip(result, serial):
            np.testing.assert_allclose(left["a"], right["a"],
                                       rtol=1e-4, atol=1e-7)

    def test_accepts_precompiled_systems(self):
        result = run_ensemble(
            lambda seed: compile_graph(_pair_factory(seed)),
            range(3), (0.0, 1.0), n_points=30)
        assert len(result.batches) == 1

    def test_rejects_bad_factory_output(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="factory"):
            run_ensemble(lambda seed: 42, range(2), (0.0, 1.0))

    def test_multiprocessing_pool_path(self):
        result = run_ensemble(_picklable_factory, range(3), (0.0, 1.0),
                              n_points=30, engine="serial", processes=2)
        reference = run_ensemble(_picklable_factory, range(3),
                                 (0.0, 1.0), n_points=30,
                                 engine="serial")
        for left, right in zip(result, reference):
            np.testing.assert_allclose(left["a"], right["a"],
                                       rtol=1e-9)

    def test_unpicklable_factory_degrades_gracefully(self):
        result = run_ensemble(lambda seed: _pair_factory(seed),
                              range(3), (0.0, 1.0), n_points=30,
                              engine="serial", processes=2)
        assert len(result) == 3
        assert all(isinstance(t, Trajectory) for t in result)

    def test_worker_type_error_propagates(self):
        # Regression: the pool wrapper used to catch TypeError (as a
        # proxy for "unpicklable factory") around pool.map, so a
        # *genuine* worker TypeError was swallowed and every seed was
        # silently rerun in-process — masking the failure entirely.
        os.environ["ARK_ENSEMBLE_TEST_PID"] = str(os.getpid())
        try:
            with pytest.raises(TypeError, match="worker-side"):
                run_ensemble(_boom_in_worker_factory, range(3),
                             (0.0, 1.0), n_points=30, engine="serial",
                             processes=2)
        finally:
            del os.environ["ARK_ENSEMBLE_TEST_PID"]


class TestBatchedSharding:
    def test_sharded_rk4_is_bit_identical_to_single_process(self):
        sharded = run_ensemble(_picklable_factory, range(8),
                               (0.0, 1.0), n_points=40, method="rk4",
                               processes=2, shard_min=4)
        single = run_ensemble(_picklable_factory, range(8), (0.0, 1.0),
                              n_points=40, method="rk4")
        assert len(sharded.batches) == len(single.batches) == 1
        np.testing.assert_array_equal(sharded.batches[0].y,
                                      single.batches[0].y)
        np.testing.assert_array_equal(sharded.batches[0].t,
                                      single.batches[0].t)
        assert sharded.groups == single.groups
        assert sharded.serial_indices == []

    def test_sharded_rkf45_matches_at_tolerance(self):
        # rkf45's shared step control sees each shard separately, so
        # sharded results agree at tolerance level (not bitwise).
        sharded = run_ensemble(_picklable_factory, range(8),
                               (0.0, 1.0), n_points=40, processes=2,
                               shard_min=4)
        single = run_ensemble(_picklable_factory, range(8), (0.0, 1.0),
                              n_points=40)
        np.testing.assert_allclose(sharded.batches[0].y,
                                   single.batches[0].y,
                                   rtol=1e-5, atol=1e-8)

    def test_small_groups_are_not_sharded(self):
        result = run_ensemble(_picklable_factory, range(4), (0.0, 1.0),
                              n_points=30, processes=2, shard_min=64)
        assert len(result.batches) == 1  # one in-process batch

    def test_unpicklable_factory_still_batches_in_process(self):
        result = run_ensemble(lambda seed: _pair_factory(seed),
                              range(8), (0.0, 1.0), n_points=30,
                              processes=2, shard_min=4)
        assert len(result.batches) == 1
        assert result.serial_indices == []

    def test_sharded_rkf45_results_stay_out_of_the_cache(self):
        # Shard-split rkf45 runs per-shard step control, so its result
        # is not bit-reproducible by an unsharded rerun — storing it
        # would poison the cache's bit-for-bit replay contract.
        from repro.sim import TrajectoryCache
        cache = TrajectoryCache()
        run_ensemble(_picklable_factory, range(8), (0.0, 1.0),
                     n_points=40, processes=2, shard_min=4,
                     cache=cache)
        assert cache.stats.stores == 0
        unsharded = run_ensemble(_picklable_factory, range(8),
                                 (0.0, 1.0), n_points=40, cache=cache)
        rerun = run_ensemble(_picklable_factory, range(8), (0.0, 1.0),
                             n_points=40, cache=cache)
        assert cache.stats.stores == 1
        np.testing.assert_array_equal(unsharded.batches[0].y,
                                      rerun.batches[0].y)

    def test_shards_follow_the_whole_group_fuse_decision(self,
                                                         monkeypatch):
        # The fused emitter's dense memory guard depends on batch
        # size, so a shard deciding for itself could fuse where the
        # whole group would not — the parent's decision must win or
        # rk4 shard bit-identity (and cache storability) breaks.
        from repro.sim import batch_codegen
        monkeypatch.setattr(batch_codegen, "FUSE_DENSE_LIMIT", 1)
        sharded = run_ensemble(_picklable_factory, range(8),
                               (0.0, 1.0), n_points=40, method="rk4",
                               processes=2, shard_min=4)
        single = run_ensemble(_picklable_factory, range(8), (0.0, 1.0),
                              n_points=40, method="rk4")
        np.testing.assert_array_equal(sharded.batches[0].y,
                                      single.batches[0].y)

    def test_sharded_rk4_results_are_cached(self):
        from repro.sim import TrajectoryCache
        cache = TrajectoryCache()
        sharded = run_ensemble(_picklable_factory, range(8),
                               (0.0, 1.0), n_points=40, method="rk4",
                               processes=2, shard_min=4, cache=cache)
        assert cache.stats.stores == 1
        rerun = run_ensemble(_picklable_factory, range(8), (0.0, 1.0),
                             n_points=40, method="rk4", cache=cache)
        assert cache.stats.hits == 1
        np.testing.assert_array_equal(sharded.batches[0].y,
                                      rerun.batches[0].y)


class TestSimulateEnsembleCompat:
    def test_returns_ordered_trajectory_list(self):
        trajectories = simulate_ensemble(_pair_factory, range(4),
                                         (0.0, 1.0), n_points=50)
        assert len(trajectories) == 4
        assert all(isinstance(t, Trajectory) for t in trajectories)
        for seed, trajectory in enumerate(trajectories):
            reference = simulate(_pair_factory(seed), (0.0, 1.0),
                                 n_points=50)
            np.testing.assert_allclose(trajectory["b"], reference["b"],
                                       rtol=1e-4, atol=1e-7)

    def test_serial_engine_keeps_legacy_path(self):
        trajectories = simulate_ensemble(_pair_factory, range(3),
                                         (0.0, 1.0), n_points=50,
                                         engine="serial")
        assert len(trajectories) == 3
