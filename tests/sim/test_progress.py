"""Tests for :mod:`repro.telemetry.progress`: live streaming progress.

The sinks are pure observers — they receive counts only — so the tests
drive them two ways: directly with an injected clock + stream (exact
line format, redraw throttling, TTY cleanup), and through the real
executor (``run_ensemble(..., progress=sink)``) to pin the callback
protocol: ``begin`` once with correct totals, ``advance`` per finished
group up to the totals, ``finish`` exactly once — streamed, barriered,
and on the noisy path.
"""

import io

from repro.paradigms.tln import TLineSpec, mismatched_tline
from repro.paradigms.tln.noisy import NoisyTlineFactory
from repro.sim import run_ensemble
from repro.sim.cache import TrajectoryCache
from repro.telemetry import (LogProgress, ProgressSink, TtyProgress,
                             auto_progress)
from repro.telemetry.progress import _fmt_eta


class TlineFactory:
    def __call__(self, seed):
        return mismatched_tline("gm", seed=seed)


class TwoGroupFactory:
    """Two structural groups: 3- and 4-segment lines alternate."""

    def __call__(self, seed):
        spec = TLineSpec(n_segments=3 if seed % 2 else 4)
        return mismatched_tline("gm", seed=seed, spec=spec)


SPAN = (0.0, 4e-8)


class FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t

    def tick(self, seconds):
        self.t += seconds


class RecordingSink(ProgressSink):
    def __init__(self):
        self.begins = []
        self.advances = []
        self.finishes = 0

    def begin(self, *, groups, instances):
        self.begins.append((groups, instances))

    def advance(self, *, groups_done, instances_done, backend=""):
        self.advances.append((groups_done, instances_done, backend))

    def finish(self):
        self.finishes += 1


class TestFmtEta:
    def test_rounds_to_minutes_seconds(self):
        assert _fmt_eta(0.0) == "0:00"
        assert _fmt_eta(9.4) == "0:09"
        assert _fmt_eta(61.0) == "1:01"
        assert _fmt_eta(3605.0) == "60:05"

    def test_unknown_is_question_marks(self):
        assert _fmt_eta(float("inf")) == "?:??"
        assert _fmt_eta(float("nan")) == "?:??"


class TestLogProgress:
    def test_line_format_and_interval(self):
        stream, clock = io.StringIO(), FakeClock()
        sink = LogProgress(stream, clock, interval=2.0)
        sink.begin(groups=4, instances=40)
        clock.tick(1.0)
        sink.advance(groups_done=1, instances_done=10, backend="pool")
        clock.tick(0.5)  # inside the interval, not final -> suppressed
        sink.advance(groups_done=2, instances_done=20, backend="pool")
        clock.tick(2.0)
        sink.advance(groups_done=3, instances_done=30, backend="pool")
        sink.advance(groups_done=4, instances_done=40, backend="pool")
        sink.finish()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 3  # throttled one dropped, final kept
        assert lines[0] == ("[stream] groups 1/4  inst 10/40  10.0/s  "
                            "eta 0:03  (pool)")
        assert lines[-1].startswith("[stream] groups 4/4  inst 40/40")

    def test_no_output_without_advance(self):
        stream = io.StringIO()
        sink = LogProgress(stream, FakeClock())
        sink.begin(groups=1, instances=1)
        sink.finish()
        assert stream.getvalue() == ""


class TestTtyProgress:
    def test_redraws_in_place_and_cleans_up(self):
        stream, clock = io.StringIO(), FakeClock()
        sink = TtyProgress(stream, clock, min_interval=0.1)
        sink.begin(groups=2, instances=8)
        clock.tick(1.0)
        sink.advance(groups_done=1, instances_done=4, backend="batch")
        clock.tick(0.01)  # throttled (not final)
        sink.advance(groups_done=1, instances_done=5, backend="batch")
        clock.tick(1.0)
        sink.advance(groups_done=2, instances_done=8, backend="batch")
        sink.finish()
        text = stream.getvalue()
        assert text.count("\r") == 2  # throttled draw suppressed
        assert text.endswith("\n")
        final = text.rsplit("\r", 1)[-1]
        assert "groups 2/2" in final and "inst 8/8" in final

    def test_final_advance_always_draws(self):
        stream, clock = io.StringIO(), FakeClock()
        sink = TtyProgress(stream, clock, min_interval=60.0)
        sink.begin(groups=1, instances=2)
        sink.advance(groups_done=1, instances_done=2)
        assert "groups 1/1" in stream.getvalue()

    def test_shorter_redraw_padded_clean(self):
        stream, clock = io.StringIO(), FakeClock()
        sink = TtyProgress(stream, clock, min_interval=0.0)
        sink.begin(groups=2, instances=2000)
        clock.tick(1.0)
        sink.advance(groups_done=1, instances_done=1000)
        clock.tick(1.0)
        sink.advance(groups_done=2, instances_done=2000)
        first, second = stream.getvalue().lstrip("\r").split("\r")
        assert len(second) >= len(first)  # overwrites fully

    def test_silent_when_nothing_drawn(self):
        stream = io.StringIO()
        sink = TtyProgress(stream, FakeClock())
        sink.finish()
        assert stream.getvalue() == ""


class TestAutoProgress:
    def test_picks_by_stdout_tty(self, monkeypatch):
        class Tty:
            def isatty(self):
                return True

        class Pipe:
            def isatty(self):
                return False

        import sys
        monkeypatch.setattr(sys, "stdout", Tty())
        assert isinstance(auto_progress(io.StringIO()), TtyProgress)
        monkeypatch.setattr(sys, "stdout", Pipe())
        assert isinstance(auto_progress(io.StringIO()), LogProgress)


class TestExecutorProtocol:
    """The executor drives begin/advance/finish correctly — and the
    sink cannot perturb results (counts only)."""

    def test_streamed_two_groups(self):
        sink = RecordingSink()
        chunks = list(run_ensemble(TwoGroupFactory(), range(4), SPAN,
                                   n_points=40, min_batch=2,
                                   cache=TrajectoryCache(),
                                   stream=True, progress=sink))
        assert len(chunks) == 2
        assert sink.begins == [(2, 4)]
        assert sink.finishes == 1
        assert len(sink.advances) == 2
        assert sink.advances[-1][:2] == (2, 4)
        done = [groups for groups, _, _ in sink.advances]
        assert done == sorted(done)

    def test_barriered_run_also_reports(self):
        sink = RecordingSink()
        result = run_ensemble(TlineFactory(), range(3), SPAN,
                              n_points=40, cache=TrajectoryCache(),
                              progress=sink)
        assert len(result.trajectories) == 3
        assert sink.begins == [(1, 3)]
        assert sink.advances[-1][:2] == (1, 3)
        assert sink.finishes == 1

    def test_noisy_totals_count_trials(self):
        sink = RecordingSink()
        factory = NoisyTlineFactory(TLineSpec(n_segments=3),
                                    noise=1e-9)
        run_ensemble(factory, range(2), SPAN, trials=3, n_points=30,
                     cache=TrajectoryCache(), progress=sink)
        assert sink.begins == [(1, 6)]  # instances = chips x trials
        assert sink.advances[-1][:2] == (1, 6)
        assert sink.finishes == 1

    def test_abandoned_stream_still_finishes(self):
        sink = RecordingSink()
        stream = run_ensemble(TwoGroupFactory(), range(4), SPAN,
                              n_points=40, min_batch=2,
                              cache=TrajectoryCache(),
                              stream=True, progress=sink)
        next(stream)
        stream.close()  # abandon mid-sweep
        assert sink.finishes == 1

    def test_results_identical_with_and_without_sink(self):
        import numpy as np

        plain = run_ensemble(TlineFactory(), range(3), SPAN,
                             n_points=40, cache=TrajectoryCache())
        observed = run_ensemble(TlineFactory(), range(3), SPAN,
                                n_points=40, cache=TrajectoryCache(),
                                progress=RecordingSink())
        for a, b in zip(plain.trajectories, observed.trajectories):
            np.testing.assert_array_equal(a.y, b.y)


PROGRAM = """
lang leaky-mm {
    ntyp(1,sum) X {attr tau=real[0.1,10] mm(0,0.1)};
    etyp W {attr w=real[-5,5]};
    prod(e:W, s:X->s:X) s <= -var(s)/s.tau;
    prod(e:W, s:X->t:X) t <= e.w*var(s)/t.tau;
    cstr X {acc[match(1,1,W,X), match(0,inf,W,X->[X]),
                match(0,inf,W,[X]->X)]};
}

func pair (w:real[-5,5]) uses leaky-mm {
    node x0:X; node x1:X;
    edge <x0,x0> l0:W; edge <x1,x1> l1:W; edge <x0,x1> c:W;
    set-attr x0.tau=1.0; set-attr x1.tau=0.5;
    set-attr l0.w=0.0;   set-attr l1.w=0.0;  set-attr c.w=w;
    set-init x0(0)=1.0;
}
"""


class TestCliProgress:
    def test_progress_logs_to_stderr_not_stdout(self, tmp_path,
                                                capsys):
        from repro.cli import main

        program = tmp_path / "prog.ark"
        program.write_text(PROGRAM)
        code = main(["ensemble", str(program), "--arg", "w=1.0",
                     "--t-end", "1.0", "--seeds", "4", "--node", "x0",
                     "--print-rows", "1", "--stream", "--progress"])
        assert code == 0
        out, err = capsys.readouterr()
        # stdout keeps only the CLI's own stream summary; the
        # LogProgress line (pytest capture is not a TTY) lands on
        # stderr.
        assert "[stream] groups" not in out
        assert "[stream] groups" in err
        assert "inst 4/4" in err
