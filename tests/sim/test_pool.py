"""Tests for the persistent zero-copy worker pool (:mod:`repro.sim.
pool` + :mod:`repro.sim.shm` + the ``pool`` execution backend):
bit-identity against ``shard``/``batch``, worker reuse, shared-memory
hygiene on success / worker crash / KeyboardInterrupt, and graceful
fallbacks."""

import glob
import os
import pickle

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.paradigms.tln import TLineSpec, mismatched_tline
from repro.paradigms.tln.noisy import NoisyTlineFactory
from repro.sim import run_ensemble, shm
from repro.sim.pool import (PoolBrokenError, WorkerPool, get_pool,
                            _POOLS)
from repro.sim.shm import ShmBlock


class TlineFactory:
    """Module-level (picklable) deterministic factory."""

    def __call__(self, seed):
        return mismatched_tline("gm", seed=seed)


class TwoGroupFactory:
    """Two structural groups: 3- and 4-segment lines alternate."""

    def __call__(self, seed):
        spec = TLineSpec(n_segments=3 if seed % 2 else 4)
        return mismatched_tline("gm", seed=seed, spec=spec)


class CrashFactory:
    """Builds normally in the parent, kills any *worker* that calls it
    — simulates a hard worker crash (segfault/OOM-kill shape)."""

    def __init__(self):
        self.parent_pid = os.getpid()

    def __call__(self, seed):
        if os.getpid() != self.parent_pid:
            os._exit(13)
        return mismatched_tline("gm", seed=seed)


class PoisonFactory:
    """Raises a (picklable) SimulationError inside workers only — the
    soft-failure path: the worker survives and reports the error."""

    def __init__(self):
        self.parent_pid = os.getpid()

    def __call__(self, seed):
        if os.getpid() != self.parent_pid:
            raise SimulationError("poisoned shard (forced)")
        return mismatched_tline("gm", seed=seed)


SPAN = (0.0, 4e-8)


def _assert_no_leaks():
    assert shm.active_blocks() == []
    assert glob.glob("/dev/shm/arkshm_*") == []


class TestBitIdentity:
    def test_pool_matches_batch_and_shard_rk4(self):
        factory = TlineFactory()
        kwargs = dict(n_points=40, method="rk4")
        batch = run_ensemble(factory, range(6), SPAN, **kwargs)
        shard = run_ensemble(factory, range(6), SPAN, engine="shard",
                             processes=2, **kwargs)
        pool = run_ensemble(factory, range(6), SPAN, engine="pool",
                            processes=2, **kwargs)
        np.testing.assert_array_equal(batch.batches[0].y,
                                      pool.batches[0].y)
        np.testing.assert_array_equal(shard.batches[0].y,
                                      pool.batches[0].y)
        _assert_no_leaks()

    def test_pool_matches_shard_rkf45(self):
        # Adaptive steps depend on shard membership, so rkf45 is the
        # strict test that pool and shard split rows identically.
        factory = TwoGroupFactory()
        shard = run_ensemble(factory, range(8), SPAN, engine="shard",
                             processes=2, n_points=40)
        pool = run_ensemble(factory, range(8), SPAN, engine="pool",
                            processes=2, n_points=40)
        assert len(shard.batches) == len(pool.batches) == 2
        for a, b in zip(shard.batches, pool.batches):
            np.testing.assert_array_equal(a.y, b.y)
        _assert_no_leaks()

    def test_pool_sde_matches_batch_and_shard(self):
        factory = NoisyTlineFactory(TLineSpec(n_segments=4),
                                    noise=1e-9)
        kwargs = dict(trials=2, n_points=40)
        batch = run_ensemble(factory, range(4), SPAN, **kwargs)
        shard = run_ensemble(factory, range(4), SPAN, engine="shard",
                             processes=2, **kwargs)
        pool = run_ensemble(factory, range(4), SPAN, engine="pool",
                            processes=2, **kwargs)
        np.testing.assert_array_equal(batch.batches[0].y,
                                      pool.batches[0].y)
        np.testing.assert_array_equal(shard.batches[0].y,
                                      pool.batches[0].y)
        for chip in range(4):
            np.testing.assert_array_equal(batch.reference(chip).y,
                                          pool.reference(chip).y)
        _assert_no_leaks()

    def test_auto_prefers_pool_and_stays_bit_identical(self):
        # processes>1 + a large-enough group: auto now routes through
        # the persistent pool; outputs must equal the plain batch.
        factory = NoisyTlineFactory(TLineSpec(n_segments=4),
                                    noise=1e-9)
        batch = run_ensemble(factory, range(4), SPAN, trials=2,
                             n_points=40)
        auto = run_ensemble(factory, range(4), SPAN, trials=2,
                            n_points=40, processes=2, shard_min=4)
        np.testing.assert_array_equal(batch.batches[0].y,
                                      auto.batches[0].y)
        _assert_no_leaks()

    def test_pool_freeze_masks_survive_transport(self):
        # frozen/nfev metadata rides the result queue, not the shm
        # block; masked pool runs must agree with the masked batch.
        factory = TlineFactory()
        kwargs = dict(n_points=40, method="rk4", freeze_tol=1e3)
        batch = run_ensemble(factory, range(6), SPAN, **kwargs)
        pool = run_ensemble(factory, range(6), SPAN, engine="pool",
                            processes=2, **kwargs)
        np.testing.assert_array_equal(batch.batches[0].y,
                                      pool.batches[0].y)
        assert pool.batches[0].frozen is not None
        assert pool.batches[0].nfev is not None
        _assert_no_leaks()


class TestPersistence:
    def test_workers_are_reused_across_solves(self):
        factory = TlineFactory()
        run_ensemble(factory, range(4), SPAN, engine="pool",
                     processes=2, n_points=30, method="rk4")
        first = _POOLS.get(2)
        assert first is not None
        pids = sorted(worker.pid for worker in first._workers)
        run_ensemble(factory, range(4), SPAN, engine="pool",
                     processes=2, n_points=30, method="rk4")
        second = _POOLS.get(2)
        assert second is first
        assert sorted(w.pid for w in second._workers) == pids
        _assert_no_leaks()

    def test_get_pool_respawns_after_breakage(self):
        pool = get_pool(2)
        pool._break()
        assert pool.broken
        fresh = get_pool(2)
        assert fresh is not pool and not fresh.broken

    def test_idle_pools_of_other_widths_are_retired(self):
        # Sweeps with varying `processes` must not accumulate resident
        # workers: requesting a new width retires idle pools of other
        # widths (in-flight ones are left alone).
        two = get_pool(2)
        three = get_pool(3)
        assert two.broken and 2 not in _POOLS
        again = get_pool(2)
        assert three.broken and again is not two
        assert sorted(_POOLS) == [2]

    def test_pool_result_is_cachable(self, tmp_path):
        from repro.sim import TrajectoryCache

        factory = NoisyTlineFactory(TLineSpec(n_segments=4),
                                    noise=1e-9)
        cache = TrajectoryCache(directory=tmp_path)
        pooled = run_ensemble(factory, range(4), SPAN, trials=2,
                              n_points=30, processes=2, engine="pool",
                              cache=cache, reference=False)
        assert cache.stats.stores >= 1
        replay = run_ensemble(factory, range(4), SPAN, trials=2,
                              n_points=30, cache=cache,
                              reference=False)
        assert cache.stats.hits >= 1
        np.testing.assert_array_equal(pooled.batches[0].y,
                                      replay.batches[0].y)
        _assert_no_leaks()


class TestFallbacks:
    def test_unpicklable_factory_falls_back_to_batch(self):
        spec = TLineSpec(n_segments=4)
        factory = lambda seed: mismatched_tline("gm", seed=seed,  # noqa: E731
                                                spec=spec)
        pooled = run_ensemble(factory, range(4), SPAN, engine="pool",
                              processes=2, n_points=30)
        batch = run_ensemble(factory, range(4), SPAN, n_points=30)
        np.testing.assert_array_equal(batch.batches[0].y,
                                      pooled.batches[0].y)
        _assert_no_leaks()

    def test_single_process_falls_back_to_batch(self):
        factory = TlineFactory()
        pooled = run_ensemble(factory, range(4), SPAN, engine="pool",
                              processes=1, n_points=30)
        batch = run_ensemble(factory, range(4), SPAN, n_points=30)
        np.testing.assert_array_equal(batch.batches[0].y,
                                      pooled.batches[0].y)
        _assert_no_leaks()


class TestFailureHygiene:
    def test_worker_crash_raises_and_unlinks(self):
        factory = CrashFactory()
        with pytest.raises(PoolBrokenError, match="died"):
            run_ensemble(factory, range(6), SPAN, engine="pool",
                         processes=2, n_points=30, method="rk4")
        _assert_no_leaks()
        # The broken pool was evicted; the next run gets fresh workers
        # and succeeds.
        result = run_ensemble(TlineFactory(), range(4), SPAN,
                              engine="pool", processes=2, n_points=30,
                              method="rk4")
        assert len(result.batches) == 1
        _assert_no_leaks()

    def test_worker_crash_with_auto_method_demotes_to_serial(self):
        # A PoolBrokenError is a SimulationError, so the auto method's
        # demote-to-serial resilience covers hard crashes too: the
        # sweep completes through scipy instead of dying.
        factory = CrashFactory()
        result = run_ensemble(factory, range(6), SPAN, engine="pool",
                              processes=2, n_points=30)
        assert result.serial_indices == list(range(6))
        assert all(t is not None for t in result.trajectories)
        _assert_no_leaks()

    def test_soft_worker_error_propagates_and_unlinks(self):
        factory = PoisonFactory()
        with pytest.raises(SimulationError, match="poisoned"):
            run_ensemble(factory, range(6), SPAN, engine="pool",
                         processes=2, n_points=30, method="rk4")
        _assert_no_leaks()
        # Soft errors keep the workers alive: the pool is NOT broken.
        assert 2 in _POOLS and not _POOLS[2].broken

    def test_drain_one_wakes_promptly_on_silent_worker_death(self):
        # The event-driven drain waits on the workers' death sentinels,
        # so a worker that dies without reporting anything breaks the
        # pool immediately instead of after a poll interval.
        import time

        from repro.sim.pool import shutdown_pools

        shutdown_pools()
        try:
            pool = get_pool(2)
            victim = pool._workers[0]
            victim.terminate()
            victim.join()
            started = time.perf_counter()
            with pytest.raises(PoolBrokenError, match="died"):
                pool.drain_one()
            assert time.perf_counter() - started < 2.0
            assert pool.broken
            assert 2 not in _POOLS
        finally:
            shutdown_pools()

    def test_keyboard_interrupt_unlinks(self, monkeypatch):
        factory = TlineFactory()

        def interrupted(self, poll=0.1):
            raise KeyboardInterrupt

        monkeypatch.setattr(WorkerPool, "drain_one", interrupted)
        with pytest.raises(KeyboardInterrupt):
            run_ensemble(factory, range(6), SPAN, engine="pool",
                         processes=2, n_points=30, method="rk4")
        _assert_no_leaks()
        monkeypatch.undo()
        # The pool survives an interrupt (stale results are dropped on
        # the next drain) and still produces correct runs.
        result = run_ensemble(factory, range(6), SPAN, engine="pool",
                              processes=2, n_points=30, method="rk4")
        batch = run_ensemble(factory, range(6), SPAN, n_points=30,
                             method="rk4")
        np.testing.assert_array_equal(batch.batches[0].y,
                                      result.batches[0].y)
        _assert_no_leaks()


class TestShmBlock:
    def test_header_is_tiny_and_attachable(self):
        block = ShmBlock.create((3, 2, 5))
        try:
            assert len(pickle.dumps(block.header)) < 200
            rows = np.arange(2 * 2 * 5, dtype=float).reshape(2, 2, 5)
            attached = ShmBlock.attach(block.header)
            attached.write_rows(1, rows)
            attached.close()
            out = block.read_copy()
            np.testing.assert_array_equal(out[1:], rows)
        finally:
            block.discard()
        _assert_no_leaks()

    def test_unlink_is_idempotent(self):
        block = ShmBlock.create((2, 2))
        block.discard()
        block.discard()
        _assert_no_leaks()

    def test_empty_block_rejected(self):
        with pytest.raises(SimulationError, match="empty"):
            ShmBlock.create((0, 3))
