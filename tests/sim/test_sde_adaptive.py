"""Tests for the adaptive SDE stack: Brownian-bridge Wiener
refinement, the embedded-pair controller, Milstein correction,
correlated (aliased) noise sources, and the freeze-mask/noise
interplay."""

import numpy as np
import pytest

import repro
from repro.core.compiler import compile_graph
from repro.core.noise import SHARED_ELEMENT, share_wiener
from repro.errors import GraphError, SimulationError
from repro.lang import parse_program
from repro.sim import compile_batch, run_ensemble, solve_sde
from repro.sim.sde_solver import (BridgeWienerSource,
                                  _scatter, _ScatterAccumulator)
from repro.telemetry import RunReport, collect_metrics

OU_SOURCE = """
lang ou {
    ntyp(1,sum) X {attr tau=real[1e-3,10], attr nsig=real[0,inf]};
    etyp R {};
    prod(e:R, s:X->s:X) s <= -var(s)/s.tau + noise(s.nsig);
    cstr X {acc[match(1,1,R,X)]};
}
"""

GBM_SOURCE = """
lang gbm {
    ntyp(1,sum) X {attr mu=real[-10,10], attr nsig=real[0,inf]};
    etyp R {};
    prod(e:R, s:X->s:X) s <= s.mu*var(s) + noise(s.nsig*var(s));
    cstr X {acc[match(1,1,R,X)]};
}
"""

PAIR_SOURCE = """
lang oupair {
    ntyp(1,sum) X {attr tau=real[1e-3,10], attr nsig=real[0,inf]};
    etyp R {};
    prod(e:R, s:X->s:X) s <= -var(s)/s.tau + noise(s.nsig);
    cstr X {acc[match(1,1,R,X)]};
}
"""


def _ou_system(tau=1.0, nsig=0.5, name="ou", x0=1.0):
    lang = parse_program(OU_SOURCE).languages["ou"]
    g = repro.GraphBuilder(lang, name)
    g.node("x", "X").set_attr("x", "tau", tau)
    g.set_attr("x", "nsig", nsig)
    g.edge("x", "x", "r0", "R").set_init("x", x0)
    return compile_graph(g.finish())


def _gbm_system(mu=-1.0, nsig=0.3, name="gbm", x0=1.0):
    lang = parse_program(GBM_SOURCE).languages["gbm"]
    g = repro.GraphBuilder(lang, name)
    g.node("x", "X").set_attr("x", "mu", mu)
    g.set_attr("x", "nsig", nsig)
    g.edge("x", "x", "r0", "R").set_init("x", x0)
    return compile_graph(g.finish())


def _ou_pair(tau=1.0, nsig=0.5, x0=1.0, name="pair"):
    """Two identical, uncoupled OU cells — two independent noise
    sources until share_wiener aliases them."""
    lang = parse_program(PAIR_SOURCE).languages["oupair"]
    g = repro.GraphBuilder(lang, name)
    for node in ("a", "b"):
        g.node(node, "X").set_attr(node, "tau", tau)
        g.set_attr(node, "nsig", nsig)
        g.edge(node, node, f"r_{node}", "R").set_init(node, x0)
    return compile_graph(g.finish())


class TestBridgeWienerSource:
    PATHS = [("e0", "w0"), ("e1", "w0")]

    def test_telescoping(self):
        """A parent increment equals the sum of its children, at every
        level — the defining Brownian-bridge consistency property."""
        source = BridgeWienerSource([0, 1], self.PATHS,
                                    [0.0, 0.5, 1.0])
        total = source.increment(0, 0, 0)
        for level in range(1, 6):
            parts = sum(source.increment(0, level, j)
                        for j in range(1 << level))
            np.testing.assert_allclose(parts, total, atol=1e-12)

    def test_visit_order_invariant(self):
        """The realized path is a function of (interval, level, index)
        only — not of which increments were requested before."""
        a = BridgeWienerSource([0], self.PATHS, [0.0, 1.0])
        b = BridgeWienerSource([0], self.PATHS, [0.0, 1.0])
        fine_first = [a.increment(0, 3, j) for j in range(8)]
        b.increment(0, 0, 0)
        b.increment(0, 1, 1)
        b.increment(0, 2, 0)
        coarse_first = [b.increment(0, 3, j) for j in range(8)]
        for left, right in zip(fine_first, coarse_first):
            assert np.array_equal(left, right)

    def test_interval_revisit_reproduces(self):
        """Random access via PCG64.advance: re-requesting an earlier
        interval regenerates the identical increments even though the
        memo was dropped in between."""
        source = BridgeWienerSource([0, 1], self.PATHS,
                                    [0.0, 1.0, 2.0, 3.0])
        first = source.increment(0, 2, 1).copy()
        source.increment(2, 2, 3)
        again = source.increment(0, 2, 1)
        assert np.array_equal(first, again)

    def test_distinct_keys_differ(self):
        base = BridgeWienerSource([0], self.PATHS, [0.0, 1.0])
        other_seed = BridgeWienerSource([1], self.PATHS, [0.0, 1.0])
        draw = base.increment(0, 0, 0)
        assert not np.array_equal(draw, other_seed.increment(0, 0, 0))
        # The two paths of one instance are independent streams too.
        assert draw[0, 0] != draw[0, 1]

    def test_levels_are_independent_streams(self):
        source = BridgeWienerSource([0], self.PATHS, [0.0, 1.0])
        z0 = source._normals(0, 0)
        z1 = source._normals(1, 0)
        assert not np.array_equal(z0, z1)

    def test_interval_out_of_range(self):
        source = BridgeWienerSource([0], self.PATHS, [0.0, 1.0])
        with pytest.raises(SimulationError, match="interval"):
            source.increment(1, 0, 0)

    def test_degenerate_grid_rejected(self):
        with pytest.raises(SimulationError, match="grid"):
            BridgeWienerSource([0], self.PATHS, [0.0])

    def test_no_paths_short_circuits(self):
        source = BridgeWienerSource([0, 1, 2], [], [0.0, 1.0])
        assert source.increment(0, 4, 7).shape == (3, 0)


def _uniform_bridge(batch, t_span, seeds, level, n_points):
    """Fixed-level stepping on the bridge lattice: the adaptive
    machinery with the error test disabled and max_step pinning the
    dyadic floor — pathwise comparable to any adaptive run on the
    same grid."""
    dt = (t_span[1] - t_span[0]) / (n_points - 1)
    return solve_sde(batch, t_span, noise_seeds=seeds,
                     n_points=n_points, method="heun-adaptive",
                     rtol=1e9, atol=1e9, max_step=dt / 2 ** level)


class TestAdaptiveController:
    def test_zero_noise_matches_rk4(self):
        batch = compile_batch([_ou_system(nsig=0.0)])
        sde = solve_sde(batch, (0.0, 5.0), n_points=200,
                        method="heun-adaptive", rtol=1e-8, atol=1e-10)
        rk4 = repro.sim.solve_batch(batch, (0.0, 5.0), n_points=200,
                                    method="rk4")
        np.testing.assert_allclose(sde.y, rk4.y, atol=2e-6)

    def test_tracks_fine_uniform_reference(self):
        """Pathwise accuracy: the adaptive run converges to the same
        realized trajectory as a much finer uniform solve of the same
        bridge path."""
        batch = compile_batch([_ou_system(nsig=0.3)])
        span, points = (0.0, 2.0), 41
        reference = _uniform_bridge(batch, span, [7], 8, points)
        adaptive = solve_sde(batch, span, noise_seeds=[7],
                             n_points=points, method="heun-adaptive",
                             rtol=1e-6, atol=1e-9)
        rms = float(np.sqrt(np.mean((adaptive.y - reference.y) ** 2)))
        assert rms < 5e-4
        coarse = _uniform_bridge(batch, span, [7], 0, points)
        coarse_rms = float(np.sqrt(np.mean(
            (coarse.y - reference.y) ** 2)))
        assert rms < coarse_rms

    def test_rerun_bitwise_identical(self):
        batch = compile_batch([_ou_system(nsig=0.4)])
        kwargs = dict(noise_seeds=[3], n_points=33,
                      method="em-adaptive", rtol=1e-4, atol=1e-7)
        first = solve_sde(batch, (0.0, 1.0), **kwargs)
        second = solve_sde(batch, (0.0, 1.0), **kwargs)
        assert np.array_equal(first.y, second.y)

    def test_telemetry_counters(self):
        batch = compile_batch([_ou_system(nsig=0.4)])
        report = RunReport()
        with collect_metrics(into=report):
            solve_sde(batch, (0.0, 1.0), noise_seeds=[0], n_points=17,
                      method="heun-adaptive", rtol=1e-4, atol=1e-7)
        assert report.counter("solver.steps_accepted") >= 16
        assert report.counter("sde.scatter_allocs") == 2

    def test_fixed_step_ignores_tolerances(self):
        """The fixed-step contract: rtol/atol must not perturb heun/em
        results (they only feed the freeze criterion)."""
        batch = compile_batch([_ou_system(nsig=0.4)])
        for method in ("heun", "em"):
            loose = solve_sde(batch, (0.0, 1.0), noise_seeds=[0],
                              n_points=33, method=method,
                              rtol=1e-2, atol=1e-3)
            tight = solve_sde(batch, (0.0, 1.0), noise_seeds=[0],
                              n_points=33, method=method,
                              rtol=1e-10, atol=1e-12)
            assert np.array_equal(loose.y, tight.y)

    def test_max_step_bounds_coarsest_level(self):
        """With a max_step below the grid spacing, even a loose-
        tolerance adaptive run must take >= 2**level_min substeps per
        interval (visible through nfev)."""
        batch = compile_batch([_ou_system(nsig=0.1)])
        points = 9
        capped = _uniform_bridge(batch, (0.0, 1.0), [0], 3, points)
        free = _uniform_bridge(batch, (0.0, 1.0), [0], 0, points)
        assert capped.nfev >= free.nfev * 8


class TestMilstein:
    def test_additive_noise_equals_em_bitwise(self):
        """Constant diffusion: every derivative folds to zero, so the
        correction kernel is skipped and milstein IS em."""
        batch = compile_batch([_ou_system(nsig=0.5)])
        assert batch.milstein_trivial
        kwargs = dict(noise_seeds=[0], n_points=65)
        em = solve_sde(batch, (0.0, 1.0), method="em", **kwargs)
        mil = solve_sde(batch, (0.0, 1.0), method="milstein", **kwargs)
        assert np.array_equal(em.y, mil.y)

    def test_multiplicative_derivative_emitted(self):
        """GBM amplitude nsig*x differentiates to the constant nsig."""
        batch = compile_batch([_gbm_system(nsig=0.3)])
        assert not batch.milstein_trivial
        y = np.array([[2.0]])
        deriv = batch.diffusion_derivative(0.0, y)
        np.testing.assert_allclose(np.asarray(deriv), 0.3)

    def test_milstein_beats_em_on_gbm(self):
        """Strong order: against the exact GBM solution driven by the
        *same* realized increments, Milstein's pathwise error must be
        well below Euler-Maruyama's at the same step."""
        from repro.sim.sde_solver import WienerSource

        mu, nsig, x0 = -1.0, 0.4, 1.0
        batch = compile_batch([_gbm_system(mu=mu, nsig=nsig, x0=x0)])
        n_points = 65
        t_end = 1.0
        h = t_end / (n_points - 1)
        kwargs = dict(noise_seeds=[0], n_points=n_points,
                      max_step=h * 1.0001)
        em = solve_sde(batch, (0.0, t_end), method="em", **kwargs)
        mil = solve_sde(batch, (0.0, t_end), method="milstein",
                        **kwargs)
        # Replay the solver's Wiener draws (one substep per interval)
        # and evaluate the closed form on the realized path.
        source = WienerSource([0], batch.wiener_paths)
        w = np.concatenate(([0.0], np.cumsum(
            [np.sqrt(h) * source.normals(k)[0, 0]
             for k in range(n_points - 1)])))
        t = np.linspace(0.0, t_end, n_points)
        exact = x0 * np.exp((mu - 0.5 * nsig ** 2) * t + nsig * w)
        em_err = float(np.max(np.abs(em.y[0, 0] - exact)))
        mil_err = float(np.max(np.abs(mil.y[0, 0] - exact)))
        assert mil_err < 0.5 * em_err

    def test_unknown_call_derivative_refused(self):
        """Amplitudes the symbolic differentiator cannot handle must
        point at the em/heun fallback instead of mis-correcting."""
        from repro.core import expr as E
        from repro.errors import CompileError

        node = object()
        unknown = E.Call("floor", (E.VarOf(node),))
        with pytest.raises(CompileError, match="em/heun"):
            E.differentiate(unknown, node)


class TestFreezeNoiseInterplay:
    def test_live_noise_blocks_freezing(self):
        """An instance whose drift has settled but whose diffusion can
        still move it beyond tolerance must NOT freeze (the wiggle
        guard) — under both the fixed and the adaptive solvers."""
        system = _ou_system(tau=0.05, nsig=0.5, x0=0.0)
        batch = compile_batch([system])
        for method in ("heun", "heun-adaptive"):
            run = solve_sde(batch, (0.0, 2.0), noise_seeds=[0],
                            n_points=65, method=method,
                            freeze_tol=10.0, rtol=1e-4, atol=1e-6)
            assert not run.frozen.any()

    def test_noise_free_sibling_freezes(self):
        """Same drift, nsig=0: without the noise floor the settled
        instance freezes — the guard is the only thing that kept the
        noisy twin live."""
        system = _ou_system(tau=0.05, nsig=0.0, x0=0.0)
        batch = compile_batch([system])
        run = solve_sde(batch, (0.0, 2.0), noise_seeds=[0],
                        n_points=65, method="heun",
                        freeze_tol=10.0, rtol=1e-4, atol=1e-6)
        assert run.frozen.all()

    def test_frozen_rows_pinned_under_adaptive(self):
        """Mixed batch: the noise-free fast-settling row freezes and
        then holds constant while its noisy sibling keeps moving."""
        quiet = _ou_system(tau=0.05, nsig=0.0, x0=1.0)
        noisy = _ou_system(tau=1.0, nsig=0.5, x0=1.0)
        batch = compile_batch([quiet, noisy])
        run = solve_sde(batch, (0.0, 4.0), noise_seeds=[0, 1],
                        n_points=65, method="heun-adaptive",
                        freeze_tol=10.0, rtol=1e-4, atol=1e-6)
        assert bool(run.frozen[0]) and not bool(run.frozen[1])
        assert run.y[0, 0, -1] == run.y[0, 0, -2]
        assert run.y[1, 0, -1] != run.y[1, 0, -2]


class TestScatterAccumulator:
    def test_bitwise_equal_to_fresh_zeros(self):
        from repro.sim.array_api import resolve_array_backend

        backend = resolve_array_backend(None)
        rng = np.random.default_rng(0)
        state_index = np.array([0, 2, 2, 1])
        acc = _ScatterAccumulator(state_index, 3, 5, backend)
        first_in = rng.normal(size=(5, 4))
        second_in = rng.normal(size=(5, 4))
        first = acc(first_in)
        second = acc(second_in)  # rotates; `first` must stay intact
        assert np.array_equal(first,
                              _scatter(first_in, state_index, 3))
        assert np.array_equal(second,
                              _scatter(second_in, state_index, 3))
        assert acc.allocs == 2
        acc(first_in)
        assert acc.allocs == 2  # buffers are reused from call 3 on

    def test_solve_allocates_exactly_two_buffers(self):
        batch = compile_batch([_ou_system(nsig=0.5)])
        report = RunReport()
        with collect_metrics(into=report):
            solve_sde(batch, (0.0, 1.0), noise_seeds=[0], n_points=33,
                      method="heun")
        assert report.counter("sde.scatter_allocs") == 2

    def test_noise_free_solve_allocates_none(self):
        batch = compile_batch([_ou_system(nsig=0.0)])
        report = RunReport()
        with collect_metrics(into=report):
            solve_sde(batch, (0.0, 1.0), noise_seeds=[0], n_points=33,
                      method="heun")
        assert report.counter("sde.scatter_allocs") == 0


class TestShareWiener:
    def test_aliased_cells_see_identical_noise(self):
        """Two identical OU cells: independent sources decorrelate
        them, one shared source makes their trajectories literally
        equal (same drift, same realized increments)."""
        plain = _ou_pair(nsig=0.5)
        shared = share_wiener(plain, "supply")
        independent = solve_sde(compile_batch([plain]), (0.0, 1.0),
                                noise_seeds=[0], n_points=33)
        common = solve_sde(compile_batch([shared]), (0.0, 1.0),
                          noise_seeds=[0], n_points=33)
        assert np.array_equal(common.y[0, 0], common.y[0, 1])
        assert not np.array_equal(independent.y[0, 0],
                                  independent.y[0, 1])

    def test_rekeying_lands_in_signature(self):
        plain = _ou_pair()
        shared = share_wiener(plain, "supply")
        assert {(term.element, term.path) for term in shared.diffusion} \
            == {(SHARED_ELEMENT, "supply")}
        assert shared.structural_signature() != \
            plain.structural_signature()

    def test_match_prefix_and_predicate(self):
        plain = _ou_pair()
        prefixed = share_wiener(plain, "vdd", match="r_a")
        keys = {(term.element, term.path)
                for term in prefixed.diffusion}
        assert (SHARED_ELEMENT, "vdd") in keys
        assert len(keys) == 2  # the r_b term kept its own identity
        predicated = share_wiener(
            plain, "vdd", match=lambda term: True)
        assert {(term.element, term.path)
                for term in predicated.diffusion} \
            == {(SHARED_ELEMENT, "vdd")}

    def test_distinct_labels_stay_independent(self):
        plain = _ou_pair(nsig=0.5)
        split = share_wiener(share_wiener(plain, "a", match="r_a"),
                             "b", match="r_b")
        run = solve_sde(compile_batch([split]), (0.0, 1.0),
                        noise_seeds=[0], n_points=33)
        assert not np.array_equal(run.y[0, 0], run.y[0, 1])

    def test_graph_rejected(self):
        lang = parse_program(OU_SOURCE).languages["ou"]
        g = repro.GraphBuilder(lang, "raw")
        g.node("x", "X").set_attr("x", "tau", 1.0)
        g.set_attr("x", "nsig", 0.1)
        g.edge("x", "x", "r0", "R").set_init("x", 1.0)
        with pytest.raises(TypeError, match="compile"):
            share_wiener(g.finish(), "supply")


class TestPufSharedSupply:
    def test_requires_noise(self):
        from repro.paradigms.tln import TLineSpec
        from repro.puf import PufDesign

        with pytest.raises(GraphError, match="noise > 0"):
            PufDesign(spec=TLineSpec(n_segments=6),
                      branch_positions=(2,), branch_lengths=(3,),
                      shared_supply=True)

    def test_factory_aliases_all_terms(self):
        from repro.core.odesystem import OdeSystem
        from repro.paradigms.tln import TLineSpec
        from repro.puf import PufDesign
        from repro.puf.response import ChipFactory

        design = PufDesign(spec=TLineSpec(n_segments=6),
                           branch_positions=(2,), branch_lengths=(3,),
                           noise=1e-8, shared_supply=True)
        system = ChipFactory(design, 1)(seed=0)
        assert isinstance(system, OdeSystem)
        assert {(term.element, term.path)
                for term in system.diffusion} \
            == {(SHARED_ELEMENT, "supply")}


class _AdaptiveOuFactory:
    """Picklable factory for the ensemble-driver tests."""

    def __call__(self, seed):
        return _ou_system(nsig=0.4, name="ou-ens")


class TestAdaptiveEnsemble:
    def test_run_ensemble_adaptive_deterministic(self):
        factory = _AdaptiveOuFactory()
        kwargs = dict(n_points=17, trials=2,
                      sde_method="heun-adaptive",
                      rtol=1e-4, atol=1e-7, reference=False)
        first = run_ensemble(factory, [0, 1], (0.0, 1.0), **kwargs)
        second = run_ensemble(factory, [0, 1], (0.0, 1.0), **kwargs)
        assert np.array_equal(first.batches[0].y,
                              second.batches[0].y)

    def test_sharded_adaptive_reproducible(self):
        """The scheduler pins adaptive SDE groups to the canonical
        even split, so a sharded run is reproducible run-to-run."""
        factory = _AdaptiveOuFactory()
        kwargs = dict(n_points=17, trials=2,
                      sde_method="em-adaptive",
                      rtol=1e-4, atol=1e-7, reference=False,
                      engine="shard", processes=2, shard_min=2)
        first = run_ensemble(factory, [0, 1], (0.0, 1.0), **kwargs)
        second = run_ensemble(factory, [0, 1], (0.0, 1.0), **kwargs)
        assert np.array_equal(first.batches[0].y,
                              second.batches[0].y)
