"""Tests for the unified execution-plan layer (:mod:`repro.sim.plan`):
shim equivalence (the legacy drivers must be bit-identical delegates),
backend registry behavior, plan validation, and sharded-SDE
bit-identity."""

import numpy as np
import pytest

import repro
from repro.errors import SimulationError
from repro.lang import parse_program
from repro.sim import (BACKENDS, ExecutionPlan, NoiseSpec,
                       backend_names, register_backend, resolve_engine,
                       run_ensemble, run_noisy_ensemble)
from repro.sim.plan import BatchBackend, ExecutionBackend

OU_SOURCE = """
lang ou {
    ntyp(1,sum) X {attr tau=real[1e-3,10] mm(0,0.05),
                   attr nsig=real[0,inf]};
    etyp R {};
    prod(e:R, s:X->s:X) s <= -var(s)/s.tau + noise(s.nsig);
    cstr X {acc[match(1,1,R,X)]};
}
"""


def _language():
    return parse_program(OU_SOURCE).languages["ou"]


def _ou_factory(nsig=0.3):
    lang = _language()

    def factory(seed):
        g = repro.GraphBuilder(lang, f"chip{seed}")
        g.node("x", "X").set_attr("x", "tau", 1.0)
        g.set_attr("x", "nsig", nsig)
        g.edge("x", "x", "r0", "R").set_init("x", 1.0)
        return g.finish()

    return factory


class TestValidation:
    def test_unknown_engine_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_ensemble(_ou_factory(), range(2), (0.0, 1.0),
                         engine="bogus")

    def test_unknown_engine_in_simulate_ensemble(self):
        from repro.core.simulator import simulate_ensemble

        with pytest.raises(ValueError, match="unknown engine"):
            simulate_ensemble(_ou_factory(0.0), range(2), (0.0, 1.0),
                              engine="parallel")

    def test_unknown_backend_in_plan(self):
        plan = ExecutionPlan(factory=_ou_factory(), seeds=[0],
                             t_span=(0.0, 1.0), backend="nope")
        with pytest.raises(SimulationError, match="unknown execution"):
            plan.run()

    def test_trials_below_one(self):
        with pytest.raises(SimulationError, match="trials"):
            run_ensemble(_ou_factory(), range(2), (0.0, 1.0), trials=0)
        with pytest.raises(SimulationError, match="trials"):
            run_noisy_ensemble(_ou_factory(), range(2), (0.0, 1.0),
                               trials=-1)

    def test_noise_seed_without_trials(self):
        with pytest.raises(ValueError, match="noise_seed"):
            run_ensemble(_ou_factory(), range(2), (0.0, 1.0),
                         noise_seed=3)

    def test_trials_on_deterministic_system(self):
        # nsig=0 folds every diffusion term away: asking for noise
        # trials is a caller error, not a silent deterministic sweep.
        with pytest.raises(SimulationError, match="deterministic"):
            run_ensemble(_ou_factory(nsig=0.0), range(2), (0.0, 1.0),
                         trials=4)

    def test_unknown_sde_method(self):
        with pytest.raises(SimulationError, match="SDE method"):
            run_ensemble(_ou_factory(), range(2), (0.0, 1.0),
                         trials=2, sde_method="euler")

    def test_bad_freeze_tol(self):
        with pytest.raises(ValueError, match="freeze_tol"):
            run_ensemble(_ou_factory(0.0), range(2), (0.0, 1.0),
                         freeze_tol=-1.0)

    def test_resolve_engine_maps_batch_to_auto(self):
        assert resolve_engine("batch") == "auto"
        assert resolve_engine("serial") == "serial"
        assert resolve_engine("shard") == "shard"


class TestRegistry:
    def test_registered_names(self):
        assert set(backend_names()) >= {"auto", "batch", "serial",
                                        "shard"}

    def test_custom_backend_pluggable(self):
        calls = []

        class CountingBackend(BatchBackend):
            name = "counting"

            def solve_ode(self, task):
                calls.append(len(task.indices))
                return super().solve_ode(task)

        register_backend(CountingBackend())
        try:
            plan = ExecutionPlan(factory=_ou_factory(0.0),
                                 seeds=list(range(3)),
                                 t_span=(0.0, 1.0), backend="counting",
                                 n_points=40)
            result = plan.run()
            assert calls == [3]
            assert len(result.trajectories) == 3
        finally:
            del BACKENDS["counting"]

    def test_backend_base_class_is_abstract(self):
        backend = ExecutionBackend()
        with pytest.raises(NotImplementedError):
            backend.solve_ode(None)


class TestShimEquivalence:
    """The legacy entrypoints are delegating shims: outputs must be
    bit-identical to the unified driver."""

    def test_run_noisy_ensemble_is_bit_identical(self):
        factory = _ou_factory()
        kwargs = dict(trials=3, n_points=60)
        legacy = run_noisy_ensemble(factory, [0, 1, 2], (0.0, 2.0),
                                    method="heun", trial_base=5,
                                    **kwargs)
        unified = run_ensemble(factory, [0, 1, 2], (0.0, 2.0),
                               trials=3, sde_method="heun",
                               noise_seed=5, n_points=60)
        assert len(legacy.batches) == len(unified.batches)
        for a, b in zip(legacy.batches, unified.batches):
            np.testing.assert_array_equal(a.y, b.y)
        for chip in range(3):
            np.testing.assert_array_equal(
                legacy.reference(chip).y, unified.reference(chip).y)

    def test_simulate_ensemble_is_bit_identical(self):
        from repro.core.simulator import simulate_ensemble

        factory = _ou_factory(0.0)
        legacy = simulate_ensemble(factory, range(4), (0.0, 1.0),
                                   n_points=50)
        unified = run_ensemble(factory, range(4), (0.0, 1.0),
                               n_points=50)
        for a, b in zip(legacy, unified.trajectories):
            np.testing.assert_array_equal(a.y, b.y)

    def test_serial_backend_sde_matches_batch(self):
        factory = _ou_factory()
        batched = run_ensemble(factory, [0, 1], (0.0, 2.0), trials=2,
                               n_points=50)
        serial = run_ensemble(factory, [0, 1], (0.0, 2.0), trials=2,
                              n_points=50, engine="serial")
        np.testing.assert_array_equal(batched.batches[0].y,
                                      serial.batches[0].y)


class TestShardedSde:
    def test_sharded_bit_identical_at_two_processes(self):
        from repro.paradigms.tln import TLineSpec
        from repro.paradigms.tln.noisy import NoisyTlineFactory

        factory = NoisyTlineFactory(TLineSpec(n_segments=4),
                                    noise=1e-9)
        span = (0.0, 4e-8)
        unsharded = run_ensemble(factory, range(4), span, trials=2,
                                 n_points=40)
        sharded = run_ensemble(factory, range(4), span, trials=2,
                               n_points=40, processes=2, shard_min=4)
        np.testing.assert_array_equal(unsharded.batches[0].y,
                                      sharded.batches[0].y)
        for chip in range(4):
            np.testing.assert_array_equal(
                unsharded.reference(chip).y, sharded.reference(chip).y)

    def test_shard_engine_forces_pool(self):
        from repro.paradigms.tln import TLineSpec
        from repro.paradigms.tln.noisy import NoisyTlineFactory

        factory = NoisyTlineFactory(TLineSpec(n_segments=4),
                                    noise=1e-9)
        span = (0.0, 4e-8)
        unsharded = run_ensemble(factory, range(2), span, trials=2,
                                 n_points=30)
        # engine="shard" ignores shard_min sizing via the auto policy
        # and shards whatever it can (here 4 rows over 2 workers).
        sharded = run_noisy_ensemble(factory, range(2), span, trials=2,
                                     n_points=30, engine="shard",
                                     processes=2)
        np.testing.assert_array_equal(unsharded.batches[0].y,
                                      sharded.batches[0].y)

    def test_unpicklable_factory_falls_back_in_process(self):
        factory = _ou_factory()  # closure: not picklable
        sharded = run_ensemble(factory, range(3), (0.0, 1.0), trials=2,
                               n_points=30, processes=2, shard_min=2)
        unsharded = run_ensemble(factory, range(3), (0.0, 1.0),
                                 trials=2, n_points=30)
        np.testing.assert_array_equal(unsharded.batches[0].y,
                                      sharded.batches[0].y)

    def test_sharded_sde_result_is_cachable(self, tmp_path):
        from repro.paradigms.tln import TLineSpec
        from repro.paradigms.tln.noisy import NoisyTlineFactory
        from repro.sim import TrajectoryCache

        factory = NoisyTlineFactory(TLineSpec(n_segments=4),
                                    noise=1e-9)
        span = (0.0, 4e-8)
        cache = TrajectoryCache(directory=tmp_path)
        sharded = run_ensemble(factory, range(4), span, trials=2,
                               n_points=30, processes=2, shard_min=4,
                               cache=cache, reference=False)
        assert cache.stats.stores >= 1
        replay = run_ensemble(factory, range(4), span, trials=2,
                              n_points=30, cache=cache,
                              reference=False)
        assert cache.stats.hits >= 1
        np.testing.assert_array_equal(sharded.batches[0].y,
                                      replay.batches[0].y)


class TestNoiseSpecTokens:
    def test_tokens_match_legacy_scheme(self):
        spec = NoiseSpec(trials=3, noise_seed=4)
        assert spec.tokens("chip7") == ["chip7:4", "chip7:5", "chip7:6"]


class TestCliNoiseAlias:
    """``repro noise`` forwards to the unified ensemble command and
    stays bit-identical (satellite: CLI consolidation)."""

    PROGRAM = """
lang leaky-noise {
    ntyp(1,sum) X {attr tau=real[0.1,10] mm(0,0.1),
                   attr nsig=real[0,inf]};
    etyp R {};
    prod(e:R, s:X->s:X) s <= -var(s)/s.tau + noise(s.nsig);
    cstr X {acc[match(1,1,R,X)]};
}

func cell (nsig:real[0,inf]) uses leaky-noise {
    node x:X;
    edge <x,x> r0:R;
    set-attr x.tau = 1.0;
    set-attr x.nsig = nsig;
    set-init x(0) = 1.0;
}
"""

    @pytest.fixture()
    def noisy_file(self, tmp_path):
        path = tmp_path / "noisy.ark"
        path.write_text(self.PROGRAM)
        return str(path)

    def test_alias_forwards_and_warns(self, noisy_file, tmp_path,
                                      capsys):
        from repro.cli import main

        legacy_csv = tmp_path / "legacy.csv"
        unified_csv = tmp_path / "unified.csv"
        assert main(["noise", noisy_file, "--arg", "nsig=0.3",
                     "--t-end", "2.0", "--seeds", "2", "--trials", "3",
                     "--points", "40", "--node", "x",
                     "--csv", str(legacy_csv)]) == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "2 chip(s) x 3 trial(s)" in captured.out
        assert main(["ensemble", noisy_file, "--arg", "nsig=0.3",
                     "--t-end", "2.0", "--seeds", "2", "--trials", "3",
                     "--points", "40", "--node", "x",
                     "--csv", str(unified_csv)]) == 0
        assert "deprecated" not in capsys.readouterr().err
        assert legacy_csv.read_bytes() == unified_csv.read_bytes()

    def test_alias_honors_cache_dir(self, noisy_file, tmp_path,
                                    capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        csv = tmp_path / "a.csv"
        assert main(["noise", noisy_file, "--arg", "nsig=0.3",
                     "--t-end", "2.0", "--seeds", "2", "--trials", "2",
                     "--points", "30", "--node", "x",
                     "--cache-dir", str(cache_dir),
                     "--csv", str(csv)]) == 0
        capsys.readouterr()
        assert list(cache_dir.glob("*.npz"))
        csv2 = tmp_path / "b.csv"
        assert main(["ensemble", noisy_file, "--arg", "nsig=0.3",
                     "--t-end", "2.0", "--seeds", "2", "--trials", "2",
                     "--points", "30", "--node", "x",
                     "--cache-dir", str(cache_dir),
                     "--csv", str(csv2)]) == 0
        capsys.readouterr()
        assert csv.read_bytes() == csv2.read_bytes()

    def test_unified_noise_seed_shifts_realizations(self, noisy_file,
                                                    tmp_path, capsys):
        from repro.cli import main

        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        for path, base in ((a, "0"), (b, "7")):
            assert main(["ensemble", noisy_file, "--arg", "nsig=0.3",
                         "--t-end", "2.0", "--seeds", "1",
                         "--trials", "2", "--points", "30",
                         "--node", "x", "--noise-seed", base,
                         "--csv", str(path)]) == 0
            capsys.readouterr()
        assert a.read_bytes() != b.read_bytes()
