"""Dense-output (Hermite) vs grid-clipped RKF45 equivalence.

The dense path changes *which* points the solver steps through, so the
two paths cannot be bit-identical — but on the paper's workloads they
must agree at tolerance level, and the dense path must not pay extra
RHS evaluations for fine output grids.
"""

import numpy as np

from repro.core.compiler import compile_graph
from repro.paradigms.obc import maxcut_network
from repro.paradigms.tln import mismatched_tline
from repro.sim import compile_batch, solve_batch


def _counting(batch):
    """Instrument a BatchRhs to count RHS evaluations in-place."""
    batch.calls = 0
    inner = batch._rhs_inner

    def counted(t, y, dy):
        batch.calls += 1
        return inner(t, y, dy)

    batch._rhs_inner = counted
    return batch


def _tline_batch(n=4):
    return compile_batch([compile_graph(mismatched_tline("gm", seed=s))
                          for s in range(n)])


def _maxcut_batch(n=4):
    edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
    phases = np.random.default_rng(7).uniform(0.0, 2.0 * np.pi, 4)
    systems = [compile_graph(
        maxcut_network(edges, 4, initial_phases=phases,
                       edge_type="Cpl_ofs", seed=seed))
        for seed in range(n)]
    return compile_batch(systems)


class TestDenseVsClipped:
    def test_tline_tolerance_agreement(self):
        batch = _tline_batch()
        dense = solve_batch(batch, (0.0, 8e-8), n_points=300)
        clipped = solve_batch(batch, (0.0, 8e-8), n_points=300,
                              dense=False)
        scale = np.max(np.abs(clipped.y))
        assert np.max(np.abs(dense.y - clipped.y)) < 1e-4 * scale

    def test_maxcut_tolerance_agreement(self):
        batch = _maxcut_batch()
        dense = solve_batch(batch, (0.0, 100e-9), n_points=60)
        clipped = solve_batch(batch, (0.0, 100e-9), n_points=60,
                              dense=False)
        scale = np.max(np.abs(clipped.y))
        assert np.max(np.abs(dense.y - clipped.y)) < 1e-4 * scale

    def test_grid_endpoints_exact(self):
        batch = _tline_batch(2)
        dense = solve_batch(batch, (0.0, 8e-8), n_points=50)
        assert dense.t[0] == 0.0
        assert dense.t[-1] == 8e-8
        np.testing.assert_array_equal(dense.y[:, :, 0], batch.y0)

    def test_fine_grid_costs_no_extra_rhs_evals(self):
        # Step control is decoupled from the grid: a 10x finer output
        # grid may not trigger (meaningfully) more RHS work. The
        # clipped path degrades linearly with grid density.
        coarse = _counting(_tline_batch(2))
        solve_batch(coarse, (0.0, 8e-8), n_points=60)
        fine = _counting(_tline_batch(2))
        solve_batch(fine, (0.0, 8e-8), n_points=600)
        assert fine.calls <= coarse.calls * 1.2
        clipped_fine = _counting(_tline_batch(2))
        solve_batch(clipped_fine, (0.0, 8e-8), n_points=600,
                    dense=False)
        assert fine.calls < clipped_fine.calls

    def test_dense_respects_t_eval_window(self):
        batch = _tline_batch(2)
        grid = np.linspace(2e-8, 6e-8, 25)
        dense = solve_batch(batch, (0.0, 8e-8), t_eval=grid)
        clipped = solve_batch(batch, (0.0, 8e-8), t_eval=grid,
                              dense=False)
        np.testing.assert_array_equal(dense.t, grid)
        scale = np.max(np.abs(clipped.y))
        assert np.max(np.abs(dense.y - clipped.y)) < 1e-4 * scale

    def test_oscillator_accuracy_matches_scipy_dense(self):
        # The quartic interpolant is order-consistent with the
        # propagated solution, so mid-grid accuracy on a stiff-ish
        # oscillator must be in the same band as scipy's RK45 dense
        # output at the same tolerance (free-running global error),
        # not an order worse.
        import repro
        from scipy.integrate import solve_ivp
        lang = repro.Language("dense-osc")
        lang.node_type("X", order=2,
                       attrs=[("k", repro.real(0.0, 100.0))])
        lang.edge_type("S")
        lang.prod("prod(e:S,s:X->s:X) s <= -s.k*var(s)")
        builder = repro.GraphBuilder(lang, "osc")
        builder.node("x", "X").set_attr("x", "k", 25.0)
        builder.edge("x", "x", "e", "S")
        builder.set_init("x", 1.0)
        batch = compile_batch([compile_graph(builder.finish())])
        trajectory = solve_batch(batch, (0.0, 10.0), n_points=2001,
                                 rtol=1e-7, atol=1e-9)
        our_error = np.max(np.abs(trajectory["x"][0]
                                  - np.cos(5.0 * trajectory.t)))
        scipy_sol = solve_ivp(
            lambda t, y: [y[1], -25.0 * y[0]], (0.0, 10.0), [1.0, 0.0],
            method="RK45", rtol=1e-7, atol=1e-9,
            t_eval=np.linspace(0.0, 10.0, 2001))
        scipy_error = np.max(np.abs(scipy_sol.y[0]
                                    - np.cos(5.0 * scipy_sol.t)))
        assert our_error < 10.0 * scipy_error

    def test_dense_matches_closed_form(self):
        # Interpolation accuracy: dense output of exp decay stays at
        # the integrator's tolerance between steps, not just on them.
        import repro
        lang = repro.Language("dense-decay")
        lang.node_type("X", order=1,
                       attrs=[("tau", repro.real(0.1, 10.0))])
        lang.edge_type("S")
        lang.prod("prod(e:S,s:X->s:X) s <= -var(s)/s.tau")
        systems = []
        for tau in (0.5, 2.0):
            builder = repro.GraphBuilder(lang, "decay")
            builder.node("x", "X").set_attr("x", "tau", tau)
            builder.edge("x", "x", "e", "S")
            builder.set_init("x", 1.0)
            systems.append(compile_graph(builder.finish()))
        trajectory = solve_batch(compile_batch(systems), (0.0, 2.0),
                                 n_points=501, rtol=1e-8, atol=1e-10)
        expected = np.exp(-trajectory.t[None, :] /
                          np.array((0.5, 2.0))[:, None])
        np.testing.assert_allclose(trajectory["x"], expected,
                                   rtol=1e-6, atol=1e-9)
