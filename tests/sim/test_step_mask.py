"""Tests for per-instance step masks (``freeze_tol``): accuracy vs the
unmasked solve, genuine work savings, divergence containment on the SDE
path, and shard bit-identity of masked fixed-step runs."""

import warnings

import numpy as np
import pytest

import repro
from repro.core.compiler import compile_graph
from repro.errors import SimulationError
from repro.lang import parse_program
from repro.sim import compile_batch, solve_batch, solve_sde

OU_SOURCE = """
lang ou {
    ntyp(1,sum) X {attr tau=real[1e-6,10], attr nsig=real[0,inf]};
    etyp R {};
    prod(e:R, s:X->s:X) s <= -var(s)/s.tau + noise(s.nsig);
    cstr X {acc[match(1,1,R,X)]};
}
"""


def _ou_system(tau=1.0, nsig=0.0, name="ou", x0=1.0):
    lang = parse_program(OU_SOURCE).languages["ou"]
    g = repro.GraphBuilder(lang, name)
    g.node("x", "X").set_attr("x", "tau", tau)
    g.set_attr("x", "nsig", nsig)
    g.edge("x", "x", "r0", "R").set_init("x", x0)
    return compile_graph(g.finish())


def _decay_batch(taus=(0.05, 0.2)):
    return compile_batch([_ou_system(tau=tau, name=f"c{k}")
                          for k, tau in enumerate(taus)])


class TestMaskedAccuracy:
    """Masked runs must track the full-step solve within a tolerance
    commensurate with freeze_tol x the solver tolerance scale."""

    @pytest.mark.parametrize("method", ["rkf45", "rk4"])
    def test_masked_matches_full_within_tolerance(self, method):
        batch = _decay_batch()
        kwargs = dict(n_points=200, method=method)
        full = solve_batch(batch, (0.0, 10.0), **kwargs)
        masked = solve_batch(batch, (0.0, 10.0), freeze_tol=1.0,
                             **kwargs)
        # freeze_tol=1: the frozen tail deviates by at most the
        # solver's own tolerance scale.
        assert np.abs(full.y - masked.y).max() < 1e-6
        assert masked.frozen is not None and masked.frozen.all()
        assert full.frozen is None

    def test_masked_dense_rkf45_matches(self):
        batch = _decay_batch()
        full = solve_batch(batch, (0.0, 10.0), n_points=200,
                           dense=True)
        masked = solve_batch(batch, (0.0, 10.0), n_points=200,
                             dense=True, freeze_tol=1.0)
        assert np.abs(full.y - masked.y).max() < 1e-6

    def test_masked_clipped_rkf45_matches(self):
        batch = _decay_batch()
        full = solve_batch(batch, (0.0, 10.0), n_points=200,
                           dense=False)
        masked = solve_batch(batch, (0.0, 10.0), n_points=200,
                             dense=False, freeze_tol=1.0)
        assert np.abs(full.y - masked.y).max() < 1e-6

    def test_masked_sde_matches_within_tolerance(self):
        systems = [_ou_system(tau=0.05, nsig=1e-9, name="nf"),
                   _ou_system(tau=0.2, nsig=1e-9, name="ns")]
        batch = compile_batch(systems)
        kwargs = dict(noise_seeds=["a", "b"], n_points=200)
        full = solve_sde(batch, (0.0, 10.0), **kwargs)
        masked = solve_sde(batch, (0.0, 10.0), freeze_tol=1.0,
                           **kwargs)
        assert np.abs(full.y - masked.y).max() < 1e-6
        assert masked.frozen.all()


class TestMaskedSavings:
    def test_rk4_all_frozen_early_exit_saves_evaluations(self):
        batch = _decay_batch()
        full = solve_batch(batch, (0.0, 10.0), n_points=200,
                           method="rk4")
        masked = solve_batch(batch, (0.0, 10.0), n_points=200,
                             method="rk4", freeze_tol=1.0)
        assert masked.nfev < 0.75 * full.nfev

    def test_rkf45_frozen_stiff_instance_stops_limiting_step(self):
        # One stiff-but-settling instance next to a slow one: once the
        # stiff row freezes it leaves error control, so the shared step
        # grows and the masked run spends measurably fewer evals.
        batch = compile_batch([_ou_system(tau=1e-3, name="stiff"),
                               _ou_system(tau=1.0, name="slow")])
        full = solve_batch(batch, (0.0, 5.0), n_points=100)
        masked = solve_batch(batch, (0.0, 5.0), n_points=100,
                             freeze_tol=1e3)
        assert masked.frozen[0]
        assert masked.nfev < full.nfev

    def test_sde_all_frozen_early_exit(self):
        systems = [_ou_system(tau=0.05, nsig=1e-9, name="a"),
                   _ou_system(tau=0.1, nsig=1e-9, name="b")]
        batch = compile_batch(systems)
        full = solve_sde(batch, (0.0, 20.0), noise_seeds=["a", "b"],
                         n_points=400)
        masked = solve_sde(batch, (0.0, 20.0), noise_seeds=["a", "b"],
                           n_points=400, freeze_tol=1e2)
        assert masked.frozen.all()
        assert masked.nfev < 0.6 * full.nfev

    def test_strong_noise_prevents_freezing(self):
        # The SDE criterion must respect diffusion: an instance whose
        # noise still moves it beyond tolerance never freezes, however
        # settled its drift.
        batch = compile_batch([_ou_system(tau=0.05, nsig=0.5,
                                          name="hot")])
        masked = solve_sde(batch, (0.0, 5.0), noise_seeds=["a"],
                           n_points=100, freeze_tol=1.0)
        assert not masked.frozen.any()


class TestDivergenceContainment:
    def test_sde_diverged_instance_freezes_instead_of_failing(self):
        # tau=1e-6 under the default substep makes plain EM violently
        # unstable; without masks the whole batch dies.
        systems = [_ou_system(tau=1e-6, name="boom"),
                   _ou_system(tau=0.5, name="ok")]
        batch = compile_batch(systems)
        kwargs = dict(noise_seeds=["a", "b"], n_points=50,
                      method="em")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(SimulationError, match="non-finite"):
                solve_sde(batch, (0.0, 4.0), **kwargs)
            masked = solve_sde(batch, (0.0, 4.0), freeze_tol=1e-3,
                               **kwargs)
        assert masked.frozen[0] and np.isfinite(masked.y).all()
        # The healthy sibling is untouched: bit-identical to its own
        # solo integration.
        solo = solve_sde(compile_batch([systems[1]]), (0.0, 4.0),
                         noise_seeds=["b"], n_points=50, method="em")
        np.testing.assert_array_equal(masked.y[1], solo.y[0])

    def test_rkf45_out_of_tolerance_instance_freezes_at_floor(self):
        # A pole at t=0.5 in row 0 only: the error norm stays above
        # tolerance at every shrinking step, so the solver is driven to
        # the step floor — the classic whole-batch underflow death.
        # With masks the offender freezes there and row 1 finishes.
        import repro.sim.batch_solver as bs

        class PoleRhs:
            """Wraps a compiled batch, poisoning row 0 with 1/(0.5-t)."""

            def __init__(self, batch):
                self._batch = batch
                self.y0 = batch.y0
                self.systems = batch.systems

            def __call__(self, t, y, out=None):
                dy = self._batch(t, y, out)
                gap = 0.5 - t
                dy[0] += 1e2 / gap if gap != 0.0 else np.inf
                return dy

        batch = compile_batch([_ou_system(tau=1.0, name="bad"),
                               _ou_system(tau=1.0, name="good")])
        nasty = PoleRhs(batch)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(SimulationError, match="underflow"):
                bs._rkf45_dense_batch(nasty, np.linspace(0, 1, 50),
                                      1e-7, 1e-9, 1.0 / 64.0, None)
            out, frozen, *_ = bs._rkf45_dense_batch(
                nasty, np.linspace(0, 1, 50), 1e-7, 1e-9, 1.0 / 64.0,
                1e-2)
        assert frozen[0] and not frozen[1]
        assert np.isfinite(out).all()


class TestMaskedShardIdentity:
    def test_masked_sde_sharded_bit_identical(self):
        from repro.paradigms.tln import TLineSpec
        from repro.paradigms.tln.noisy import NoisyTlineFactory
        from repro.sim import run_ensemble

        factory = NoisyTlineFactory(TLineSpec(n_segments=4),
                                    noise=1e-9)
        span = (0.0, 4e-8)
        kwargs = dict(trials=2, n_points=30, freeze_tol=1e2,
                      reference=False)
        unsharded = run_ensemble(factory, range(4), span, **kwargs)
        sharded = run_ensemble(factory, range(4), span, processes=2,
                               shard_min=4, **kwargs)
        np.testing.assert_array_equal(unsharded.batches[0].y,
                                      sharded.batches[0].y)


class TestValidation:
    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_nonpositive_freeze_tol_rejected(self, bad):
        batch = _decay_batch()
        with pytest.raises(SimulationError, match="freeze_tol"):
            solve_batch(batch, (0.0, 1.0), freeze_tol=bad)
        with pytest.raises(SimulationError, match="freeze_tol"):
            solve_sde(compile_batch([_ou_system(nsig=0.1)]),
                      (0.0, 1.0), freeze_tol=bad)
