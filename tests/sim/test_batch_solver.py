"""Unit tests for the vectorized batch solvers and BatchTrajectory."""

import numpy as np
import pytest

import repro
from repro.core.compiler import compile_graph
from repro.errors import SimulationError
from repro.sim import compile_batch, solve_batch


def _decay_language():
    lang = repro.Language("decay")
    lang.node_type("X", order=1,
                   attrs=[("tau", repro.real(0.1, 10.0,
                                             mm=(0.0, 0.2)))])
    lang.edge_type("S")
    lang.prod("prod(e:S,s:X->s:X) s <= -var(s)/s.tau")
    return lang


def _decay_batch(taus, init=1.0):
    lang = _decay_language()
    systems = []
    for tau in taus:
        builder = repro.GraphBuilder(lang, "decay")
        builder.node("x", "X").set_attr("x", "tau", float(tau))
        builder.edge("x", "x", "e", "S")
        builder.set_init("x", init)
        systems.append(compile_graph(builder.finish()))
    return compile_batch(systems)


TAUS = (0.5, 1.0, 2.0, 4.0)


class TestSolvers:
    @pytest.mark.parametrize("method", ["rk4", "rkf45"])
    def test_matches_closed_form(self, method):
        batch = _decay_batch(TAUS)
        trajectory = solve_batch(batch, (0.0, 2.0), n_points=50,
                                 method=method)
        expected = np.exp(-trajectory.t[None, :] /
                          np.array(TAUS)[:, None])
        np.testing.assert_allclose(trajectory["x"], expected,
                                   rtol=1e-5, atol=1e-8)

    def test_t_eval_grid_is_respected(self):
        batch = _decay_batch(TAUS)
        grid = np.array([0.0, 0.5, 1.5, 2.0])
        trajectory = solve_batch(batch, (0.0, 2.0), t_eval=grid)
        np.testing.assert_allclose(trajectory.t, grid)
        assert trajectory.y.shape == (4, 1, 4)

    def test_empty_span_raises(self):
        batch = _decay_batch(TAUS)
        with pytest.raises(SimulationError, match="empty time span"):
            solve_batch(batch, (1.0, 1.0))

    def test_unknown_method_raises(self):
        batch = _decay_batch(TAUS)
        with pytest.raises(SimulationError, match="unknown batch"):
            solve_batch(batch, (0.0, 1.0), method="LSODA")

    def test_per_instance_error_control(self):
        # A fast instance (tau=0.1) must not degrade a slow sibling's
        # accuracy: both rows still match the closed form.
        batch = _decay_batch((0.1, 5.0))
        trajectory = solve_batch(batch, (0.0, 1.0), n_points=40,
                                 method="rkf45", rtol=1e-9, atol=1e-12)
        expected = np.exp(-trajectory.t[None, :] /
                          np.array((0.1, 5.0))[:, None])
        np.testing.assert_allclose(trajectory["x"], expected,
                                   rtol=1e-6, atol=1e-9)


class TestBatchTrajectory:
    @pytest.fixture(scope="class")
    def trajectory(self):
        return solve_batch(_decay_batch(TAUS), (0.0, 2.0), n_points=80)

    def test_shapes(self, trajectory):
        assert trajectory.n_instances == len(trajectory) == 4
        assert trajectory.n_points == 80
        assert trajectory["x"].shape == (4, 80)
        assert trajectory.final("x").shape == (4,)

    def test_instance_roundtrip(self, trajectory):
        one = trajectory.instance(2)
        assert one.final("x") == \
            pytest.approx(float(trajectory.final("x")[2]))
        assert len(trajectory.trajectories()) == 4

    def test_statistics(self, trajectory):
        matrix = trajectory["x"]
        np.testing.assert_allclose(trajectory.mean("x"),
                                   matrix.mean(axis=0))
        np.testing.assert_allclose(trajectory.std("x"),
                                   matrix.std(axis=0))
        band = trajectory.band("x", 10.0, 90.0)
        assert set(band) == {"median", "lower", "upper"}
        assert np.all(band["lower"] <= band["upper"])

    def test_band_validates_percentiles(self, trajectory):
        with pytest.raises(ValueError):
            trajectory.band("x", 90.0, 10.0)

    def test_sample_interpolates_rows(self, trajectory):
        times = np.array([0.25, 0.75])
        sampled = trajectory.sample("x", times)
        assert sampled.shape == (4, 2)
        expected = np.exp(-times[None, :] / np.array(TAUS)[:, None])
        np.testing.assert_allclose(sampled, expected, rtol=1e-3)

    def test_spread_scalar(self, trajectory):
        spread = trajectory.spread("x", (0.5, 1.5), n_samples=20)
        assert spread > 0.0


class TestDegenerateGrid:
    """Regression: n_points < 2 used to silently return a 1-point grid
    (so the solvers skipped integration and handed back y0 only) or
    crash with a bare IndexError at n_points=0."""

    @pytest.mark.parametrize("n_points", [1, 0, -3])
    def test_solve_batch_rejects_degenerate_n_points(self, n_points):
        batch = _decay_batch(TAUS)
        with pytest.raises(SimulationError, match="n_points"):
            solve_batch(batch, (0.0, 1.0), n_points=n_points)

    def test_two_point_grid_still_integrates(self):
        batch = _decay_batch(TAUS)
        trajectory = solve_batch(batch, (0.0, 1.0), n_points=2)
        assert trajectory.n_points == 2
        expected = np.exp(-1.0 / np.array(TAUS))
        np.testing.assert_allclose(trajectory.final("x"), expected,
                                   rtol=1e-5)


class TestMaxStepValidation:
    """Regression: max_step=0 died in a substep division and negative
    values were silently swallowed by max(1, ceil(dt/max_step))."""

    @pytest.mark.parametrize("max_step", [0.0, -1.0, float("nan")])
    @pytest.mark.parametrize("method", ["rk4", "rkf45"])
    def test_solve_batch_rejects(self, max_step, method):
        batch = _decay_batch(TAUS)
        with pytest.raises(SimulationError, match="max_step"):
            solve_batch(batch, (0.0, 1.0), method=method,
                        max_step=max_step)

    def test_positive_infinity_lifts_the_cap(self):
        batch = _decay_batch(TAUS)
        trajectory = solve_batch(batch, (0.0, 1.0), n_points=20,
                                 max_step=np.inf)
        assert np.all(np.isfinite(trajectory.y))


class TestSampleRange:
    """Regression: np.interp clamps out-of-range times, so sampling or
    spreading past t_span returned a confidently wrong constant."""

    @pytest.fixture(scope="class")
    def trajectory(self):
        return solve_batch(_decay_batch(TAUS), (0.0, 2.0), n_points=40)

    def test_sample_outside_range_raises(self, trajectory):
        with pytest.raises(SimulationError, match="outside"):
            trajectory.sample("x", [1.0, 2.5])
        with pytest.raises(SimulationError, match="outside"):
            trajectory.sample("x", [-0.5])

    def test_spread_window_past_span_raises(self, trajectory):
        with pytest.raises(SimulationError, match="outside"):
            trajectory.spread("x", (1.5, 2.5))

    def test_endpoints_are_inclusive(self, trajectory):
        samples = trajectory.sample("x", [0.0, 2.0])
        assert samples.shape == (4, 2)
        np.testing.assert_allclose(samples[:, 0], 1.0)

    def test_serial_trajectory_sample_shares_the_fix(self, trajectory):
        serial = trajectory.instance(0)
        with pytest.raises(SimulationError, match="outside"):
            serial.sample("x", [2.5])
        np.testing.assert_allclose(serial.sample("x", [0.0]), [1.0])
