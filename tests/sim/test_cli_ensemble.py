"""Tests for the ``python -m repro ensemble`` subcommand."""

import numpy as np
import pytest

from repro.cli import main

PROGRAM = """
lang leaky-mm {
    ntyp(1,sum) X {attr tau=real[0.1,10] mm(0,0.1)};
    etyp W {attr w=real[-5,5]};
    prod(e:W, s:X->s:X) s <= -var(s)/s.tau;
    prod(e:W, s:X->t:X) t <= e.w*var(s)/t.tau;
    cstr X {acc[match(1,1,W,X), match(0,inf,W,X->[X]),
                match(0,inf,W,[X]->X)]};
}

func pair (w:real[-5,5]) uses leaky-mm {
    node x0:X; node x1:X;
    edge <x0,x0> l0:W; edge <x1,x1> l1:W; edge <x0,x1> c:W;
    set-attr x0.tau=1.0; set-attr x1.tau=0.5;
    set-attr l0.w=0.0;   set-attr l1.w=0.0;  set-attr c.w=w;
    set-init x0(0)=1.0;
}
"""


NOISY_PROGRAM = """
lang ou-cli {
    ntyp(1,sum) X {attr tau=real[1e-3,10], attr nsig=real[0,inf]};
    etyp R {};
    prod(e:R, s:X->s:X) s <= -var(s)/s.tau + noise(s.nsig);
    cstr X {acc[match(1,1,R,X)]};
}

func cell () uses ou-cli {
    node x:X;
    edge <x,x> r0:R;
    set-attr x.tau=1.0; set-attr x.nsig=0.3;
    set-init x(0)=1.0;
}
"""


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.ark"
    path.write_text(PROGRAM)
    return str(path)


@pytest.fixture()
def noisy_file(tmp_path):
    path = tmp_path / "noisy.ark"
    path.write_text(NOISY_PROGRAM)
    return str(path)


class TestEnsembleCommand:
    def test_writes_stats_csv(self, program_file, tmp_path, capsys):
        csv_path = tmp_path / "stats.csv"
        code = main(["ensemble", program_file, "--arg", "w=1.0",
                     "--t-end", "2.0", "--seeds", "6",
                     "--node", "x0", "--csv", str(csv_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "6 instances" in out
        assert "100% batched" in out
        data = np.genfromtxt(csv_path, delimiter=",", names=True)
        assert set(data.dtype.names) == {"t", "x0_mean", "x0_std",
                                         "x0_p05", "x0_p95"}
        # Mismatched tau spreads the decay across instances.
        assert data["x0_std"][-1] > 0.0
        assert np.all(data["x0_p05"] <= data["x0_p95"] + 1e-12)
        # The mean still tracks the nominal exp(-t) decay loosely.
        assert data["x0_mean"][-1] == pytest.approx(np.exp(-2.0),
                                                    rel=0.5)

    def test_serial_engine_agrees(self, program_file, tmp_path, capsys):
        paths = {}
        for engine in ("batch", "serial"):
            path = tmp_path / f"{engine}.csv"
            assert main(["ensemble", program_file, "--arg", "w=1.0",
                         "--t-end", "1.0", "--seeds", "4",
                         "--engine", engine, "--node", "x1",
                         "--csv", str(path)]) == 0
            paths[engine] = np.genfromtxt(path, delimiter=",",
                                          names=True)
        np.testing.assert_allclose(paths["batch"]["x1_mean"],
                                   paths["serial"]["x1_mean"],
                                   rtol=1e-4, atol=1e-7)

    def test_prints_rows_without_csv(self, program_file, capsys):
        code = main(["ensemble", program_file, "--arg", "w=0.5",
                     "--t-end", "1.0", "--seeds", "3",
                     "--node", "x0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "t,x0_mean,x0_std,x0_p05,x0_p95" in out

    def test_cache_dir_reruns_bit_identically(self, program_file,
                                              tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        stats = {}
        for run in ("cold", "warm"):
            path = tmp_path / f"{run}.csv"
            assert main(["ensemble", program_file, "--arg", "w=1.0",
                         "--t-end", "1.0", "--seeds", "4",
                         "--node", "x0", "--csv", str(path),
                         "--cache-dir", str(cache_dir)]) == 0
            stats[run] = np.genfromtxt(path, delimiter=",", names=True)
        assert list(cache_dir.glob("*.npz"))
        for name in stats["cold"].dtype.names:
            np.testing.assert_array_equal(stats["cold"][name],
                                          stats["warm"][name])

    def test_no_dense_flag_agrees(self, program_file, tmp_path):
        paths = {}
        for flag, extra in (("dense", []), ("clipped", ["--no-dense"])):
            path = tmp_path / f"{flag}.csv"
            assert main(["ensemble", program_file, "--arg", "w=1.0",
                         "--t-end", "1.0", "--seeds", "4",
                         "--node", "x0", "--csv", str(path)]
                        + extra) == 0
            paths[flag] = np.genfromtxt(path, delimiter=",",
                                        names=True)
        np.testing.assert_allclose(paths["dense"]["x0_mean"],
                                   paths["clipped"]["x0_mean"],
                                   rtol=1e-5, atol=1e-8)


class TestAdaptiveSdeFlags:
    def _run(self, noisy_file, tmp_path, name, *extra):
        csv_path = tmp_path / f"{name}.csv"
        code = main(["ensemble", noisy_file, "--t-end", "1.0",
                     "--seeds", "2", "--trials", "2", "--node", "x",
                     "--csv", str(csv_path), *extra])
        return code, csv_path

    def test_unknown_sde_method_exits_2(self, noisy_file, tmp_path,
                                        capsys):
        code, _ = self._run(noisy_file, tmp_path, "bad",
                            "--sde-method", "euler")
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "heun-adaptive" in err  # names the alternatives

    def test_adaptive_method_with_tolerances(self, noisy_file,
                                             tmp_path, capsys):
        code, loose_csv = self._run(
            noisy_file, tmp_path, "loose", "--sde-method",
            "heun-adaptive", "--sde-rtol", "1e-2", "--sde-atol",
            "1e-4")
        assert code == 0
        code, tight_csv = self._run(
            noisy_file, tmp_path, "tight", "--sde-method",
            "heun-adaptive", "--sde-rtol", "1e-7", "--sde-atol",
            "1e-10")
        assert code == 0
        loose = np.genfromtxt(loose_csv, delimiter=",", names=True)
        tight = np.genfromtxt(tight_csv, delimiter=",", names=True)
        # The tolerance flags reach the controller: the loose and
        # tight runs take different step sequences, hence (slightly)
        # different trajectories on the same bridge realization.
        assert not np.array_equal(loose["x_mean"], tight["x_mean"])
        # ... but refine the SAME Wiener path, so they agree closely.
        np.testing.assert_allclose(loose["x_mean"], tight["x_mean"],
                                   atol=0.05)
