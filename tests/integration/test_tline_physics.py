"""Physics validation: the compiled TLN dynamics obey transmission-line
theory. These tests pin quantitative electromagnetics, not just the
paper's qualitative claims — if the production rules mis-implement the
Telegrapher's equations, these fail."""

import numpy as np
import pytest

import repro
from repro.paradigms.tln import TLineSpec, linear_tline


def _arrival_time(trajectory, node="OUT_V", level=0.2):
    values = trajectory[node]
    threshold = level * values.max()
    index = np.argmax(values > threshold)
    return trajectory.t[index]


class TestPropagationDelay:
    def test_delay_scales_with_sqrt_lc(self):
        """Per-segment delay is sqrt(L*C): quartering C halves it."""
        fast = TLineSpec(n_segments=16, capacitance=0.25e-9,
                         pulse_width=4e-9)
        slow = TLineSpec(n_segments=16, capacitance=1e-9,
                         pulse_width=4e-9)
        t_fast = _arrival_time(
            repro.simulate(linear_tline(fast), (0.0, 4e-8),
                           n_points=800))
        t_slow = _arrival_time(
            repro.simulate(linear_tline(slow), (0.0, 4e-8),
                           n_points=800))
        assert t_slow / t_fast == pytest.approx(2.0, rel=0.25)

    def test_delay_scales_with_length(self):
        short = TLineSpec(n_segments=8, pulse_width=4e-9)
        long = TLineSpec(n_segments=16, pulse_width=4e-9)
        t_short = _arrival_time(
            repro.simulate(linear_tline(short), (0.0, 4e-8),
                           n_points=800))
        t_long = _arrival_time(
            repro.simulate(linear_tline(long), (0.0, 4e-8),
                           n_points=800))
        assert t_long / t_short == pytest.approx(2.0, rel=0.3)


class TestTerminations:
    SPEC = TLineSpec(n_segments=12, pulse_width=4e-9)

    def _peak(self, termination):
        spec = TLineSpec(n_segments=12, pulse_width=4e-9,
                         termination=termination)
        trajectory = repro.simulate(linear_tline(spec), (0.0, 2.2e-8),
                                    n_points=600)
        return trajectory["OUT_V"].max()

    def test_matched_line_half_amplitude(self):
        # Z0 = sqrt(L/C) = 1; source conductance 1 -> V = 0.5.
        assert self._peak(termination=1.0) == pytest.approx(0.5,
                                                            abs=0.1)

    def test_open_end_doubles(self):
        # Reflection coefficient +1 at an open end: ~1.0 at OUT_V.
        assert self._peak(termination=0.0) == pytest.approx(1.0,
                                                            abs=0.2)

    def test_heavy_load_shrinks(self):
        # G >> 1/Z0 approaches a short: reflection ~ -1, small voltage.
        assert self._peak(termination=10.0) < 0.2

    def test_termination_ordering(self):
        open_end = self._peak(0.0)
        matched = self._peak(1.0)
        loaded = self._peak(3.0)
        assert open_end > matched > loaded


class TestCharacteristicImpedance:
    def test_amplitude_follows_source_divider(self):
        """Launch amplitude = I * (Z0 || Rs). With Rs = 1/g = 1 and
        Z0 = 2 (L = 4e-9): V = 2/3."""
        spec = TLineSpec(n_segments=12, inductance=4e-9,
                         pulse_width=8e-9, termination=0.5)
        trajectory = repro.simulate(linear_tline(spec), (0.0, 6e-8),
                                    n_points=800)
        # Matched far end (G = 1/Z0 = 0.5) -> transmitted peak ≈ launch.
        assert trajectory["OUT_V"].max() == pytest.approx(2.0 / 3.0,
                                                          abs=0.15)


class TestLosses:
    def test_series_resistance_attenuates(self):
        lossless = TLineSpec(n_segments=12, pulse_width=4e-9)
        lossy = TLineSpec(n_segments=12, pulse_width=4e-9,
                          resistance=0.05)
        peak_ll = repro.simulate(linear_tline(lossless),
                                 (0.0, 2.2e-8), n_points=500)[
                                     "OUT_V"].max()
        peak_lo = repro.simulate(linear_tline(lossy), (0.0, 2.2e-8),
                                 n_points=500)["OUT_V"].max()
        assert peak_lo < peak_ll

    def test_shunt_conductance_attenuates(self):
        lossless = TLineSpec(n_segments=12, pulse_width=4e-9)
        leaky = TLineSpec(n_segments=12, pulse_width=4e-9,
                          conductance=0.05)
        peak_ll = repro.simulate(linear_tline(lossless),
                                 (0.0, 2.2e-8), n_points=500)[
                                     "OUT_V"].max()
        peak_lk = repro.simulate(linear_tline(leaky), (0.0, 2.2e-8),
                                 n_points=500)["OUT_V"].max()
        assert peak_lk < peak_ll

    def test_energy_conservation_lossless(self):
        """A lossless matched line delivers the launched energy to the
        terminations: after the pulse passes, almost nothing remains on
        the line."""
        spec = TLineSpec(n_segments=10, pulse_width=4e-9)
        trajectory = repro.simulate(linear_tline(spec), (0.0, 2e-7),
                                    n_points=400)
        residual = np.abs(trajectory.final_state()).max()
        assert residual < 1e-3
