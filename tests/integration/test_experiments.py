"""Integration tests: reduced-size versions of every paper experiment.

Each test reproduces the *shape* of a published result (who wins, what
fails, where the orderings fall) on sizes small enough for CI; the
benchmarks regenerate the full-size numbers.
"""

import math

import numpy as np
import pytest

import repro
from repro.analysis import observation_window, window_spread
from repro.circuits import compare_dg_netlist
from repro.core.builder import GraphBuilder
from repro.paradigms.cnn import (default_image, edge_detector,
                                 expected_edges, run_cnn)
from repro.paradigms.obc import (maxcut_experiment, random_graphs)
from repro.paradigms.tln import (TLineSpec, branched_tline,
                                 linear_tline, mismatched_tline)


class TestFig2Validation:
    """Fig. 2: the branched and linear lines validate; the malformed
    V-V line is rejected."""

    def test_linear_and_branched_validate(self, small_spec):
        for graph in (linear_tline(small_spec),
                      branched_tline(small_spec, branch_segments=3)):
            report = repro.validate(graph, backend="flow")
            assert report.valid, report.violations

    def test_malformed_vv_line_rejected(self, tln, small_spec):
        graph = linear_tline(small_spec)
        # Short-circuit two V nodes: the hallmark of Fig. 2(iii).
        graph.add_edge("bad", "IN_V", "V_0", "E")
        report = repro.validate(graph, backend="flow")
        assert not report.valid
        assert any("V" in v for v in report.violations)


class TestFig4Trajectories:
    """Fig. 4: pulse amplitudes, echo, and mismatch spread orderings."""

    SPEC = TLineSpec(n_segments=12, pulse_width=8e-9)

    @pytest.fixture(scope="class")
    def linear_traj(self):
        return repro.simulate(linear_tline(self.SPEC), (0.0, 6e-8),
                              n_points=400)

    @pytest.fixture(scope="class")
    def branched_traj(self):
        return repro.simulate(
            branched_tline(self.SPEC, branch_segments=6), (0.0, 6e-8),
            n_points=400)

    def test_linear_pulse_half_amplitude(self, linear_traj):
        assert linear_traj["OUT_V"].max() == pytest.approx(0.5,
                                                           abs=0.12)

    def test_branched_pulse_weaker(self, linear_traj, branched_traj):
        assert branched_traj["OUT_V"].max() < \
            linear_traj["OUT_V"].max()

    def test_branched_echo_present(self, branched_traj):
        # After the main pulse passes (~12 ns) + width, the echo
        # arrives ~12 ns later.
        t = branched_traj.t
        late = np.abs(branched_traj["OUT_V"][t > 3.2e-8])
        assert late.max() > 0.05

    def test_branched_window_wider(self, linear_traj, branched_traj):
        w_lin = observation_window(linear_traj, "OUT_V",
                                   threshold=0.1)
        w_brn = observation_window(branched_traj, "OUT_V",
                                   threshold=0.1)
        assert (w_brn[1] - w_brn[0]) > 1.2 * (w_lin[1] - w_lin[0])

    def test_gm_spread_exceeds_cint_spread(self):
        spec = TLineSpec(n_segments=10)
        window = (0.8e-8, 3e-8)
        spreads = {}
        for kind in ("cint", "gm"):
            trajectories = repro.simulate_ensemble(
                lambda seed, kind=kind: mismatched_tline(kind, spec,
                                                         seed=seed),
                seeds=range(15), t_span=(0.0, 4e-8), n_points=250)
            spreads[kind] = window_spread(trajectories, "OUT_V",
                                          window)
        # Fig. 4d vs 4c: Gm mismatch dominates.
        assert spreads["gm"] > 1.3 * spreads["cint"]


class TestFig11Cnn:
    """Fig. 11c: the four hardware variants of the edge detector."""

    @pytest.fixture(scope="class")
    def setup(self):
        image = default_image(10)
        return image, expected_edges(image)

    @pytest.fixture(scope="class")
    def runs(self, setup):
        image, expected = setup
        results = {}
        for variant in ("ideal", "bias_mismatch", "template_mismatch",
                        "nonideal_sat"):
            graph = edge_detector(image, variant, seed=3)
            results[variant] = run_cnn(graph, 10, 10, variant=variant,
                                       expected=expected)
        return results

    def test_ideal_correct(self, runs):
        assert runs["ideal"].errors == 0
        assert runs["ideal"].converged

    def test_bias_mismatch_slower_but_correct(self, runs):
        assert runs["bias_mismatch"].errors == 0
        assert runs["bias_mismatch"].converged_at > \
            runs["ideal"].converged_at

    def test_template_mismatch_corrupts(self, runs):
        assert (runs["template_mismatch"].errors > 0
                or not runs["template_mismatch"].converged)

    def test_nonideal_sat_faster_and_correct(self, runs):
        assert runs["nonideal_sat"].errors == 0
        assert runs["nonideal_sat"].converged_at < \
            runs["ideal"].converged_at


class TestTable1Maxcut:
    """Table 1 orderings at reduced trial counts."""

    @pytest.fixture(scope="class")
    def table(self):
        graphs = random_graphs(30, 4, seed=5)
        tolerances = (0.01 * math.pi, 0.1 * math.pi)
        return (
            maxcut_experiment(graphs, 4, tolerances=tolerances,
                              edge_type="Cpl"),
            maxcut_experiment(graphs, 4, tolerances=tolerances,
                              edge_type="Cpl_ofs",
                              mismatch_seeds=True),
            tolerances,
        )

    def test_ideal_high_success(self, table):
        ideal, _, (tight, loose) = table
        assert ideal[tight].solved_probability >= 0.8
        assert ideal[loose].solved_probability >= 0.8

    def test_offset_degrades_tight_readout(self, table):
        ideal, offset, (tight, _) = table
        assert offset[tight].solved_probability < \
            ideal[tight].solved_probability

    def test_mitigation_recovers(self, table):
        _, offset, (tight, loose) = table
        assert offset[loose].solved_probability >= \
            offset[tight].solved_probability + 0.1

    def test_sync_implies_solved_rates_close(self, table):
        # In Table 1 sync% and solved% track each other closely.
        ideal, _, (tight, _) = table
        assert abs(ideal[tight].sync_probability
                   - ideal[tight].solved_probability) < 0.15


class TestSection45Netlists:
    """§4.5: random valid GmC-TLN DGs map to netlists whose dynamics
    match within 1% RMSE."""

    def test_random_population(self):
        rng = np.random.default_rng(0)
        worst = 0.0
        for trial in range(10):
            spec = TLineSpec(n_segments=int(rng.integers(3, 9)))
            kind = ("gm", "cint")[trial % 2]
            graph = mismatched_tline(kind, spec, seed=trial)
            assert repro.validate(graph, backend="flow").valid
            report = compare_dg_netlist(graph, (0.0, 3e-8),
                                        n_points=150)
            worst = max(worst, report.worst)
        assert worst < 0.01


class TestInheritanceGuarantees:
    """§4.1.1/§2.4: parent-language programs run unchanged in derived
    languages; derived types substitute where parents were used."""

    def test_tln_graph_same_dynamics_under_gmc(self, tln, gmc,
                                               small_spec):
        graph = linear_tline(small_spec)
        base = repro.simulate(repro.compile_graph(graph, tln),
                              (0.0, 2e-8), n_points=120)
        derived = repro.simulate(repro.compile_graph(graph, gmc),
                                 (0.0, 2e-8), n_points=120)
        assert np.allclose(base.y, derived.y)

    def test_partial_substitution_validates(self, gmc, small_spec):
        """Swap a single interior V node for Vm (progressive
        rewriting): the graph stays valid and simulable."""
        builder = GraphBuilder(gmc, "partial", seed=4)
        builder.node("InpI_0", "InpI")
        builder.set_attr("InpI_0", "fn", lambda t: 1.0)
        builder.set_attr("InpI_0", "g", 1.0)
        names = ["IN_V", "I_0", "Vm_0", "I_1", "OUT_V"]
        types = ["V", "I", "Vm", "I", "V"]
        for name, type_name in zip(names, types):
            builder.node(name, type_name)
            if type_name.startswith("V"):
                builder.set_attr(name, "c", 1e-9)
                builder.set_attr(name, "g",
                                 1.0 if name == "OUT_V" else 0.0)
            else:
                builder.set_attr(name, "l", 1e-9)
                builder.set_attr(name, "r", 0.0)
            builder.set_init(name, 0.0)
            builder.edge(name, name, f"Es_{name}", "E")
        builder.edge("InpI_0", "IN_V", "E_in", "E")
        for src, dst in zip(names[:-1], names[1:]):
            builder.edge(src, dst, f"E_{src}_{dst}", "E")
        graph = builder.finish()
        assert repro.validate(graph, backend="flow").valid
        trajectory = repro.simulate(graph, (0.0, 2e-8), n_points=60)
        assert np.isfinite(trajectory.y).all()
