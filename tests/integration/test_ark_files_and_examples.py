"""Integration tests: shipped .ark programs work through the CLI, and
the example scripts run end to end at reduced sizes."""

import pathlib

import numpy as np
import pytest

from repro.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
ARK_DIR = REPO_ROOT / "examples" / "ark"
EXAMPLES_DIR = REPO_ROOT / "examples"


class TestShippedArkPrograms:
    @pytest.mark.parametrize("name,args", [
        ("two_pole.ark", ["--arg", "w=2", "--arg", "on=1"]),
        ("br_func.ark", ["--arg", "br=0"]),
        ("br_func.ark", ["--arg", "br=1"]),
        ("maxcut.ark", ["--arg", "cycle=1"]),
        ("van_der_pol.ark", ["--arg", "mu=1"]),
    ])
    def test_validate(self, name, args, capsys):
        code = main(["validate", str(ARK_DIR / name)] + args)
        assert code == 0, capsys.readouterr().out

    def test_br_func_simulates(self, tmp_path):
        csv = tmp_path / "out.csv"
        code = main(["simulate", str(ARK_DIR / "br_func.ark"),
                     "--arg", "br=1", "--t-end", "2e-8",
                     "--node", "OUT_V", "--csv", str(csv)])
        assert code == 0
        data = np.genfromtxt(csv, delimiter=",", names=True)
        assert np.isfinite(data["OUT_V"]).all()

    def test_maxcut_cycle_alternates(self, tmp_path):
        csv = tmp_path / "phases.csv"
        code = main(["simulate", str(ARK_DIR / "maxcut.ark"),
                     "--arg", "cycle=1", "--t-end", "1e-7",
                     "--csv", str(csv)])
        assert code == 0
        data = np.genfromtxt(csv, delimiter=",", names=True)
        # 4-cycle max-cut: adjacent oscillators end in anti-phase.
        import math
        phases = [data[f"Osc_{k}"][-1] % (2 * math.pi)
                  for k in range(4)]
        bits = [0 if min(p, 2 * math.pi - p) < 0.3 else 1
                for p in phases]
        assert bits[0] != bits[1] and bits[1] != bits[2] and \
            bits[2] != bits[3] and bits[3] != bits[0]

    def test_info_renders_all_files(self, capsys):
        for path in sorted(ARK_DIR.glob("*.ark")):
            assert main(["info", str(path)]) == 0


class TestExampleScripts:
    """Import each example module and run its entry points with small
    parameters (keeps CI fast while exercising the real code paths)."""

    @pytest.fixture(autouse=True)
    def _importable_examples(self, monkeypatch):
        monkeypatch.syspath_prepend(str(EXAMPLES_DIR))

    def test_quickstart(self, capsys):
        import quickstart
        quickstart.programmatic()
        quickstart.textual()
        out = capsys.readouterr().out
        assert "valid: True" in out

    def test_intercon_design(self, capsys):
        import intercon_design
        intercon_design.main()
        out = capsys.readouterr().out
        assert "routing cost" in out
        assert "cut 6 / optimal 6" in out

    def test_cnn_edge_detection(self, capsys):
        import cnn_edge_detection
        cnn_edge_detection.main(size=10, seed=3, show_frames=False)
        out = capsys.readouterr().out
        assert "takeaways" in out

    def test_puf_exploration(self, capsys):
        import puf_exploration
        puf_exploration.explore_mismatch(chips=4)
        puf_exploration.evaluate_design(chips=3)
        puf_exploration.attack_design()
        out = capsys.readouterr().out
        assert "uniqueness" in out
        assert "degree-1 attack" in out

    def test_obc_maxcut(self, capsys):
        import obc_maxcut
        obc_maxcut.main(trials=10)
        out = capsys.readouterr().out
        assert "takeaways" in out

    def test_cnn_image_pipeline(self, capsys):
        import cnn_image_pipeline
        cnn_image_pipeline.main(size=10, noise=0.03, seed=1)
        out = capsys.readouterr().out
        assert out.count("pixel errors vs reference: 0") == 3
        assert "PDE mode" in out

    def test_gpac_analog_computer(self, capsys):
        import gpac_analog_computer
        gpac_analog_computer.main(leak=0.2)
        out = capsys.readouterr().out
        assert "GPAC programs" in out
        assert "leak study" in out

    def test_fhn_spiking_wave(self, capsys):
        import fhn_spiking_wave
        fhn_spiking_wave.excitability()
        fhn_spiking_wave.raster(6)
        out = capsys.readouterr().out
        assert "suprathreshold kick    -> 1 spike(s)" in out
        assert "traveling spike wave" in out

    def test_van_der_pol_ark_oscillates(self, tmp_path):
        csv = tmp_path / "vdp.csv"
        code = main(["simulate", str(ARK_DIR / "van_der_pol.ark"),
                     "--arg", "mu=1", "--t-end", "25",
                     "--node", "x", "--csv", str(csv)])
        assert code == 0
        data = np.genfromtxt(csv, delimiter=",", names=True)
        # Settled limit cycle: peak |x| ~ 2 in the second half.
        half = len(data["x"]) // 2
        assert 1.8 < np.abs(data["x"][half:]).max() < 2.2
