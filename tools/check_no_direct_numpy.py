#!/usr/bin/env python
"""Lint: no direct numpy inside the array-backend hot paths.

The array-namespace abstraction (``repro.sim.array_api``) only works if
the compiled-kernel and solver step loops go through the injected
backend handle (``B``/``xp``/``self.backend``) for *every* array
operation — one stray ``np.zeros`` in a step loop silently hauls a jax
or cupy computation back to the host and poisons the dtype policy.
This checker walks the AST of the files below and fails on any ``np.``
attribute access, bare ``numpy`` reference, or ``import numpy`` inside
the listed *forbidden zones* (the functions that execute per solver
step on backend arrays).

Deliberate host crossings — output-buffer allocation, trajectory
assembly — are allowed by marking the statement with the pragma
comment ``# ark: host-boundary`` on any line the statement spans.

The zone list is verified against the source: a zone that no longer
exists (renamed or deleted function) is itself an error, so a refactor
cannot silently drop coverage.

Usage::

    python tools/check_no_direct_numpy.py          # lint the repo
    python tools/check_no_direct_numpy.py --list   # show the zones

Exits 0 when clean, 1 with ``file:line: message`` diagnostics
otherwise. Stdlib only — safe for any CI image.
"""

from __future__ import annotations

import argparse
import ast
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Names that count as "direct numpy" when referenced inside a zone.
NUMPY_ALIASES = ("np", "numpy")

PRAGMA = "# ark: host-boundary"

#: file (repo-relative) -> qualnames whose bodies must be numpy-free.
#: Module-level code, other functions, and the assembly/IO layers
#: (BatchTrajectory, caches, drivers) are intentionally NOT listed:
#: they own the host boundary.
FORBIDDEN_ZONES: dict[str, tuple[str, ...]] = {
    "src/repro/sim/batch_solver.py": (
        "freeze_converged",
        "_error_norms",
        "_freeze_offenders",
        "_rk4_batch",
        "_rkf45_stages",
        "_rkf45_batch",
        "_rkf45_dense_batch",
        "_hermite_point",
        "_quartic_coefficients",
        "_quartic_eval",
    ),
    "src/repro/sim/sde_solver.py": (
        "_scatter",
        "_ScatterAccumulator.__call__",
        "_noise_settle",
        "_sde_loop",
        "_sde_adaptive_loop",
    ),
    "src/repro/sim/batch_codegen.py": (
        "BatchRhs.__call__",
        "BatchRhs.diffusion",
        "BatchRhs.diffusion_derivative",
    ),
}


def _pragma_lines(source: str) -> set[int]:
    """1-based numbers of lines carrying the host-boundary pragma."""
    return {number for number, line in enumerate(source.splitlines(), 1)
            if PRAGMA in line}


def _spans_pragma(node: ast.AST, pragmas: set[int]) -> bool:
    """Whether any line the node spans carries the pragma (multi-line
    calls put the comment on the closing line)."""
    start = getattr(node, "lineno", None)
    if start is None:
        return False
    end = getattr(node, "end_lineno", start)
    return any(line in pragmas for line in range(start, end + 1))


class _ZoneChecker(ast.NodeVisitor):
    """Collects direct-numpy references inside one zone's body.

    Pragma granularity is the enclosing *statement*: a multi-line
    buffer allocation carries ``# ark: host-boundary`` on whichever
    line the comment landed, and the whole statement is excused.
    """

    def __init__(self, path: str, pragmas: set[int]):
        self.path = path
        self.pragmas = pragmas
        self.problems: list[str] = []

    def check_statement(self, statement: ast.stmt):
        if _spans_pragma(statement, self.pragmas):
            return
        self.visit(statement)

    def _flag(self, node: ast.AST, message: str):
        self.problems.append(
            f"{self.path}:{node.lineno}: {message}")

    def generic_visit(self, node: ast.AST):
        # Route every nested statement (loop bodies, branches) back
        # through the statement-level pragma check.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self.check_statement(child)
            else:
                self.visit(child)

    def visit_Import(self, node: ast.Import):
        for alias in node.names:
            if alias.name.split(".")[0] == "numpy":
                self._flag(node, "import numpy inside a backend zone")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom):
        if (node.module or "").split(".")[0] == "numpy":
            self._flag(node, "from numpy import inside a backend zone")
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name):
        if node.id in NUMPY_ALIASES:
            self._flag(node, f"direct numpy reference {node.id!r} "
                       f"(use the backend handle / xp namespace)")
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef):
        # Signatures (annotations, defaults like ``xp=np``) document
        # the host-reference contract and are evaluated once at import,
        # never per step — only the *body* of a nested function is
        # zone-checked.
        for statement in node.body:
            self.check_statement(statement)

    visit_AsyncFunctionDef = visit_FunctionDef


def _zone_functions(tree: ast.Module) -> dict[str, ast.AST]:
    """qualname -> def node for every function in the module (one
    class level deep, matching the zone-table notation)."""
    table: dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            table[node.name] = node
        elif isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(member,
                              (ast.FunctionDef, ast.AsyncFunctionDef)):
                    table[f"{node.name}.{member.name}"] = member
    return table


def check_file(path: pathlib.Path, zones: tuple[str, ...],
               display: str) -> list[str]:
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    pragmas = _pragma_lines(source)
    table = _zone_functions(tree)
    problems = []
    for qualname in zones:
        node = table.get(qualname)
        if node is None:
            problems.append(
                f"{display}:1: forbidden zone {qualname!r} not found "
                f"— update FORBIDDEN_ZONES in "
                f"tools/check_no_direct_numpy.py to match the "
                f"refactor")
            continue
        checker = _ZoneChecker(display, pragmas)
        # Check the zone body only; the def line (annotations such as
        # ``grid: np.ndarray`` and defaults such as ``xp=np``) states
        # the host-facing contract and runs once at import time.
        for statement in node.body:
            checker.check_statement(statement)
        problems.extend(checker.problems)
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--list", action="store_true",
                        help="print the forbidden zones and exit")
    arguments = parser.parse_args(argv)
    if arguments.list:
        for file, zones in FORBIDDEN_ZONES.items():
            for qualname in zones:
                print(f"{file}: {qualname}")
        return 0
    problems: list[str] = []
    for file, zones in FORBIDDEN_ZONES.items():
        path = REPO_ROOT / file
        if not path.exists():
            problems.append(f"{file}:1: zone file missing — update "
                            f"FORBIDDEN_ZONES")
            continue
        problems.extend(check_file(path, zones, file))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} direct-numpy problem(s); route array "
              f"math through the backend (xp) or mark a deliberate "
              f"host crossing with '{PRAGMA}'", file=sys.stderr)
        return 1
    total = sum(len(zones) for zones in FORBIDDEN_ZONES.values())
    print(f"no-direct-numpy: {total} zones clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
