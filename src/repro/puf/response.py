"""Response encoding: OUT_V trajectory -> bitvector (§2).

"In an analog circuit PUF, the response is often naturally computed from
voltage and current trajectories observed on a wire within a certain
observation time window." We sample ``OUT_V`` at evenly spaced times
inside the window and encode one bit per *pair* of samples
(``v[2k] > v[2k+1]``): the differential comparison is insensitive to
global gain and keeps the bits reasonably balanced without forcing
them to be, so uniformity stays a meaningful metric.

Measurement noise (for reliability studies) is modeled as additive
Gaussian noise on the sampled voltages.
"""

from __future__ import annotations

import numpy as np

from repro.core.simulator import simulate
from repro.puf.challenge import PufDesign

#: Default observation window: wide enough for every stub's echo (the
#: branched-line lesson of §2.2).
DEFAULT_WINDOW = (1e-8, 8e-8)


def encode_response(samples: np.ndarray,
                    rng: np.random.Generator | None = None,
                    noise_sigma: float = 0.0) -> np.ndarray:
    """Differential encoding: bit k compares samples 2k and 2k+1."""
    samples = np.asarray(samples, dtype=float)
    if noise_sigma > 0.0:
        rng = rng or np.random.default_rng()
        samples = samples + rng.normal(0.0, noise_sigma, samples.shape)
    pairs = samples[: 2 * (len(samples) // 2)].reshape(-1, 2)
    return (pairs[:, 0] > pairs[:, 1]).astype(np.uint8)


def evaluate_puf(design: PufDesign, challenge, seed: int, *,
                 n_bits: int = 32,
                 window: tuple[float, float] = DEFAULT_WINDOW,
                 t_end: float | None = None,
                 noise_sigma: float = 0.0,
                 rng: np.random.Generator | None = None,
                 n_points: int = 600) -> np.ndarray:
    """Challenge one fabricated chip and return its response bits.

    :param seed: the chip identity (mismatch seed).
    :param noise_sigma: per-sample measurement noise for reliability
        studies (0 = noiseless).
    """
    graph = design.build(challenge, seed=seed)
    horizon = t_end if t_end is not None else window[1] * 1.05
    trajectory = simulate(graph, (0.0, horizon), n_points=n_points)
    times = np.linspace(window[0], window[1], 2 * n_bits)
    samples = trajectory.sample("OUT_V", times)
    return encode_response(samples, rng=rng, noise_sigma=noise_sigma)


def random_challenges(design: PufDesign, count: int, seed: int = 0,
                      ) -> list[int]:
    """Distinct random challenges (all of them when the space is small)."""
    space = 1 << design.n_bits
    rng = np.random.default_rng(seed)
    if count >= space:
        return list(range(space))
    picks = rng.choice(space, size=count, replace=False)
    return [int(p) for p in picks]
