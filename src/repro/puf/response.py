"""Response encoding: OUT_V trajectory -> bitvector (§2).

"In an analog circuit PUF, the response is often naturally computed from
voltage and current trajectories observed on a wire within a certain
observation time window." We sample ``OUT_V`` at evenly spaced times
inside the window and encode one bit per *pair* of samples
(``v[2k] > v[2k+1]``): the differential comparison is insensitive to
global gain and keeps the bits reasonably balanced without forcing
them to be, so uniformity stays a meaningful metric.

Reliability is probed with **transient noise** by default: a
``PufDesign(noise=...)`` chip is a stochastic system, and repeated
noisy SDE evaluations of one chip (:func:`evaluate_puf_noisy`, on the
batched engine of :mod:`repro.sim.noisy`) perturb the *dynamics*, not
just the readout. The legacy readout-noise model — additive Gaussian
noise on the sampled voltages — is kept as an explicit option
(``mode="readout"`` in :func:`puf_reliability`); either way every
random draw is seeded, so reliability numbers are reproducible
run-to-run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.noise import stream_seed
from repro.core.simulator import simulate
from repro.puf.challenge import PufDesign
from repro.puf.metrics import ReliabilityReport, reliability

#: Default observation window: wide enough for every stub's echo (the
#: branched-line lesson of §2.2).
DEFAULT_WINDOW = (1e-8, 8e-8)


def _readout_rng(chip_seed, challenge,
                 trial: int = 0) -> np.random.Generator:
    """Deterministic readout-noise stream for one (chip, challenge,
    trial) — same hashing scheme as mismatch and Wiener streams."""
    return np.random.Generator(np.random.PCG64(
        stream_seed(chip_seed, "readout", f"{challenge}:{trial}")))


def encode_response(samples: np.ndarray,
                    rng: np.random.Generator | None = None,
                    noise_sigma: float = 0.0,
                    seed: int | None = None) -> np.ndarray:
    """Differential encoding: bit k compares samples 2k and 2k+1.

    Readout noise (``noise_sigma`` > 0) requires an explicit ``rng`` or
    ``seed`` — an OS-seeded generator would make reliability metrics
    unreproducible run-to-run, which silently breaks every comparison
    built on them.
    """
    samples = np.asarray(samples, dtype=float)
    if noise_sigma > 0.0:
        if rng is None:
            if seed is None:
                raise ValueError(
                    "encode_response: readout noise needs a seeded "
                    "generator — pass rng=... or seed=... (reliability "
                    "metrics must be reproducible)")
            rng = np.random.default_rng(seed)
        samples = samples + rng.normal(0.0, noise_sigma, samples.shape)
    pairs = samples[: 2 * (len(samples) // 2)].reshape(-1, 2)
    return (pairs[:, 0] > pairs[:, 1]).astype(np.uint8)


def _window_times(window: tuple[float, float], n_bits: int) -> np.ndarray:
    return np.linspace(window[0], window[1], 2 * n_bits)


@dataclass(frozen=True)
class ChipFactory:
    """A picklable ``factory(seed)`` building one challenged chip.

    The ensemble drivers accept any callable, but process-pool sharding
    must ship the factory to worker processes — a ``lambda`` silently
    degrades to in-process execution. This module-level class pickles,
    so population sweeps and (chip × trial) SDE batches can shard.

    A ``PufDesign(shared_supply=True)`` design is compiled here and
    its diffusion terms aliased onto the single ``"supply"`` Wiener
    path (factories may return either a graph or a compiled
    :class:`~repro.core.odesystem.OdeSystem`), so every driver built on
    this factory — population sweeps, noisy trials, reliability —
    sees correlated supply ripple without further plumbing.
    """

    design: PufDesign
    challenge: object

    def __call__(self, seed):
        graph = self.design.build(self.challenge, seed=seed)
        if not self.design.shared_supply:
            return graph
        from repro.core.compiler import compile_graph
        from repro.core.noise import share_wiener

        return share_wiener(compile_graph(graph), "supply")


def evaluate_puf(design: PufDesign, challenge, seed: int, *,
                 n_bits: int = 32,
                 window: tuple[float, float] = DEFAULT_WINDOW,
                 t_end: float | None = None,
                 noise_sigma: float = 0.0,
                 rng: np.random.Generator | None = None,
                 n_points: int = 600) -> np.ndarray:
    """Challenge one fabricated chip and return its response bits.

    :param seed: the chip identity (mismatch seed).
    :param noise_sigma: per-sample *readout* noise (0 = noiseless).
        When no ``rng`` is given, a deterministic per-(chip, challenge)
        stream is derived, so repeated calls return identical bits.
    """
    graph = design.build(challenge, seed=seed)
    horizon = t_end if t_end is not None else window[1] * 1.05
    trajectory = simulate(graph, (0.0, horizon), n_points=n_points)
    samples = trajectory.sample("OUT_V", _window_times(window, n_bits))
    if noise_sigma > 0.0 and rng is None:
        rng = _readout_rng(seed, challenge)
    return encode_response(samples, rng=rng, noise_sigma=noise_sigma)


def evaluate_puf_population(design: PufDesign, challenge, seeds, *,
                            n_bits: int = 32,
                            window: tuple[float, float] = DEFAULT_WINDOW,
                            t_end: float | None = None,
                            noise_sigma: float = 0.0,
                            n_points: int = 600,
                            processes: int | None = None) -> np.ndarray:
    """Challenge a whole chip population in one batched solve.

    All mismatch seeds of one design share structure, so the ensemble
    engine integrates them through a single vectorized RHS instead of
    one scipy run per chip (``processes`` shards large populations
    across a pool). Returns a ``(n_chips, n_bits)`` bit matrix whose
    rows equal :func:`evaluate_puf` of the corresponding seed.
    """
    from repro.sim import run_ensemble

    seeds = list(seeds)
    horizon = t_end if t_end is not None else window[1] * 1.05
    result = run_ensemble(
        ChipFactory(design, challenge), seeds,
        (0.0, horizon), n_points=n_points, processes=processes)
    times = _window_times(window, n_bits)
    if len(result.batches) == 1 and not result.serial_indices:
        samples = result.batches[0].sample("OUT_V", times)
    else:
        samples = np.stack([trajectory.sample("OUT_V", times)
                            for trajectory in result.trajectories])
    bits = []
    for row, seed in enumerate(seeds):
        rng = (_readout_rng(seed, challenge)
               if noise_sigma > 0.0 else None)
        bits.append(encode_response(samples[row], rng=rng,
                                    noise_sigma=noise_sigma))
    return np.stack(bits)


def evaluate_puf_noisy(design: PufDesign, challenge, seeds, *,
                       trials: int = 8,
                       n_bits: int = 32,
                       window: tuple[float, float] = DEFAULT_WINDOW,
                       t_end: float | None = None,
                       n_points: int = 600,
                       method: str = "heun",
                       trial_base: int = 0,
                       processes: int | None = None,
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Repeated transient-noise evaluations of every chip, batched.

    The design must carry transient noise (``PufDesign(noise=...)``);
    every (chip, trial) pair runs with an independent deterministic
    Wiener realization, all in one vectorized SDE batch per structural
    group — through the unified plan driver, so ``processes`` shards
    the (chip × trial) batch across a pool bit-identically. Returns
    ``(references, trial_bits)``: the noise-free ``(n_chips, n_bits)``
    reference responses and the ``(n_chips, trials, n_bits)`` noisy
    responses.
    """
    from repro.sim import run_ensemble

    if design.noise <= 0.0:
        raise ValueError(
            "evaluate_puf_noisy needs a transiently noisy design — "
            "construct it with PufDesign(noise=...) (> 0); for "
            "readout-stage noise use puf_reliability(mode='readout')")
    seeds = list(seeds)
    horizon = t_end if t_end is not None else window[1] * 1.05
    result = run_ensemble(
        ChipFactory(design, challenge), seeds,
        (0.0, horizon), trials=trials, n_points=n_points,
        sde_method=method, noise_seed=trial_base, reference=True,
        processes=processes)
    times = _window_times(window, n_bits)
    references = np.stack([
        encode_response(result.reference(chip).sample("OUT_V", times))
        for chip in range(len(seeds))])
    trial_bits = np.empty((len(seeds), trials, n_bits), dtype=np.uint8)
    for chip in range(len(seeds)):
        batch, rows = result.trial_rows(chip)
        samples = batch.sample("OUT_V", times)[rows]
        for trial in range(trials):
            trial_bits[chip, trial] = encode_response(samples[trial])
    return references, trial_bits


def puf_reliability(design: PufDesign, challenge, seeds, *,
                    trials: int = 8,
                    mode: str = "transient",
                    readout_sigma: float = 2e-3,
                    n_bits: int = 32,
                    window: tuple[float, float] = DEFAULT_WINDOW,
                    t_end: float | None = None,
                    n_points: int = 600,
                    method: str = "heun",
                    processes: int | None = None) -> ReliabilityReport:
    """Intra-chip reliability of a chip population (ideal 1.0).

    :param mode: ``"transient"`` (default) — repeated noisy SDE runs of
        each chip against its deterministic reference; the design must
        carry ``PufDesign(noise=...)``. ``"readout"`` — the legacy
        model: one deterministic run per chip, ``trials`` seeded
        Gaussian perturbations of the sampled voltages.
    :param processes: optional pool width for sharding the batched
        solves (picklable by construction: the chip factory is a
        :class:`ChipFactory`).
    """
    seeds = list(seeds)
    if mode == "transient":
        references, trial_bits = evaluate_puf_noisy(
            design, challenge, seeds, trials=trials, n_bits=n_bits,
            window=window, t_end=t_end, n_points=n_points,
            method=method, processes=processes)
    elif mode == "readout":
        horizon = t_end if t_end is not None else window[1] * 1.05
        from repro.sim import run_ensemble

        result = run_ensemble(
            ChipFactory(design, challenge), seeds,
            (0.0, horizon), n_points=n_points, processes=processes)
        times = _window_times(window, n_bits)
        trial_bits = np.empty((len(seeds), trials, n_bits),
                              dtype=np.uint8)
        references = np.empty((len(seeds), n_bits), dtype=np.uint8)
        for chip, seed in enumerate(seeds):
            samples = result.trajectories[chip].sample("OUT_V", times)
            references[chip] = encode_response(samples)
            for trial in range(trials):
                rng = _readout_rng(seed, challenge, trial)
                trial_bits[chip, trial] = encode_response(
                    samples, rng=rng, noise_sigma=readout_sigma)
    else:
        raise ValueError(f"unknown reliability mode {mode!r}; expected "
                         "'transient' or 'readout'")
    per_chip = np.array([
        reliability(references[chip], list(trial_bits[chip]))
        for chip in range(len(seeds))])
    return ReliabilityReport(mode=mode, seeds=seeds, trials=trials,
                             per_chip=per_chip,
                             references=references,
                             trial_bits=trial_bits)


def random_challenges(design: PufDesign, count: int, seed: int = 0,
                      ) -> list[int]:
    """Distinct random challenges (all of them when the space is small)."""
    space = 1 << design.n_bits
    rng = np.random.default_rng(seed)
    if count >= space:
        return list(range(space))
    picks = rng.choice(space, size=count, replace=False)
    return [int(p) for p in picks]
