"""Standard PUF quality metrics.

* **Uniqueness** — mean pairwise fractional Hamming distance between the
  responses of *different* chips to the same challenge (ideal 0.5);
* **Reliability** — 1 minus the mean intra-chip fractional Hamming
  distance over repeated noisy evaluations (ideal 1.0);
* **Uniformity** — mean fraction of 1-bits per response (ideal 0.5);
* **Bit aliasing** — per-bit mean across chips (ideal 0.5 each); a bit
  stuck at 0 or 1 across the population carries no entropy.

These are the quantities a security expert checks when using Ark to
explore the PUF design space (§2.4's "detailed analysis for the PUF
design problem").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np


def hamming_fraction(a: np.ndarray, b: np.ndarray) -> float:
    """Fractional Hamming distance between two equal-length bitvectors."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.shape != b.shape:
        raise ValueError(f"bitvector shapes differ: {a.shape} vs "
                         f"{b.shape}")
    if a.size == 0:
        return 0.0
    return float((a != b).mean())


def uniqueness(responses: list[np.ndarray]) -> float:
    """Mean pairwise fractional Hamming distance across chips."""
    if len(responses) < 2:
        return 0.0
    distances = [hamming_fraction(a, b)
                 for a, b in combinations(responses, 2)]
    return float(np.mean(distances))


def reliability(reference: np.ndarray,
                repeats: list[np.ndarray]) -> float:
    """1 - mean fractional Hamming distance to the noiseless reference."""
    if not repeats:
        return 1.0
    distances = [hamming_fraction(reference, r) for r in repeats]
    return float(1.0 - np.mean(distances))


def uniformity(response: np.ndarray) -> float:
    """Fraction of 1-bits in one response."""
    response = np.asarray(response, dtype=np.uint8)
    if response.size == 0:
        return 0.0
    return float(response.mean())


def bit_aliasing(responses: list[np.ndarray]) -> np.ndarray:
    """Per-bit mean across a chip population."""
    return np.stack([np.asarray(r, dtype=float)
                     for r in responses]).mean(axis=0)


@dataclass
class ReliabilityReport:
    """Intra-chip reliability of a population, one number per chip.

    Produced by :func:`repro.puf.puf_reliability`; ``mode`` records
    whether the trials perturbed the dynamics (``"transient"``, the
    physical model) or only the sampled voltages (``"readout"``, the
    legacy model).
    """

    mode: str
    seeds: list = field(default_factory=list)
    trials: int = 0
    #: Per-chip reliability (ideal 1.0), ordered like ``seeds``.
    per_chip: np.ndarray = field(default_factory=lambda: np.empty(0))
    #: Noise-free reference bits, (n_chips, n_bits).
    references: np.ndarray | None = None
    #: Noisy response bits, (n_chips, trials, n_bits).
    trial_bits: np.ndarray | None = None

    @property
    def mean(self) -> float:
        """Population mean reliability."""
        return float(self.per_chip.mean()) if self.per_chip.size \
            else 1.0

    @property
    def worst(self) -> float:
        """Worst chip's reliability — the spec-sheet number."""
        return float(self.per_chip.min()) if self.per_chip.size \
            else 1.0

    def bit_error_rate(self) -> float:
        """Fraction of trial bits disagreeing with the reference."""
        if self.references is None or self.trial_bits is None or \
                not self.trial_bits.size:
            return 0.0
        flips = self.trial_bits != self.references[:, None, :]
        return float(flips.mean())
