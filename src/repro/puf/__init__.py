"""TLN physical-unclonable-function toolkit (§2 case study).

The paper's motivating design problem: a transmission-line PUF whose
challenge bits reconfigure switchable branch stubs and whose response is
encoded from the ``OUT_V`` trajectory inside an observation window.
Fabrication mismatch (via the GmC-TLN language) makes each fabricated
instance respond differently — the security property.

* :mod:`repro.puf.challenge` — the reconfigurable multi-branch topology;
* :mod:`repro.puf.response` — trajectory-to-bitvector encoding;
* :mod:`repro.puf.metrics` — uniqueness / reliability / uniformity, the
  standard PUF quality metrics;
* :mod:`repro.puf.attack` — ML modeling attacks quantifying the §2
  "hard to predict" requirement (accuracy vs CRP budget).
"""

from repro.puf.attack import (AttackResult, LogisticModel,
                              challenge_features, collect_crps,
                              cross_validate, learning_curve,
                              run_attack, split_attack)
from repro.puf.challenge import PufDesign
from repro.puf.metrics import (ReliabilityReport, bit_aliasing,
                               hamming_fraction, reliability,
                               uniformity, uniqueness)
from repro.puf.response import (ChipFactory, evaluate_puf,
                                evaluate_puf_noisy,
                                evaluate_puf_population,
                                puf_reliability, random_challenges)

__all__ = [
    "AttackResult",
    "ChipFactory",
    "LogisticModel",
    "PufDesign",
    "ReliabilityReport",
    "bit_aliasing",
    "challenge_features",
    "collect_crps",
    "cross_validate",
    "evaluate_puf",
    "evaluate_puf_noisy",
    "evaluate_puf_population",
    "hamming_fraction",
    "learning_curve",
    "puf_reliability",
    "random_challenges",
    "reliability",
    "run_attack",
    "split_attack",
    "uniformity",
    "uniqueness",
]
