"""Machine-learning modeling attacks on the TLN PUF.

§2 frames the PUF design goal as a mapping that is "stable but maximally
complex and hard to imitate or predict for cryptographic adversaries
without physically possessing and interrogating the PUF". The standard
way to quantify "hard to predict" is a *modeling attack*: train a
machine-learning model on a set of observed challenge-response pairs
(CRPs) and measure how well it predicts responses to unseen challenges
(Rührmair et al., CCS 2010). A PUF whose responses a small model predicts
from few CRPs provides weak authentication no matter how good its
uniqueness and reliability metrics look.

This module implements that analysis for the switchable-branch TLN PUF:

* :func:`challenge_features` — expand a challenge bitvector into a
  polynomial feature vector (degree 1 = independent stub effects,
  degree 2 adds stub-pair interaction products, etc.);
* :class:`LogisticModel` — multi-output logistic regression trained with
  full-batch gradient descent (pure numpy, no external ML stack);
* :func:`collect_crps` / :func:`run_attack` / :func:`learning_curve` /
  :func:`cross_validate` — CRP harvesting, train/test evaluation,
  accuracy-vs-#CRPs curves, and k-fold evaluation over the full
  challenge space.

The headline use, mirroring the paper's Fig. 4c/4d methodology, is to
compare *design variants*: a variant whose responses are easier to model
(higher attack accuracy at equal CRP budget) is the weaker PUF even if
both separate chips equally well.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.errors import GraphError
from repro.puf.challenge import PufDesign
from repro.puf.response import DEFAULT_WINDOW, evaluate_puf


def _as_bit_matrix(challenges, n_bits: int) -> np.ndarray:
    """Normalize challenges (ints or bit sequences) to an (n, k) 0/1
    matrix, least-significant bit first to match ``PufDesign``."""
    rows = []
    for challenge in challenges:
        if isinstance(challenge, (int, np.integer)):
            if not 0 <= int(challenge) < (1 << n_bits):
                raise GraphError(
                    f"challenge {challenge} outside [0, "
                    f"{(1 << n_bits) - 1}]")
            rows.append([(int(challenge) >> k) & 1
                         for k in range(n_bits)])
        else:
            bits = [int(bool(b)) for b in challenge]
            if len(bits) != n_bits:
                raise GraphError(
                    f"challenge needs {n_bits} bits, got {len(bits)}")
            rows.append(bits)
    return np.asarray(rows, dtype=float)


def challenge_features(challenges, n_bits: int,
                       degree: int = 2) -> np.ndarray:
    """Polynomial feature expansion of challenge bitvectors.

    Bits are mapped to +/-1 (so products are parity features, the
    canonical PUF-attack encoding), then all products of up to ``degree``
    distinct bits are emitted, plus a constant term::

        degree 1 -> [1, s_0, ..., s_{k-1}]
        degree 2 -> [..., s_0*s_1, s_0*s_2, ...]

    :returns: (n_challenges, n_features) float matrix.
    """
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    bits = _as_bit_matrix(challenges, n_bits)
    signs = 2.0 * bits - 1.0
    columns = [np.ones(len(signs))]
    for size in range(1, min(degree, n_bits) + 1):
        for combo in combinations(range(n_bits), size):
            columns.append(np.prod(signs[:, combo], axis=1))
    return np.stack(columns, axis=1)


def n_features(n_bits: int, degree: int = 2) -> int:
    """Feature count produced by :func:`challenge_features`."""
    total = 1
    term = 1
    for size in range(1, min(degree, n_bits) + 1):
        term = term * (n_bits - size + 1) // size
        total += term
    return total


class LogisticModel:
    """Multi-output logistic regression, one independent binary classifier
    per response bit, trained by full-batch gradient descent.

    Pure numpy on purpose: the attack must run in this repository's
    no-network environment, and the model class (linear in the feature
    map) is the quantity of interest — a PUF that falls to a *linear*
    model is broken regardless of fancier attacks.
    """

    def __init__(self, learning_rate: float = 0.5, epochs: int = 500,
                 l2: float = 1e-3):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if l2 < 0:
            raise ValueError("l2 must be >= 0")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.weights: np.ndarray | None = None

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 0.5 * (1.0 + np.tanh(0.5 * z))

    def fit(self, features: np.ndarray, labels: np.ndarray,
            ) -> "LogisticModel":
        """Train on (n, f) features and (n, b) 0/1 labels."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if labels.ndim == 1:
            labels = labels[:, None]
        if features.shape[0] != labels.shape[0]:
            raise ValueError(
                f"feature/label row mismatch: {features.shape[0]} vs "
                f"{labels.shape[0]}")
        n_rows, n_cols = features.shape
        weights = np.zeros((n_cols, labels.shape[1]))
        for _ in range(self.epochs):
            predictions = self._sigmoid(features @ weights)
            gradient = features.T @ (predictions - labels) / n_rows
            gradient += self.l2 * weights
            weights -= self.learning_rate * gradient
        self.weights = weights
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise ValueError("model is not fitted")
        return self._sigmoid(np.asarray(features, dtype=float)
                             @ self.weights)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """0/1 predictions, shape (n, b)."""
        return (self.predict_proba(features) >= 0.5).astype(np.uint8)

    def accuracy(self, features: np.ndarray,
                 labels: np.ndarray) -> np.ndarray:
        """Per-output-bit accuracy on a labeled set."""
        labels = np.asarray(labels)
        if labels.ndim == 1:
            labels = labels[:, None]
        return (self.predict(features) == labels).mean(axis=0)


def collect_crps(design: PufDesign, challenges, seed: int, *,
                 n_bits: int = 32,
                 window: tuple[float, float] = DEFAULT_WINDOW,
                 n_points: int = 600,
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Interrogate one fabricated chip over ``challenges``.

    :returns: ``(challenge_bits, responses)`` — (n, k) 0/1 challenge
        matrix and (n, n_bits) 0/1 response matrix.
    """
    challenge_bits = _as_bit_matrix(challenges, design.n_bits)
    responses = [evaluate_puf(design, challenge, seed, n_bits=n_bits,
                              window=window, n_points=n_points)
                 for challenge in challenges]
    return challenge_bits, np.stack(responses).astype(np.uint8)


@dataclass(frozen=True)
class AttackResult:
    """Outcome of one modeling attack on one chip."""

    n_train: int
    n_test: int
    degree: int
    per_bit_accuracy: np.ndarray
    #: Majority-class rate per bit on the test set: the accuracy a
    #: constant predictor achieves. Attack *advantage* is accuracy above
    #: this, not above 0.5 — response bits need not be balanced.
    per_bit_baseline: np.ndarray

    @property
    def accuracy(self) -> float:
        """Mean prediction accuracy across response bits."""
        return float(np.mean(self.per_bit_accuracy))

    @property
    def baseline(self) -> float:
        return float(np.mean(self.per_bit_baseline))

    @property
    def advantage(self) -> float:
        """Mean accuracy above the constant-predictor baseline."""
        return self.accuracy - self.baseline

    def describe(self) -> str:
        return (f"attack(train={self.n_train}, test={self.n_test}, "
                f"degree={self.degree}): accuracy {self.accuracy:.3f} "
                f"(baseline {self.baseline:.3f}, advantage "
                f"{self.advantage:+.3f})")


def _majority_baseline(labels: np.ndarray) -> np.ndarray:
    means = np.asarray(labels, dtype=float).mean(axis=0)
    return np.maximum(means, 1.0 - means)


def split_attack(train_bits: np.ndarray, train_labels: np.ndarray,
                 test_bits: np.ndarray, test_labels: np.ndarray, *,
                 n_bits: int, degree: int = 2,
                 model: LogisticModel | None = None) -> AttackResult:
    """Train on one CRP set and score on another (already-split data)."""
    model = model or LogisticModel()
    train_features = challenge_features(train_bits, n_bits, degree)
    test_features = challenge_features(test_bits, n_bits, degree)
    model.fit(train_features, train_labels)
    return AttackResult(
        n_train=len(train_bits),
        n_test=len(test_bits),
        degree=degree,
        per_bit_accuracy=model.accuracy(test_features, test_labels),
        per_bit_baseline=_majority_baseline(test_labels),
    )


def run_attack(design: PufDesign, seed: int, *, n_train: int,
               n_test: int | None = None, degree: int = 2,
               rng: np.random.Generator | int | None = None,
               n_bits: int = 32,
               window: tuple[float, float] = DEFAULT_WINDOW,
               n_points: int = 600,
               model: LogisticModel | None = None) -> AttackResult:
    """Model one chip from ``n_train`` random CRPs, test on the rest.

    The challenge space is enumerated (TLN PUFs have one bit per branch,
    so it is small), shuffled with ``rng``, and split; ``n_test=None``
    tests on every remaining challenge.
    """
    space = 1 << design.n_bits
    if n_train < 1:
        raise ValueError("n_train must be >= 1")
    if n_train >= space:
        raise ValueError(
            f"n_train={n_train} leaves no test challenges out of "
            f"{space}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    order = rng.permutation(space)
    train_challenges = [int(c) for c in order[:n_train]]
    rest = order[n_train:]
    if n_test is not None:
        rest = rest[:n_test]
    test_challenges = [int(c) for c in rest]

    train_bits, train_labels = collect_crps(
        design, train_challenges, seed, n_bits=n_bits, window=window,
        n_points=n_points)
    test_bits, test_labels = collect_crps(
        design, test_challenges, seed, n_bits=n_bits, window=window,
        n_points=n_points)
    return split_attack(train_bits, train_labels, test_bits, test_labels,
                        n_bits=design.n_bits, degree=degree, model=model)


def cross_validate(design: PufDesign, seed: int, *, k: int = 4,
                   degree: int = 1,
                   rng: np.random.Generator | int | None = None,
                   n_bits: int = 32,
                   window: tuple[float, float] = DEFAULT_WINDOW,
                   n_points: int = 600,
                   model_factory=LogisticModel) -> AttackResult:
    """K-fold cross-validated attack over the full challenge space.

    TLN PUF challenge spaces are small (one bit per branch), so a single
    train/test split leaves too few test challenges for a stable accuracy
    estimate. This enumerates the space once (each challenge simulated
    once), folds it, and pools the held-out predictions of all folds into
    one :class:`AttackResult`.
    """
    space = 1 << design.n_bits
    if not 2 <= k <= space:
        raise ValueError(f"k must be in [2, {space}], got {k}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    order = [int(c) for c in rng.permutation(space)]
    bits, labels = collect_crps(design, order, seed, n_bits=n_bits,
                                window=window, n_points=n_points)
    features = challenge_features(bits, design.n_bits, degree)

    correct = np.zeros(labels.shape[1])
    majority = np.zeros(labels.shape[1])
    fold_edges = np.linspace(0, space, k + 1, dtype=int)
    for fold in range(k):
        test = np.arange(fold_edges[fold], fold_edges[fold + 1])
        train = np.setdiff1d(np.arange(space), test)
        fitted = model_factory().fit(features[train], labels[train])
        predictions = fitted.predict(features[test])
        correct += (predictions == labels[test]).sum(axis=0)
        # Majority class is estimated from the training fold, as a real
        # constant-output adversary would.
        constant = (labels[train].mean(axis=0) >= 0.5).astype(np.uint8)
        majority += (labels[test] == constant).sum(axis=0)
    return AttackResult(
        n_train=space - (space // k), n_test=space, degree=degree,
        per_bit_accuracy=correct / space,
        per_bit_baseline=majority / space)


def learning_curve(design: PufDesign, seed: int, train_sizes, *,
                   degree: int = 2,
                   rng: np.random.Generator | int | None = None,
                   n_bits: int = 32,
                   window: tuple[float, float] = DEFAULT_WINDOW,
                   n_points: int = 600) -> list[AttackResult]:
    """Attack accuracy as a function of the CRP training budget.

    All points share one CRP harvest (each challenge is simulated once)
    and one shuffle, so the curve isolates the effect of training-set
    size.
    """
    train_sizes = sorted(set(int(s) for s in train_sizes))
    space = 1 << design.n_bits
    if not train_sizes or train_sizes[0] < 1:
        raise ValueError("train_sizes must contain positive sizes")
    if train_sizes[-1] >= space:
        raise ValueError(
            f"largest train size {train_sizes[-1]} leaves no test "
            f"challenges out of {space}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    order = [int(c) for c in rng.permutation(space)]
    bits, labels = collect_crps(design, order, seed, n_bits=n_bits,
                                window=window, n_points=n_points)
    results = []
    for size in train_sizes:
        results.append(split_attack(
            bits[:size], labels[:size], bits[size:], labels[size:],
            n_bits=design.n_bits, degree=degree))
    return results
