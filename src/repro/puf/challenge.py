"""Reconfigurable multi-branch t-line PUF topology.

Generalizes the paper's ``br-func`` (Fig. 8): a main transmission line
carries several switchable open-ended branch stubs of different lengths.
Each challenge bit switches one stub's junction edge; enabled stubs add
reflections (echoes) at stub-specific delays, so every challenge shapes a
different ``OUT_V`` trajectory. Fabrication variation enters through the
GmC-TLN mismatch types — following the paper's Fig. 4d conclusion, the
default design uses Gm (edge) mismatch, the stronger entropy source.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import DynamicalGraph
from repro.core.language import Language
from repro.errors import GraphError
from repro.paradigms.tln.functions import TLineSpec, _LineBuilder, \
    _pick_language, _variant_types


@dataclass(frozen=True)
class PufDesign:
    """A switchable-branch TLN PUF design.

    :param spec: electrical parameters of the main line.
    :param branch_positions: indices of main-line V nodes (0-based,
        interior) that carry a stub; one challenge bit each.
    :param branch_lengths: stub lengths in LC segments (same order).
    :param variant: mismatch source — ``"gm"`` (default, per the paper's
        recommendation), ``"cint"``, or ``"ideal"`` (no mismatch; useful
        as a negative control: all chips identical).
    :param switch_alpha: off-state feedthrough fraction of the branch
        switches (§4.3 ``off`` rules via the sw-tln language); 0 models
        ideal isolation, 1 a switch with no isolation at all.
    :param noise: per-segment transient thermal-noise amplitude (the
        ns-tln ``En.nsig``); > 0 makes every built chip a stochastic
        system, so repeated noisy evaluations of *one* chip probe
        intra-chip reliability with actual perturbed dynamics instead
        of readout-stage noise.
    :param shared_supply: model the noise as *supply ripple* instead of
        independent per-segment thermal sources: every diffusion term
        of the built chip is aliased onto one shared Wiener path
        (:func:`repro.core.noise.share_wiener` with label
        ``"supply"``), so all segments see the same correlated
        disturbance — the common-mode scenario a differential response
        encoding should reject far better than independent noise.
        Requires ``noise > 0``. Consumed by
        :class:`repro.puf.response.ChipFactory`, i.e. by every batched
        evaluation/reliability driver.
    """

    spec: TLineSpec = TLineSpec()
    branch_positions: tuple[int, ...] = (5, 12, 19)
    branch_lengths: tuple[int, ...] = (6, 10, 14)
    variant: str = "gm"
    switch_alpha: float = 0.0
    noise: float = 0.0
    shared_supply: bool = False

    def __post_init__(self):
        if self.shared_supply and self.noise <= 0.0:
            raise GraphError(
                "shared_supply models correlated supply ripple over "
                "the transient-noise sources; it needs noise > 0")
        if len(self.branch_positions) != len(self.branch_lengths):
            raise GraphError(
                "branch_positions and branch_lengths must align")
        if not 0.0 <= self.switch_alpha <= 1.0:
            raise GraphError(
                f"switch_alpha must be in [0, 1], got "
                f"{self.switch_alpha}")
        if self.noise < 0.0:
            raise GraphError(
                f"noise amplitude must be >= 0, got {self.noise}")
        for position in self.branch_positions:
            if not 0 <= position < self.spec.n_segments - 1:
                raise GraphError(
                    f"branch position {position} outside the main line's "
                    f"interior V nodes (0..{self.spec.n_segments - 2})")

    @property
    def n_bits(self) -> int:
        """Challenge width: one bit per switchable branch."""
        return len(self.branch_positions)

    def build(self, challenge: int | str | list[int],
              seed: int | None = None,
              language: Language | None = None) -> DynamicalGraph:
        """Instantiate the PUF for one challenge and one fabricated chip.

        :param challenge: challenge bits (int, "101"-style string, or bit
            list); bit k enables branch k.
        :param seed: mismatch seed — the chip identity (§4.3).
        """
        bits = self._challenge_bits(challenge)
        node_variant = "cint" if self.variant == "cint" else "ideal"
        edge_variant = "gm" if self.variant == "gm" else "ideal"
        v_type, i_type, e_type = _variant_types(node_variant,
                                                edge_variant)
        parasitic = self.switch_alpha > 0.0
        noisy = self.noise > 0.0
        if language is None and noisy:
            # ns-tln sits on top of sw-tln, so one chain covers the
            # noise, parasitic, and mismatch stacks simultaneously.
            from repro.paradigms.tln.noisy import ns_tln_language
            language = ns_tln_language()
        elif language is None and parasitic:
            from repro.paradigms.tln.switches import sw_tln_language
            language = sw_tln_language()
        language = _pick_language(language, node_variant, edge_variant)
        junction_type = "Esw" if parasitic else None
        self_edge_type = "En" if noisy else "E"
        self_edge_attrs = {"nsig": self.noise} if noisy else None
        line = _LineBuilder(language, "tln-puf", self.spec, v_type,
                            i_type, e_type, seed,
                            self_edge_type=self_edge_type,
                            self_edge_attrs=self_edge_attrs)
        line.add_v("IN_V", g=0.0)
        line.add_v("OUT_V", g=self.spec.termination)
        line.add_source("IN_V")
        line.chain("IN_V", "OUT_V", self.spec.n_segments)
        for index, (position, length) in enumerate(
                zip(self.branch_positions, self.branch_lengths)):
            root = f"V_{position}"
            end = f"Vstub{index}_end"
            line.add_v(end, g=0.0)
            prefix = f"s{index}"
            line.chain(root, end, length, prefix=prefix,
                       first_edge_type=junction_type)
            # chain() created the junction as the edge root -> s{index}I_0;
            # switching it on/off realizes the challenge bit.
            junction_edge = self._find_junction(line, root,
                                                f"{prefix}I_0")
            if parasitic:
                line.builder.set_attr(junction_edge, "alpha",
                                      self.switch_alpha)
            line.builder.set_switch(junction_edge, bool(bits[index]))
        return line.finish()

    def _find_junction(self, line: _LineBuilder, src: str, dst: str,
                       ) -> str:
        for edge in line.builder.graph.edges:
            if edge.src == src and edge.dst == dst:
                return edge.name
        raise GraphError(f"junction edge {src}->{dst} not found")

    def _challenge_bits(self, challenge) -> list[int]:
        if isinstance(challenge, int):
            if not 0 <= challenge < (1 << self.n_bits):
                raise GraphError(
                    f"challenge {challenge} outside "
                    f"[0, {(1 << self.n_bits) - 1}]")
            return [(challenge >> k) & 1 for k in range(self.n_bits)]
        if isinstance(challenge, str):
            if len(challenge) != self.n_bits or \
                    set(challenge) - {"0", "1"}:
                raise GraphError(
                    f"challenge string must be {self.n_bits} binary "
                    f"digits, got {challenge!r}")
            return [int(c) for c in challenge]
        bits = [int(bool(b)) for b in challenge]
        if len(bits) != self.n_bits:
            raise GraphError(
                f"challenge needs {self.n_bits} bits, got {len(bits)}")
        return bits
