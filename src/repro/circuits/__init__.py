"""Circuit-level GmC substrate (§2.3, §4.5).

The paper validates the GmC-TLN language by generating SPICE netlists
from 1000 random valid DGs and checking that the circuit-level transient
dynamics match the dynamical-graph dynamics within 1% RMSE. We reproduce
that check with an independent substrate:

* :mod:`repro.circuits.netlist` — netlists of ideal transconductors,
  capacitors, conductances, and sources (the elements of the Fig. 3 GmC
  integrator);
* :mod:`repro.circuits.synthesis` — the §2.3 mapping from TLN/GmC-TLN
  dynamical graphs onto GmC netlists;
* :mod:`repro.circuits.mna` — a nodal-analysis transient simulator that
  integrates the netlist directly (never looking at the DG equations);
* :mod:`repro.circuits.compare` — the RMSE comparison of the two paths.
"""

from repro.circuits.compare import compare_dg_netlist, relative_rmse
from repro.circuits.mna import NodalSystem, assemble, simulate_netlist
from repro.circuits.netlist import (Capacitor, Conductance,
                                    CurrentSource, Netlist,
                                    Transconductor)
from repro.circuits.synthesis import synthesize_gmc

__all__ = [
    "Capacitor",
    "Conductance",
    "CurrentSource",
    "Netlist",
    "NodalSystem",
    "Transconductor",
    "assemble",
    "compare_dg_netlist",
    "relative_rmse",
    "simulate_netlist",
    "synthesize_gmc",
]
