"""GmC netlist data model.

A netlist is a bag of ideal elements over named nets (all referenced to
ground), mirroring the inventory of the Fig. 3 GmC integrator:

* :class:`Capacitor` — ``C`` farads from a net to ground;
* :class:`Conductance` — ``G`` siemens from a net to ground;
* :class:`Transconductor` — a VCCS pushing ``gm * v(input)`` amperes
  *into* its output net (the sign convention of §2.3: a negative ``gm``
  models the inverting input of the integrator);
* :class:`CurrentSource` — a time-dependent source pushing ``fn(t)``
  amperes into a net.

The netlist knows nothing about dynamical graphs; it is simulated by
:mod:`repro.circuits.mna` via nodal analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import GraphError


@dataclass(frozen=True)
class Capacitor:
    net: str
    farads: float

    def __post_init__(self):
        if self.farads <= 0:
            raise GraphError(
                f"capacitor on {self.net} must be positive, got "
                f"{self.farads}")


@dataclass(frozen=True)
class Conductance:
    net: str
    siemens: float

    def __post_init__(self):
        if self.siemens < 0:
            raise GraphError(
                f"conductance on {self.net} must be non-negative, got "
                f"{self.siemens}")


@dataclass(frozen=True)
class Transconductor:
    """Current ``gm * v(input_net)`` flows into ``output_net``."""

    output_net: str
    input_net: str
    gm: float


@dataclass(frozen=True)
class CurrentSource:
    """Current ``fn(t)`` flows into ``net``."""

    net: str
    fn: Callable[[float], float]


@dataclass
class Netlist:
    """A flat GmC netlist with per-net initial conditions."""

    name: str = "netlist"
    capacitors: list[Capacitor] = field(default_factory=list)
    conductances: list[Conductance] = field(default_factory=list)
    transconductors: list[Transconductor] = field(default_factory=list)
    sources: list[CurrentSource] = field(default_factory=list)
    initial_voltages: dict[str, float] = field(default_factory=dict)

    def nets(self) -> list[str]:
        """Every net mentioned by any element, in first-seen order."""
        seen: dict[str, None] = {}
        for cap in self.capacitors:
            seen.setdefault(cap.net)
        for cond in self.conductances:
            seen.setdefault(cond.net)
        for vccs in self.transconductors:
            seen.setdefault(vccs.output_net)
            seen.setdefault(vccs.input_net)
        for source in self.sources:
            seen.setdefault(source.net)
        return list(seen)

    def element_count(self) -> dict[str, int]:
        return {
            "capacitors": len(self.capacitors),
            "conductances": len(self.conductances),
            "transconductors": len(self.transconductors),
            "sources": len(self.sources),
        }

    def check(self):
        """Every net must carry exactly one capacitor (GmC integrators
        are capacitively defined; a floating net has no dynamics)."""
        capped = {}
        for cap in self.capacitors:
            if cap.net in capped:
                raise GraphError(
                    f"net {cap.net} carries more than one capacitor")
            capped[cap.net] = cap
        for net in self.nets():
            if net not in capped:
                raise GraphError(f"net {net} has no capacitor")

    def to_spice(self, title: str | None = None,
                 t_stop: float = 1e-7, t_step: float = 1e-10) -> str:
        """Emit the netlist as SPICE deck text (§4.5's artifact).

        Capacitors become ``C`` cards, ground conductances ``R`` cards,
        transconductors ``G`` (VCCS) cards, and time-dependent current
        sources PWL ``I`` cards sampled at ``t_step``. Initial
        conditions are emitted as ``.ic`` lines. The deck is plain
        ngspice-compatible text; this project integrates it with its
        own nodal-analysis engine (:mod:`repro.circuits.mna`) instead
        of an external simulator.
        """
        self.check()
        index = {net: k + 1 for k, net in enumerate(self.nets())}
        lines = [f"* {title or self.name}"]
        for k, cap in enumerate(self.capacitors):
            lines.append(f"C{k} {index[cap.net]} 0 {cap.farads:.6e}")
        for k, cond in enumerate(self.conductances):
            if cond.siemens > 0:
                lines.append(
                    f"R{k} {index[cond.net]} 0 "
                    f"{1.0 / cond.siemens:.6e}")
        for k, vccs in enumerate(self.transconductors):
            # G<name> out+ out- in+ in- gm : current out+ -> out-
            # equals gm * v(in). Our convention injects INTO the
            # output net, i.e. from ground into out+.
            lines.append(
                f"G{k} 0 {index[vccs.output_net]} "
                f"{index[vccs.input_net]} 0 {vccs.gm:.6e}")
        for k, source in enumerate(self.sources):
            n_samples = max(2, int(t_stop / t_step) + 1)
            points = []
            for sample in range(n_samples):
                t = sample * t_step
                points.append(f"{t:.4e} {source.fn(t):.6e}")
            lines.append(f"I{k} 0 {index[source.net]} PWL("
                         + " ".join(points) + ")")
        for net, volts in self.initial_voltages.items():
            if volts != 0.0:
                lines.append(f".ic V({index[net]})={volts:.6e}")
        lines.append(f".tran {t_step:.3e} {t_stop:.3e} uic")
        lines.append(".end")
        return "\n".join(lines)
