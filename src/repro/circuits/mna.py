"""Nodal-analysis transient simulation of GmC netlists.

Assembles the standard state-space form of a capacitively-defined
network::

    C * dv/dt = -G * v + sum_k e_k * fn_k(t)

where ``C`` is the diagonal capacitance matrix, ``G`` collects ground
conductances (diagonal) and transconductors (off-diagonal and diagonal),
and the sources inject currents into their nets. This path never touches
the Ark compiler — it is the independent reference the §4.5 validation
compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy.integrate import solve_ivp

from repro.circuits.netlist import Netlist
from repro.errors import SimulationError


@dataclass
class NodalSystem:
    """Assembled matrices of a netlist."""

    nets: list[str]
    index: dict[str, int]
    capacitance: np.ndarray          # (n,) diagonal of C
    conductance: np.ndarray          # (n, n) G matrix
    sources: list[tuple[int, Callable[[float], float]]]
    v0: np.ndarray

    @property
    def n_nets(self) -> int:
        return len(self.nets)

    def rhs(self):
        inv_c = 1.0 / self.capacitance
        minus_g = -self.conductance
        sources = self.sources

        def f(t: float, v: np.ndarray) -> np.ndarray:
            currents = minus_g @ v
            for net_index, fn in sources:
                currents[net_index] += fn(t)
            return inv_c * currents

        return f


def assemble(netlist: Netlist) -> NodalSystem:
    """Build the state-space matrices from a netlist."""
    netlist.check()
    nets = netlist.nets()
    index = {net: k for k, net in enumerate(nets)}
    n = len(nets)

    capacitance = np.zeros(n)
    for cap in netlist.capacitors:
        capacitance[index[cap.net]] += cap.farads

    conductance = np.zeros((n, n))
    for cond in netlist.conductances:
        conductance[index[cond.net], index[cond.net]] += cond.siemens
    for vccs in netlist.transconductors:
        # i_out = gm * v_in flows INTO the output net: moves -gm*v_in
        # to the G matrix (C dv/dt = -G v + ...).
        conductance[index[vccs.output_net],
                    index[vccs.input_net]] -= vccs.gm

    sources = [(index[source.net], source.fn)
               for source in netlist.sources]
    v0 = np.array([netlist.initial_voltages.get(net, 0.0)
                   for net in nets])
    return NodalSystem(nets=nets, index=index, capacitance=capacitance,
                       conductance=conductance, sources=sources, v0=v0)


@dataclass
class NetlistTrajectory:
    """Transient result keyed by net name."""

    t: np.ndarray
    v: np.ndarray  # (n_nets, n_t)
    system: NodalSystem

    def __getitem__(self, net: str) -> np.ndarray:
        return self.v[self.system.index[net]]


def simulate_netlist(netlist: Netlist, t_span: tuple[float, float],
                     n_points: int = 500, method: str = "RK45",
                     rtol: float = 1e-7, atol: float = 1e-9,
                     ) -> NetlistTrajectory:
    """Integrate the netlist dynamics over ``t_span``."""
    system = assemble(netlist)
    t0, t1 = float(t_span[0]), float(t_span[1])
    if not t1 > t0:
        raise SimulationError(f"empty time span [{t0}, {t1}]")
    t_eval = np.linspace(t0, t1, n_points)
    solution = solve_ivp(system.rhs(), (t0, t1), system.v0,
                         method=method, t_eval=t_eval, rtol=rtol,
                         atol=atol)
    if not solution.success:
        raise SimulationError(
            f"netlist simulation failed: {solution.message}")
    return NetlistTrajectory(t=solution.t, v=solution.y, system=system)
