"""DG-vs-circuit trajectory comparison (§4.5).

The paper reports that the transient dynamics of 1000 random valid
GmC-TLN dynamical graphs match their synthesized SPICE netlists "within a
root-mean-squared error of 1%". :func:`compare_dg_netlist` reruns that
check: simulate the DG through the Ark compiler, simulate the synthesized
netlist through nodal analysis, and report the worst per-node relative
RMSE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.mna import simulate_netlist
from repro.circuits.synthesis import synthesize_gmc
from repro.core.graph import DynamicalGraph
from repro.core.simulator import simulate


def relative_rmse(reference: np.ndarray, candidate: np.ndarray,
                  floor: float = 1e-12) -> float:
    """RMS of the difference normalized by the RMS of the reference
    (with a floor so all-zero references do not divide by zero)."""
    reference = np.asarray(reference, dtype=float)
    candidate = np.asarray(candidate, dtype=float)
    error = np.sqrt(np.mean((reference - candidate) ** 2))
    norm = max(np.sqrt(np.mean(reference ** 2)), floor)
    return float(error / norm)


@dataclass
class ComparisonReport:
    """Per-node relative RMSE between the DG and circuit paths."""

    graph_name: str
    per_node: dict[str, float] = field(default_factory=dict)

    @property
    def worst(self) -> float:
        return max(self.per_node.values()) if self.per_node else 0.0

    @property
    def mean(self) -> float:
        if not self.per_node:
            return 0.0
        return float(np.mean(list(self.per_node.values())))

    def within(self, tolerance: float) -> bool:
        return self.worst <= tolerance


def compare_dg_netlist(graph: DynamicalGraph,
                       t_span: tuple[float, float],
                       n_points: int = 300, scale: float = 1.0,
                       rtol: float = 1e-9, atol: float = 1e-12,
                       ) -> ComparisonReport:
    """Simulate both paths and report per-node relative RMSE.

    Only nodes with dynamics (order >= 1) are compared; the comparison is
    meaningful when the signals are nonzero, so callers should drive the
    line with an input.
    """
    dg_trajectory = simulate(graph, t_span, n_points=n_points,
                             rtol=rtol, atol=atol)
    netlist = synthesize_gmc(graph, scale=scale)
    circuit_trajectory = simulate_netlist(netlist, t_span,
                                          n_points=n_points, rtol=rtol,
                                          atol=atol)
    report = ComparisonReport(graph_name=graph.name)
    for node in graph.nodes:
        if node.type.order < 1:
            continue
        report.per_node[node.name] = relative_rmse(
            dg_trajectory[node.name], circuit_trajectory[node.name])
    return report
