"""DG -> GmC netlist synthesis (the §2.3 mapping, §4.5 validation).

Every ``V``/``I`` node of a TLN or GmC-TLN dynamical graph becomes one
GmC integrator output net: a capacitor of ``Cint = scale * c`` (resp.
``scale * l``) and a ground conductance ``Gint = scale * g`` (resp.
``scale * r``). Every line edge becomes the two transconductors of the
Fig. 3 integrator:

* edge ``V_prev -> I`` contributes ``Gm = +wt * scale`` into net ``I``
  from ``V_prev``, and ``Gm = -ws * scale`` into net ``V_prev`` from
  ``I`` (the paper's ``-Gm1 = Gm2 = Gm`` usage generalized to the
  relaxed ``ws``/``wt`` circuit of Eq. 3);
* input nodes become current sources with their shunt conductance.

``scale`` is the free ``Cint`` sizing of §2.3 (``Gm/Gint`` and
``Cint/Gm`` implement the TLN parameters, so scaling caps and
transconductances together leaves the dynamics invariant — a property
the test suite checks).
"""

from __future__ import annotations

from repro.core.graph import DynamicalGraph
from repro.circuits.netlist import (Capacitor, Conductance,
                                    CurrentSource, Netlist,
                                    Transconductor)
from repro.errors import GraphError


def _root_type(node) -> str:
    """Name of the oldest ancestor type (V for Vm, I for Im...)."""
    return node.type.ancestry()[-1].name


def synthesize_gmc(graph: DynamicalGraph, scale: float = 1.0) -> Netlist:
    """Map a (GmC-)TLN dynamical graph onto a GmC netlist.

    Uses only the graph's *resolved* attribute values (post-mismatch), so
    a mismatched DG synthesizes the matching mismatched circuit.
    """
    if scale <= 0:
        raise GraphError(f"Cint scale must be positive, got {scale}")
    netlist = Netlist(name=f"gmc:{graph.name}")
    kinds: dict[str, str] = {}

    for node in graph.nodes:
        root = _root_type(node)
        kinds[node.name] = root
        if root == "V":
            netlist.capacitors.append(
                Capacitor(node.name, scale * float(node.attrs["c"])))
            netlist.conductances.append(
                Conductance(node.name, scale * float(node.attrs["g"])))
            netlist.initial_voltages[node.name] = node.inits.get(0, 0.0)
        elif root == "I":
            netlist.capacitors.append(
                Capacitor(node.name, scale * float(node.attrs["l"])))
            netlist.conductances.append(
                Conductance(node.name, scale * float(node.attrs["r"])))
            netlist.initial_voltages[node.name] = node.inits.get(0, 0.0)
        elif root in ("InpV", "InpI"):
            pass  # sources are expanded per edge below
        else:
            raise GraphError(
                f"cannot synthesize node type {node.type.name}; the GmC "
                "mapping covers TLN and GmC-TLN graphs")

    for edge in graph.edges:
        if not edge.on:
            continue
        src_kind = kinds[edge.src]
        dst_kind = kinds[edge.dst]
        ws = scale * float(edge.attrs.get("ws", 1.0))
        wt = scale * float(edge.attrs.get("wt", 1.0))

        if edge.is_self:
            # Damping self edges are already covered by Gint above.
            continue
        if src_kind in ("V", "I") and dst_kind in ("V", "I"):
            if src_kind == dst_kind:
                raise GraphError(
                    f"edge {edge.name} connects two {src_kind} nodes; "
                    "not a valid TLN line")
            netlist.transconductors.append(
                Transconductor(edge.dst, edge.src, +wt))
            netlist.transconductors.append(
                Transconductor(edge.src, edge.dst, -ws))
            continue
        if src_kind == "InpI":
            source = graph.node(edge.src)
            fn = source.attrs["fn"]
            shunt = float(source.attrs["g"])
            if dst_kind == "V":
                # dV/dt += wt*(fn(t) - g*V)/c
                netlist.sources.append(
                    CurrentSource(edge.dst,
                                  _scaled(fn, wt)))
                netlist.conductances.append(
                    Conductance(edge.dst, wt * shunt))
            else:
                # dI/dt += wt*(fn(t) - I)/(g*l)
                netlist.sources.append(
                    CurrentSource(edge.dst, _scaled(fn, wt / shunt)))
                netlist.conductances.append(
                    Conductance(edge.dst, wt / shunt))
            continue
        if src_kind == "InpV":
            source = graph.node(edge.src)
            fn = source.attrs["fn"]
            series = float(source.attrs["r"])
            if dst_kind == "V":
                # dV/dt += wt*(fn(t) - V)/(r*c)
                netlist.sources.append(
                    CurrentSource(edge.dst, _scaled(fn, wt / series)))
                netlist.conductances.append(
                    Conductance(edge.dst, wt / series))
            else:
                # dI/dt += wt*(fn(t) - r*I)/l
                netlist.sources.append(
                    CurrentSource(edge.dst, _scaled(fn, wt)))
                netlist.conductances.append(
                    Conductance(edge.dst, wt * series))
            continue
        raise GraphError(
            f"cannot synthesize edge {edge.name} "
            f"({src_kind}->{dst_kind})")

    netlist.check()
    return netlist


def _scaled(fn, factor: float):
    """A time-function scaled by a constant factor."""
    return lambda t: factor * fn(t)
