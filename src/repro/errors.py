"""Exception hierarchy for the Ark reproduction.

Every error raised by this package derives from :class:`ArkError` so callers
can catch the whole family with a single ``except`` clause. The subclasses
mirror the phases of the Ark pipeline: language declaration, graph
construction, validation, compilation, parsing, and simulation.
"""

from __future__ import annotations


class ArkError(Exception):
    """Base class for all errors raised by this package."""


class LanguageError(ArkError):
    """A language definition is malformed (duplicate types, bad rules...)."""


class InheritanceError(LanguageError):
    """A derived language or type violates the inheritance rules of §4.1.1."""


class DatatypeError(ArkError):
    """A value does not fit the declared bounded datatype."""


class GraphError(ArkError):
    """A dynamical graph is structurally malformed (unknown node, dangling
    edge, duplicate name, unset attribute...)."""


class FunctionError(ArkError):
    """An Ark function definition or invocation is invalid."""


class ValidationError(ArkError):
    """A dynamical graph violates the local or global validity rules of its
    language."""

    def __init__(self, message: str, violations: list[str] | None = None):
        super().__init__(message)
        #: Human-readable description of each violated rule.
        self.violations: list[str] = list(violations or [])


class CompileError(ArkError):
    """The dynamical-system compiler could not derive differential equations
    (missing production rule, ambiguous rules, algebraic cycle...)."""


class ParseError(ArkError):
    """The textual Ark front-end rejected a program."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class SimulationError(ArkError):
    """Numerical integration failed or produced unusable output."""
