"""Context-local metric collection for the sim stack.

The whole layer hangs off one :class:`contextvars.ContextVar`: inside a
:func:`collect_metrics` block the var holds a :class:`Collector` and
every instrumentation call (:func:`add`, :func:`gauge`, :func:`span`,
...) records into it; outside, the var is ``None`` and each call is a
single dict-free attribute load plus an ``is None`` test before
returning. That single-check discipline is what makes the disabled path
cheap enough to leave the hooks permanently compiled into hot loops
(``solve_batch``, cache lookups, shm writes) — the bench smoke asserts
the disabled cost stays under 2% of the tline workload's wall time.

Being context-local (rather than a module global) means nested or
concurrent collections don't bleed into each other: a benchmark can
profile two back-to-back sweeps into two separate reports, and library
code never needs plumbing — it just emits.

Worker processes are the one place the ContextVar cannot reach (pool
workers are spawned long before any collection starts). Workers instead
compute their counters directly when a task is flagged for collection
and ship them home inside the existing result payload; the parent folds
them in via :func:`merge_worker`.

Counter namespaces: ``solver.*`` (nfev, frozen rows), ``cache.*``,
``pool.*`` (shards, shm/pickle bytes, per-worker queue/busy/payload
aggregates), ``shm.*``, ``stream.*``, ``serial.*``, and — since the
adaptive scheduler (:mod:`repro.sim.sched`) — ``sched.*``:
``sched.shards``, ``sched.groups.cost``/``sched.groups.even`` (which
split each group got), ``sched.adaptive_pinned`` (adaptive groups
pinned to the canonical split), ``sched.predicted_shard_seconds`` vs
``sched.actual_shard_seconds`` (cost-model accuracy),
``sched.steals``, ``sched.pinned_workers``, the
``sched.imbalance_ratio`` list gauge (max/mean worker busy per group),
and ``sched.profile.corrupt``. ``repro report`` renders them as the
``scheduling:`` section.
"""

from __future__ import annotations

import contextlib
import contextvars
import time

from .report import RunReport

_COLLECTOR: contextvars.ContextVar["Collector | None"] = \
    contextvars.ContextVar("repro_telemetry_collector", default=None)


def _as_builtin(value):
    """Collapse numpy scalars (and their lists) to builtin int/float so
    every report is ``json.dumps``-able: counters fed from solver
    internals routinely arrive as ``np.int64``/``np.float64``, and
    ``np.int64`` is *not* an ``int`` subclass — ``RunReport.save`` used
    to crash on it. Duck-typed via ``.item()`` so the telemetry package
    itself never needs a numpy import."""
    if isinstance(value, (bool, str)) or value is None:
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):  # np.float64 subclasses float
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_as_builtin(item) for item in value]
    if isinstance(value, dict):
        return {key: _as_builtin(item) for key, item in value.items()}
    item = getattr(value, "item", None)  # numpy scalars / 0-d arrays
    if callable(item):
        try:
            return _as_builtin(item())
        except (TypeError, ValueError):
            pass
    return value


class Collector:
    """Mutable accumulator behind one :func:`collect_metrics` window."""

    __slots__ = ("counters", "gauges", "workers", "roots", "events",
                 "_stack", "ops", "started", "started_monotonic")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, object] = {}
        self.workers: dict[str, dict[str, float]] = {}
        self.roots: list[dict] = []
        #: flat timestamped events (worker shard solves shipped home in
        #: pool payloads) — one timeline lane per worker in the trace
        #: export, complementing the parent's hierarchical spans.
        self.events: list[dict] = []
        self._stack: list[dict] = []
        #: instrumentation events seen — lets benchmarks price the
        #: disabled path as (ops x per-op disabled cost) / wall time.
        self.ops = 0
        self.started = time.perf_counter()
        #: Same instant on the ``time.monotonic`` clock — the clock
        #: worker processes stamp their events with (comparable across
        #: processes on Linux, unlike ``perf_counter`` guarantees), so
        #: :meth:`merge_worker` can place worker events on this
        #: window's timeline.
        self.started_monotonic = time.monotonic()

    # -- spans ---------------------------------------------------------

    def open_span(self, name: str) -> dict:
        now = time.perf_counter()
        node = {"name": name, "seconds": 0.0,
                "start": now - self.started, "children": [],
                "_t0": now}
        (self._stack[-1]["children"] if self._stack
         else self.roots).append(node)
        self._stack.append(node)
        return node

    def close_span(self, node: dict) -> None:
        node["seconds"] = time.perf_counter() - node.pop("_t0")
        # Tolerate mispaired exits (a span closed out of order drops
        # everything opened after it) rather than corrupting the tree.
        while self._stack:
            if self._stack.pop() is node:
                break

    def add_worker_events(self, lane: str, events) -> None:
        """Place worker-side monotonic-stamped events onto this
        window's timeline (start offsets relative to window open)."""
        for event in events:
            entry = {key: value for key, value in event.items()
                     if key not in ("t0",)}
            entry["lane"] = lane
            entry["start"] = max(
                0.0, float(event.get("t0", 0.0))
                - self.started_monotonic)
            entry.setdefault("name", "?")
            entry.setdefault("seconds", 0.0)
            self.events.append(entry)

    def finalize(self, report: RunReport) -> RunReport:
        for node in self._stack:  # unclosed spans (error paths)
            node["seconds"] = time.perf_counter() - node.pop("_t0")
        self._stack.clear()
        self._memory_gauges()
        report.wall_seconds = time.perf_counter() - self.started
        report.counters = _as_builtin(self.counters)
        report.gauges = _as_builtin(self.gauges)
        report.workers = _as_builtin(self.workers)
        report.spans = _as_builtin(self.roots)
        report.events = sorted(_as_builtin(self.events),
                               key=lambda event: event["start"])
        return report

    def _memory_gauges(self) -> None:
        """Peak-memory gauges recorded at window close: the process RSS
        high-water from the kernel, and the shared-memory high-water the
        shm transport tracked during the window (see
        :func:`gauge_max` calls in :mod:`repro.sim.shm`)."""
        try:
            import resource
            import sys

            peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            # ru_maxrss is kilobytes on Linux, bytes on macOS.
            if sys.platform != "darwin":
                peak *= 1024
            self.gauges["mem.peak_rss_bytes"] = int(peak)
        except Exception:  # pragma: no cover - non-POSIX platforms
            pass
        self.gauges.setdefault("mem.shm_bytes_high_water", 0)


class _SpanHandle:
    """``with span("name"):`` — times a phase into the active tree."""

    __slots__ = ("_collector", "_node", "_name")

    def __init__(self, collector: Collector, name: str) -> None:
        self._collector = collector
        self._name = name
        self._node: dict | None = None

    def __enter__(self) -> "_SpanHandle":
        self._node = self._collector.open_span(self._name)
        return self

    def __exit__(self, *exc) -> None:
        if self._node is not None:
            self._collector.close_span(self._node)
        return None


class _NullSpan:
    """Shared do-nothing span for the disabled path (no allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


# ----------------------------------------------------------------------
# Emission API — each call makes exactly one ContextVar lookup and
# returns immediately when no collection is active.
# ----------------------------------------------------------------------

def enabled() -> bool:
    """True while some :func:`collect_metrics` window is active."""
    return _COLLECTOR.get() is not None


def current() -> Collector | None:
    """The active collector, or ``None`` (for multi-step emitters that
    want to pay the ContextVar lookup once)."""
    return _COLLECTOR.get()


def add(name: str, value: float = 1) -> None:
    """Increment counter ``name`` (created at 0 on first touch)."""
    collector = _COLLECTOR.get()
    if collector is None:
        return
    collector.ops += 1
    collector.counters[name] = collector.counters.get(name, 0) + value


def gauge(name: str, value) -> None:
    """Set gauge ``name`` to a point-in-time scalar observation."""
    collector = _COLLECTOR.get()
    if collector is None:
        return
    collector.ops += 1
    collector.gauges[name] = value


def append(name: str, value) -> None:
    """Append to a list-valued gauge (e.g. chunk arrival times)."""
    collector = _COLLECTOR.get()
    if collector is None:
        return
    collector.ops += 1
    collector.gauges.setdefault(name, []).append(value)


def gauge_max(name: str, value) -> None:
    """Raise gauge ``name`` to ``value`` if it is a new high-water mark
    (used for window-local peaks, e.g. resident shm bytes)."""
    collector = _COLLECTOR.get()
    if collector is None:
        return
    collector.ops += 1
    current_value = collector.gauges.get(name)
    if current_value is None or value > current_value:
        collector.gauges[name] = value


def span(name: str):
    """A context manager timing ``name`` into the span tree; a shared
    no-op object when collection is off."""
    collector = _COLLECTOR.get()
    if collector is None:
        return _NULL_SPAN
    collector.ops += 1
    return _SpanHandle(collector, name)


def merge_worker(info: dict) -> None:
    """Fold a worker-side counter block (shipped back in a pool result
    payload) into the active collection.

    ``info`` must carry a ``"worker"`` name; every other numeric entry
    is summed into that worker's block under ``report.workers`` and,
    for the queue/busy/payload-cache metrics, into the matching global
    ``pool.*`` counters so single-number totals stay one lookup away.
    An optional ``"events"`` list (monotonic-stamped shard-solve spans)
    is rebased onto this window's timeline and lands in
    ``report.events`` — one trace lane per worker.
    """
    collector = _COLLECTOR.get()
    if collector is None:
        return
    collector.ops += 1
    name = str(info.get("worker", "?"))
    block = collector.workers.setdefault(name, {})
    for key, value in info.items():
        if key == "worker" or not isinstance(value, (int, float)):
            continue
        block[key] = block.get(key, 0) + value
    collector.add_worker_events(name, info.get("events") or ())
    counters = collector.counters
    for key, pooled in (("queue_wait_seconds", "pool.queue_wait_seconds"),
                        ("busy_seconds", "pool.worker_busy_seconds"),
                        ("payload_cache_hits", "pool.payload_cache_hits"),
                        ("payload_cache_misses",
                         "pool.payload_cache_misses")):
        if key in info:
            counters[pooled] = counters.get(pooled, 0) + info[key]


@contextlib.contextmanager
def collect_metrics(*, meta: dict | None = None,
                    into: RunReport | None = None):
    """Collect every metric emitted in the ``with`` body.

    Yields the :class:`RunReport` that will be populated — ``into`` if
    given (so callers can pre-allocate and hand the same object to
    ``run_ensemble(..., telemetry=report)``), else a fresh one. The
    report's counters/spans/gauges are filled in when the block exits;
    ``meta`` seeds its identity dict.

    Nested windows are independent: the inner window captures its own
    metrics and the outer one resumes untouched (events are *not*
    double-counted into both).
    """
    report = into if into is not None else RunReport()
    if meta:
        report.meta.update(meta)
    collector = Collector()
    token = _COLLECTOR.set(collector)
    try:
        yield report
    finally:
        _COLLECTOR.reset(token)
        collector.finalize(report)
