"""The :class:`RunReport` artifact: a JSON-serializable, schema-stable
account of one instrumented run.

A report is what :func:`repro.telemetry.collect_metrics` hands back
after the ``with`` block closes: the hierarchical span tree (wall time
per phase, nested), the typed counters and gauges the sim stack
emitted, and the per-worker counter blocks that rode back from pool
workers. The schema is versioned (:data:`SCHEMA_VERSION`) and validated
on load, so saved reports — CI artifacts, ``repro ensemble
--metrics-out`` files, benchmark sections — stay machine-readable
across PRs; :func:`validate_report` is the single source of truth for
what a well-formed report looks like.

Spans are stored as plain nested dicts (``{"name", "seconds",
"children"}``) rather than a dataclass tree: the JSON round trip is
then the identity, which keeps ``repro report`` diffing trivial.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

#: Bump whenever the report layout changes incompatibly (renamed
#: top-level keys, span-node shape). Counter/gauge *names* may grow
#: freely — consumers must treat absent names as zero.
#:
#: v2 (timeline traces): span nodes gained a ``"start"`` offset
#: (seconds from collection-window open) and reports gained a flat
#: ``"events"`` list of timestamped per-worker entries
#: (``{"name", "lane", "start", "seconds", ...}``) — together they are
#: what :mod:`repro.telemetry.trace` exports as a Chrome trace. v1
#: reports still load: :func:`migrate_report` fills the missing pieces.
SCHEMA_VERSION = 2

#: Schema versions :func:`validate_report` accepts (v1 is migrated on
#: load by :meth:`RunReport.from_dict`).
READABLE_SCHEMAS = (1, 2)

#: Top-level keys every report carries, with their expected types.
_REQUIRED = {
    "schema": int,
    "meta": dict,
    "wall_seconds": (int, float),
    "counters": dict,
    "gauges": dict,
    "workers": dict,
    "spans": list,
}


def _span_problems(node, path: str, problems: list[str],
                   schema: int) -> None:
    if not isinstance(node, dict):
        problems.append(f"{path}: span node must be a dict, got "
                        f"{type(node).__name__}")
        return
    if not isinstance(node.get("name"), str):
        problems.append(f"{path}: span 'name' must be a string")
    if not isinstance(node.get("seconds"), (int, float)):
        problems.append(f"{path}: span 'seconds' must be a number")
    if schema >= 2 and not isinstance(node.get("start"), (int, float)):
        problems.append(f"{path}: span 'start' must be a number "
                        f"(schema v2)")
    children = node.get("children", [])
    if not isinstance(children, list):
        problems.append(f"{path}: span 'children' must be a list")
        return
    for index, child in enumerate(children):
        _span_problems(child, f"{path}.children[{index}]", problems,
                       schema)


def _event_problems(data, problems: list[str]) -> None:
    events = data.get("events")
    if not isinstance(events, list):
        problems.append("key 'events' must be list (schema v2)")
        return
    for index, event in enumerate(events):
        path = f"events[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{path}: event must be a dict")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{path}: event 'name' must be a string")
        if not isinstance(event.get("lane"), str):
            problems.append(f"{path}: event 'lane' must be a string")
        for key in ("start", "seconds"):
            if not isinstance(event.get(key), (int, float)):
                problems.append(
                    f"{path}: event {key!r} must be a number")


def validate_report(data) -> list[str]:
    """Every way ``data`` fails to be a well-formed report dict (empty
    list = valid). Checked on :meth:`RunReport.from_dict`, by ``repro
    report --validate``, and by the CI bench smoke on the uploaded
    artifact. Both readable schemas pass: v2 (current) and v1 (which
    has no ``events`` key and no span ``start`` offsets)."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"report must be a dict, got {type(data).__name__}"]
    for key, kind in _REQUIRED.items():
        if key not in data:
            problems.append(f"missing required key {key!r}")
        elif not isinstance(data[key], kind):
            problems.append(
                f"key {key!r} must be {getattr(kind, '__name__', kind)}"
                f", got {type(data[key]).__name__}")
    schema = data.get("schema")
    if isinstance(schema, int) and schema not in READABLE_SCHEMAS:
        problems.append(
            f"unsupported schema version {schema} (this build reads "
            f"{', '.join(str(v) for v in READABLE_SCHEMAS)})")
    if schema == SCHEMA_VERSION:
        _event_problems(data, problems)
    if isinstance(data.get("counters"), dict):
        for name, value in data["counters"].items():
            if not isinstance(value, (int, float)):
                problems.append(
                    f"counter {name!r} must be numeric, got "
                    f"{type(value).__name__}")
    if isinstance(data.get("workers"), dict):
        for worker, block in data["workers"].items():
            if not isinstance(block, dict):
                problems.append(
                    f"worker {worker!r} block must be a dict")
    if isinstance(data.get("spans"), list):
        for index, node in enumerate(data["spans"]):
            _span_problems(node, f"spans[{index}]", problems,
                           schema if isinstance(schema, int) else
                           SCHEMA_VERSION)
    return problems


def migrate_report(data: dict) -> dict:
    """A (copied) v2-shaped report dict from any readable schema.

    v1 reports predate timeline traces: their span nodes carry no
    ``start`` offset and there is no ``events`` list. Migration fills
    both with the only honest values available — every span starts at
    offset 0.0 (v1 recorded durations only) and the event timeline is
    empty — so v1 artifacts keep rendering, diffing, and exporting
    (as a degenerate trace) without special-casing downstream."""
    if data.get("schema") == SCHEMA_VERSION:
        return data

    def _with_start(node: dict) -> dict:
        node = dict(node)
        node.setdefault("start", 0.0)
        node["children"] = [_with_start(child)
                            for child in node.get("children", [])]
        return node

    migrated = dict(data)
    migrated["schema"] = SCHEMA_VERSION
    migrated["spans"] = [_with_start(node)
                         for node in data.get("spans", [])]
    migrated["events"] = list(data.get("events", []))
    return migrated


@dataclass
class RunReport:
    """One run's telemetry, ready to serialize.

    :ivar schema: report schema version (:data:`SCHEMA_VERSION`).
    :ivar meta: free-form run identity (driver, backend, seed count...)
        set by whoever opened the collection.
    :ivar wall_seconds: wall time of the whole collection window.
    :ivar counters: monotonic totals (``solver.nfev``,
        ``cache.hits``...), merged across workers where applicable.
    :ivar gauges: point-in-time observations; values are scalars or
        lists (e.g. ``stream.chunk_arrival_seconds`` is the monotone
        arrival-time list of a streamed sweep).
    :ivar workers: per-worker counter blocks keyed by worker name, as
        shipped back in pool result payloads.
    :ivar spans: root span nodes ``{"name", "seconds", "start",
        "children"}`` — ``start`` is the offset (seconds) from the
        collection-window open, so the tree doubles as a timeline.
    :ivar events: flat timestamped events, one per worker shard solve
        (``{"name", "lane", "start", "seconds", ...}``), sorted by
        ``start``; the worker lanes of the Chrome trace export.
    """

    schema: int = SCHEMA_VERSION
    meta: dict = field(default_factory=dict)
    wall_seconds: float = 0.0
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    workers: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    events: list = field(default_factory=list)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "meta": dict(self.meta),
            "wall_seconds": self.wall_seconds,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "workers": {name: dict(block)
                        for name, block in self.workers.items()},
            "spans": self.spans,
            "events": self.events,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        problems = validate_report(data)
        if problems:
            raise ValueError(
                "not a valid RunReport: " + "; ".join(problems))
        data = migrate_report(data)
        return cls(schema=data["schema"], meta=dict(data["meta"]),
                   wall_seconds=float(data["wall_seconds"]),
                   counters=dict(data["counters"]),
                   gauges=dict(data["gauges"]),
                   workers={name: dict(block)
                            for name, block in data["workers"].items()},
                   spans=list(data["spans"]),
                   events=list(data["events"]))

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent,
                          sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> pathlib.Path:
        """Write the report as JSON; returns the path written."""
        path = pathlib.Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path) -> "RunReport":
        """Read (and validate) a saved report."""
        return cls.from_json(pathlib.Path(path).read_text())

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    def counter(self, name: str, default: float = 0) -> float:
        """A counter's value, 0 when the run never emitted it."""
        return self.counters.get(name, default)

    def merged_worker_counters(self) -> dict:
        """The per-worker blocks folded into one totals dict."""
        totals: dict = {}
        for block in self.workers.values():
            for name, value in block.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RunReport wall={self.wall_seconds:.3f}s "
                f"counters={len(self.counters)} "
                f"spans={len(self.spans)} workers={len(self.workers)}>")
