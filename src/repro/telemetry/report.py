"""The :class:`RunReport` artifact: a JSON-serializable, schema-stable
account of one instrumented run.

A report is what :func:`repro.telemetry.collect_metrics` hands back
after the ``with`` block closes: the hierarchical span tree (wall time
per phase, nested), the typed counters and gauges the sim stack
emitted, and the per-worker counter blocks that rode back from pool
workers. The schema is versioned (:data:`SCHEMA_VERSION`) and validated
on load, so saved reports — CI artifacts, ``repro ensemble
--metrics-out`` files, benchmark sections — stay machine-readable
across PRs; :func:`validate_report` is the single source of truth for
what a well-formed report looks like.

Spans are stored as plain nested dicts (``{"name", "seconds",
"children"}``) rather than a dataclass tree: the JSON round trip is
then the identity, which keeps ``repro report`` diffing trivial.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

#: Bump whenever the report layout changes incompatibly (renamed
#: top-level keys, span-node shape). Counter/gauge *names* may grow
#: freely — consumers must treat absent names as zero.
SCHEMA_VERSION = 1

#: Top-level keys every report carries, with their expected types.
_REQUIRED = {
    "schema": int,
    "meta": dict,
    "wall_seconds": (int, float),
    "counters": dict,
    "gauges": dict,
    "workers": dict,
    "spans": list,
}


def _span_problems(node, path: str, problems: list[str]) -> None:
    if not isinstance(node, dict):
        problems.append(f"{path}: span node must be a dict, got "
                        f"{type(node).__name__}")
        return
    if not isinstance(node.get("name"), str):
        problems.append(f"{path}: span 'name' must be a string")
    if not isinstance(node.get("seconds"), (int, float)):
        problems.append(f"{path}: span 'seconds' must be a number")
    children = node.get("children", [])
    if not isinstance(children, list):
        problems.append(f"{path}: span 'children' must be a list")
        return
    for index, child in enumerate(children):
        _span_problems(child, f"{path}.children[{index}]", problems)


def validate_report(data) -> list[str]:
    """Every way ``data`` fails to be a well-formed report dict (empty
    list = valid). Checked on :meth:`RunReport.from_dict`, by ``repro
    report --validate``, and by the CI bench smoke on the uploaded
    artifact."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"report must be a dict, got {type(data).__name__}"]
    for key, kind in _REQUIRED.items():
        if key not in data:
            problems.append(f"missing required key {key!r}")
        elif not isinstance(data[key], kind):
            problems.append(
                f"key {key!r} must be {getattr(kind, '__name__', kind)}"
                f", got {type(data[key]).__name__}")
    if isinstance(data.get("schema"), int) and \
            data["schema"] != SCHEMA_VERSION:
        problems.append(
            f"unsupported schema version {data['schema']} "
            f"(this build reads {SCHEMA_VERSION})")
    if isinstance(data.get("counters"), dict):
        for name, value in data["counters"].items():
            if not isinstance(value, (int, float)):
                problems.append(
                    f"counter {name!r} must be numeric, got "
                    f"{type(value).__name__}")
    if isinstance(data.get("workers"), dict):
        for worker, block in data["workers"].items():
            if not isinstance(block, dict):
                problems.append(
                    f"worker {worker!r} block must be a dict")
    if isinstance(data.get("spans"), list):
        for index, node in enumerate(data["spans"]):
            _span_problems(node, f"spans[{index}]", problems)
    return problems


@dataclass
class RunReport:
    """One run's telemetry, ready to serialize.

    :ivar schema: report schema version (:data:`SCHEMA_VERSION`).
    :ivar meta: free-form run identity (driver, backend, seed count...)
        set by whoever opened the collection.
    :ivar wall_seconds: wall time of the whole collection window.
    :ivar counters: monotonic totals (``solver.nfev``,
        ``cache.hits``...), merged across workers where applicable.
    :ivar gauges: point-in-time observations; values are scalars or
        lists (e.g. ``stream.chunk_arrival_seconds`` is the monotone
        arrival-time list of a streamed sweep).
    :ivar workers: per-worker counter blocks keyed by worker name, as
        shipped back in pool result payloads.
    :ivar spans: root span nodes ``{"name", "seconds", "children"}``.
    """

    schema: int = SCHEMA_VERSION
    meta: dict = field(default_factory=dict)
    wall_seconds: float = 0.0
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    workers: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "meta": dict(self.meta),
            "wall_seconds": self.wall_seconds,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "workers": {name: dict(block)
                        for name, block in self.workers.items()},
            "spans": self.spans,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        problems = validate_report(data)
        if problems:
            raise ValueError(
                "not a valid RunReport: " + "; ".join(problems))
        return cls(schema=data["schema"], meta=dict(data["meta"]),
                   wall_seconds=float(data["wall_seconds"]),
                   counters=dict(data["counters"]),
                   gauges=dict(data["gauges"]),
                   workers={name: dict(block)
                            for name, block in data["workers"].items()},
                   spans=list(data["spans"]))

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent,
                          sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> pathlib.Path:
        """Write the report as JSON; returns the path written."""
        path = pathlib.Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path) -> "RunReport":
        """Read (and validate) a saved report."""
        return cls.from_json(pathlib.Path(path).read_text())

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    def counter(self, name: str, default: float = 0) -> float:
        """A counter's value, 0 when the run never emitted it."""
        return self.counters.get(name, default)

    def merged_worker_counters(self) -> dict:
        """The per-worker blocks folded into one totals dict."""
        totals: dict = {}
        for block in self.workers.values():
            for name, value in block.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RunReport wall={self.wall_seconds:.3f}s "
                f"counters={len(self.counters)} "
                f"spans={len(self.spans)} workers={len(self.workers)}>")
