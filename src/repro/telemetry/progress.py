"""Live progress for streamed ensemble runs.

The streaming executor (:func:`repro.sim.plan.stream_plan`) yields one
chunk per finished group; a :class:`ProgressSink` passed alongside gets
a callback at the same cadence, which is all a live dashboard needs —
the sweep's totals are known when the plan compiles, so done/total,
instances/s, and an ETA fall out of the chunk stream itself, while the
cache hit-rate is read from the open telemetry window (if any) and the
pool-busy count from the worker-pool registry.

Two concrete sinks back ``repro ensemble --stream --progress``:

* :class:`TtyProgress` — a single line redrawn in place (``\\r``), for
  interactive terminals::

      [stream] groups 5/12  inst 320/768  412.3/s  cache 91%  busy 4  eta 0:01

* :class:`LogProgress` — the same line printed whole every few
  seconds, for logs/CI where carriage returns would smear.

:func:`auto_progress` picks between them the obvious way (dashboard
when stdout is a TTY, periodic log otherwise). Progress output goes to
**stderr** so it never contaminates piped stdout (``repro ensemble``
prints its result summary there).

The hook deliberately receives only counts — no trajectory data — so a
sink can never perturb results; with no sink attached the executor
pays nothing beyond an ``is None`` test per group.
"""

from __future__ import annotations

import sys
import time

from .collect import current


class ProgressSink:
    """Callback interface the streaming executor drives. Every method
    is a no-op here so subclasses override only what they need; the
    executor calls ``begin`` once (totals), ``advance`` after each
    finished group, and ``finish`` exactly once when the stream ends
    (also on the error path, so dashboards always clean up)."""

    def begin(self, *, groups: int, instances: int) -> None:
        """The sweep's totals, known at plan-compile time."""

    def advance(self, *, groups_done: int, instances_done: int,
                backend: str = "") -> None:
        """One more group finished (``instances_done`` cumulative)."""

    def finish(self) -> None:
        """The stream is exhausted (or aborted)."""


def _fmt_eta(seconds: float) -> str:
    if seconds != seconds or seconds == float("inf"):  # NaN/inf
        return "?:??"
    seconds = max(int(seconds + 0.5), 0)
    return f"{seconds // 60}:{seconds % 60:02d}"


class _StatsSink(ProgressSink):
    """Shared machinery: turns the callback stream into one formatted
    status line. ``clock`` and ``stream`` are injectable for tests."""

    def __init__(self, stream=None, clock=time.monotonic):
        self._stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._t0 = 0.0
        self._groups = 0
        self._instances = 0

    def begin(self, *, groups: int, instances: int) -> None:
        self._groups = int(groups)
        self._instances = int(instances)
        self._t0 = self._clock()

    # -- line assembly -------------------------------------------------

    def _cache_hit_rate(self) -> float | None:
        collector = current()
        if collector is None:
            return None
        counters = collector.counters
        hits = (counters.get("cache.hits", 0)
                + counters.get("pool.payload_cache_hits", 0))
        misses = (counters.get("cache.misses", 0)
                  + counters.get("pool.payload_cache_misses", 0))
        total = hits + misses
        return (hits / total) if total else None

    def _pool_busy(self) -> int:
        # Lazy import: telemetry must stay importable without the sim
        # stack (and sim.pool itself imports telemetry).
        try:
            from repro.sim import pool
            return pool.active_tasks()
        except Exception:  # pragma: no cover - defensive
            return 0

    def _line(self, groups_done: int, instances_done: int,
              backend: str) -> str:
        elapsed = max(self._clock() - self._t0, 1e-9)
        rate = instances_done / elapsed
        remaining = max(self._instances - instances_done, 0)
        eta = (remaining / rate) if rate > 0 else float("inf")
        parts = [
            f"[stream] groups {groups_done}/{self._groups}",
            f"inst {instances_done}/{self._instances}",
            f"{rate:.1f}/s",
        ]
        hit_rate = self._cache_hit_rate()
        if hit_rate is not None:
            parts.append(f"cache {hit_rate * 100:.0f}%")
        busy = self._pool_busy()
        if busy:
            parts.append(f"busy {busy}")
        parts.append(f"eta {_fmt_eta(eta)}")
        if backend:
            parts.append(f"({backend})")
        return "  ".join(parts)


class TtyProgress(_StatsSink):
    """Single-line dashboard redrawn in place — interactive TTYs."""

    def __init__(self, stream=None, clock=time.monotonic,
                 min_interval: float = 0.1):
        super().__init__(stream, clock)
        self._min_interval = min_interval
        self._last_draw = float("-inf")
        self._width = 0
        self._drew = False

    def advance(self, *, groups_done: int, instances_done: int,
                backend: str = "") -> None:
        now = self._clock()
        final = groups_done >= self._groups
        if not final and now - self._last_draw < self._min_interval:
            return
        self._last_draw = now
        line = self._line(groups_done, instances_done, backend)
        pad = max(self._width - len(line), 0)
        self._stream.write("\r" + line + " " * pad)
        self._stream.flush()
        self._width = max(self._width, len(line))
        self._drew = True

    def finish(self) -> None:
        if self._drew:
            self._stream.write("\n")
            self._stream.flush()


class LogProgress(_StatsSink):
    """Whole-line periodic progress — logs, CI, piped output."""

    def __init__(self, stream=None, clock=time.monotonic,
                 interval: float = 2.0):
        super().__init__(stream, clock)
        self._interval = interval
        self._last_emit = float("-inf")

    def advance(self, *, groups_done: int, instances_done: int,
                backend: str = "") -> None:
        now = self._clock()
        final = groups_done >= self._groups
        if not final and now - self._last_emit < self._interval:
            return
        self._last_emit = now
        print(self._line(groups_done, instances_done, backend),
              file=self._stream, flush=True)

    def finish(self) -> None:
        pass


def auto_progress(stream=None) -> ProgressSink:
    """The right sink for the session: the in-place dashboard when
    stdout is an interactive terminal, the periodic log otherwise
    (output itself goes to ``stream``, default stderr)."""
    try:
        interactive = sys.stdout.isatty()
    except Exception:  # pragma: no cover - closed stdout
        interactive = False
    if interactive:
        return TtyProgress(stream)
    return LogProgress(stream)
