"""Append-only benchmark history and the noise-aware regression check.

Every instrumented benchmark run can leave one line behind: a compact
JSON summary of its :class:`~repro.telemetry.report.RunReport` keyed by
``(workload, git sha, timestamp)``, appended to a shared JSONL file
(:data:`DEFAULT_PATH`). The file is the repo's performance memory —
``repro bench run`` appends to it, CI uploads it as an artifact and
re-seeds the next run from the previous artifact, and ``repro bench
check`` reads it back to answer the only question that matters before
merging a perf-sensitive change: *is this commit slower than the recent
past, beyond noise?*

The store is deliberately primitive. One ``os.write`` per entry on an
``O_APPEND`` descriptor means concurrent appenders (parallel CI jobs,
a benchmark matrix) interleave whole lines, never partial ones — POSIX
guarantees the atomicity for writes of this size — and a corrupt line
(a crashed writer, a truncated artifact) costs exactly that line:
:func:`load_history` skips what it cannot parse and keeps going.

The regression check is noise-aware rather than threshold-only: the
baseline is the **median** wall time of the workload's recent history
and the allowance adds a multiple of the **median absolute deviation**
(MAD), so a workload whose history is noisy gets the slack its own
variance has earned while a historically stable one is held tight:

    allowed = baseline * (1 + rel_threshold) + noise_factor * MAD

With fewer than ``min_history`` points the verdict is
``insufficient-history`` — the CI gate treats that as a warning, not a
failure, so a fresh clone (or a new workload name) can never fail the
build on an empty file.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import time
from statistics import median

from .report import RunReport

#: Where ``repro bench`` and the benchmark runners keep the shared
#: history unless told otherwise (repo-relative; CI uploads it).
DEFAULT_PATH = "benchmarks/history.jsonl"

#: Bumped if the entry layout ever changes incompatibly. Readers skip
#: entries with a newer schema instead of failing the whole file.
ENTRY_SCHEMA = 1

#: Counters worth carrying into the compact summary — enough to explain
#: *why* a run got slower (more RHS evaluations? cache gone cold?)
#: without storing whole reports.
_SUMMARY_COUNTERS = (
    "solver.nfev",
    "solver.batch_instances",
    "cache.hits",
    "cache.misses",
    "pool.shards",
    "pool.worker_busy_seconds",
    "pool.queue_wait_seconds",
)


def git_sha(cwd=None) -> str:
    """The current commit's short sha, or ``"unknown"`` outside a git
    checkout (entries stay append-able from exported tarballs)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10)
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except Exception:
        return "unknown"


def summarize(report: RunReport, workload: str, *,
              sha: str | None = None,
              timestamp: float | None = None) -> dict:
    """The compact history entry for one run of ``workload``."""
    counters = {name: report.counters[name]
                for name in _SUMMARY_COUNTERS
                if name in report.counters}
    gauges = {name: value for name, value in report.gauges.items()
              if name.startswith("mem.")
              and isinstance(value, (int, float))}
    return {
        "entry_schema": ENTRY_SCHEMA,
        "workload": str(workload),
        "sha": sha if sha is not None else git_sha(),
        "timestamp": float(time.time() if timestamp is None
                           else timestamp),
        "wall_seconds": float(report.wall_seconds),
        "counters": counters,
        "gauges": gauges,
        "meta": {key: str(value)
                 for key, value in sorted(report.meta.items())},
    }


def append_entry(path, entry: dict) -> pathlib.Path:
    """Append one entry as one JSONL line, atomically with respect to
    concurrent appenders (single ``O_APPEND`` write)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(entry, sort_keys=True) + "\n"
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode())
    finally:
        os.close(fd)
    return path


def load_history(path, workload: str | None = None) -> list[dict]:
    """Every readable entry in the file (optionally one workload's),
    oldest first. Unparsable or future-schema lines are skipped — a
    corrupt line loses itself, not the file."""
    path = pathlib.Path(path)
    if not path.exists():
        return []
    entries: list[dict] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(entry, dict):
            continue
        if entry.get("entry_schema", 1) > ENTRY_SCHEMA:
            continue
        if not isinstance(entry.get("wall_seconds"), (int, float)):
            continue
        if workload is not None and entry.get("workload") != workload:
            continue
        entries.append(entry)
    entries.sort(key=lambda entry: entry.get("timestamp", 0.0))
    return entries


def workloads(path) -> list[str]:
    """The distinct workload names present in the history file."""
    return sorted({str(entry.get("workload", "?"))
                   for entry in load_history(path)})


def latest(path, workload: str) -> dict | None:
    """The newest entry for ``workload``, or ``None``."""
    entries = load_history(path, workload)
    return entries[-1] if entries else None


def entry_report(entry: dict) -> RunReport:
    """A minimal :class:`RunReport` rebuilt from a history entry, so
    history comparisons ride the same comparator
    (:func:`repro.telemetry.render.diff_data`) as ``repro report``."""
    return RunReport(
        meta={"workload": entry.get("workload", "?"),
              "sha": entry.get("sha", "unknown"),
              **entry.get("meta", {})},
        wall_seconds=float(entry.get("wall_seconds", 0.0)),
        counters=dict(entry.get("counters", {})),
        gauges=dict(entry.get("gauges", {})),
    )


def check(path, workload: str, measured_wall: float | None = None, *,
          rel_threshold: float = 0.25, noise_factor: float = 3.0,
          min_history: int = 3, window: int = 20,
          exclude_latest: bool = False) -> dict:
    """The regression verdict for ``workload``.

    ``measured_wall`` is the candidate wall time; when ``None`` the
    newest stored entry is the candidate and the baseline is computed
    from the entries before it (the post-hoc ``repro bench check``
    flow: run appends, check judges the append against its past).
    ``exclude_latest`` drops the newest entry from the baseline when
    an explicit ``measured_wall`` *derived from it* is passed (the
    ``--scale`` testing path) — a candidate must never sit inside its
    own baseline.

    Returns a verdict dict with ``status`` one of:

    * ``"ok"`` — measured <= allowed,
    * ``"regression"`` — measured > allowed,
    * ``"insufficient-history"`` — fewer than ``min_history`` baseline
      points; callers gate softly on this (warn, don't fail).

    plus ``measured``, ``baseline`` (median of up to ``window`` recent
    walls), ``mad``, ``allowed``, ``points``, and ``ratio``
    (measured / baseline, ``None`` without a baseline).
    """
    entries = load_history(path, workload)
    if measured_wall is None and entries:
        measured_wall = float(entries[-1]["wall_seconds"])
        entries = entries[:-1]
    elif exclude_latest and entries:
        entries = entries[:-1]
    walls = [float(entry["wall_seconds"])
             for entry in entries[-window:]]
    verdict = {
        "workload": workload,
        "measured": measured_wall,
        "points": len(walls),
        "min_history": min_history,
        "rel_threshold": rel_threshold,
        "noise_factor": noise_factor,
        "baseline": None,
        "mad": None,
        "allowed": None,
        "ratio": None,
    }
    if measured_wall is None or len(walls) < min_history:
        verdict["status"] = "insufficient-history"
        return verdict
    base = median(walls)
    mad = median(abs(wall - base) for wall in walls)
    allowed = base * (1.0 + rel_threshold) + noise_factor * mad
    verdict.update(
        baseline=base, mad=mad, allowed=allowed,
        ratio=(measured_wall / base) if base else None,
        status="ok" if measured_wall <= allowed else "regression")
    return verdict
