"""Human-readable views of saved :class:`RunReport` files.

Backs the ``repro report`` subcommand and ``repro ensemble --trace``:
:func:`render_report` draws the span tree (box-drawing, per-span wall
time, percent of total) followed by the counter table, gauges, and
per-worker blocks; :func:`diff_reports` lines two reports up
counter-by-counter with absolute and relative deltas — the intended
workflow being cold-vs-warm cache, shard-vs-pool, before-vs-after a
perf change.
"""

from __future__ import annotations

from .report import RunReport


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _fmt_value(value) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.6g}"
    if isinstance(value, list):
        if len(value) > 6:
            head = ", ".join(_fmt_value(v) for v in value[:6])
            return f"[{head}, ... {len(value)} total]"
        return "[" + ", ".join(_fmt_value(v) for v in value) + "]"
    return str(value)


def render_span_tree(spans: list, total_seconds: float) -> list[str]:
    """The span forest as indented box-drawing lines."""
    lines: list[str] = []

    def walk(node: dict, prefix: str, child_prefix: str) -> None:
        seconds = float(node.get("seconds", 0.0))
        share = (f" ({seconds / total_seconds * 100:4.1f}%)"
                 if total_seconds > 0 else "")
        lines.append(f"{prefix}{node.get('name', '?')}  "
                     f"{_fmt_seconds(seconds)}{share}")
        children = node.get("children", [])
        for index, child in enumerate(children):
            last = index == len(children) - 1
            walk(child,
                 child_prefix + ("└─ " if last else "├─ "),
                 child_prefix + ("   " if last else "│  "))

    for node in spans:
        walk(node, "", "")
    return lines


def render_report(report: RunReport) -> str:
    """The full pretty-printed report (what ``repro report f.json``
    prints for a single file)."""
    lines: list[str] = []
    meta = " ".join(f"{k}={v}" for k, v in sorted(report.meta.items()))
    lines.append(f"RunReport (schema {report.schema})"
                 + (f"  {meta}" if meta else ""))
    lines.append(f"wall time: {_fmt_seconds(report.wall_seconds)}")
    if report.spans:
        lines.append("")
        lines.append("spans:")
        lines.extend("  " + line for line in
                     render_span_tree(report.spans, report.wall_seconds))
    if report.counters:
        lines.append("")
        lines.append("counters:")
        width = max(len(name) for name in report.counters)
        for name in sorted(report.counters):
            lines.append(f"  {name.ljust(width)}  "
                         f"{_fmt_value(report.counters[name])}")
    if report.gauges:
        lines.append("")
        lines.append("gauges:")
        width = max(len(name) for name in report.gauges)
        for name in sorted(report.gauges):
            lines.append(f"  {name.ljust(width)}  "
                         f"{_fmt_value(report.gauges[name])}")
    if report.workers:
        lines.append("")
        lines.append("workers:")
        for worker in sorted(report.workers):
            block = report.workers[worker]
            parts = " ".join(f"{key}={_fmt_value(block[key])}"
                             for key in sorted(block))
            lines.append(f"  {worker}: {parts}")
    return "\n".join(lines)


def diff_reports(a: RunReport, b: RunReport,
                 label_a: str = "a", label_b: str = "b") -> str:
    """Counter-by-counter comparison of two reports."""
    lines: list[str] = []
    lines.append(f"diff: {label_a} -> {label_b}")
    delta_wall = b.wall_seconds - a.wall_seconds
    pct = (f" ({delta_wall / a.wall_seconds * 100:+.1f}%)"
           if a.wall_seconds > 0 else "")
    lines.append(f"wall time: {_fmt_seconds(a.wall_seconds)} -> "
                 f"{_fmt_seconds(b.wall_seconds)}{pct}")
    names = sorted(set(a.counters) | set(b.counters))
    if names:
        lines.append("")
        lines.append("counters:")
        width = max(len(name) for name in names)
        for name in names:
            va = a.counters.get(name, 0)
            vb = b.counters.get(name, 0)
            delta = vb - va
            mark = "" if delta == 0 else f"  ({delta:+g})"
            lines.append(f"  {name.ljust(width)}  "
                         f"{_fmt_value(va)} -> {_fmt_value(vb)}{mark}")
    only_gauges = sorted(set(a.gauges) | set(b.gauges))
    scalar = [name for name in only_gauges
              if not isinstance(a.gauges.get(name, b.gauges.get(name)),
                                list)]
    if scalar:
        lines.append("")
        lines.append("gauges:")
        width = max(len(name) for name in scalar)
        for name in scalar:
            va = a.gauges.get(name, "-")
            vb = b.gauges.get(name, "-")
            lines.append(f"  {name.ljust(width)}  "
                         f"{_fmt_value(va)} -> {_fmt_value(vb)}")
    return "\n".join(lines)
