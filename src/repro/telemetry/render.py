"""Human-readable views of saved :class:`RunReport` files.

Backs the ``repro report`` subcommand and ``repro ensemble --trace``:
:func:`render_report` draws the span tree (box-drawing, per-span wall
time, percent of total) followed by the counter table, gauges, memory
peaks, and per-worker blocks; :func:`diff_reports` lines two reports up
counter-by-counter with absolute and relative deltas — the intended
workflow being cold-vs-warm cache, shard-vs-pool, before-vs-after a
perf change.

:func:`diff_data` is the machine-readable form of the same comparison
— one deltas dict consumed by ``repro report --json``, the CI soft
gate, and ``repro bench check``, so every consumer agrees on what "X%
slower" means.
"""

from __future__ import annotations

from .report import RunReport


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _fmt_value(value) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.6g}"
    if isinstance(value, list):
        if len(value) > 6:
            head = ", ".join(_fmt_value(v) for v in value[:6])
            return f"[{head}, ... {len(value)} total]"
        return "[" + ", ".join(_fmt_value(v) for v in value) + "]"
    return str(value)


def _fmt_bytes(nbytes: float) -> str:
    nbytes = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(nbytes) < 1024.0 or unit == "GiB":
            if unit == "B":
                return f"{int(nbytes)}{unit}"
            return f"{nbytes:.1f}{unit}"
        nbytes /= 1024.0
    return f"{nbytes:.1f}GiB"  # pragma: no cover - unreachable


def render_span_tree(spans: list, total_seconds: float) -> list[str]:
    """The span forest as indented box-drawing lines."""
    lines: list[str] = []

    def walk(node: dict, prefix: str, child_prefix: str) -> None:
        seconds = float(node.get("seconds", 0.0))
        share = (f" ({seconds / total_seconds * 100:4.1f}%)"
                 if total_seconds > 0 else "")
        lines.append(f"{prefix}{node.get('name', '?')}  "
                     f"{_fmt_seconds(seconds)}{share}")
        children = node.get("children", [])
        for index, child in enumerate(children):
            last = index == len(children) - 1
            walk(child,
                 child_prefix + ("└─ " if last else "├─ "),
                 child_prefix + ("   " if last else "│  "))

    for node in spans:
        walk(node, "", "")
    return lines


def _scheduling_lines(report: RunReport) -> list[str]:
    """The ``scheduling:`` section body: cost-model accuracy, steal
    and imbalance figures from the ``sched.*`` counters, plus the
    per-worker busy-time spread — so shard imbalance is visible in a
    rendered report without opening a trace."""
    lines: list[str] = []
    counters = report.counters
    actual = counters.get("sched.actual_shard_seconds")
    predicted = counters.get("sched.predicted_shard_seconds")
    if actual:
        line = f"shard cost: actual {_fmt_seconds(float(actual))}"
        if predicted:
            error = ((float(predicted) - float(actual))
                     / float(actual) * 100.0)
            line += (f", predicted {_fmt_seconds(float(predicted))} "
                     f"({error:+.1f}% model error)")
        lines.append(line)
    ratios = report.gauges.get("sched.imbalance_ratio")
    if isinstance(ratios, list) and ratios:
        lines.append(
            f"imbalance (max/mean worker busy per group): worst "
            f"{max(ratios):.2f}x over {len(ratios)} group(s)")
    steals = counters.get("sched.steals")
    if steals:
        lines.append(f"steals (shards past a worker's fair share): "
                     f"{_fmt_value(steals)}")
    pinned_groups = counters.get("sched.adaptive_pinned")
    if pinned_groups:
        lines.append(f"adaptive groups pinned to even split: "
                     f"{_fmt_value(pinned_groups)}")
    pinned_workers = counters.get("sched.pinned_workers")
    if pinned_workers:
        lines.append(f"workers pinned to CPUs: "
                     f"{_fmt_value(pinned_workers)}")
    busies = [float(block["busy_seconds"])
              for block in report.workers.values()
              if isinstance(block.get("busy_seconds"), (int, float))]
    if len(busies) >= 2:
        mean = sum(busies) / len(busies)
        spread = (f" ({max(busies) / mean:.2f}x mean)"
                  if mean > 0 else "")
        lines.append(f"worker busy spread: "
                     f"{_fmt_seconds(min(busies))} .. "
                     f"{_fmt_seconds(max(busies))}{spread}")
    return lines


def render_report(report: RunReport) -> str:
    """The full pretty-printed report (what ``repro report f.json``
    prints for a single file)."""
    lines: list[str] = []
    meta = " ".join(f"{k}={v}" for k, v in sorted(report.meta.items()))
    lines.append(f"RunReport (schema {report.schema})"
                 + (f"  {meta}" if meta else ""))
    lines.append(f"wall time: {_fmt_seconds(report.wall_seconds)}")
    if report.spans:
        lines.append("")
        lines.append("spans:")
        lines.extend("  " + line for line in
                     render_span_tree(report.spans, report.wall_seconds))
    if report.counters:
        lines.append("")
        lines.append("counters:")
        width = max(len(name) for name in report.counters)
        for name in sorted(report.counters):
            lines.append(f"  {name.ljust(width)}  "
                         f"{_fmt_value(report.counters[name])}")
    memory = {name: value for name, value in report.gauges.items()
              if name.startswith("mem.")}
    gauges = {name: value for name, value in report.gauges.items()
              if name not in memory}
    if gauges:
        lines.append("")
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name.ljust(width)}  "
                         f"{_fmt_value(gauges[name])}")
    if memory:
        lines.append("")
        lines.append("memory:")
        width = max(len(name) for name in memory)
        for name in sorted(memory):
            value = memory[name]
            shown = (_fmt_bytes(value) if name.endswith("_bytes")
                     or "_bytes_" in name else _fmt_value(value))
            lines.append(f"  {name.ljust(width)}  {shown}")
    scheduling = _scheduling_lines(report)
    if scheduling:
        lines.append("")
        lines.append("scheduling:")
        lines.extend("  " + line for line in scheduling)
    if report.workers:
        lines.append("")
        lines.append("workers:")
        for worker in sorted(report.workers):
            block = report.workers[worker]
            parts = " ".join(f"{key}={_fmt_value(block[key])}"
                             for key in sorted(block))
            lines.append(f"  {worker}: {parts}")
    return "\n".join(lines)


def diff_data(a: RunReport, b: RunReport,
              label_a: str = "a", label_b: str = "b") -> dict:
    """Machine-readable comparison of two reports — the single
    comparator behind ``repro report <a> <b> --json``, the CI soft
    gate, and ``repro bench check``.

    Every compared quantity gets an entry ``{"a", "b", "delta",
    "ratio"}`` where ``ratio`` is ``b / a`` (``None`` when ``a`` is 0,
    so consumers cannot divide by zero by accident). Scalar gauges are
    compared by value only; list-valued gauges are skipped.
    """
    def entry(va: float, vb: float) -> dict:
        return {"a": va, "b": vb, "delta": vb - va,
                "ratio": (vb / va) if va else None}

    counters = {name: entry(a.counters.get(name, 0),
                            b.counters.get(name, 0))
                for name in sorted(set(a.counters) | set(b.counters))}
    gauges = {}
    for name in sorted(set(a.gauges) | set(b.gauges)):
        va = a.gauges.get(name)
        vb = b.gauges.get(name)
        if isinstance(va, list) or isinstance(vb, list):
            continue
        gauges[name] = {"a": va, "b": vb}
    return {
        "labels": {"a": label_a, "b": label_b},
        "wall_seconds": entry(a.wall_seconds, b.wall_seconds),
        "counters": counters,
        "gauges": gauges,
    }


def diff_reports(a: RunReport, b: RunReport,
                 label_a: str = "a", label_b: str = "b") -> str:
    """Counter-by-counter comparison of two reports (the text view of
    :func:`diff_data`)."""
    data = diff_data(a, b, label_a, label_b)
    lines: list[str] = []
    lines.append(f"diff: {label_a} -> {label_b}")
    wall = data["wall_seconds"]
    pct = (f" ({wall['delta'] / wall['a'] * 100:+.1f}%)"
           if wall["a"] > 0 else "")
    lines.append(f"wall time: {_fmt_seconds(wall['a'])} -> "
                 f"{_fmt_seconds(wall['b'])}{pct}")
    if data["counters"]:
        lines.append("")
        lines.append("counters:")
        width = max(len(name) for name in data["counters"])
        for name, row in data["counters"].items():
            delta = row["delta"]
            mark = "" if delta == 0 else f"  ({delta:+g})"
            lines.append(
                f"  {name.ljust(width)}  "
                f"{_fmt_value(row['a'])} -> {_fmt_value(row['b'])}"
                f"{mark}")
    if data["gauges"]:
        lines.append("")
        lines.append("gauges:")
        width = max(len(name) for name in data["gauges"])
        for name, row in data["gauges"].items():
            va = "-" if row["a"] is None else row["a"]
            vb = "-" if row["b"] is None else row["b"]
            lines.append(f"  {name.ljust(width)}  "
                         f"{_fmt_value(va)} -> {_fmt_value(vb)}")
    return "\n".join(lines)
