"""Chrome Trace Event Format export of a :class:`RunReport` timeline.

A schema-v2 report carries everything a wall-clock timeline needs: the
parent's hierarchical spans (each with a ``start`` offset from the
collection-window open) and the flat per-worker ``events`` list that
rode home in pool result payloads. :func:`to_chrome_trace` lays them
out in the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
— the JSON that ``chrome://tracing`` and `Perfetto
<https://ui.perfetto.dev>`_ open directly:

* **pid 0 / tid 0** — the parent process: the span tree as nested
  ``B``/``E`` (begin/end) duration events, so ``plan.compile``,
  ``group[k].solve:<backend>``, ``pool.wait`` and friends appear as one
  stacked lane;
* **pid 1 / tid k** — one lane per pool worker (``ark-pool-0``,
  ``ark-pool-1``, ...), each shard solve a ``B``/``E`` pair stamped
  with the worker-side monotonic clock rebased onto the window — this
  is where shard imbalance and queue gaps become visible.

Lane names are attached through ``process_name``/``thread_name``
metadata events, extra event payload (rows per shard, shard kind)
rides in ``args``. Timestamps are microseconds, as the format requires.

``repro ensemble --trace-out t.json`` writes a trace next to the run;
``repro report saved.json --export-trace t.json`` converts a stored
report (v1 reports export too — their spans all start at offset 0, a
degenerate but valid trace).
"""

from __future__ import annotations

import json
import pathlib

from .report import RunReport, migrate_report

#: ``pid`` of the parent-process span lane in the exported trace.
PARENT_PID = 0
#: ``pid`` grouping the per-worker lanes.
WORKER_PID = 1


def _duration_pair(name: str, t0_us: float, t1_us: float, pid: int,
                   tid: int, category: str, args: dict | None) -> list:
    begin = {"name": name, "cat": category, "ph": "B",
             "ts": round(t0_us, 3), "pid": pid, "tid": tid}
    if args:
        begin["args"] = args
    end = {"name": name, "cat": category, "ph": "E",
           "ts": round(max(t0_us, t1_us), 3), "pid": pid, "tid": tid}
    return [begin, end]


def _span_events(spans: list, pid: int, tid: int) -> list[dict]:
    """The span forest as nested B/E pairs, emission order = valid
    nesting order. Children are clamped into their parent's interval:
    the two endpoints are measured by separate clock reads, so a
    child's computed end can overshoot its parent's by float noise,
    which some viewers render as corrupt stacks."""
    events: list[dict] = []

    def walk(node: dict, lo_us: float, hi_us: float) -> None:
        t0 = float(node.get("start", 0.0)) * 1e6
        t1 = t0 + float(node.get("seconds", 0.0)) * 1e6
        t0 = min(max(t0, lo_us), hi_us)
        t1 = min(max(t1, t0), hi_us)
        begin, end = _duration_pair(
            str(node.get("name", "?")), t0, t1, pid, tid, "span", None)
        events.append(begin)
        for child in node.get("children", []):
            walk(child, t0, t1)
        events.append(end)

    for node in spans:
        walk(node, 0.0, float("inf"))
    return events


def _metadata(pid: int, tid: int | None, key: str, label: str) -> dict:
    event = {"name": key, "ph": "M", "ts": 0, "pid": pid,
             "args": {"name": label}}
    event["tid"] = 0 if tid is None else tid
    return event


def trace_events(report: RunReport) -> list[dict]:
    """The report's timeline as a flat Trace-Event list, sorted by
    ``ts`` (metadata first). Every duration is a matched ``B``/``E``
    pair on its lane."""
    data = migrate_report(report.to_dict())
    events: list[dict] = [
        _metadata(PARENT_PID, None, "process_name", "main"),
        _metadata(PARENT_PID, 0, "thread_name", "spans"),
    ]
    lanes: dict[str, int] = {}
    durations = _span_events(data["spans"], PARENT_PID, 0)
    for event in data["events"]:
        lane = str(event.get("lane", "?"))
        if lane not in lanes:
            lanes[lane] = len(lanes)
            events.append(_metadata(WORKER_PID, lanes[lane],
                                    "thread_name", lane))
        t0 = float(event["start"]) * 1e6
        t1 = t0 + float(event["seconds"]) * 1e6
        args = {key: value for key, value in event.items()
                if key not in ("name", "lane", "start", "seconds")}
        durations.extend(_duration_pair(
            str(event["name"]), t0, t1, WORKER_PID, lanes[lane],
            "worker", args or None))
    if lanes:
        events.insert(2, _metadata(WORKER_PID, None, "process_name",
                                   "pool workers"))
    # Stable sort: each lane's emission order is already a valid
    # nesting order with non-decreasing ts, so sorting the merged list
    # by ts alone keeps every lane's B/E pairing intact while making
    # the global sequence monotone (what trace viewers expect).
    durations.sort(key=lambda event: event["ts"])
    return events + durations


def to_chrome_trace(report: RunReport) -> dict:
    """The full Chrome-Trace JSON object for ``report``."""
    return {
        "traceEvents": trace_events(report),
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": report.schema,
            "wall_seconds": report.wall_seconds,
            **{f"meta.{key}": str(value)
               for key, value in sorted(report.meta.items())},
        },
    }


def export_trace(report: RunReport, path) -> pathlib.Path:
    """Write ``report`` as Chrome-Trace JSON; returns the path. Open
    the file in Perfetto (ui.perfetto.dev) or ``chrome://tracing``."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(to_chrome_trace(report)) + "\n")
    return path


def worker_lanes(report: RunReport) -> list[str]:
    """The distinct worker lanes the trace will contain, in first-
    appearance order (CI asserts pool runs produce >= 2)."""
    seen: list[str] = []
    for event in report.events:
        lane = str(event.get("lane", "?"))
        if lane not in seen:
            seen.append(lane)
    return seen
