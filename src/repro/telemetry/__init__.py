"""``repro.telemetry`` — zero-overhead-when-disabled instrumentation
for the execution-plan engine.

Usage, from the outside in::

    from repro.telemetry import collect_metrics

    with collect_metrics(meta={"workload": "tline"}) as report:
        result = run_ensemble(system, seeds=range(64), ...)
    report.save("report.json")          # schema-stable JSON
    print(report.counter("solver.nfev"))

Library code emits unconditionally via the module-level helpers
(:func:`add`, :func:`gauge`, :func:`append`, :func:`span`,
:func:`merge_worker`); each is a no-op behind a single ContextVar check
when no collection window is open, so the hooks stay compiled into hot
paths at negligible disabled cost. Telemetry never touches the numbers
being computed — bit-identity with collection on vs off is test- and
bench-enforced.

``repro ensemble --metrics-out report.json --trace`` and the ``repro
report`` subcommand are the CLI surface over the same objects.
"""

from .collect import (Collector, add, append, collect_metrics, current,
                      enabled, gauge, merge_worker, span)
from .render import diff_reports, render_report, render_span_tree
from .report import SCHEMA_VERSION, RunReport, validate_report

__all__ = [
    "SCHEMA_VERSION",
    "Collector",
    "RunReport",
    "add",
    "append",
    "collect_metrics",
    "current",
    "diff_reports",
    "enabled",
    "gauge",
    "merge_worker",
    "render_report",
    "render_span_tree",
    "span",
    "validate_report",
]
