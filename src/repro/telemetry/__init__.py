"""``repro.telemetry`` — zero-overhead-when-disabled instrumentation
for the execution-plan engine.

Usage, from the outside in::

    from repro.telemetry import collect_metrics

    with collect_metrics(meta={"workload": "tline"}) as report:
        result = run_ensemble(system, seeds=range(64), ...)
    report.save("report.json")          # schema-stable JSON
    print(report.counter("solver.nfev"))

Library code emits unconditionally via the module-level helpers
(:func:`add`, :func:`gauge`, :func:`append`, :func:`span`,
:func:`merge_worker`); each is a no-op behind a single ContextVar check
when no collection window is open, so the hooks stay compiled into hot
paths at negligible disabled cost. Telemetry never touches the numbers
being computed — bit-identity with collection on vs off is test- and
bench-enforced.

``repro ensemble --metrics-out report.json --trace`` and the ``repro
report`` subcommand are the CLI surface over the same objects.
"""

from .collect import (Collector, add, append, collect_metrics, current,
                      enabled, gauge, gauge_max, merge_worker, span)
from .progress import (LogProgress, ProgressSink, TtyProgress,
                       auto_progress)
from .render import (diff_data, diff_reports, render_report,
                     render_span_tree)
from .report import (READABLE_SCHEMAS, SCHEMA_VERSION, RunReport,
                     migrate_report, validate_report)
from .trace import export_trace, to_chrome_trace, trace_events

__all__ = [
    "READABLE_SCHEMAS",
    "SCHEMA_VERSION",
    "Collector",
    "LogProgress",
    "ProgressSink",
    "RunReport",
    "TtyProgress",
    "add",
    "append",
    "auto_progress",
    "collect_metrics",
    "current",
    "diff_data",
    "diff_reports",
    "enabled",
    "export_trace",
    "gauge",
    "gauge_max",
    "merge_worker",
    "migrate_report",
    "render_report",
    "render_span_tree",
    "span",
    "to_chrome_trace",
    "trace_events",
    "validate_report",
]
