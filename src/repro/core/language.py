"""Ark language definitions (§4.1) with single inheritance (§4.1.1).

A :class:`Language` collects node and edge types, production rules, local
validity rules, global validity checks (extern functions), and registered
expression functions. Languages form a single-inheritance chain; the
constraints of §4.1.1 are enforced at declaration time:

* derived node/edge types keep the parent's order, reduction, and fixedness,
  and may only narrow overridden attribute ranges;
* parent production and validation rules are never overridden or removed;
* every production or validation rule added by a derived language must
  mention at least one type declared by that language.

These rules guarantee that any graph written in a parent language is also a
valid program of every derived language, with identical dynamics — the
property the paper's "progressive rewriting" workflow relies on.
"""

from __future__ import annotations

from typing import Callable

from repro.core import expr as E
from repro.core.attributes import AttrDecl, InitDecl
from repro.core.datatypes import Datatype
from repro.core.production import (ProductionRule, RuleTable,
                                   parse_production)
from repro.core.types import EdgeType, NodeType, Reduction
from repro.core.validation import ConstraintRule, parse_constraint
from repro.errors import InheritanceError, LanguageError


def _normalize_attrs(attrs) -> dict[str, AttrDecl]:
    """Accept AttrDecl instances, (name, datatype[, options]) tuples, or
    dicts, and return a name-keyed declaration table."""
    table: dict[str, AttrDecl] = {}
    if attrs is None:
        return table
    if isinstance(attrs, dict):
        attrs = [AttrDecl(name, datatype) if isinstance(datatype, Datatype)
                 else datatype for name, datatype in attrs.items()]
    for item in attrs:
        if isinstance(item, AttrDecl):
            decl = item
        elif isinstance(item, tuple) and len(item) == 2:
            decl = AttrDecl(item[0], item[1])
        elif isinstance(item, tuple) and len(item) == 3:
            options = dict(item[2])
            decl = AttrDecl(item[0], item[1],
                            const=bool(options.get("const", False)),
                            default=options.get("default"))
        else:
            raise LanguageError(f"cannot interpret attribute spec {item!r}")
        if decl.name in table:
            raise LanguageError(f"duplicate attribute `{decl.name}`")
        table[decl.name] = decl
    return table


def _normalize_inits(inits, order: int) -> dict[int, InitDecl]:
    table: dict[int, InitDecl] = {}
    if inits is None:
        return table
    for item in inits:
        if not isinstance(item, InitDecl):
            raise LanguageError(f"cannot interpret init spec {item!r}")
        if item.index in table:
            raise LanguageError(f"duplicate init({item.index})")
        table[item.index] = item
    return table


class Language:
    """A domain-specific language specializing the DG model."""

    def __init__(self, name: str, parent: "Language | None" = None):
        if not name:
            raise LanguageError("language name must be non-empty")
        if parent is not None and not isinstance(parent, Language):
            raise LanguageError(f"parent must be a Language, got "
                                f"{parent!r}")
        self.name = name
        self.parent = parent
        self._node_types: dict[str, NodeType] = {}
        self._edge_types: dict[str, EdgeType] = {}
        self._productions: list[ProductionRule] = []
        self._constraints: list[ConstraintRule] = []
        self._extern_checks: list[tuple[str, Callable]] = []
        self._functions: dict[str, Callable] = {}
        self._rule_table: RuleTable | None = None

    # ------------------------------------------------------------------
    # Declaration API
    # ------------------------------------------------------------------

    def node_type(self, name: str, order: int | None = None,
                  reduction=None, attrs=None, inits=None,
                  inherits: "NodeType | str | None" = None) -> NodeType:
        """Declare a node type: ``node-type(p, Reduc) name {Attr*}``."""
        self._check_fresh_name(name)
        parent_type = self._resolve_node_parent(inherits)
        if parent_type is None:
            if order is None:
                raise LanguageError(
                    f"node type {name}: order is required for root types")
            reduction = Reduction.parse(reduction or Reduction.SUM)
        else:
            if order is None:
                order = parent_type.order
            reduction = (Reduction.parse(reduction)
                         if reduction is not None
                         else parent_type.reduction)
        node_type = NodeType(
            name, order=order, reduction=reduction,
            attrs=_normalize_attrs(attrs),
            inits=_normalize_inits(inits, order),
            parent=parent_type)
        self._node_types[name] = node_type
        self._invalidate()
        return node_type

    def edge_type(self, name: str, attrs=None, fixed: bool = False,
                  inherits: "EdgeType | str | None" = None) -> EdgeType:
        """Declare an edge type: ``edge-type [fixed] name {Attr*}``."""
        self._check_fresh_name(name)
        parent_type = self._resolve_edge_parent(inherits)
        edge_type = EdgeType(name, attrs=_normalize_attrs(attrs),
                             fixed=fixed or (parent_type is not None
                                             and parent_type.fixed),
                             parent=parent_type)
        self._edge_types[name] = edge_type
        self._invalidate()
        return edge_type

    def prod(self, rule, off: bool | None = None) -> ProductionRule:
        """Add a production rule; accepts the paper's string syntax or a
        :class:`ProductionRule`."""
        if isinstance(rule, str):
            rule = parse_production(rule, off=off)
        elif not isinstance(rule, ProductionRule):
            raise LanguageError(f"cannot interpret rule {rule!r}")
        self._check_rule_types(rule)
        self._check_new_rule_mentions_own_type(
            {rule.edge_type, rule.src_type, rule.dst_type},
            f"production rule {rule}")
        for existing in self.productions():
            if existing.signature() == rule.signature():
                raise LanguageError(
                    f"duplicate production rule for the same connection "
                    f"and target: {rule}")
        self._productions.append(rule)
        self._invalidate()
        return rule

    def cstr(self, rule) -> ConstraintRule:
        """Add a local validity rule; accepts the paper's string syntax or
        a :class:`ConstraintRule`."""
        if isinstance(rule, str):
            rule = parse_constraint(rule)
        elif not isinstance(rule, ConstraintRule):
            raise LanguageError(f"cannot interpret constraint {rule!r}")
        mentioned = {rule.node_type}
        if self.find_node_type(rule.node_type) is None:
            raise LanguageError(
                f"cstr references unknown node type {rule.node_type}")
        for pattern in rule.patterns:
            for clause in pattern.clauses:
                if self.find_edge_type(clause.edge_type) is None:
                    raise LanguageError(
                        f"cstr clause references unknown edge type "
                        f"{clause.edge_type}")
                mentioned.add(clause.edge_type)
                for peer in clause.node_types:
                    if self.find_node_type(peer) is None:
                        raise LanguageError(
                            f"cstr clause references unknown node type "
                            f"{peer}")
                    mentioned.add(peer)
        self._check_new_rule_mentions_own_type(
            mentioned, f"validity rule {rule.describe()}")
        self._constraints.append(rule)
        self._invalidate()
        return rule

    def extern_check(self, fn: Callable, name: str | None = None):
        """Register a global validity check (``extern-func``, §4.1).

        ``fn(graph)`` returns True, or (False, message) / False on failure.
        """
        if not callable(fn):
            raise LanguageError("extern check must be callable")
        self._extern_checks.append((name or getattr(fn, "__name__",
                                                    "extern"), fn))
        return fn

    def register_function(self, name: str, fn: Callable):
        """Make ``fn`` callable from expressions of this language."""
        if not callable(fn):
            raise LanguageError(f"function {name} must be callable")
        self._functions[name] = fn
        return fn

    # ------------------------------------------------------------------
    # Lookup API (resolves through the inheritance chain)
    # ------------------------------------------------------------------

    def chain(self) -> list["Language"]:
        """This language and its ancestors, most-derived first."""
        languages: list[Language] = []
        current: Language | None = self
        while current is not None:
            languages.append(current)
            current = current.parent
        return languages

    def find_node_type(self, name: str) -> NodeType | None:
        for language in self.chain():
            if name in language._node_types:
                return language._node_types[name]
        return None

    def find_edge_type(self, name: str) -> EdgeType | None:
        for language in self.chain():
            if name in language._edge_types:
                return language._edge_types[name]
        return None

    def node_types(self) -> dict[str, NodeType]:
        merged: dict[str, NodeType] = {}
        for language in reversed(self.chain()):
            merged.update(language._node_types)
        return merged

    def edge_types(self) -> dict[str, EdgeType]:
        merged: dict[str, EdgeType] = {}
        for language in reversed(self.chain()):
            merged.update(language._edge_types)
        return merged

    def productions(self) -> list[ProductionRule]:
        rules: list[ProductionRule] = []
        for language in reversed(self.chain()):
            rules.extend(language._productions)
        return rules

    def constraints(self) -> list[ConstraintRule]:
        rules: list[ConstraintRule] = []
        for language in reversed(self.chain()):
            rules.extend(language._constraints)
        return rules

    def extern_checks(self) -> list[tuple[str, Callable]]:
        checks: list[tuple[str, Callable]] = []
        for language in reversed(self.chain()):
            checks.extend(language._extern_checks)
        return checks

    def functions(self) -> dict[str, Callable]:
        merged = dict(E.BUILTIN_FUNCTIONS)
        for language in reversed(self.chain()):
            merged.update(language._functions)
        return merged

    def constraints_for(self, node_type: NodeType) -> list[ConstraintRule]:
        """All cstr rules applying to ``node_type`` or an ancestor of it."""
        applicable = []
        for rule in self.constraints():
            declared = self.find_node_type(rule.node_type)
            if declared is not None and node_type.is_subtype_of(declared):
                applicable.append(rule)
        return applicable

    def rule_table(self) -> RuleTable:
        """Production-rule lookup table over the full inheritance chain."""
        if self._rule_table is None:
            self._rule_table = RuleTable(self.productions(),
                                         self.node_types(),
                                         self.edge_types())
        return self._rule_table

    def owns_type(self, name: str) -> bool:
        """True when this language (not an ancestor) declared the type."""
        return name in self._node_types or name in self._edge_types

    # ------------------------------------------------------------------
    # Internal checks
    # ------------------------------------------------------------------

    def _invalidate(self):
        self._rule_table = None

    def _check_fresh_name(self, name: str):
        if self.find_node_type(name) is not None or \
                self.find_edge_type(name) is not None:
            raise LanguageError(
                f"type name {name} is already declared in language "
                f"{self.name} or an ancestor")

    def _resolve_node_parent(self, inherits) -> NodeType | None:
        if inherits is None:
            return None
        if isinstance(inherits, NodeType):
            return inherits
        parent = self.find_node_type(str(inherits))
        if parent is None:
            raise InheritanceError(
                f"unknown parent node type {inherits!r}")
        return parent

    def _resolve_edge_parent(self, inherits) -> EdgeType | None:
        if inherits is None:
            return None
        if isinstance(inherits, EdgeType):
            return inherits
        parent = self.find_edge_type(str(inherits))
        if parent is None:
            raise InheritanceError(
                f"unknown parent edge type {inherits!r}")
        return parent

    def _check_rule_types(self, rule: ProductionRule):
        if self.find_edge_type(rule.edge_type) is None:
            raise LanguageError(
                f"production rule references unknown edge type "
                f"{rule.edge_type}")
        for node_type in (rule.src_type, rule.dst_type):
            if self.find_node_type(node_type) is None:
                raise LanguageError(
                    f"production rule references unknown node type "
                    f"{node_type}")
        unknown = (E.referenced_functions(rule.expr)
                   - set(self.functions()))
        if unknown:
            raise LanguageError(
                f"production rule calls unknown function(s) "
                f"{sorted(unknown)}")

    def _check_new_rule_mentions_own_type(self, mentioned: set[str],
                                          what: str):
        """§4.1.1: rules added by a derived language must include at least
        one type declared by that language."""
        if self.parent is None:
            return
        if not any(self.owns_type(name) for name in mentioned):
            raise InheritanceError(
                f"{what} added by derived language {self.name} must "
                "mention at least one type declared by this language")

    def __repr__(self) -> str:
        parent = f" inherits {self.parent.name}" if self.parent else ""
        return f"<Language {self.name}{parent}>"
