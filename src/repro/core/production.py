"""Production rules (§4.1, Fig. 6 lines 8-9) and their lookup semantics.

A rule ``prod(e:ET, s:ST -> t:DT) v <= expr`` matches a connection whose
edge type is ``ET`` and whose endpoint types are ``ST``/``DT``, and
contributes ``expr`` to the dynamics of the node bound to ``v`` (which must
be the source or destination role). When the source and destination role
share a name the rule is a *self rule* matching self-referencing edges.

Lookup (§5): for a concrete connection the most specific rule is applied;
if none matches the actual types exactly, the compiler walks the inheritance
chains to find the closest parent rule. Ambiguities (two incomparable rules
at the same specificity) are an error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import expr as E
from repro.core.exprparse import parse_expression
from repro.core.types import EdgeType, NodeType
from repro.errors import CompileError, LanguageError


@dataclass(frozen=True)
class ProductionRule:
    """One production rule.

    :param edge_role: name bound to the edge (``e``).
    :param edge_type: edge type name the rule matches.
    :param src_role: name bound to the source node (``s``).
    :param src_type: source node type name.
    :param dst_role: name bound to the destination node (``t``). Equal to
        ``src_role`` for self rules.
    :param dst_type: destination node type name.
    :param target: role receiving the contribution (source or dest role).
    :param expr: contributed algebraic term.
    :param off: True for rules modeling switched-off edges (§4.3).
    """

    edge_role: str
    edge_type: str
    src_role: str
    src_type: str
    dst_role: str
    dst_type: str
    target: str
    expr: E.Expr
    off: bool = False

    def __post_init__(self):
        if self.target not in (self.src_role, self.dst_role):
            raise LanguageError(
                f"production rule target `{self.target}` must be the source "
                f"`{self.src_role}` or destination `{self.dst_role}` role")
        if self.is_self_rule and self.src_type != self.dst_type:
            raise LanguageError(
                "self rules must bind one node: source and destination "
                f"types differ ({self.src_type} vs {self.dst_type})")
        roles = {self.edge_role, self.src_role, self.dst_role}
        loose = E.referenced_roles(self.expr) - roles
        if loose:
            raise LanguageError(
                f"production rule expression references undeclared "
                f"role(s) {sorted(loose)}; only "
                f"{sorted(roles)} are in scope")

    @property
    def is_self_rule(self) -> bool:
        """True when the rule matches self-referencing edges."""
        return self.src_role == self.dst_role

    @property
    def targets_source(self) -> bool:
        """True when the contribution lands on the source node."""
        return self.target == self.src_role

    def signature(self) -> tuple:
        """Key identifying which connections and target this rule covers."""
        return (self.edge_type, self.src_type, self.dst_type,
                self.is_self_rule, self.targets_source, self.off)

    def describe(self) -> str:
        arrow = (f"{self.src_role}:{self.src_type}->"
                 f"{self.dst_role}:{self.dst_type}")
        suffix = " off" if self.off else ""
        return (f"prod({self.edge_role}:{self.edge_type},{arrow}) "
                f"{self.target} <= {self.expr}{suffix}")

    def __str__(self) -> str:
        return self.describe()


def parse_production(text: str, off: bool | None = None) -> ProductionRule:
    """Parse the paper's concrete rule syntax.

    Accepts strings like ``prod(e:E,s:V->t:I) s<=-var(t)/s.c`` (the leading
    ``prod`` is optional, a trailing ``off`` marks an off rule).
    """
    body = text.strip()
    if body.startswith("prod"):
        body = body[len("prod"):].lstrip()
    if not body.startswith("("):
        raise LanguageError(
            f"production rule must start with a (e:ET,...) clause: {text!r}")
    depth = 0
    close = -1
    for index, char in enumerate(body):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth == 0:
                close = index
                break
    if close < 0:
        raise LanguageError(f"unbalanced parentheses in rule {text!r}")
    head = body[1:close]
    tail = body[close + 1:].strip()
    if tail.endswith(";"):
        tail = tail[:-1].rstrip()
    rule_off = off
    if tail.endswith(" off"):
        tail = tail[:-4].rstrip()
        if rule_off is None:
            rule_off = True
    if rule_off is None:
        rule_off = False

    # Head: e:ET , s:ST -> t:DT   (or s:ST->s:ST for self rules)
    try:
        edge_part, conn_part = head.split(",", 1)
        edge_role, edge_type = (p.strip() for p in edge_part.split(":"))
        src_part, dst_part = conn_part.split("->")
        src_role, src_type = (p.strip() for p in src_part.split(":"))
        dst_role, dst_type = (p.strip() for p in dst_part.split(":"))
    except ValueError:
        raise LanguageError(
            f"malformed production clause {head!r}; expected "
            "e:ET,s:ST->t:DT") from None

    if "<=" not in tail:
        raise LanguageError(
            f"production rule is missing a `target <= expr` body: {text!r}")
    target, expr_text = tail.split("<=", 1)
    return ProductionRule(
        edge_role=edge_role, edge_type=edge_type,
        src_role=src_role, src_type=src_type,
        dst_role=dst_role, dst_type=dst_type,
        target=target.strip(), expr=parse_expression(expr_text),
        off=rule_off)


class RuleTable:
    """All production rules of a language, with most-specific lookup."""

    def __init__(self, rules: list[ProductionRule],
                 node_types: dict[str, NodeType],
                 edge_types: dict[str, EdgeType]):
        self._rules = list(rules)
        self._node_types = node_types
        self._edge_types = edge_types

    @property
    def rules(self) -> list[ProductionRule]:
        return list(self._rules)

    def _candidates(self, edge_type: EdgeType, src_type: NodeType,
                    dst_type: NodeType, self_rule: bool, off: bool,
                    ) -> list[tuple[int, ProductionRule]]:
        """Rules applicable to the connection, with specificity distance.

        Distance is the total number of inheritance steps from the actual
        types up to the rule's declared types; 0 means an exact match.
        """
        scored: list[tuple[int, ProductionRule]] = []
        for rule in self._rules:
            if rule.off != off or rule.is_self_rule != self_rule:
                continue
            rule_edge = self._edge_types.get(rule.edge_type)
            rule_src = self._node_types.get(rule.src_type)
            rule_dst = self._node_types.get(rule.dst_type)
            if rule_edge is None or rule_src is None or rule_dst is None:
                raise CompileError(
                    f"rule {rule} references unknown types")
            d_edge = edge_type.distance_to(rule_edge)
            d_src = src_type.distance_to(rule_src)
            d_dst = dst_type.distance_to(rule_dst)
            if d_edge is None or d_src is None or d_dst is None:
                continue
            scored.append((d_edge + d_src + d_dst, rule))
        return scored

    def lookup(self, edge_type: EdgeType, src_type: NodeType,
               dst_type: NodeType, *, self_rule: bool = False,
               off: bool = False, connection: str = "connection",
               ) -> list[ProductionRule]:
        """Most-specific rules for a connection (one per target role).

        Returns the winning rule for the source-target and the dest-target
        independently — the TLN language, for instance, pairs
        ``s <= -var(t)/s.c`` with ``t <= var(s)/t.l`` on the same V->I
        match. Either may be absent. Raises :class:`CompileError` when two
        incomparable rules tie for the same target.
        """
        scored = self._candidates(edge_type, src_type, dst_type,
                                  self_rule, off)
        winners: list[ProductionRule] = []
        for targets_source in (True, False):
            if self_rule and not targets_source:
                continue
            group = [(dist, rule) for dist, rule in scored
                     if rule.targets_source == targets_source]
            if not group:
                continue
            best = min(dist for dist, _ in group)
            best_rules = [rule for dist, rule in group if dist == best]
            if len(best_rules) > 1:
                listing = "; ".join(r.describe() for r in best_rules)
                raise CompileError(
                    f"ambiguous production rules for {connection}: "
                    f"{listing}")
            winners.append(best_rules[0])
        return winners

    def has_rule_for(self, edge_type: EdgeType, src_type: NodeType,
                     dst_type: NodeType, *, self_rule: bool = False,
                     off: bool = False) -> bool:
        """True when at least one rule applies to the connection."""
        return bool(self._candidates(edge_type, src_type, dst_type,
                                     self_rule, off))
