"""Expression AST for Ark math and boolean expressions (§4, "Expressions").

Expressions appear in production rules (``-var(t)/s.c``), lambda attribute
bodies, and switch conditions. They are built either programmatically or via
:mod:`repro.core.exprparse`, which accepts the paper's concrete syntax.

An expression references graph elements through *roles* while it lives inside
a production rule (``e``/``s``/``t``) and through concrete element names after
the compiler's ``Rewrite`` step (Alg. 1). Both states share this AST; the
:meth:`Expr.substitute` method performs the rewrite.

Evaluation is double-dispatched through an :class:`EvalContext` so the same
tree can be interpreted against a state vector, constant-folded at compile
time, or lowered to Python source by the code generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CompileError

# --------------------------------------------------------------------------
# Built-in function registry
# --------------------------------------------------------------------------

def _sgn(x: float) -> float:
    if x > 0:
        return 1.0
    if x < 0:
        return -1.0
    return 0.0


def _noise_mean(amplitude):
    """Deterministic reading of a ``noise(amplitude)`` term.

    ``noise(a)`` denotes zero-mean white noise of amplitude ``a``; the
    compiler moves such terms into the diffusion part of the SDE, so a
    deterministic evaluation context only ever sees the drift — whose
    contribution is the mean, 0. Multiplying keeps array shapes intact
    when the batched backends evaluate a stray noise call elementwise.
    """
    return 0.0 * amplitude


#: Functions available in every Ark expression. Languages may register more
#: (e.g. the CNN language registers ``sat`` and ``sat_ni``).
BUILTIN_FUNCTIONS: dict[str, object] = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "ln": math.log,
    "log": math.log,
    "sqrt": math.sqrt,
    "abs": abs,
    "tanh": math.tanh,
    "sgn": _sgn,
    "min": min,
    "max": max,
    "pow": math.pow,
    "noise": _noise_mean,
}

_NUMERIC_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "^": lambda a, b: a ** b,
}

_COMPARE_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_PY_BINOP = {"+": "+", "-": "-", "*": "*", "/": "/", "^": "**"}
_PY_CMP = {"<": "<", "<=": "<=", ">": ">", ">=": ">=", "==": "==",
           "!=": "!="}
_PY_BOOL = {"and": "and", "or": "or"}


class EvalContext:
    """Resolution hooks used by :meth:`Expr.evaluate`.

    Subclasses override the lookups; the defaults raise, which makes partial
    contexts (e.g. constant folding) explicit about what they support.
    """

    def time(self) -> float:
        raise CompileError("expression references `time` but the evaluation "
                           "context provides no time")

    def var(self, node: str) -> float:
        raise CompileError(f"expression references var({node}) but the "
                           "evaluation context provides no state")

    def attr(self, kind: str, owner: str, attr: str):
        raise CompileError(f"expression references attribute {owner}.{attr} "
                           "but the evaluation context provides no "
                           "attributes")

    def name(self, name: str) -> float:
        raise CompileError(f"unresolved name `{name}` in expression")

    def function(self, name: str):
        try:
            return BUILTIN_FUNCTIONS[name]
        except KeyError:
            raise CompileError(f"unknown function `{name}`") from None


# --------------------------------------------------------------------------
# AST nodes
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Expr:
    """Base class of all expression nodes."""

    def children(self) -> tuple["Expr", ...]:
        return ()

    def evaluate(self, ctx: EvalContext):
        raise NotImplementedError

    def substitute(self, mapping: dict[str, "Substitution"]) -> "Expr":
        """Rewrite role names to concrete element names (Alg. 1 `Rewrite`).

        ``mapping`` maps role name (``s``/``t``/``e``) to a
        :class:`Substitution` carrying the element's concrete name and kind.
        Nodes without name references return themselves.
        """
        return self

    def walk(self):
        """Yield every node of the tree (pre-order)."""
        yield self
        for child in self.children():
            yield from child.walk()

    def is_boolean(self) -> bool:
        return False


@dataclass(frozen=True)
class Substitution:
    """Target of a role substitution: a concrete element name and kind."""

    name: str
    kind: str  # "node" or "edge"


@dataclass(frozen=True)
class Const(Expr):
    """Numeric literal."""

    value: float

    def evaluate(self, ctx: EvalContext):
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Time(Expr):
    """The simulation time ``time`` (the paper also spells it ``times``)."""

    def evaluate(self, ctx: EvalContext):
        return ctx.time()

    def __str__(self) -> str:
        return "time"


@dataclass(frozen=True)
class NameRef(Expr):
    """A bare identifier: a function argument or lambda parameter."""

    name: str

    def evaluate(self, ctx: EvalContext):
        return ctx.name(self.name)

    def substitute(self, mapping):
        # Bare names are *not* roles; roles only appear inside var() and
        # attribute owners. Function-argument references survive rewriting.
        return self

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class VarOf(Expr):
    """``var(x)``: the state variable associated with node ``x``."""

    node: str

    def evaluate(self, ctx: EvalContext):
        return ctx.var(self.node)

    def substitute(self, mapping):
        target = mapping.get(self.node)
        if target is None:
            return self
        if target.kind != "node":
            raise CompileError(
                f"var({self.node}) rewritten to non-node {target.name}")
        return VarOf(target.name)

    def __str__(self) -> str:
        return f"var({self.node})"


@dataclass(frozen=True)
class AttrRef(Expr):
    """``owner.attr``: attribute of a node or edge.

    ``kind`` is ``None`` while the owner is still a role name and becomes
    ``"node"``/``"edge"`` after substitution.
    """

    owner: str
    attr: str
    kind: str | None = None

    def evaluate(self, ctx: EvalContext):
        return ctx.attr(self.kind or "node", self.owner, self.attr)

    def substitute(self, mapping):
        target = mapping.get(self.owner)
        if target is None:
            return self
        return AttrRef(target.name, self.attr, target.kind)

    def __str__(self) -> str:
        return f"{self.owner}.{self.attr}"


@dataclass(frozen=True)
class UnOp(Expr):
    """Unary negation."""

    op: str  # only "-"
    operand: Expr

    def children(self):
        return (self.operand,)

    def evaluate(self, ctx: EvalContext):
        return -self.operand.evaluate(ctx)

    def substitute(self, mapping):
        return UnOp(self.op, self.operand.substitute(mapping))

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary arithmetic: ``+ - * / ^``."""

    op: str
    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)

    def evaluate(self, ctx: EvalContext):
        return _NUMERIC_BINOPS[self.op](self.left.evaluate(ctx),
                                        self.right.evaluate(ctx))

    def substitute(self, mapping):
        return BinOp(self.op, self.left.substitute(mapping),
                     self.right.substitute(mapping))

    def __str__(self) -> str:
        return f"({self.left}{self.op}{self.right})"


@dataclass(frozen=True)
class Call(Expr):
    """Call of a registered function: ``sin(x)``, ``sat(var(s))``..."""

    func: str
    args: tuple[Expr, ...]

    def children(self):
        return self.args

    def evaluate(self, ctx: EvalContext):
        fn = ctx.function(self.func)
        return fn(*[a.evaluate(ctx) for a in self.args])

    def substitute(self, mapping):
        return Call(self.func, tuple(a.substitute(mapping)
                                     for a in self.args))

    def __str__(self) -> str:
        return f"{self.func}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class LambdaCall(Expr):
    """Invocation of a lambda-valued attribute: ``s.fn(time)``."""

    target: AttrRef
    args: tuple[Expr, ...]

    def children(self):
        return (self.target,) + self.args

    def evaluate(self, ctx: EvalContext):
        fn = ctx.attr(self.target.kind or "node", self.target.owner,
                      self.target.attr)
        if not callable(fn):
            raise CompileError(
                f"attribute {self.target} is not callable but is invoked "
                "as a function")
        return fn(*[a.evaluate(ctx) for a in self.args])

    def substitute(self, mapping):
        return LambdaCall(self.target.substitute(mapping),
                          tuple(a.substitute(mapping) for a in self.args))

    def __str__(self) -> str:
        return f"{self.target}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class IfThenElse(Expr):
    """``if b then e else e'``."""

    cond: Expr
    then: Expr
    orelse: Expr

    def children(self):
        return (self.cond, self.then, self.orelse)

    def evaluate(self, ctx: EvalContext):
        if self.cond.evaluate(ctx):
            return self.then.evaluate(ctx)
        return self.orelse.evaluate(ctx)

    def substitute(self, mapping):
        return IfThenElse(self.cond.substitute(mapping),
                          self.then.substitute(mapping),
                          self.orelse.substitute(mapping))

    def __str__(self) -> str:
        return f"(if {self.cond} then {self.then} else {self.orelse})"


@dataclass(frozen=True)
class Compare(Expr):
    """Comparison between two math expressions; boolean-valued."""

    op: str
    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)

    def evaluate(self, ctx: EvalContext):
        return _COMPARE_OPS[self.op](self.left.evaluate(ctx),
                                     self.right.evaluate(ctx))

    def substitute(self, mapping):
        return Compare(self.op, self.left.substitute(mapping),
                       self.right.substitute(mapping))

    def is_boolean(self):
        return True

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class BoolOp(Expr):
    """Logical conjunction/disjunction; boolean-valued."""

    op: str  # "and" | "or"
    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)

    def evaluate(self, ctx: EvalContext):
        if self.op == "and":
            return bool(self.left.evaluate(ctx)) and \
                bool(self.right.evaluate(ctx))
        return bool(self.left.evaluate(ctx)) or \
            bool(self.right.evaluate(ctx))

    def substitute(self, mapping):
        return BoolOp(self.op, self.left.substitute(mapping),
                      self.right.substitute(mapping))

    def is_boolean(self):
        return True

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation; boolean-valued."""

    operand: Expr

    def children(self):
        return (self.operand,)

    def evaluate(self, ctx: EvalContext):
        return not self.operand.evaluate(ctx)

    def substitute(self, mapping):
        return Not(self.operand.substitute(mapping))

    def is_boolean(self):
        return True

    def __str__(self) -> str:
        return f"(not {self.operand})"


@dataclass(frozen=True)
class BoolConst(Expr):
    """Boolean literal (used by switch conditions)."""

    value: bool

    def evaluate(self, ctx: EvalContext):
        return self.value

    def is_boolean(self):
        return True

    def __str__(self) -> str:
        return "true" if self.value else "false"


# --------------------------------------------------------------------------
# Analyses over expression trees
# --------------------------------------------------------------------------

def referenced_roles(expr: Expr) -> set[str]:
    """Names referenced as graph elements: var() targets and attribute
    owners. Used by semantic checks on production rules."""
    roles: set[str] = set()
    for node in expr.walk():
        if isinstance(node, VarOf):
            roles.add(node.node)
        elif isinstance(node, AttrRef):
            roles.add(node.owner)
    return roles


def referenced_vars(expr: Expr) -> set[str]:
    """Node names whose state variable the expression reads."""
    return {n.node for n in expr.walk() if isinstance(n, VarOf)}


def referenced_names(expr: Expr) -> set[str]:
    """Bare identifiers (function arguments / lambda parameters)."""
    return {n.name for n in expr.walk() if isinstance(n, NameRef)}


def referenced_functions(expr: Expr) -> set[str]:
    """Registered function names invoked anywhere in the tree."""
    return {n.func for n in expr.walk() if isinstance(n, Call)}


def uses_time(expr: Expr) -> bool:
    """True when the expression reads the simulation time."""
    return any(isinstance(n, Time) for n in expr.walk())


#: d f(x)/dx for the differentiable scalar builtins, as expression
#: constructors. ``abs``/``sgn`` use the a.e.-derivative (``sgn``/0),
#: matching the first-order linearization the ``rel`` noise annotations
#: are built on.
_CALL_DERIVATIVES = {
    "sin": lambda a: Call("cos", (a,)),
    "cos": lambda a: UnOp("-", Call("sin", (a,))),
    "tan": lambda a: BinOp("+", Const(1.0),
                           BinOp("*", Call("tan", (a,)),
                                 Call("tan", (a,)))),
    "exp": lambda a: Call("exp", (a,)),
    "ln": lambda a: BinOp("/", Const(1.0), a),
    "log": lambda a: BinOp("/", Const(1.0), a),
    "sqrt": lambda a: BinOp("/", Const(0.5), Call("sqrt", (a,))),
    "tanh": lambda a: BinOp("-", Const(1.0),
                            BinOp("*", Call("tanh", (a,)),
                                  Call("tanh", (a,)))),
    "abs": lambda a: Call("sgn", (a,)),
    "sgn": lambda a: Const(0.0),
}


def differentiate(expr: Expr, node: str) -> Expr:
    """Symbolic partial derivative of ``expr`` w.r.t. ``var(node)``.

    Built for the diagonal Milstein correction: diffusion amplitudes
    are ordinary drift-shaped expressions, so their state derivative is
    computable at compile time and lowered by the same batched codegen.
    Constants, attributes, ``time`` and foreign states differentiate to
    0; unsupported constructs (lambda-valued attributes, comparisons
    feeding values, non-constant exponents, non-differentiable
    builtins) raise :class:`~repro.errors.CompileError` so the caller
    can point at the derivative-free methods instead of silently
    mis-correcting.
    """
    if isinstance(expr, (Const, Time, NameRef, AttrRef, BoolConst)):
        return Const(0.0)
    if isinstance(expr, VarOf):
        return Const(1.0 if expr.node == node else 0.0)
    if isinstance(expr, UnOp):
        return UnOp(expr.op, differentiate(expr.operand, node))
    if isinstance(expr, BinOp):
        left, right = expr.left, expr.right
        dl = differentiate(left, node)
        if expr.op in ("+", "-"):
            return BinOp(expr.op, dl, differentiate(right, node))
        if expr.op == "*":
            return BinOp("+", BinOp("*", dl, right),
                         BinOp("*", left, differentiate(right, node)))
        if expr.op == "/":
            dr = differentiate(right, node)
            return BinOp("/",
                         BinOp("-", BinOp("*", dl, right),
                               BinOp("*", left, dr)),
                         BinOp("*", right, right))
        if expr.op == "^":
            if not isinstance(right, Const):
                raise CompileError(
                    "differentiate: non-constant exponent in "
                    f"{expr}; the Milstein correction needs a "
                    "compile-time derivative")
            power = float(right.value)
            return BinOp("*", BinOp("*", Const(power),
                                    BinOp("^", left,
                                          Const(power - 1.0))), dl)
        raise CompileError(
            f"differentiate: unsupported operator {expr.op!r}")
    if isinstance(expr, Call):
        if expr.func == "pow" and len(expr.args) == 2:
            return differentiate(BinOp("^", expr.args[0],
                                       expr.args[1]), node)
        rule = _CALL_DERIVATIVES.get(expr.func)
        if rule is None or len(expr.args) != 1:
            raise CompileError(
                f"differentiate: no derivative rule for call "
                f"{expr}; use an em/heun SDE method for this "
                "diffusion amplitude")
        arg = expr.args[0]
        return BinOp("*", rule(arg), differentiate(arg, node))
    if isinstance(expr, IfThenElse):
        return IfThenElse(expr.cond, differentiate(expr.then, node),
                          differentiate(expr.orelse, node))
    raise CompileError(
        f"differentiate: unsupported expression node {expr!r}; use an "
        "em/heun SDE method for this diffusion amplitude")


# --------------------------------------------------------------------------
# Code generation
# --------------------------------------------------------------------------

class CodegenContext:
    """Name-resolution hooks for :func:`to_python`.

    The ODE code generator subclasses this to map state references to
    ``y[i]`` slots, attributes to inlined constants or environment slots,
    and functions to names in the generated module's namespace.
    """

    def time_source(self) -> str:
        return "t"

    def var_source(self, node: str) -> str:
        raise CompileError(f"codegen: unresolved var({node})")

    def attr_source(self, kind: str, owner: str, attr: str) -> str:
        raise CompileError(f"codegen: unresolved attribute {owner}.{attr}")

    def name_source(self, name: str) -> str:
        raise CompileError(f"codegen: unresolved name `{name}`")

    def function_source(self, name: str) -> str:
        raise CompileError(f"codegen: unresolved function `{name}`")

    # The control-flow constructs below default to plain Python syntax,
    # which is correct for scalar evaluation. Vectorized backends (the
    # batched ensemble codegen in :mod:`repro.sim`) override them with
    # elementwise formulations (``numpy.where``/``logical_and``/...),
    # because Python's ``if``/``and``/``or``/``not`` are ambiguous on
    # arrays.

    def ifexp_source(self, cond: str, then: str, orelse: str) -> str:
        return f"({then} if {cond} else {orelse})"

    def boolop_source(self, op: str, left: str, right: str) -> str:
        return f"({left} {_PY_BOOL[op]} {right})"

    def not_source(self, operand: str) -> str:
        return f"(not {operand})"


def to_python(expr: Expr, ctx: CodegenContext) -> str:
    """Lower an expression tree to a Python source fragment."""
    if isinstance(expr, Const):
        return repr(float(expr.value))
    if isinstance(expr, BoolConst):
        return "True" if expr.value else "False"
    if isinstance(expr, Time):
        return ctx.time_source()
    if isinstance(expr, NameRef):
        return ctx.name_source(expr.name)
    if isinstance(expr, VarOf):
        return ctx.var_source(expr.node)
    if isinstance(expr, AttrRef):
        return ctx.attr_source(expr.kind or "node", expr.owner, expr.attr)
    if isinstance(expr, UnOp):
        return f"(-{to_python(expr.operand, ctx)})"
    if isinstance(expr, BinOp):
        op = _PY_BINOP[expr.op]
        return (f"({to_python(expr.left, ctx)} {op} "
                f"{to_python(expr.right, ctx)})")
    if isinstance(expr, Call):
        args = ", ".join(to_python(a, ctx) for a in expr.args)
        return f"{ctx.function_source(expr.func)}({args})"
    if isinstance(expr, LambdaCall):
        target = ctx.attr_source(expr.target.kind or "node",
                                 expr.target.owner, expr.target.attr)
        args = ", ".join(to_python(a, ctx) for a in expr.args)
        return f"{target}({args})"
    if isinstance(expr, IfThenElse):
        return ctx.ifexp_source(to_python(expr.cond, ctx),
                                to_python(expr.then, ctx),
                                to_python(expr.orelse, ctx))
    if isinstance(expr, Compare):
        op = _PY_CMP[expr.op]
        return (f"({to_python(expr.left, ctx)} {op} "
                f"{to_python(expr.right, ctx)})")
    if isinstance(expr, BoolOp):
        return ctx.boolop_source(expr.op, to_python(expr.left, ctx),
                                 to_python(expr.right, ctx))
    if isinstance(expr, Not):
        return ctx.not_source(to_python(expr.operand, ctx))
    raise CompileError(f"codegen: unsupported expression node {expr!r}")
