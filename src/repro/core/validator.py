"""The Ark dynamical-graph validator (§6, Algorithm 2).

Local validity: every node must be *described by* at least one accepted
pattern of every applicable ``cstr`` rule and by none of the rejected
patterns. A node is described by a pattern when its incident edges can be
assigned to the pattern's clauses such that each edge goes to exactly one
clause that matches it and every clause receives a number of edges within
its declared cardinality range.

The paper formulates the ``described`` relation as an Integer Linear
Program; we implement that ILP with :func:`scipy.optimize.milp` and also
provide an exact max-flow backend (the assignment problem is a bipartite
transportation feasibility problem), which is typically faster and is used
to cross-check the ILP in the test suite and the ablation benchmarks.

Global validity: the language's ``extern-func`` checks run on the whole
graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.graph import DynamicalGraph, Edge, Node
from repro.core.language import Language
from repro.core.validation import IN, OUT, SELF, MatchClause, Pattern
from repro.errors import ValidationError

#: Available `described` solvers.
BACKENDS = ("milp", "flow")


def clause_matches(graph: DynamicalGraph, language: Language, node: Node,
                   edge: Edge, clause: MatchClause) -> bool:
    """`Matched(n, e, cls)` from Algorithm 2.

    True when ``edge`` (incident to ``node``) fits the clause: direction,
    edge type (subtype-compatible), and peer node type (subtype-compatible
    with one of the listed types).
    """
    clause_edge_type = language.find_edge_type(clause.edge_type)
    if clause_edge_type is None or \
            not edge.type.is_subtype_of(clause_edge_type):
        return False
    if clause.kind == SELF:
        return edge.is_self
    if edge.is_self:
        return False
    if clause.kind == OUT:
        if edge.src != node.name:
            return False
        peer = graph.node(edge.dst)
    else:  # IN
        if edge.dst != node.name:
            return False
        peer = graph.node(edge.src)
    for type_name in clause.node_types:
        declared = language.find_node_type(type_name)
        if declared is not None and peer.type.is_subtype_of(declared):
            return True
    return False


def _match_matrix(graph: DynamicalGraph, language: Language, node: Node,
                  edges: list[Edge], pattern: Pattern) -> np.ndarray:
    matrix = np.zeros((len(edges), len(pattern.clauses)), dtype=bool)
    for i, edge in enumerate(edges):
        for j, clause in enumerate(pattern.clauses):
            matrix[i, j] = clause_matches(graph, language, node, edge,
                                          clause)
    return matrix


def _described_milp(matrix: np.ndarray, clauses) -> bool:
    """Algorithm 2 verbatim: solve the assignment ILP with scipy."""
    from scipy.optimize import Bounds, LinearConstraint, milp

    n_edges, n_clauses = matrix.shape
    if n_edges == 0:
        return all(clause.lo == 0 for clause in clauses)
    if not matrix.any(axis=1).all():
        # An edge matching no clause can never satisfy UnityRowSum.
        return False
    n_vars = n_edges * n_clauses

    def var(i: int, j: int) -> int:
        return i * n_clauses + j

    constraints = []
    # UnityRowSum: each edge is assigned to exactly one clause.
    row = np.zeros((n_edges, n_vars))
    for i in range(n_edges):
        for j in range(n_clauses):
            row[i, var(i, j)] = 1.0
    constraints.append(LinearConstraint(row, 1.0, 1.0))
    # RangedColSum: clause cardinalities.
    col = np.zeros((n_clauses, n_vars))
    for j in range(n_clauses):
        for i in range(n_edges):
            col[j, var(i, j)] = 1.0
    lower = np.array([clause.lo for clause in clauses], dtype=float)
    upper = np.array([clause.hi if not math.isinf(clause.hi) else np.inf
                      for clause in clauses], dtype=float)
    constraints.append(LinearConstraint(col, lower, upper))
    # ZeroOrOne / Zero: unmatched pairs are pinned to zero.
    ub = np.where(matrix.reshape(-1), 1.0, 0.0)
    bounds = Bounds(np.zeros(n_vars), ub)

    result = milp(c=np.zeros(n_vars), constraints=constraints,
                  bounds=bounds, integrality=np.ones(n_vars))
    return bool(result.success)


def _described_flow(matrix: np.ndarray, clauses) -> bool:
    """Exact max-flow formulation of the same feasibility problem.

    Edges and clauses form a bipartite network with unit supply per edge
    and ``[lo, hi]`` demand per clause; lower bounds are removed with the
    standard circulation transformation and feasibility is checked with a
    single max-flow run.
    """
    import networkx as nx

    n_edges, n_clauses = matrix.shape
    if n_edges == 0:
        return all(clause.lo == 0 for clause in clauses)
    if not matrix.any(axis=1).all():
        return False
    for j, clause in enumerate(clauses):
        if clause.lo > 0 and not matrix[:, j].any():
            # A clause demanding edges that nothing can satisfy.
            return False

    network = nx.DiGraph()
    source, sink = "s", "t"
    super_source, super_sink = "S*", "T*"
    excess: dict[str, float] = {}

    def add_arc(u: str, v: str, lo: float, hi: float):
        capacity = hi - lo
        if math.isinf(capacity):
            network.add_edge(u, v)
        else:
            network.add_edge(u, v, capacity=capacity)
        if lo > 0:
            excess[v] = excess.get(v, 0.0) + lo
            excess[u] = excess.get(u, 0.0) - lo

    for i in range(n_edges):
        add_arc(source, f"e{i}", 1.0, 1.0)
    for i in range(n_edges):
        for j in range(n_clauses):
            if matrix[i, j]:
                add_arc(f"e{i}", f"c{j}", 0.0, 1.0)
    for j, clause in enumerate(clauses):
        add_arc(f"c{j}", sink, float(clause.lo), float(clause.hi))
    add_arc(sink, source, 0.0, math.inf)

    required = 0.0
    for name, amount in excess.items():
        if amount > 0:
            network.add_edge(super_source, name, capacity=amount)
            required += amount
        elif amount < 0:
            network.add_edge(name, super_sink, capacity=-amount)
    if required == 0.0:
        return True
    flow_value, _ = nx.maximum_flow(network, super_source, super_sink)
    return bool(abs(flow_value - required) < 1e-9)


def is_described(graph: DynamicalGraph, language: Language, node: Node,
                 pattern: Pattern, backend: str = "milp") -> bool:
    """The `IsDescribed` relation of Algorithm 2 for one node/pattern."""
    if backend not in BACKENDS:
        raise ValidationError(f"unknown validator backend {backend!r}; "
                              f"expected one of {BACKENDS}")
    edges = graph.edges_of(node.name, include_off=False)
    matrix = _match_matrix(graph, language, node, edges, pattern)
    if backend == "milp":
        return _described_milp(matrix, pattern.clauses)
    return _described_flow(matrix, pattern.clauses)


@dataclass
class ValidationReport:
    """Outcome of validating a dynamical graph against a language."""

    graph_name: str
    language_name: str
    valid: bool = True
    violations: list[str] = field(default_factory=list)

    def record(self, message: str):
        self.valid = False
        self.violations.append(message)

    def raise_if_invalid(self):
        if not self.valid:
            raise ValidationError(
                f"graph {self.graph_name} is invalid in language "
                f"{self.language_name}: "
                + "; ".join(self.violations), self.violations)

    def __bool__(self) -> bool:
        return self.valid


def validate(graph: DynamicalGraph, language: Language | None = None,
             backend: str = "milp") -> ValidationReport:
    """Validate ``graph`` against ``language`` (defaults to the graph's
    own language). Checks local ``cstr`` rules node by node and then runs
    the global ``extern-func`` checks."""
    language = language or graph.language
    report = ValidationReport(graph.name, language.name)

    for node in graph.nodes:
        rules = language.constraints_for(node.type)
        for rule in rules:
            accepted = rule.accepted
            if accepted:
                if not any(is_described(graph, language, node, pattern,
                                        backend) for pattern in accepted):
                    report.record(
                        f"node {node.name} ({node.type.name}) matches no "
                        f"accepted pattern of {rule.describe()}")
            for pattern in rule.rejected:
                if is_described(graph, language, node, pattern, backend):
                    report.record(
                        f"node {node.name} ({node.type.name}) matches "
                        f"rejected pattern {pattern} of {rule.describe()}")

    for name, check in language.extern_checks():
        outcome = check(graph)
        if isinstance(outcome, tuple):
            passed, message = outcome
        else:
            passed, message = bool(outcome), ""
        if not passed:
            detail = f": {message}" if message else ""
            report.record(f"global check {name} failed{detail}")
    return report
