"""Deterministic transient-noise streams.

The transient-noise story mirrors the §4.3 mismatch story: sampling must
be *reproducible*. Where :mod:`repro.core.mismatch` derives one random
stream per ``(seed, element, attribute)`` triple, the SDE engine derives
one Wiener-increment stream per ``(seed, element, path)`` triple using
the same stable-hash scheme — a SHA-256 digest of the triple seeds a
PCG64 generator. Two runs with the same noise seed see identical noise
realizations regardless of construction order or which other elements
exist; varying the seed models independent noise trials, exactly as
varying the mismatch seed models independent fabricated chips.

``seed`` may be an int (a plain trial) or any printable token — the
noisy-ensemble driver uses ``"<chip_seed>:<trial>"`` so every
(fabricated chip, noise trial) pair owns an independent realization.

Array backends: these streams are *always* drawn on the host PCG64
generator, whatever array namespace the solver loops run on — a jax or
float32 run consumes the same float64 increments as the numpy run (the
backend's :meth:`~repro.sim.array_api.ArrayBackend.wiener_source`
adapter converts draws at the device/dtype boundary). The noise
*realization* is therefore backend-independent by construction; only
the arithmetic that consumes it is subject to the backend's dtype.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stream_seed(seed, element: str, path: str) -> int:
    """Stable 64-bit PRNG seed for a ``(seed, element, path)`` triple."""
    digest = hashlib.sha256(
        f"{seed}|{element}|{path}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def stream(seed, element: str, path: str) -> np.random.Generator:
    """The independent random stream owned by the triple."""
    return np.random.Generator(
        np.random.PCG64(stream_seed(seed, element, path)))


# --------------------------------------------------------------------------
# Brownian-bridge refinement streams
# --------------------------------------------------------------------------

def bridge_seed(seed, element: str, path: str, level: int) -> int:
    """Stable 64-bit PRNG seed of one *bridge refinement level*.

    The hierarchical Wiener source (:class:`repro.sim.sde_solver.
    BridgeWienerSource`) keys every refinement normal by ``(seed,
    element, path, level, index)``: one PCG64 bit stream per ``(seed,
    element, path, level)`` — suffixed onto the classic triple hash so
    legacy sequential streams are untouched — and one state step per
    ``index`` within it. Because the normal at ``(level, index)`` never
    depends on which *other* indices a solver visited, halving or
    re-halving any step replays the identical refinement draws: the
    realized Wiener path is invariant to the step sequence.
    """
    digest = hashlib.sha256(
        f"{seed}|{element}|{path}|bridge:{level}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def bridge_bits(seed, element: str, path: str,
                level: int) -> np.random.PCG64:
    """The raw bit generator of one bridge level. Exposed as a *bit*
    generator (not a :class:`~numpy.random.Generator`): bridge normals
    are inverse-CDF transformed from exactly one 64-bit word each, so
    ``PCG64.advance`` gives O(1) random access to any ``index`` — the
    property that makes adaptive step sequences reproducible."""
    return np.random.PCG64(bridge_seed(seed, element, path, level))


# --------------------------------------------------------------------------
# Correlated sources: Wiener-path aliasing
# --------------------------------------------------------------------------

#: Element name carried by aliased diffusion terms. Keeping a reserved
#: marker (no graph element is ever named this) makes shared paths
#: self-describing in stream keys, cache keys, and telemetry.
SHARED_ELEMENT = "$shared"


def share_wiener(system, label: str, match=None):
    """Alias Wiener paths across elements: one physical noise process
    driving many diffusion terms (supply ripple, substrate coupling,
    a shared bias line).

    Returns a *new* :class:`~repro.core.odesystem.OdeSystem` whose
    matching diffusion terms are rekeyed to the single stream identity
    ``(SHARED_ELEMENT, label)`` — they then draw one common Wiener
    realization per (noise seed) instead of independent per-element
    ones. Amplitudes, target states, and everything deterministic are
    untouched, and the rekeying lands in ``structural_signature()``
    (term identities are part of it), so aliased and independent
    builds never share a batch, a cache entry, or a Wiener stream.

    :param system: a compiled :class:`OdeSystem` carrying diffusion
        terms.
    :param label: name of the shared source, e.g. ``"supply"`` —
        distinct labels stay independent processes.
    :param match: which terms to alias — ``None`` (all terms), a
        string (terms whose ``element`` starts with it), or a
        predicate ``match(term) -> bool``.
    """
    from repro.core.odesystem import DiffusionTerm, OdeSystem

    if not isinstance(system, OdeSystem):
        raise TypeError(
            f"share_wiener expects a compiled OdeSystem, got "
            f"{type(system).__name__}; compile the graph first")
    if match is None:
        chosen = lambda term: True                      # noqa: E731
    elif isinstance(match, str):
        chosen = lambda term: term.element.startswith(match)  # noqa: E731
    else:
        chosen = match
    rekeyed = tuple(
        DiffusionTerm(state_index=term.state_index,
                      amplitude=term.amplitude,
                      element=SHARED_ELEMENT, path=str(label))
        if chosen(term) else term
        for term in system.diffusion)
    return OdeSystem(system.graph, system.language, system.states,
                     system.state_index, system.rhs_specs,
                     system.algebraic, system.attr_values,
                     system.functions, system.y0, diffusion=rekeyed)
