"""Deterministic transient-noise streams.

The transient-noise story mirrors the §4.3 mismatch story: sampling must
be *reproducible*. Where :mod:`repro.core.mismatch` derives one random
stream per ``(seed, element, attribute)`` triple, the SDE engine derives
one Wiener-increment stream per ``(seed, element, path)`` triple using
the same stable-hash scheme — a SHA-256 digest of the triple seeds a
PCG64 generator. Two runs with the same noise seed see identical noise
realizations regardless of construction order or which other elements
exist; varying the seed models independent noise trials, exactly as
varying the mismatch seed models independent fabricated chips.

``seed`` may be an int (a plain trial) or any printable token — the
noisy-ensemble driver uses ``"<chip_seed>:<trial>"`` so every
(fabricated chip, noise trial) pair owns an independent realization.

Array backends: these streams are *always* drawn on the host PCG64
generator, whatever array namespace the solver loops run on — a jax or
float32 run consumes the same float64 increments as the numpy run (the
backend's :meth:`~repro.sim.array_api.ArrayBackend.wiener_source`
adapter converts draws at the device/dtype boundary). The noise
*realization* is therefore backend-independent by construction; only
the arithmetic that consumes it is subject to the backend's dtype.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stream_seed(seed, element: str, path: str) -> int:
    """Stable 64-bit PRNG seed for a ``(seed, element, path)`` triple."""
    digest = hashlib.sha256(
        f"{seed}|{element}|{path}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def stream(seed, element: str, path: str) -> np.random.Generator:
    """The independent random stream owned by the triple."""
    return np.random.Generator(
        np.random.PCG64(stream_seed(seed, element, path)))
