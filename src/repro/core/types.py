"""Node and edge types of the dynamical-graph model (§3, §4.1).

A node type carries a variable order ``p`` (0 = pure function, p >= 1 =
p-th order ODE), a reduction operator (sum or mul) used to aggregate the
production terms of its incident edges, attribute declarations, and initial
value declarations for derivatives ``0..p-1``. An edge type carries
attributes and may be ``fixed`` (non-switchable, §4.3).

Types support single inheritance with the compatibility rules of §4.1.1:
derived types keep the parent's order and reduction, inherit all attributes
and initial values, and may only narrow overridden declarations.
"""

from __future__ import annotations

import enum

from repro.core.attributes import AttrDecl, InitDecl
from repro.core.datatypes import RealType
from repro.errors import InheritanceError, LanguageError


class Reduction(enum.Enum):
    """Reduction operator aggregating edge contributions (Eq. 4)."""

    SUM = "sum"
    MUL = "mul"

    @property
    def identity(self) -> float:
        """Identity element of the reduction (0 for sum, 1 for mul)."""
        return 0.0 if self is Reduction.SUM else 1.0

    @classmethod
    def parse(cls, text) -> "Reduction":
        if isinstance(text, Reduction):
            return text
        try:
            return cls(str(text).lower())
        except ValueError:
            raise LanguageError(
                f"unknown reduction operator {text!r}; expected sum or mul"
            ) from None


_UNBOUNDED_REAL = RealType(float("-inf"), float("inf"))


class _TypedElement:
    """Shared machinery of node and edge types: names, attribute tables,
    and the inheritance chain."""

    def __init__(self, name: str, attrs: dict[str, AttrDecl],
                 parent: "_TypedElement | None"):
        if not name or not isinstance(name, str):
            raise LanguageError(f"type name must be a non-empty string, "
                                f"got {name!r}")
        self.name = name
        self.parent = parent
        self._own_attrs = dict(attrs)
        if parent is not None:
            for attr_name, decl in self._own_attrs.items():
                parent_decl = parent.attrs.get(attr_name)
                if parent_decl is not None:
                    decl.check_override(parent_decl)
        merged: dict[str, AttrDecl] = {}
        if parent is not None:
            merged.update(parent.attrs)
        merged.update(self._own_attrs)
        #: Effective attribute table (inherited + overridden + new).
        self.attrs: dict[str, AttrDecl] = merged

    @property
    def own_attrs(self) -> dict[str, AttrDecl]:
        """Attributes declared (or overridden) by this type itself."""
        return dict(self._own_attrs)

    def is_subtype_of(self, other: "_TypedElement") -> bool:
        """True when ``self`` equals ``other`` or derives from it."""
        current: _TypedElement | None = self
        while current is not None:
            if current is other:
                return True
            current = current.parent
        return False

    def distance_to(self, ancestor: "_TypedElement") -> int | None:
        """Number of inheritance steps up to ``ancestor`` (0 for self),
        or None when ``ancestor`` is not on the chain."""
        steps = 0
        current: _TypedElement | None = self
        while current is not None:
            if current is ancestor:
                return steps
            current = current.parent
            steps += 1
        return None

    def ancestry(self) -> list["_TypedElement"]:
        """The inheritance chain from this type to the root, inclusive."""
        chain: list[_TypedElement] = []
        current: _TypedElement | None = self
        while current is not None:
            chain.append(current)
            current = current.parent
        return chain

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class NodeType(_TypedElement):
    """A typed node kind: ``node-type(p, Reduc) v {Attr*}``."""

    def __init__(self, name: str, order: int, reduction: Reduction,
                 attrs: dict[str, AttrDecl] | None = None,
                 inits: dict[int, InitDecl] | None = None,
                 parent: "NodeType | None" = None):
        if parent is not None and not isinstance(parent, NodeType):
            raise InheritanceError(
                f"node type {name} cannot inherit from edge type "
                f"{parent.name}")
        super().__init__(name, attrs or {}, parent)
        reduction = Reduction.parse(reduction)
        if order < 0:
            raise LanguageError(
                f"node type {name}: order must be >= 0, got {order}")
        if parent is not None:
            # Derived node types inherit the parent's order and reduction.
            if order != parent.order:
                raise InheritanceError(
                    f"node type {name} declares order {order} but parent "
                    f"{parent.name} has order {parent.order}")
            if reduction is not parent.reduction:
                raise InheritanceError(
                    f"node type {name} declares reduction {reduction.value} "
                    f"but parent {parent.name} uses "
                    f"{parent.reduction.value}")
        self.order = order
        self.reduction = reduction

        own_inits = dict(inits or {})
        for index, decl in own_inits.items():
            if decl.index != index:
                raise LanguageError(
                    f"node type {name}: init table key {index} does not "
                    f"match declaration index {decl.index}")
            if index >= order:
                raise LanguageError(
                    f"node type {name}: init({index}) declared but order is "
                    f"{order} (valid indices are 0..{order - 1})")
            if parent is not None and index in parent.inits:
                decl.check_override(parent.inits[index])
        merged: dict[int, InitDecl] = {}
        if parent is not None:
            merged.update(parent.inits)
        merged.update(own_inits)
        # §4.1 requires an init declaration for every derivative 0..p-1.
        # The paper's listings elide them, so missing ones default to an
        # unbounded real initialized to zero.
        for index in range(order):
            if index not in merged:
                merged[index] = InitDecl(index, _UNBOUNDED_REAL,
                                         default=0.0)
        #: Effective init-value declarations for derivatives 0..p-1.
        self.inits: dict[int, InitDecl] = merged

    @property
    def is_algebraic(self) -> bool:
        """Order-0 node types implement pure functions (§3)."""
        return self.order == 0


class EdgeType(_TypedElement):
    """A typed edge kind: ``edge-type v {Attr*}``, optionally ``fixed``."""

    def __init__(self, name: str, attrs: dict[str, AttrDecl] | None = None,
                 fixed: bool = False, parent: "EdgeType | None" = None):
        if parent is not None and not isinstance(parent, EdgeType):
            raise InheritanceError(
                f"edge type {name} cannot inherit from node type "
                f"{parent.name}")
        super().__init__(name, attrs or {}, parent)
        if parent is not None and parent.fixed and not fixed:
            raise InheritanceError(
                f"edge type {name} cannot relax `fixed` inherited from "
                f"{parent.name}")
        self.fixed = fixed
