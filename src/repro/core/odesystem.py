"""Compiled ODE systems with two evaluation backends.

An :class:`OdeSystem` holds the output of the §5 compiler: the state
vector layout, per-state right-hand sides (chain equations or reduced
production terms), algebraic (order-0) node definitions in dependency
order, resolved attribute values, and the function registry.

Two interchangeable right-hand-side backends are provided:

* ``interpreter`` — walks the expression trees; simple, easy to audit;
* ``codegen`` — emits a flat Python function (attributes inlined as
  constants, states as ``y[i]`` reads) and ``exec``-compiles it once.

The test suite cross-checks them on random states, and an ablation
benchmark measures the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import expr as E
from repro.core.simplify import inline_attributes, simplify
from repro.core.types import Reduction
from repro.errors import CompileError


@dataclass(frozen=True)
class StateVar:
    """One slot of the state vector: the ``deriv``-th derivative of a
    node's variable."""

    node: str
    deriv: int
    index: int

    @property
    def label(self) -> str:
        return self.node + "'" * self.deriv


@dataclass(frozen=True)
class ChainRhs:
    """``d n_i/dt = n_{i+1}`` (LowOrdEqs)."""

    next_index: int


@dataclass(frozen=True)
class TermsRhs:
    """``d^p n/dt^p = reduce(terms)`` (FormEq)."""

    terms: tuple[E.Expr, ...]
    reduction: Reduction


@dataclass(frozen=True)
class AlgebraicSpec:
    """An order-0 node: value = reduce(terms)."""

    name: str
    terms: tuple[E.Expr, ...]
    reduction: Reduction


@dataclass(frozen=True)
class DiffusionTerm:
    """One diffusion term of a stochastic system.

    The compiled dynamics read ``d y_i = f_i(t, y) dt + sum_k b_k(t, y)
    dW_k`` — every :class:`DiffusionTerm` is one ``b_k`` contribution:

    :param state_index: the state the Wiener increment perturbs.
    :param amplitude: the ``b_k(t, y)`` expression (attributes still
        symbolic, so batches across mismatch seeds share structure).
    :param element: graph element that physically owns the noise source
        (the edge whose production rule wrote ``noise(...)``, or the
        node/edge carrying a noise-annotated attribute).
    :param path: stable label distinguishing multiple sources on one
        element. Terms sharing ``(element, path)`` are driven by the
        *same* Wiener process — a fluctuating parameter referenced by
        several production terms perturbs them coherently.
    """

    state_index: int
    amplitude: E.Expr
    element: str
    path: str

    def stream_key(self) -> tuple[str, str]:
        """The Wiener-process identity of this term."""
        return (self.element, self.path)


class _RhsContext(E.EvalContext):
    """Interpreter evaluation context bound to (t, y) plus the computed
    algebraic node values."""

    def __init__(self, system: "OdeSystem"):
        self._system = system
        self._t = 0.0
        self._y: np.ndarray | None = None
        self._alg: dict[str, float] = {}

    def bind(self, t: float, y: np.ndarray):
        self._t = t
        self._y = y
        self._alg = {}

    def time(self) -> float:
        return self._t

    def var(self, node: str) -> float:
        index = self._system.state_index.get((node, 0))
        if index is not None:
            return float(self._y[index])
        if node in self._alg:
            return self._alg[node]
        raise CompileError(
            f"var({node}) does not name a state or a computed algebraic "
            "node; algebraic dependencies must be evaluated in order")

    def attr(self, kind: str, owner: str, attr: str):
        try:
            return self._system.attr_values[(kind, owner, attr)]
        except KeyError:
            raise CompileError(
                f"unresolved attribute {owner}.{attr}") from None

    def function(self, name: str):
        try:
            return self._system.functions[name]
        except KeyError:
            raise CompileError(f"unknown function {name}") from None

    def set_algebraic(self, name: str, value: float):
        self._alg[name] = value


def optimize_terms(terms: tuple[E.Expr, ...], reduction: Reduction,
                   lookup) -> list[E.Expr]:
    """Inline the attribute values ``lookup`` resolves, simplify, and
    drop terms the reduction's identity absorbs (0s in sums, 1s in
    products; a 0 factor collapses a product entirely).

    ``lookup(kind, owner, attr)`` may return ``None`` to keep an
    attribute symbolic — the batched ensemble codegen uses this to
    inline only the values shared across every instance of a batch.
    """
    optimized = [simplify(inline_attributes(term, lookup))
                 for term in terms]
    if reduction is Reduction.SUM:
        return [term for term in optimized
                if not (isinstance(term, E.Const) and term.value == 0.0)]
    if any(isinstance(term, E.Const) and term.value == 0.0
           for term in optimized):
        return [E.Const(0.0)]
    return [term for term in optimized
            if not (isinstance(term, E.Const) and term.value == 1.0)]


class _Codegen(E.CodegenContext):
    """Codegen context: states to ``y[i]``, algebraic nodes to locals,
    numeric attributes inlined, callables routed through the namespace."""

    def __init__(self, system: "OdeSystem", namespace: dict[str, object]):
        self._system = system
        self._namespace = namespace
        self._alg_names: dict[str, str] = {}

    def register_algebraic(self, node: str) -> str:
        local = f"_alg_{len(self._alg_names)}"
        self._alg_names[node] = local
        return local

    def var_source(self, node: str) -> str:
        index = self._system.state_index.get((node, 0))
        if index is not None:
            return f"y[{index}]"
        if node in self._alg_names:
            return self._alg_names[node]
        raise CompileError(f"codegen: var({node}) is neither a state nor "
                           "an algebraic node")

    def attr_source(self, kind: str, owner: str, attr: str) -> str:
        key = (kind, owner, attr)
        try:
            value = self._system.attr_values[key]
        except KeyError:
            raise CompileError(
                f"codegen: unresolved attribute {owner}.{attr}") from None
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return repr(float(value))
        name = f"_attr_{len([k for k in self._namespace if k.startswith('_attr_')])}"
        self._namespace[name] = value
        return name

    def function_source(self, name: str) -> str:
        alias = f"_fn_{name}"
        if alias not in self._namespace:
            try:
                self._namespace[alias] = self._system.functions[name]
            except KeyError:
                raise CompileError(
                    f"codegen: unknown function {name}") from None
        return alias


class OdeSystem:
    """A compiled dynamical system (see module docstring)."""

    def __init__(self, graph, language, states: list[StateVar],
                 state_index: dict[tuple[str, int], int],
                 rhs_specs: list[ChainRhs | TermsRhs],
                 algebraic: list[AlgebraicSpec],
                 attr_values: dict[tuple, object],
                 functions: dict[str, object],
                 y0: list[float],
                 diffusion: tuple[DiffusionTerm, ...] = ()):
        self.graph = graph
        self.language = language
        self.states = states
        self.state_index = state_index
        self.rhs_specs = rhs_specs
        self.algebraic = algebraic
        self.attr_values = attr_values
        self.functions = functions
        self.y0 = np.asarray(y0, dtype=float)
        self.diffusion = tuple(diffusion)
        self._compiled_rhs = None
        self._signature = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_states(self) -> int:
        return len(self.states)

    def state_labels(self) -> list[str]:
        return [state.label for state in self.states]

    def index_of(self, node: str, deriv: int = 0) -> int:
        try:
            return self.state_index[(node, deriv)]
        except KeyError:
            raise CompileError(
                f"no state for node {node} derivative {deriv}") from None

    @property
    def has_noise(self) -> bool:
        """True when the compiled system carries diffusion terms — i.e.
        it is a stochastic system and :func:`repro.sim.solve_sde` (not a
        deterministic solver) realizes its noise."""
        return bool(self.diffusion)

    def wiener_paths(self) -> list[tuple[str, str]]:
        """Distinct ``(element, path)`` Wiener-process identities, in
        first-appearance order. Several diffusion terms may share one."""
        seen: dict[tuple[str, str], None] = {}
        for term in self.diffusion:
            seen.setdefault(term.stream_key())
        return list(seen)

    def structural_signature(self) -> tuple:
        """A hashable fingerprint of everything about the system *except*
        attribute values and initial conditions.

        Two systems with equal signatures share state layout, production
        terms (with attributes still symbolic), algebraic definitions,
        attribute keys, and function *identities* (object identity, or
        the ``_ark_vector_key`` equivalence tag, so per-seed registered
        closures never silently share one batch) — exactly the
        condition under
        which the batched ensemble engine (:mod:`repro.sim`) can evaluate
        them through one compiled RHS with per-instance attribute arrays.
        Mismatch seeds of the same Ark function invocation always agree;
        different topologies or switch states never do (switched-off
        edges change the compiled production terms).

        The signature is computed once and memoized: everything it
        reads is fixed at compile time, and ensemble grouping plus
        trajectory-cache keying call this per instance per run.
        """
        if self._signature is not None:
            return self._signature
        spec_keys = tuple(
            ("chain", spec.next_index) if isinstance(spec, ChainRhs)
            else ("terms", spec.reduction.value,
                  tuple(str(term) for term in spec.terms))
            for spec in self.rhs_specs)
        algebraic_keys = tuple(
            (spec.name, spec.reduction.value,
             tuple(str(term) for term in spec.terms))
            for spec in self.algebraic)
        function_keys = tuple(
            (name, getattr(fn, "_ark_vector_key", None) or id(fn))
            for name, fn in sorted(self.functions.items()))
        diffusion_keys = tuple(
            (term.state_index, str(term.amplitude), term.element,
             term.path)
            for term in self.diffusion)
        self._signature = (tuple(self.state_labels()), spec_keys,
                           algebraic_keys,
                           tuple(sorted(self.attr_values)),
                           function_keys, diffusion_keys)
        return self._signature

    def equations(self) -> list[str]:
        """Human-readable rendering of the compiled system, e.g. for
        documentation, debugging, and the quickstart example."""
        lines: list[str] = []
        for spec in self.algebraic:
            joiner = " + " if spec.reduction is Reduction.SUM else " * "
            body = joiner.join(str(t) for t in spec.terms) or \
                repr(spec.reduction.identity)
            lines.append(f"{spec.name} = {body}")
        for state, spec in zip(self.states, self.rhs_specs):
            if isinstance(spec, ChainRhs):
                target = self.states[spec.next_index].label
                lines.append(f"d {state.label}/dt = {target}")
            else:
                joiner = " + " if spec.reduction is Reduction.SUM \
                    else " * "
                body = joiner.join(str(t) for t in spec.terms) or \
                    repr(spec.reduction.identity)
                lines.append(f"d {state.label}/dt = {body}")
        for term in self.diffusion:
            label = self.states[term.state_index].label
            lines.append(f"d {label} += {term.amplitude} "
                         f"dW[{term.element}/{term.path}]")
        return lines

    # ------------------------------------------------------------------
    # Interpreter backend
    # ------------------------------------------------------------------

    def rhs_interpreted(self):
        """Right-hand side evaluated by walking the expression trees."""
        context = _RhsContext(self)
        specs = self.rhs_specs
        algebraic = self.algebraic
        n = self.n_states

        def rhs(t: float, y: np.ndarray) -> np.ndarray:
            context.bind(t, y)
            for spec in algebraic:
                value = spec.reduction.identity
                if spec.reduction is Reduction.SUM:
                    for term in spec.terms:
                        value += term.evaluate(context)
                else:
                    for term in spec.terms:
                        value *= term.evaluate(context)
                context.set_algebraic(spec.name, value)
            dy = np.empty(n)
            for index, spec in enumerate(specs):
                if isinstance(spec, ChainRhs):
                    dy[index] = y[spec.next_index]
                else:
                    value = spec.reduction.identity
                    if spec.reduction is Reduction.SUM:
                        for term in spec.terms:
                            value += term.evaluate(context)
                    else:
                        for term in spec.terms:
                            value *= term.evaluate(context)
                    dy[index] = value
            return dy

        return rhs

    # ------------------------------------------------------------------
    # Codegen backend
    # ------------------------------------------------------------------

    def _optimized_terms(self, terms: tuple[E.Expr, ...],
                         reduction: Reduction) -> list[E.Expr]:
        """Inline numeric attributes, simplify, and drop terms that the
        reduction's identity absorbs (see :func:`optimize_terms`)."""

        def lookup(kind, owner, attr):
            return self.attr_values.get((kind, owner, attr))

        return optimize_terms(terms, reduction, lookup)

    def generate_source(self, namespace: dict[str, object] | None = None,
                        ) -> str:
        """Emit the Python source of the flat RHS function (for tests and
        curiosity; :meth:`rhs_codegen` compiles it).

        Terms are optimized through :mod:`repro.core.simplify`: numeric
        attributes become inlined constants, constant subtrees fold, and
        identity-absorbed terms (zero-weight template edges, unit
        factors) disappear from the generated code. The interpreter
        backend keeps the raw trees, so the backend-equivalence property
        tests exercise this pass.
        """
        namespace = namespace if namespace is not None else {}
        codegen = _Codegen(self, namespace)
        lines = ["def _rhs(t, y, dy):"]
        for spec in self.algebraic:
            local = codegen.register_algebraic(spec.name)
            joiner = " + " if spec.reduction is Reduction.SUM else " * "
            terms = self._optimized_terms(spec.terms, spec.reduction)
            body = joiner.join(E.to_python(term, codegen)
                               for term in terms) or \
                repr(spec.reduction.identity)
            lines.append(f"    {local} = {body}")
        for index, spec in enumerate(self.rhs_specs):
            if isinstance(spec, ChainRhs):
                lines.append(f"    dy[{index}] = y[{spec.next_index}]")
            else:
                joiner = " + " if spec.reduction is Reduction.SUM \
                    else " * "
                terms = self._optimized_terms(spec.terms,
                                              spec.reduction)
                body = joiner.join(E.to_python(term, codegen)
                                   for term in terms) or \
                    repr(spec.reduction.identity)
                lines.append(f"    dy[{index}] = {body}")
        lines.append("    return dy")
        return "\n".join(lines)

    def rhs_codegen(self):
        """Right-hand side compiled to a flat Python function."""
        if self._compiled_rhs is None:
            namespace: dict[str, object] = {}
            source = self.generate_source(namespace)
            exec(compile(source, f"<ark:{self.graph.name}>", "exec"),
                 namespace)
            inner = namespace["_rhs"]
            n = self.n_states

            def rhs(t: float, y: np.ndarray) -> np.ndarray:
                return inner(t, y, np.empty(n))

            self._compiled_rhs = rhs
        return self._compiled_rhs

    def rhs(self, backend: str = "codegen"):
        """Select an RHS backend: ``codegen`` (default) or
        ``interpreter``."""
        if backend == "codegen":
            return self.rhs_codegen()
        if backend == "interpreter":
            return self.rhs_interpreted()
        raise CompileError(f"unknown RHS backend {backend!r}")

    def diffusion_values(self, t: float, y: np.ndarray) -> np.ndarray:
        """Interpret every diffusion amplitude at one state — the
        reference (unvectorized) evaluation the batched SDE codegen is
        cross-checked against. Returns one value per diffusion term."""
        context = _RhsContext(self)
        context.bind(t, np.asarray(y, dtype=float))
        for spec in self.algebraic:
            value = spec.reduction.identity
            if spec.reduction is Reduction.SUM:
                for term in spec.terms:
                    value += term.evaluate(context)
            else:
                for term in spec.terms:
                    value *= term.evaluate(context)
            context.set_algebraic(spec.name, value)
        return np.array([term.amplitude.evaluate(context)
                         for term in self.diffusion], dtype=float)

    def algebraic_values(self, t: float, y: np.ndarray) -> dict[str, float]:
        """Evaluate the order-0 node values at a given state — used to
        read outputs such as CNN ``Out`` nodes from trajectories."""
        context = _RhsContext(self)
        context.bind(t, np.asarray(y, dtype=float))
        values: dict[str, float] = {}
        for spec in self.algebraic:
            value = spec.reduction.identity
            if spec.reduction is Reduction.SUM:
                for term in spec.terms:
                    value += term.evaluate(context)
            else:
                for term in spec.terms:
                    value *= term.evaluate(context)
            context.set_algebraic(spec.name, value)
            values[spec.name] = value
        return values

    def __repr__(self) -> str:
        return (f"<OdeSystem {self.graph.name} states={self.n_states} "
                f"algebraic={len(self.algebraic)}>")
