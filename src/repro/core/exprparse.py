"""Parser for Ark math and boolean expressions.

Accepts the paper's concrete syntax as it appears in the language listings:

* ``-var(t)/s.c``
* ``e.wt*(-s.g*var(t)+s.fn(time))/t.c``
* ``-1.6e9*e.k*sin(var(s)-var(t))``
* ``if b then e else e'`` conditionals
* boolean operators ``and``/``or``/``not`` (also ``&&``/``||``/``!``)

Both ``time`` and ``times`` (Fig. 14 uses the latter) resolve to the
simulation time. The parser is shared by the production-rule API and the
textual front-end in :mod:`repro.lang`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core import expr as E
from repro.errors import ParseError

_TWO_CHAR_OPS = ("<=", ">=", "==", "!=", "&&", "||", "->")
_SINGLE_CHAR = "+-*/^().,<>!:[]{};="
_KEYWORDS = {"if", "then", "else", "and", "or", "not", "time", "times",
             "true", "false", "inf"}


@dataclass(frozen=True)
class Token:
    kind: str  # "num" | "ident" | "op" | "eof"
    text: str
    pos: int
    line: int
    column: int


def tokenize(source: str) -> list[Token]:
    """Split ``source`` into tokens, tracking line/column for errors."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch.isspace():
            i += 1
            continue
        if ch == "#" or source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        column = i - line_start + 1
        if ch.isdigit() or (ch == "." and i + 1 < n and
                            source[i + 1].isdigit()):
            j = i
            seen_exp = False
            while j < n:
                c = source[j]
                if c.isdigit() or c == ".":
                    j += 1
                elif c in "eE" and not seen_exp and j + 1 < n and (
                        source[j + 1].isdigit()
                        or (source[j + 1] in "+-" and j + 2 < n
                            and source[j + 2].isdigit())):
                    seen_exp = True
                    j += 1
                    if source[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token("num", source[i:j], i, line, column))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            # Identifiers never contain dashes at the lexer level: `a-b`
            # must tokenize as a subtraction so expressions like
            # `s.z-var(s)` (Fig. 10a) parse correctly. Dashed names from
            # the paper (br-func, gmc-tln, node-type...) are re-joined by
            # the program parser from *adjacent* tokens.
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            tokens.append(Token("ident", source[i:j], i, line, column))
            i = j
            continue
        matched = False
        for op in _TWO_CHAR_OPS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, i, line, column))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE_CHAR:
            tokens.append(Token("op", ch, i, line, column))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("eof", "", n, line, n - line_start + 1))
    return tokens


class TokenStream:
    """Cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    def peek(self, ahead: int = 0) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self._index += 1
        return token

    def at(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def at_ident(self, text: str) -> bool:
        return self.at("ident", text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.peek()
        if not self.at(kind, text):
            expected = text or kind
            raise ParseError(
                f"expected {expected!r}, found {token.text or token.kind!r}",
                token.line, token.column)
        return self.next()

    def error(self, message: str):
        token = self.peek()
        raise ParseError(message, token.line, token.column)


class ExpressionParser:
    """Recursive-descent parser producing :mod:`repro.core.expr` trees."""

    def __init__(self, stream: TokenStream):
        self.stream = stream

    # expr := if-expr | or-expr
    def parse(self) -> E.Expr:
        if self.stream.at_ident("if"):
            return self._if_expr()
        return self._or_expr()

    def _if_expr(self) -> E.Expr:
        self.stream.expect("ident", "if")
        cond = self._or_expr()
        self.stream.expect("ident", "then")
        then = self.parse()
        self.stream.expect("ident", "else")
        orelse = self.parse()
        return E.IfThenElse(cond, then, orelse)

    def _or_expr(self) -> E.Expr:
        left = self._and_expr()
        while self.stream.at_ident("or") or self.stream.at("op", "||"):
            self.stream.next()
            left = E.BoolOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> E.Expr:
        left = self._not_expr()
        while self.stream.at_ident("and") or self.stream.at("op", "&&"):
            self.stream.next()
            left = E.BoolOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> E.Expr:
        if self.stream.at_ident("not") or self.stream.at("op", "!"):
            self.stream.next()
            return E.Not(self._not_expr())
        return self._comparison()

    def _comparison(self) -> E.Expr:
        left = self._additive()
        for op in ("<=", ">=", "==", "!=", "<", ">"):
            if self.stream.at("op", op):
                self.stream.next()
                return E.Compare(op, left, self._additive())
        return left

    def _additive(self) -> E.Expr:
        left = self._multiplicative()
        while self.stream.at("op", "+") or self.stream.at("op", "-"):
            op = self.stream.next().text
            left = E.BinOp(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> E.Expr:
        left = self._unary()
        while self.stream.at("op", "*") or self.stream.at("op", "/"):
            op = self.stream.next().text
            left = E.BinOp(op, left, self._unary())
        return left

    def _unary(self) -> E.Expr:
        if self.stream.at("op", "-"):
            self.stream.next()
            return E.UnOp("-", self._unary())
        if self.stream.at("op", "+"):
            self.stream.next()
            return self._unary()
        return self._power()

    def _power(self) -> E.Expr:
        base = self._postfix()
        if self.stream.at("op", "^"):
            self.stream.next()
            return E.BinOp("^", base, self._unary())
        return base

    def _postfix(self) -> E.Expr:
        node = self._atom()
        while True:
            if self.stream.at("op", "."):
                self.stream.next()
                attr = self.stream.expect("ident").text
                if not isinstance(node, E.NameRef):
                    self.stream.error(
                        "attribute access requires a plain element name on "
                        "the left of `.`")
                node = E.AttrRef(node.name, attr)
            elif self.stream.at("op", "("):
                node = self._call(node)
            else:
                return node

    def _call(self, callee: E.Expr) -> E.Expr:
        self.stream.expect("op", "(")
        args: list[E.Expr] = []
        if not self.stream.at("op", ")"):
            args.append(self.parse())
            while self.stream.accept("op", ","):
                args.append(self.parse())
        self.stream.expect("op", ")")
        if isinstance(callee, E.AttrRef):
            return E.LambdaCall(callee, tuple(args))
        if isinstance(callee, E.NameRef):
            if callee.name == "var":
                if len(args) != 1 or not isinstance(args[0], E.NameRef):
                    self.stream.error(
                        "var(.) takes exactly one node name")
                return E.VarOf(args[0].name)
            return E.Call(callee.name, tuple(args))
        self.stream.error("only named functions and lambda attributes can "
                          "be called")
        raise AssertionError("unreachable")

    def _atom(self) -> E.Expr:
        token = self.stream.peek()
        if token.kind == "num":
            self.stream.next()
            return E.Const(float(token.text))
        if token.kind == "ident":
            if token.text in ("time", "times"):
                self.stream.next()
                return E.Time()
            if token.text == "true":
                self.stream.next()
                return E.BoolConst(True)
            if token.text == "false":
                self.stream.next()
                return E.BoolConst(False)
            if token.text == "inf":
                self.stream.next()
                return E.Const(math.inf)
            self.stream.next()
            return E.NameRef(token.text)
        if token.kind == "op" and token.text == "(":
            self.stream.next()
            inner = self.parse()
            self.stream.expect("op", ")")
            return inner
        self.stream.error(
            f"expected an expression, found {token.text or token.kind!r}")
        raise AssertionError("unreachable")


def parse_expression(source) -> E.Expr:
    """Parse ``source`` into an expression tree.

    Accepts either a string or an already-built :class:`~repro.core.expr.Expr`
    (which is returned unchanged), so every rule-construction API can take
    both forms.
    """
    if isinstance(source, E.Expr):
        return source
    stream = TokenStream(tokenize(source))
    parser = ExpressionParser(stream)
    tree = parser.parse()
    trailing = stream.peek()
    if trailing.kind != "eof":
        raise ParseError(
            f"unexpected trailing input {trailing.text!r}",
            trailing.line, trailing.column)
    return tree
