"""Transient simulation of compiled Ark programs.

Wraps :func:`scipy.integrate.solve_ivp` around an
:class:`~repro.core.odesystem.OdeSystem` and packages the result as a
:class:`Trajectory` addressable by node name. :func:`simulate_ensemble`
runs seeded Monte-Carlo sweeps over fabricated instances — the workflow
behind the paper's mismatch studies (Figs. 4c/4d, 11c, Table 1) — and
delegates to the batched ensemble engine in :mod:`repro.sim`, which
integrates structurally identical instances through one vectorized RHS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp

from repro.core.compiler import compile_graph
from repro.core.graph import DynamicalGraph
from repro.core.odesystem import OdeSystem
from repro.errors import SimulationError


def check_sample_times(times: np.ndarray, t: np.ndarray):
    """Reject interpolation requests outside ``[t[0], t[-1]]`` (allowing
    a relative fuzz for floating-point grid endpoints). ``np.interp``
    clamps out-of-range times to the endpoint values, so sampling past
    the integrated span would silently extrapolate a constant."""
    if times.size == 0:
        return
    tolerance = 1e-9 * max(abs(t[0]), abs(t[-1]), t[-1] - t[0])
    low, high = np.min(times), np.max(times)
    if low < t[0] - tolerance or high > t[-1] + tolerance:
        raise SimulationError(
            f"requested sample times span [{low:.6g}, {high:.6g}] but "
            f"the trajectory covers [{t[0]:.6g}, {t[-1]:.6g}]; "
            "interpolation outside the integrated range would silently "
            "extrapolate a constant")


@dataclass
class Trajectory:
    """A simulated transient: times plus the full state matrix."""

    t: np.ndarray
    y: np.ndarray  # shape (n_states, len(t))
    system: OdeSystem

    def __getitem__(self, node: str) -> np.ndarray:
        """Trajectory of a node's value (0th derivative)."""
        return self.state(node, 0)

    def state(self, node: str, deriv: int = 0) -> np.ndarray:
        return self.y[self.system.index_of(node, deriv)]

    def initial(self, node: str, deriv: int = 0) -> float:
        return float(self.state(node, deriv)[0])

    def final(self, node: str, deriv: int = 0) -> float:
        return float(self.state(node, deriv)[-1])

    def final_state(self) -> np.ndarray:
        return self.y[:, -1].copy()

    def sample(self, node: str, times, deriv: int = 0) -> np.ndarray:
        """Linear interpolation of a node's trajectory at given times.
        Times outside ``[t[0], t[-1]]`` raise instead of silently
        clamping to the endpoint values."""
        times = np.asarray(times, dtype=float)
        check_sample_times(times, self.t)
        return np.interp(times, self.t, self.state(node, deriv))

    def window(self, node: str, t_start: float, t_end: float,
               ) -> tuple[np.ndarray, np.ndarray]:
        """The (t, value) samples falling inside [t_start, t_end]."""
        mask = (self.t >= t_start) & (self.t <= t_end)
        return self.t[mask], self.state(node)[mask]

    def algebraic(self, node: str) -> np.ndarray:
        """Trajectory of an order-0 node (recomputed from the states).

        Evaluated over the whole ``(n_states, n_t)`` matrix in one
        vectorized pass: the batched ensemble codegen
        (:mod:`repro.sim.batch_codegen`) is reused with *time* as the
        batch axis. Systems whose algebraic expressions defeat
        vectorization fall back to the per-sample interpreter loop.
        """
        batch = getattr(self.system, "_algebraic_batch", None)
        if batch is None:
            from repro.sim.batch_codegen import compile_batch
            try:
                batch = compile_batch([self.system])
            except Exception:
                batch = False
            self.system._algebraic_batch = batch
        if batch is not False:
            try:
                values = batch.algebraic_values(self.t, self.y.T)
            except Exception:
                self.system._algebraic_batch = False
            else:
                # Outside the except: an unknown node name is a caller
                # error and must not poison the vectorized-path cache.
                return values[node]
        values = np.empty(len(self.t))
        for k, (tk, yk) in enumerate(zip(self.t, self.y.T)):
            values[k] = self.system.algebraic_values(tk, yk)[node]
        return values

    @property
    def n_points(self) -> int:
        return len(self.t)


def simulate(target: OdeSystem | DynamicalGraph, t_span: tuple[float, float],
             n_points: int = 500, method: str = "RK45",
             rtol: float = 1e-7, atol: float = 1e-9,
             backend: str = "codegen", t_eval=None,
             max_step: float | None = None) -> Trajectory:
    """Simulate the transient dynamics over ``t_span``.

    :param target: a compiled system or a dynamical graph (compiled with
        its own language when a graph is given).
    :param n_points: number of evenly spaced output samples (ignored when
        ``t_eval`` is provided).
    :param method: any solve_ivp method (RK45, LSODA, Radau, BDF...).
    :param backend: RHS backend, ``codegen`` or ``interpreter``.
    :param max_step: solver step cap. Defaults to 1/64 of the span so
        brief input events (e.g. a short pulse into a quiescent line,
        where ``f(t0, y0) = 0`` makes scipy pick a huge first step)
        cannot be stepped over. Pass ``numpy.inf`` to lift the cap.

    Stochastic systems (``system.has_noise``) integrate *drift-only*
    here — the deterministic noise-free reference; use
    :func:`repro.sim.solve_sde` / :func:`repro.simulate_sde` to
    realize their transient noise.
    """
    system = (compile_graph(target)
              if isinstance(target, DynamicalGraph) else target)
    t0, t1 = float(t_span[0]), float(t_span[1])
    if not t1 > t0:
        raise SimulationError(f"empty time span [{t0}, {t1}]")
    if t_eval is None:
        if int(n_points) < 2:
            raise SimulationError(
                f"n_points must be >= 2 to span [{t0}, {t1}], got "
                f"{n_points} (a degenerate grid would skip integration "
                "and return only y0)")
        t_eval = np.linspace(t0, t1, int(n_points))
    options: dict = {}
    if max_step is None:
        max_step = (t1 - t0) / 64.0
    if np.isfinite(max_step):
        options["max_step"] = max_step
    solution = solve_ivp(system.rhs(backend), (t0, t1), system.y0,
                         method=method, t_eval=np.asarray(t_eval),
                         rtol=rtol, atol=atol, **options)
    if not solution.success:
        raise SimulationError(
            f"solve_ivp failed for {system.graph.name}: "
            f"{solution.message}")
    return Trajectory(t=solution.t, y=solution.y, system=system)


def simulate_ensemble(factory, seeds, t_span, engine: str = "batch",
                      processes: int | None = None,
                      **simulate_options) -> list[Trajectory]:
    """Simulate one fabricated instance per seed.

    Built on the batched ensemble engine (:mod:`repro.sim`):
    structurally identical instances — the common case for mismatch
    seeds of one Ark function — are integrated through a single
    vectorized RHS, while incompatible instances fall back to serial
    scipy solves. The return value keeps the legacy shape (one
    :class:`Trajectory` per seed, input order); use
    :func:`repro.sim.run_ensemble` directly for the stacked
    :class:`~repro.sim.batch_solver.BatchTrajectory` storage and
    ensemble statistics.

    :param factory: ``factory(seed) -> DynamicalGraph | OdeSystem``; the
        paper's workflow re-invokes an Ark function with varying seeds to
        model multiple fabricated chips (§4.3).
    :param seeds: iterable of mismatch seeds.
    :param engine: execution backend — ``batch`` (default), ``serial``
        (one scipy solve per seed, the historical behavior), ``shard``,
        or ``auto`` (see :mod:`repro.sim.plan`). Unknown names raise
        :class:`ValueError` instead of silently falling back to the
        serial path.
    :param processes: optional multiprocessing fan-out for instances
        that cannot be batched.
    :param simulate_options: forwarded to the engine/serial solver —
        ``n_points``, ``method``, ``rtol``, ``atol``, ``backend``,
        ``t_eval``, ``max_step``. Passing a scipy method name (e.g.
        ``LSODA``) forces the serial path for every instance.
    """
    from repro.sim.ensemble import run_ensemble

    options = dict(simulate_options)
    options.setdefault("method", "auto")
    result = run_ensemble(factory, seeds, t_span, engine=engine,
                          processes=processes, **options)
    return result.trajectories
