"""The dynamical graph (DG) intermediate representation (§3).

A DG is a typed, directed graph. Nodes map to variables of the underlying
dynamical system; edges contribute terms to the differential equations of
the nodes they connect. Nodes and edges carry attribute values (resolved —
i.e. post-mismatch — alongside the nominal values written by the program)
and nodes carry initial values for each derivative.

Edges are switchable unless their type is ``fixed`` (§4.3): an edge that is
switched off is excluded from the realized topology, but still contributes
the language's ``off`` production rules (modeling, e.g., leakage through an
open switch).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.language import Language
from repro.core.types import EdgeType, NodeType
from repro.errors import GraphError


@dataclass
class Node:
    """A graph node: one variable of the dynamical system."""

    name: str
    type: NodeType
    attrs: dict[str, object] = field(default_factory=dict)
    nominal_attrs: dict[str, object] = field(default_factory=dict)
    inits: dict[int, float] = field(default_factory=dict)
    nominal_inits: dict[int, float] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"<Node {self.name}:{self.type.name}>"


@dataclass
class Edge:
    """A graph edge: a coupling between two variables."""

    name: str
    type: EdgeType
    src: str
    dst: str
    attrs: dict[str, object] = field(default_factory=dict)
    nominal_attrs: dict[str, object] = field(default_factory=dict)
    on: bool = True

    @property
    def is_self(self) -> bool:
        """True for self-referencing edges (``⟳ n`` in §3)."""
        return self.src == self.dst

    def __repr__(self) -> str:
        state = "" if self.on else " (off)"
        return (f"<Edge {self.name}:{self.type.name} "
                f"{self.src}->{self.dst}{state}>")


class DynamicalGraph:
    """A dynamical graph bound to the language that produced it."""

    def __init__(self, language: Language, name: str = "dg"):
        self.language = language
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._edges: dict[str, Edge] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, name: str, type_name) -> Node:
        if name in self._nodes:
            raise GraphError(f"duplicate node name {name}")
        node_type = (type_name if isinstance(type_name, NodeType)
                     else self.language.find_node_type(str(type_name)))
        if node_type is None:
            raise GraphError(
                f"unknown node type {type_name!r} in language "
                f"{self.language.name}")
        node = Node(name, node_type)
        self._nodes[name] = node
        return node

    def add_edge(self, name: str, src: str, dst: str, type_name) -> Edge:
        if name in self._edges:
            raise GraphError(f"duplicate edge name {name}")
        if src not in self._nodes:
            raise GraphError(f"edge {name}: unknown source node {src}")
        if dst not in self._nodes:
            raise GraphError(f"edge {name}: unknown destination node {dst}")
        edge_type = (type_name if isinstance(type_name, EdgeType)
                     else self.language.find_edge_type(str(type_name)))
        if edge_type is None:
            raise GraphError(
                f"unknown edge type {type_name!r} in language "
                f"{self.language.name}")
        edge = Edge(name, edge_type, src, dst)
        self._edges[name] = edge
        return edge

    def set_switch(self, edge_name: str, on: bool):
        """Turn a switchable edge on or off (``set-switch``, §4.2)."""
        edge = self.edge(edge_name)
        if edge.type.fixed and not on:
            raise GraphError(
                f"edge {edge_name} has fixed type {edge.type.name}; "
                "non-programmable switches are always on (§4.3)")
        edge.on = bool(on)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(f"unknown node {name}") from None

    def edge(self, name: str) -> Edge:
        try:
            return self._edges[name]
        except KeyError:
            raise GraphError(f"unknown edge {name}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def has_edge(self, name: str) -> bool:
        return name in self._edges

    @property
    def nodes(self) -> list[Node]:
        return list(self._nodes.values())

    @property
    def edges(self) -> list[Edge]:
        return list(self._edges.values())

    def node_names(self) -> list[str]:
        return list(self._nodes)

    def edges_of(self, node_name: str, *, include_off: bool = False,
                 ) -> list[Edge]:
        """Every edge incident to the node (incoming, outgoing, self)."""
        self.node(node_name)
        found = []
        for edge in self._edges.values():
            if not include_off and not edge.on:
                continue
            if edge.src == node_name or edge.dst == node_name:
                found.append(edge)
        return found

    def in_edges(self, node_name: str, *, include_off: bool = False,
                 ) -> list[Edge]:
        """Non-self incoming edges of the node."""
        return [e for e in self.edges_of(node_name, include_off=include_off)
                if e.dst == node_name and not e.is_self]

    def out_edges(self, node_name: str, *, include_off: bool = False,
                  ) -> list[Edge]:
        """Non-self outgoing edges of the node."""
        return [e for e in self.edges_of(node_name, include_off=include_off)
                if e.src == node_name and not e.is_self]

    def self_edges(self, node_name: str, *, include_off: bool = False,
                   ) -> list[Edge]:
        """Self-referencing edges of the node."""
        return [e for e in self.edges_of(node_name, include_off=include_off)
                if e.is_self]

    def off_edges(self) -> list[Edge]:
        """Edges currently switched off."""
        return [e for e in self._edges.values() if not e.on]

    # ------------------------------------------------------------------
    # Completeness
    # ------------------------------------------------------------------

    def apply_defaults(self):
        """Fill unset attributes and initial values from the type-level
        defaults. Called before :meth:`check_complete`."""
        for node in self._nodes.values():
            for attr_name, decl in node.type.attrs.items():
                if attr_name not in node.attrs and decl.default is not None:
                    node.attrs[attr_name] = decl.default
                    node.nominal_attrs[attr_name] = decl.default
            for index, decl in node.type.inits.items():
                if index not in node.inits and decl.default is not None:
                    node.inits[index] = decl.default
                    node.nominal_inits[index] = decl.default
        for edge in self._edges.values():
            for attr_name, decl in edge.type.attrs.items():
                if attr_name not in edge.attrs and decl.default is not None:
                    edge.attrs[attr_name] = decl.default
                    edge.nominal_attrs[attr_name] = decl.default

    def check_complete(self):
        """Ensure every declared attribute and initial value is set.

        Mirrors the §4.2 semantic check that "all attributes and initial
        values defined in the node/edge type are set for each node".
        """
        problems: list[str] = []
        for node in self._nodes.values():
            for attr_name in node.type.attrs:
                if attr_name not in node.attrs:
                    problems.append(
                        f"node {node.name}: attribute {attr_name} unset")
            for index in range(node.type.order):
                if index not in node.inits:
                    problems.append(
                        f"node {node.name}: init({index}) unset")
        for edge in self._edges.values():
            for attr_name in edge.type.attrs:
                if attr_name not in edge.attrs:
                    problems.append(
                        f"edge {edge.name}: attribute {attr_name} unset")
        if problems:
            raise GraphError("incomplete dynamical graph: "
                             + "; ".join(problems))

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------

    def copy(self, name: str | None = None) -> "DynamicalGraph":
        """Deep-enough copy (attribute dicts are copied, types shared)."""
        clone = DynamicalGraph(self.language, name or self.name)
        for node in self._nodes.values():
            copied = clone.add_node(node.name, node.type)
            copied.attrs = dict(node.attrs)
            copied.nominal_attrs = dict(node.nominal_attrs)
            copied.inits = dict(node.inits)
            copied.nominal_inits = dict(node.nominal_inits)
        for edge in self._edges.values():
            copied = clone.add_edge(edge.name, edge.src, edge.dst,
                                    edge.type)
            copied.attrs = dict(edge.attrs)
            copied.nominal_attrs = dict(edge.nominal_attrs)
            copied.on = edge.on
        return clone

    def stats(self) -> dict[str, int]:
        """Node/edge counts, useful in reports and tests."""
        return {
            "nodes": len(self._nodes),
            "edges": len(self._edges),
            "off_edges": len(self.off_edges()),
            "states": sum(n.type.order for n in self._nodes.values()),
        }

    def __repr__(self) -> str:
        counts = self.stats()
        return (f"<DynamicalGraph {self.name} lang={self.language.name} "
                f"nodes={counts['nodes']} edges={counts['edges']}>")
