"""Progressive rewriting: substituting derived types into a graph (§2.4).

"Ark's inheritance system ensures ... nodes derived from TLN language
nodes can be substituted into the dynamical graph." This module provides
that substitution as a graph-to-graph transformation: given a type
mapping (e.g. ``{"V": "Vm", "I": "Im"}`` or ``{"E": "Em"}``), every
matching node/edge is rebuilt with the derived type, its attribute
*nominal* values are re-written (so mismatch annotations on the derived
type re-sample under the provided seed), and newly introduced attributes
are filled from the supplied defaults.

The paper's Fig. 5 workflow — take the ideal linear t-line, swap in
``Vm``/``Im`` or ``Em`` — becomes::

    ideal = linear_tline()
    cint = substitute_types(ideal, {"V": "Vm", "I": "Im"},
                            language=gmc_tln_language(), seed=7)
    gm = substitute_types(ideal, {"E": "Em"},
                          language=gmc_tln_language(), seed=7,
                          new_attrs={"ws": 1.0, "wt": 1.0})
"""

from __future__ import annotations

from repro.core.builder import GraphBuilder
from repro.core.graph import DynamicalGraph
from repro.core.language import Language
from repro.errors import GraphError, InheritanceError


def substitute_types(graph: DynamicalGraph, mapping: dict[str, str], *,
                     language: Language | None = None,
                     seed: int | None = None,
                     new_attrs: dict[str, object] | None = None,
                     only: set[str] | None = None) -> DynamicalGraph:
    """Rebuild ``graph`` with derived types substituted in.

    :param mapping: old type name -> new type name. New types must be
        subtypes of the old ones (the §4.1.1 compatibility guarantee).
    :param language: the (derived) language the result is written in;
        defaults to the graph's language, which must already know the
        new types.
    :param seed: mismatch seed used when re-writing attribute values
        onto mismatch-annotated declarations.
    :param new_attrs: values for attributes that exist on the new types
        but not on the old ones (e.g. ``Em``'s ``ws``/``wt``).
    :param only: restrict substitution to these element names (partial,
        truly *progressive* rewriting); None substitutes every match.
    """
    language = language or graph.language
    new_attrs = dict(new_attrs or {})

    resolved: dict[str, tuple] = {}
    for old_name, new_name in mapping.items():
        old_node = language.find_node_type(old_name)
        old_edge = language.find_edge_type(old_name)
        new_node = language.find_node_type(new_name)
        new_edge = language.find_edge_type(new_name)
        if old_node is not None and new_node is not None:
            if not new_node.is_subtype_of(old_node):
                raise InheritanceError(
                    f"substitution {old_name} -> {new_name}: "
                    f"{new_name} does not derive from {old_name}")
            resolved[old_name] = ("node", new_node)
        elif old_edge is not None and new_edge is not None:
            if not new_edge.is_subtype_of(old_edge):
                raise InheritanceError(
                    f"substitution {old_name} -> {new_name}: "
                    f"{new_name} does not derive from {old_name}")
            resolved[old_name] = ("edge", new_edge)
        else:
            raise GraphError(
                f"substitution {old_name} -> {new_name}: both names "
                f"must resolve to node types or to edge types in "
                f"language {language.name}")

    builder = GraphBuilder(language, f"{graph.name}*", seed=seed)

    for node in graph.nodes:
        target = resolved.get(node.type.name)
        substitute = (target is not None and target[0] == "node"
                      and (only is None or node.name in only))
        node_type = target[1] if substitute else node.type
        builder.node(node.name, node_type)
        for attr in node_type.attrs:
            if attr in node.nominal_attrs:
                builder.set_attr(node.name, attr,
                                 node.nominal_attrs[attr])
            elif attr in new_attrs:
                builder.set_attr(node.name, attr, new_attrs[attr])
        for index, value in node.nominal_inits.items():
            builder.set_init(node.name, value, index=index)

    for edge in graph.edges:
        target = resolved.get(edge.type.name)
        substitute = (target is not None and target[0] == "edge"
                      and (only is None or edge.name in only))
        edge_type = target[1] if substitute else edge.type
        builder.edge(edge.src, edge.dst, edge.name, edge_type)
        for attr in edge_type.attrs:
            if attr in edge.nominal_attrs:
                builder.set_attr(edge.name, attr,
                                 edge.nominal_attrs[attr])
            elif attr in new_attrs:
                builder.set_attr(edge.name, attr, new_attrs[attr])
        if not edge.on:
            builder.set_switch(edge.name, False)

    return builder.finish()
