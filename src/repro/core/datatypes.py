"""Bounded datatypes of the Ark language (Fig. 6, lines 1-2).

Ark values are bounded reals ``real[x0,x1]``, bounded integers
``int[i0,i1]``, or function values ``lambd(v*)``. Reals and integers may
carry a mismatch annotation ``mm(s0,s1)`` (§4.3) that models process
variation: assigning a nominal value ``x`` to a mismatched attribute stores a
sample from ``N(x, s0 + |x|*s1)`` instead.

They may additionally carry a *transient-noise* annotation
``ns(sigma[,kind])``: where mismatch perturbs the stored value once at
fabrication time, noise makes the parameter fluctuate *during* the
transient. The compiler lowers each production term that references a
noise-annotated attribute to a diffusion term of a stochastic
differential equation (see :mod:`repro.core.compiler` and
:mod:`repro.sim.sde_solver`), to first order in the fluctuation.

The paper's §4.3 prose writes the standard deviation as ``x*s0 + s1``, but
every usage in the paper (``mm(0,0.1)`` described as "10% relative
mismatch", ``mm(0.02,0)`` producing a real offset on a nominal-0 attribute)
is only consistent with ``s0`` absolute and ``s1`` relative. We implement
``sigma = s0 + |x|*s1``; see DESIGN.md §5.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import DatatypeError

#: Unbounded end of a range, usable as either bound.
INF = math.inf


@dataclass(frozen=True)
class Mismatch:
    """Process-variation annotation ``mm(s0, s1)``.

    :param s0: absolute component of the standard deviation.
    :param s1: relative component (multiplied by ``|x|``).
    """

    s0: float
    s1: float

    def __post_init__(self):
        if self.s0 < 0 or self.s1 < 0:
            raise DatatypeError(
                f"mismatch deviations must be non-negative, got "
                f"mm({self.s0}, {self.s1})")

    def sigma(self, nominal: float) -> float:
        """Standard deviation used when a nominal value is assigned."""
        return self.s0 + abs(nominal) * self.s1

    def __str__(self) -> str:
        return f"mm({self.s0},{self.s1})"


@dataclass(frozen=True)
class Noise:
    """Transient-noise annotation ``ns(sigma, kind)``.

    Models thermal fluctuation of a device parameter during the
    transient: the annotated attribute's value ``a`` is read as
    ``a + amplitude(a) * xi(t)`` with ``xi`` white noise, so every
    production term referencing it picks up a diffusion term (to first
    order, i.e. assuming the term has power ±1 in the parameter — true
    for the conductance/capacitance/coupling forms of the shipped
    paradigm languages).

    :param sigma: fluctuation strength (units of the attribute per
        √second for ``abs``, dimensionless per √second for ``rel``).
    :param kind: ``"abs"`` — amplitude is ``sigma`` regardless of the
        stored value; ``"rel"`` — amplitude is ``sigma * |a|`` (the
        well-conditioned common case, e.g. 1% RMS parameter
        fluctuation).
    """

    sigma: float
    kind: str = "abs"

    KINDS = ("abs", "rel")

    def __post_init__(self):
        if self.sigma < 0:
            raise DatatypeError(
                f"noise deviation must be non-negative, got "
                f"ns({self.sigma}, {self.kind})")
        if self.kind not in self.KINDS:
            raise DatatypeError(
                f"unknown noise kind {self.kind!r}; expected one of "
                f"{', '.join(self.KINDS)}")

    def amplitude(self, value: float) -> float:
        """Fluctuation amplitude when the stored value is ``value``."""
        if self.kind == "rel":
            return self.sigma * abs(value)
        return self.sigma

    def __str__(self) -> str:
        if self.kind == "abs":
            return f"ns({self.sigma})"
        return f"ns({self.sigma},{self.kind})"


@dataclass(frozen=True)
class RealType:
    """Bounded real datatype ``real[lo,hi]`` with optional mismatch."""

    lo: float
    hi: float
    mismatch: Mismatch | None = None
    noise: Noise | None = None

    def __post_init__(self):
        if self.lo > self.hi:
            raise DatatypeError(
                f"real range is empty: [{self.lo}, {self.hi}]")

    def check(self, value: object, context: str = "value") -> float:
        """Validate ``value`` against this datatype and return it as float.

        Range checks apply to the *nominal* value; mismatch sampling happens
        afterwards and may leave the range (the paper assigns ``real[1,1]
        mm(0,0.1)``, whose samples necessarily leave ``[1,1]``).
        """
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise DatatypeError(
                f"{context}: expected a real number, got {value!r}")
        value = float(value)
        if math.isnan(value):
            raise DatatypeError(f"{context}: NaN is not a valid real value")
        if not (self.lo <= value <= self.hi):
            raise DatatypeError(
                f"{context}: {value} outside declared range "
                f"[{self.lo}, {self.hi}]")
        return value

    def is_subrange_of(self, other: "RealType") -> bool:
        """True when this range is contained in ``other``'s range.

        Used by the inheritance checker: an overriding attribute "must ...
        operate on a smaller value range than the parent attribute"
        (non-strict containment; the paper's own GmC-TLN override keeps the
        parent's exact range).
        """
        return other.lo <= self.lo and self.hi <= other.hi

    def __str__(self) -> str:
        base = f"real[{self.lo},{self.hi}]"
        if self.mismatch is not None:
            base += f" {self.mismatch}"
        if self.noise is not None:
            base += f" {self.noise}"
        return base


@dataclass(frozen=True)
class IntType:
    """Bounded integer datatype ``int[lo,hi]`` with optional mismatch."""

    lo: int
    hi: int
    mismatch: Mismatch | None = None
    noise: Noise | None = None

    def __post_init__(self):
        if self.lo > self.hi:
            raise DatatypeError(
                f"int range is empty: [{self.lo}, {self.hi}]")

    def check(self, value: object, context: str = "value") -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            if isinstance(value, float) and value.is_integer():
                value = int(value)
            else:
                raise DatatypeError(
                    f"{context}: expected an integer, got {value!r}")
        if not (self.lo <= value <= self.hi):
            raise DatatypeError(
                f"{context}: {value} outside declared range "
                f"[{self.lo}, {self.hi}]")
        return int(value)

    def is_subrange_of(self, other: "IntType") -> bool:
        return other.lo <= self.lo and self.hi <= other.hi

    def __str__(self) -> str:
        base = f"int[{self.lo},{self.hi}]"
        if self.mismatch is not None:
            base += f" {self.mismatch}"
        if self.noise is not None:
            base += f" {self.noise}"
        return base


@dataclass(frozen=True)
class LambdaType:
    """Function datatype ``lambd(v*)``: ``arity`` real arguments, real
    result. Assigned values must be Python callables of that arity."""

    arity: int

    def __post_init__(self):
        if self.arity < 0:
            raise DatatypeError("lambda arity must be non-negative")

    def check(self, value: object, context: str = "value"):
        if not callable(value):
            raise DatatypeError(
                f"{context}: expected a callable of {self.arity} argument(s),"
                f" got {value!r}")
        return value

    def is_subrange_of(self, other: "LambdaType") -> bool:
        """Lambda types are compatible only with identical arity."""
        return self.arity == other.arity

    def __str__(self) -> str:
        args = ",".join(f"a{i}" for i in range(self.arity))
        return f"lambd({args})"


#: Union of the three Ark datatypes.
Datatype = RealType | IntType | LambdaType


def _noise_annotation(ns) -> Noise | None:
    if ns is None or isinstance(ns, Noise):
        return ns
    if isinstance(ns, (int, float)):
        return Noise(float(ns))
    return Noise(*ns)


def real(lo: float, hi: float, mm: tuple[float, float] | None = None,
         ns: "Noise | float | tuple | None" = None) -> RealType:
    """Convenience constructor mirroring ``real[lo,hi] mm(s0,s1)
    ns(sigma,kind)``; ``ns`` accepts a :class:`Noise`, a bare sigma, or
    a ``(sigma, kind)`` tuple."""
    annotation = Mismatch(*mm) if mm is not None else None
    return RealType(float(lo), float(hi), annotation,
                    _noise_annotation(ns))


def integer(lo: int, hi: int, mm: tuple[float, float] | None = None,
            ns: "Noise | float | tuple | None" = None) -> IntType:
    """Convenience constructor mirroring ``int[lo,hi]``."""
    annotation = Mismatch(*mm) if mm is not None else None
    return IntType(int(lo), int(hi), annotation, _noise_annotation(ns))


def lambd(arity: int) -> LambdaType:
    """Convenience constructor mirroring ``lambd(a0,...)``."""
    return LambdaType(arity)


def same_kind(a: Datatype, b: Datatype) -> bool:
    """True when two datatypes are of the same kind (real/int/lambda).

    Inheritance requires overridden attributes to "retain the same datatype
    (real, integer, lambda)".
    """
    return type(a) is type(b)
