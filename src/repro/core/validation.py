"""Local validity rules (§4.1, Fig. 6 lines 10-15).

A ``cstr vn:NT { acc [match...] rej [match...] }`` rule constrains every
node of type ``NT``. The node is valid when it is *described by* at least
one accepted pattern and by no rejected pattern. A node is described by a
pattern when its incident edges can be partitioned among the pattern's
clauses such that every clause receives between ``lo`` and ``hi`` matching
edges (§6; solved in :mod:`repro.core.validator`).

Clause forms (Fig. 6 lines 11-13):

* ``match(lo,hi,ET, vn->[NT*])`` — outgoing edges to nodes of the listed
  types;
* ``match(lo,hi,ET, [NT*]->vn)`` — incoming edges from the listed types;
* ``match(lo,hi,ET)`` / ``match(lo,hi,ET,vn)`` — self-referencing edges.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.errors import LanguageError

#: Direction of a match clause relative to the constrained node.
OUT, IN, SELF = "out", "in", "self"


@dataclass(frozen=True)
class MatchClause:
    """One ``match`` clause of a validity pattern."""

    lo: float
    hi: float
    edge_type: str
    kind: str  # OUT | IN | SELF
    node_types: tuple[str, ...] = ()

    def __post_init__(self):
        if self.kind not in (OUT, IN, SELF):
            raise LanguageError(f"unknown match direction {self.kind!r}")
        if self.lo < 0 or self.hi < self.lo:
            raise LanguageError(
                f"match cardinality [{self.lo},{self.hi}] is invalid")
        if self.kind != SELF and not self.node_types:
            raise LanguageError(
                "in/out match clauses need at least one peer node type")

    def describe(self) -> str:
        hi = "inf" if math.isinf(self.hi) else str(int(self.hi))
        lo = str(int(self.lo))
        types = ",".join(self.node_types)
        if self.kind == SELF:
            return f"match({lo},{hi},{self.edge_type})"
        if self.kind == OUT:
            return f"match({lo},{hi},{self.edge_type},vn->[{types}])"
        return f"match({lo},{hi},{self.edge_type},[{types}]->vn)"

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class Pattern:
    """An accepted (``acc``) or rejected (``rej``) pattern."""

    polarity: str  # "acc" | "rej"
    clauses: tuple[MatchClause, ...]

    def __post_init__(self):
        if self.polarity not in ("acc", "rej"):
            raise LanguageError(
                f"pattern polarity must be acc or rej, got "
                f"{self.polarity!r}")

    def __str__(self) -> str:
        body = ",".join(c.describe() for c in self.clauses)
        return f"{self.polarity}[{body}]"


@dataclass(frozen=True)
class ConstraintRule:
    """A ``cstr`` rule over one node type."""

    node_type: str
    patterns: tuple[Pattern, ...]

    @property
    def accepted(self) -> tuple[Pattern, ...]:
        return tuple(p for p in self.patterns if p.polarity == "acc")

    @property
    def rejected(self) -> tuple[Pattern, ...]:
        return tuple(p for p in self.patterns if p.polarity == "rej")

    def describe(self) -> str:
        body = " ".join(str(p) for p in self.patterns)
        return f"cstr {self.node_type} {{ {body} }}"

    def __str__(self) -> str:
        return self.describe()


_MATCH_RE = re.compile(r"match\s*\(", re.S)


def _parse_atom(text: str) -> float:
    text = text.strip()
    if text == "inf":
        return math.inf
    try:
        return int(text)
    except ValueError:
        raise LanguageError(f"match cardinality must be an integer or inf, "
                            f"got {text!r}") from None


def _split_args(body: str) -> list[str]:
    """Split a match(...) argument list on top-level commas."""
    parts: list[str] = []
    depth = 0
    current = []
    for char in body:
        if char in "([":
            depth += 1
        elif char in ")]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current).strip())
    return parts


def parse_match(text: str) -> MatchClause:
    """Parse one ``match(...)`` clause from the paper's syntax.

    Handles all three forms::

        match(0,inf,E,V->[I])      outgoing
        match(0,inf,E,[I]->V)      incoming
        match(1,1,E)  /  match(1,1,E,V)   self-edge
    """
    text = text.strip()
    if not text.startswith("match"):
        raise LanguageError(f"expected a match clause, got {text!r}")
    inner = text[text.index("(") + 1:text.rindex(")")]
    args = _split_args(inner)
    if len(args) < 3:
        raise LanguageError(f"match clause needs at least 3 arguments: "
                            f"{text!r}")
    lo = _parse_atom(args[0])
    hi = _parse_atom(args[1])
    edge_type = args[2]
    if len(args) == 3:
        return MatchClause(lo, hi, edge_type, SELF)
    rest = ",".join(args[3:])
    if "->" in rest:
        left, right = rest.split("->", 1)
        left, right = left.strip(), right.strip()
        if left.startswith("["):
            types = tuple(t.strip() for t in left.strip("[]").split(",")
                          if t.strip())
            return MatchClause(lo, hi, edge_type, IN, types)
        types = tuple(t.strip() for t in right.strip("[]").split(",")
                      if t.strip())
        return MatchClause(lo, hi, edge_type, OUT, types)
    # Fourth argument without an arrow: Fig. 13's self-edge form
    # match(1,1,Cpl_l,Osc_G0).
    return MatchClause(lo, hi, edge_type, SELF)


def parse_constraint(text: str) -> ConstraintRule:
    """Parse a full ``cstr`` rule from the paper's syntax, e.g.::

        cstr V {acc[match(0,inf,E,V->[I]), match(1,1,E,V)]}
    """
    stripped = text.strip()
    if stripped.startswith("cstr"):
        stripped = stripped[len("cstr"):].strip()
    brace = stripped.index("{")
    node_type = stripped[:brace].strip()
    if ":" in node_type:
        # Grammar form `cstr vn:v1`; only the type name matters here.
        node_type = node_type.split(":", 1)[1].strip()
    body = stripped[brace + 1:stripped.rindex("}")]

    patterns: list[Pattern] = []
    index = 0
    while index < len(body):
        rest = body[index:].lstrip()
        offset = len(body) - index - len(rest)
        index += offset
        if not rest:
            break
        if rest.startswith("acc") or rest.startswith("rej"):
            polarity = rest[:3]
            open_bracket = body.index("[", index)
            depth = 0
            close = -1
            for scan in range(open_bracket, len(body)):
                if body[scan] == "[":
                    depth += 1
                elif body[scan] == "]":
                    depth -= 1
                    if depth == 0:
                        close = scan
                        break
            if close < 0:
                raise LanguageError(f"unbalanced brackets in cstr {text!r}")
            group = body[open_bracket + 1:close]
            # _MATCH_RE consumes the "match(" prefix, so re-prepend it to
            # each split piece before parsing the clause.
            pieces = _MATCH_RE.split(group)[1:]
            clauses = tuple(parse_match("match(" + piece)
                            for piece in pieces)
            if len(clauses) != len(_MATCH_RE.findall(group)):
                raise LanguageError(f"malformed match list in {text!r}")
            patterns.append(Pattern(polarity, clauses))
            index = close + 1
            if index < len(body) and body[index] == ",":
                index += 1
        else:
            raise LanguageError(
                f"expected acc[...] or rej[...] in cstr body, got "
                f"{rest[:30]!r}")
    return ConstraintRule(node_type, tuple(patterns))
