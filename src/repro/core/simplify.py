"""Expression simplification for the codegen backend.

The compiler resolves attribute values at compile time (§5), which turns
many production terms into partially-constant expressions — e.g. every
zero-weight CNN template edge contributes ``0.0 * var(Out_k_l)``. The
codegen backend inlines numeric attributes as constants
(:func:`inline_attributes`) and then applies constant folding plus the
safe algebraic identities (:func:`simplify`):

* ``c1 op c2``            -> folded constant
* ``x + 0`` / ``0 + x``   -> ``x``
* ``x - 0``               -> ``x``
* ``x * 1`` / ``1 * x``   -> ``x``
* ``x * 0`` / ``0 * x``   -> ``0``   (our domain is finite reals)
* ``x / 1``               -> ``x``
* ``x ^ 1``               -> ``x``
* ``-(c)``                -> folded constant
* ``if true/false ...``   -> taken branch
* constant comparisons / boolean operators -> folded booleans

The interpreter backend deliberately evaluates the *unsimplified* trees,
so the codegen-vs-interpreter property tests double as a soundness check
of this pass.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.core import expr as E

#: Only these calls are folded when all arguments are constant — pure
#: math builtins whose semantics cannot be overridden per language.
_PURE_FUNCTIONS: dict[str, Callable] = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "sqrt": math.sqrt,
    "abs": abs,
    "tanh": math.tanh,
}

_FOLD = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "^": lambda a, b: a ** b,
}

_CMP = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def inline_attributes(expr: E.Expr,
                      lookup: Callable[[str, str, str], object],
                      ) -> E.Expr:
    """Replace numeric attribute references with constants.

    ``lookup(kind, owner, attr)`` returns the resolved value; non-numeric
    values (lambda attributes) are left as references.
    """
    if isinstance(expr, E.AttrRef):
        value = lookup(expr.kind or "node", expr.owner, expr.attr)
        if isinstance(value, (int, float)) and \
                not isinstance(value, bool):
            return E.Const(float(value))
        return expr
    if isinstance(expr, E.LambdaCall):
        # The call target must stay an AttrRef; only recurse into args.
        return E.LambdaCall(expr.target,
                            tuple(inline_attributes(a, lookup)
                                  for a in expr.args))
    children = expr.children()
    if not children:
        return expr
    rebuilt = _rebuild(expr, tuple(inline_attributes(child, lookup)
                                   for child in children))
    return rebuilt


def _rebuild(expr: E.Expr, children: tuple[E.Expr, ...]) -> E.Expr:
    """Recreate a node with new children (shape preserved)."""
    if isinstance(expr, E.UnOp):
        return E.UnOp(expr.op, children[0])
    if isinstance(expr, E.BinOp):
        return E.BinOp(expr.op, children[0], children[1])
    if isinstance(expr, E.Call):
        return E.Call(expr.func, children)
    if isinstance(expr, E.IfThenElse):
        return E.IfThenElse(children[0], children[1], children[2])
    if isinstance(expr, E.Compare):
        return E.Compare(expr.op, children[0], children[1])
    if isinstance(expr, E.BoolOp):
        return E.BoolOp(expr.op, children[0], children[1])
    if isinstance(expr, E.Not):
        return E.Not(children[0])
    return expr


def _const(expr: E.Expr) -> float | None:
    if isinstance(expr, E.Const):
        return expr.value
    return None


def simplify(expr: E.Expr) -> E.Expr:
    """Bottom-up constant folding and algebraic identities."""
    children = expr.children()
    if children:
        expr = _rebuild(expr, tuple(simplify(c) for c in children))

    if isinstance(expr, E.UnOp):
        value = _const(expr.operand)
        if value is not None:
            return E.Const(-value)
        return expr

    if isinstance(expr, E.BinOp):
        left = _const(expr.left)
        right = _const(expr.right)
        if left is not None and right is not None:
            try:
                return E.Const(float(_FOLD[expr.op](left, right)))
            except (ZeroDivisionError, OverflowError, ValueError):
                return expr
        if expr.op == "+":
            if left == 0.0:
                return expr.right
            if right == 0.0:
                return expr.left
        elif expr.op == "-":
            if right == 0.0:
                return expr.left
        elif expr.op == "*":
            if left == 0.0 or right == 0.0:
                return E.Const(0.0)
            if left == 1.0:
                return expr.right
            if right == 1.0:
                return expr.left
        elif expr.op == "/":
            if right == 1.0:
                return expr.left
        elif expr.op == "^":
            if right == 1.0:
                return expr.left
        return expr

    if isinstance(expr, E.Call):
        fn = _PURE_FUNCTIONS.get(expr.func)
        if fn is not None and all(_const(a) is not None
                                  for a in expr.args):
            try:
                return E.Const(float(fn(*[_const(a)
                                          for a in expr.args])))
            except (ValueError, OverflowError):
                return expr
        return expr

    if isinstance(expr, E.IfThenElse):
        if isinstance(expr.cond, E.BoolConst):
            return expr.then if expr.cond.value else expr.orelse
        return expr

    if isinstance(expr, E.Compare):
        left = _const(expr.left)
        right = _const(expr.right)
        if left is not None and right is not None:
            return E.BoolConst(bool(_CMP[expr.op](left, right)))
        return expr

    if isinstance(expr, E.BoolOp):
        if isinstance(expr.left, E.BoolConst):
            if expr.op == "and":
                return expr.right if expr.left.value \
                    else E.BoolConst(False)
            return E.BoolConst(True) if expr.left.value else expr.right
        if isinstance(expr.right, E.BoolConst):
            if expr.op == "and":
                return expr.left if expr.right.value \
                    else E.BoolConst(False)
            return E.BoolConst(True) if expr.right.value else expr.left
        return expr

    if isinstance(expr, E.Not):
        if isinstance(expr.operand, E.BoolConst):
            return E.BoolConst(not expr.operand.value)
        return expr

    return expr
