"""Deterministic mismatch sampling (§4.3).

Writing a nominal value ``x`` to a ``mm(s0,s1)``-annotated attribute stores
a sample from ``N(x, s0 + |x|*s1)``. The paper requires reproducibility:
"Each function invocation sets the random seed used to produce the same
mismatched values. The seed can be varied across invocations to model
multiple fabricated instances of a particular design."

We derive an independent, order-independent random stream for every
``(seed, element name, attribute name)`` triple by seeding a PCG64 generator
with a stable hash of the triple. Two invocations with the same seed produce
identical graphs regardless of construction order; different seeds model
different fabricated chips.
"""

from __future__ import annotations


from repro.core.datatypes import IntType, Mismatch, RealType
from repro.core.noise import stream as _stream


class MismatchSampler:
    """Samples mismatched attribute values for one fabricated instance."""

    def __init__(self, seed: int | None):
        #: None disables mismatch entirely (ideal instance).
        self.seed = seed

    def sample(self, element: str, attr: str, annotation: Mismatch,
               nominal: float) -> float:
        """Draw the mismatched value stored for ``element.attr``."""
        if self.seed is None:
            return nominal
        sigma = annotation.sigma(nominal)
        if sigma == 0.0:
            return nominal
        rng = _stream(self.seed, element, attr)
        return float(rng.normal(nominal, sigma))

    def resolve(self, element: str, attr: str, datatype, nominal):
        """Apply mismatch if the datatype carries an annotation.

        Returns the value to store as the *resolved* attribute; the nominal
        value is kept separately by the graph.
        """
        annotation = getattr(datatype, "mismatch", None)
        if annotation is None or not isinstance(datatype,
                                                (RealType, IntType)):
            return nominal
        value = self.sample(element, attr, annotation, float(nominal))
        if isinstance(datatype, IntType):
            return int(round(value))
        return value
