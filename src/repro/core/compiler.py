"""The Ark dynamical-system compiler (§5, Algorithm 1).

Translates a dynamical graph plus a language definition into a system of
first-order differential equations:

* every node of order ``p >= 1`` contributes ``p`` state variables; the
  first ``p-1`` equations are the chain ``d n_i/dt = n_{i+1}`` (`LowOrdEqs`)
  and the last aggregates the production terms of the node's incident edges
  with the node type's reduction operator (`FormEq`);
* order-0 nodes are *algebraic*: their value is the reduction of their
  production terms, computed on demand and inlined into the evaluation
  order (topologically sorted; cycles among algebraic nodes are an error);
* production rules are looked up most-specific-first with inheritance
  fallback (`LookUpProdRule`) and their expressions are rewritten from role
  names to concrete element names (`Rewrite`);
* switched-off edges contribute only the language's ``off`` rules (§4.3).

The result is an :class:`~repro.core.odesystem.OdeSystem` ready for
simulation.
"""

from __future__ import annotations

from repro.core import expr as E
from repro.core.graph import DynamicalGraph, Edge, Node
from repro.core.language import Language
from repro.core.odesystem import (AlgebraicSpec, ChainRhs, OdeSystem,
                                  StateVar, TermsRhs)
from repro.core.production import ProductionRule
from repro.errors import CompileError


def _rewrite(rule: ProductionRule, edge: Edge) -> E.Expr:
    """`Rewrite` from Algorithm 1: bind the rule's roles to the concrete
    edge and endpoint names."""
    mapping = {
        rule.edge_role: E.Substitution(edge.name, "edge"),
        rule.src_role: E.Substitution(edge.src, "node"),
        rule.dst_role: E.Substitution(edge.dst, "node"),
    }
    return rule.expr.substitute(mapping)


def _contributions(graph: DynamicalGraph, language: Language,
                   ) -> dict[str, list[E.Expr]]:
    """Production terms per node name, honoring switch state."""
    table = language.rule_table()
    node_types = {node.name: node.type for node in graph.nodes}
    terms: dict[str, list[E.Expr]] = {node.name: [] for node in graph.nodes}

    for edge in graph.edges:
        src_type = node_types[edge.src]
        dst_type = node_types[edge.dst]
        off = not edge.on
        connection = (f"edge {edge.name}:{edge.type.name} "
                      f"({edge.src}:{src_type.name}->"
                      f"{edge.dst}:{dst_type.name})")
        rules = table.lookup(edge.type, src_type, dst_type,
                             self_rule=edge.is_self, off=off,
                             connection=connection)
        if not rules and not off:
            raise CompileError(
                f"no production rule applies to {connection} in language "
                f"{language.name}")
        for rule in rules:
            target = edge.src if rule.targets_source else edge.dst
            terms[target].append(_rewrite(rule, edge))
    return terms


def _algebraic_order(graph: DynamicalGraph,
                     terms: dict[str, list[E.Expr]]) -> list[str]:
    """Topological order of order-0 nodes by var() dependencies."""
    algebraic = {node.name for node in graph.nodes
                 if node.type.is_algebraic}
    depends: dict[str, set[str]] = {}
    for name in algebraic:
        references = set()
        for term in terms[name]:
            references |= E.referenced_vars(term)
        depends[name] = references & algebraic

    ordered: list[str] = []
    visiting: set[str] = set()
    done: set[str] = set()

    def visit(name: str, chain: tuple[str, ...]):
        if name in done:
            return
        if name in visiting:
            cycle = " -> ".join(chain + (name,))
            raise CompileError(
                f"algebraic cycle among order-0 nodes: {cycle}")
        visiting.add(name)
        for dep in sorted(depends[name]):
            visit(dep, chain + (name,))
        visiting.discard(name)
        done.add(name)
        ordered.append(name)

    for name in sorted(algebraic):
        visit(name, ())
    return ordered


def _collect_attr_values(graph: DynamicalGraph,
                         exprs: list[E.Expr]) -> dict[tuple, object]:
    """Resolve every attribute reference in the compiled expressions."""
    values: dict[tuple, object] = {}
    for tree in exprs:
        for node in tree.walk():
            if not isinstance(node, E.AttrRef):
                continue
            kind = node.kind or "node"
            key = (kind, node.owner, node.attr)
            if key in values:
                continue
            if kind == "node":
                element = graph.node(node.owner)
            else:
                element = graph.edge(node.owner)
            if node.attr not in element.attrs:
                raise CompileError(
                    f"{kind} {node.owner} has no value for attribute "
                    f"{node.attr}")
            values[key] = element.attrs[node.attr]
    return values


def compile_graph(graph: DynamicalGraph,
                  language: Language | None = None) -> OdeSystem:
    """Compile ``graph`` into an :class:`OdeSystem` (Algorithm 1).

    :param language: language whose rules drive compilation; defaults to
        the graph's own language. Passing a derived language compiles the
        same graph under the extended semantics — the inheritance rules
        guarantee identical dynamics when the graph only uses parent types.
    """
    language = language or graph.language
    graph.apply_defaults()
    graph.check_complete()

    terms = _contributions(graph, language)

    # State allocation: p slots per order-p node, graph insertion order.
    states: list[StateVar] = []
    state_index: dict[tuple[str, int], int] = {}
    for node in graph.nodes:
        for deriv in range(node.type.order):
            index = len(states)
            states.append(StateVar(node.name, deriv, index))
            state_index[(node.name, deriv)] = index

    # Right-hand sides.
    rhs: list[ChainRhs | TermsRhs] = []
    for state in states:
        node = graph.node(state.node)
        if state.deriv < node.type.order - 1:
            # LowOrdEqs: d n_i/dt = n_{i+1}
            rhs.append(ChainRhs(state_index[(state.node,
                                             state.deriv + 1)]))
        else:
            rhs.append(TermsRhs(tuple(terms[state.node]),
                                node.type.reduction))

    algebraic = [
        AlgebraicSpec(name, tuple(terms[name]),
                      graph.node(name).type.reduction)
        for name in _algebraic_order(graph, terms)
    ]

    all_exprs = [expr for spec in rhs if isinstance(spec, TermsRhs)
                 for expr in spec.terms]
    all_exprs += [expr for spec in algebraic for expr in spec.terms]
    attr_values = _collect_attr_values(graph, all_exprs)

    functions = language.functions()
    needed = set()
    for tree in all_exprs:
        needed |= E.referenced_functions(tree)
    missing = needed - set(functions)
    if missing:
        raise CompileError(
            f"compiled expressions call unknown function(s) "
            f"{sorted(missing)}")

    y0 = [graph.node(state.node).inits.get(state.deriv, 0.0)
          for state in states]

    return OdeSystem(
        graph=graph,
        language=language,
        states=states,
        state_index=state_index,
        rhs_specs=rhs,
        algebraic=algebraic,
        attr_values=attr_values,
        functions={name: functions[name] for name in needed},
        y0=y0,
    )
