"""The Ark dynamical-system compiler (§5, Algorithm 1).

Translates a dynamical graph plus a language definition into a system of
first-order differential (or stochastic-differential) equations:

* every node of order ``p >= 1`` contributes ``p`` state variables; the
  first ``p-1`` equations are the chain ``d n_i/dt = n_{i+1}`` (`LowOrdEqs`)
  and the last aggregates the production terms of the node's incident edges
  with the node type's reduction operator (`FormEq`);
* order-0 nodes are *algebraic*: their value is the reduction of their
  production terms, computed on demand and inlined into the evaluation
  order (topologically sorted; cycles among algebraic nodes are an error);
* production rules are looked up most-specific-first with inheritance
  fallback (`LookUpProdRule`) and their expressions are rewritten from role
  names to concrete element names (`Rewrite`);
* switched-off edges contribute only the language's ``off`` rules (§4.3).

Transient noise (the second half of the paper's nonideality story, next
to §4.3 mismatch) enters in two ways and is compiled into
:class:`~repro.core.odesystem.DiffusionTerm` entries of the resulting
system ``dy = f(t,y) dt + Σ b_k(t,y) dW_k``:

* an explicit ``noise(amp)`` call in a production term: each additive
  addend containing one is moved from the drift into the diffusion with
  amplitude equal to the addend with ``noise(a)`` replaced by ``a``
  (so ``-v/c + noise(s.nsig/c)`` keeps the drift ``-v/c`` and gains a
  diffusion amplitude ``s.nsig/c``). Only sum-reduction differential
  nodes may carry noise terms;
* a ``ns(sigma[,kind])`` annotation on an attribute's datatype: every
  drift term referencing the attribute gains a first-order diffusion
  term (``term * sigma`` for relative noise, ``term * sigma/|a|`` for
  absolute), all driven by one shared Wiener path per ``(element,
  attribute)`` — a fluctuating parameter perturbs its terms coherently.

The result is an :class:`~repro.core.odesystem.OdeSystem` ready for
simulation (deterministic solvers integrate the drift;
:mod:`repro.sim.sde_solver` realizes the noise).
"""

from __future__ import annotations

from repro.core import expr as E
from repro.core.graph import DynamicalGraph, Edge, Node
from repro.core.language import Language
from repro.core.odesystem import (AlgebraicSpec, ChainRhs, DiffusionTerm,
                                  OdeSystem, StateVar, TermsRhs)
from repro.core.production import ProductionRule
from repro.core.simplify import simplify
from repro.core.types import Reduction
from repro.errors import CompileError

#: The reserved expression-level noise marker (drift mean 0; see
#: :data:`repro.core.expr.BUILTIN_FUNCTIONS`).
NOISE_FUNC = "noise"


def _rewrite(rule: ProductionRule, edge: Edge) -> E.Expr:
    """`Rewrite` from Algorithm 1: bind the rule's roles to the concrete
    edge and endpoint names."""
    mapping = {
        rule.edge_role: E.Substitution(edge.name, "edge"),
        rule.src_role: E.Substitution(edge.src, "node"),
        rule.dst_role: E.Substitution(edge.dst, "node"),
    }
    return rule.expr.substitute(mapping)


def _contributions(graph: DynamicalGraph, language: Language,
                   ) -> dict[str, list[tuple[E.Expr, str]]]:
    """Production terms per node name as ``(expr, edge_name)`` pairs,
    honoring switch state. The provenance edge name identifies the
    element that owns any noise source found inside the term."""
    table = language.rule_table()
    node_types = {node.name: node.type for node in graph.nodes}
    terms: dict[str, list[tuple[E.Expr, str]]] = {
        node.name: [] for node in graph.nodes}

    for edge in graph.edges:
        src_type = node_types[edge.src]
        dst_type = node_types[edge.dst]
        off = not edge.on
        connection = (f"edge {edge.name}:{edge.type.name} "
                      f"({edge.src}:{src_type.name}->"
                      f"{edge.dst}:{dst_type.name})")
        rules = table.lookup(edge.type, src_type, dst_type,
                             self_rule=edge.is_self, off=off,
                             connection=connection)
        if not rules and not off:
            raise CompileError(
                f"no production rule applies to {connection} in language "
                f"{language.name}")
        for rule in rules:
            target = edge.src if rule.targets_source else edge.dst
            terms[target].append((_rewrite(rule, edge), edge.name))
    return terms


def _algebraic_order(graph: DynamicalGraph,
                     terms: dict[str, list[E.Expr]]) -> list[str]:
    """Topological order of order-0 nodes by var() dependencies."""
    algebraic = {node.name for node in graph.nodes
                 if node.type.is_algebraic}
    depends: dict[str, set[str]] = {}
    for name in algebraic:
        references = set()
        for term, _origin in terms[name]:
            references |= E.referenced_vars(term)
        depends[name] = references & algebraic

    ordered: list[str] = []
    visiting: set[str] = set()
    done: set[str] = set()

    def visit(name: str, chain: tuple[str, ...]):
        if name in done:
            return
        if name in visiting:
            cycle = " -> ".join(chain + (name,))
            raise CompileError(
                f"algebraic cycle among order-0 nodes: {cycle}")
        visiting.add(name)
        for dep in sorted(depends[name]):
            visit(dep, chain + (name,))
        visiting.discard(name)
        done.add(name)
        ordered.append(name)

    for name in sorted(algebraic):
        visit(name, ())
    return ordered


# --------------------------------------------------------------------------
# Noise extraction (drift/diffusion split)
# --------------------------------------------------------------------------

def _flatten_sum(expr: E.Expr) -> list[E.Expr]:
    """Split a term over its top-level additive structure.

    ``a + b - c`` becomes ``[a, b, -c]``; products and other nodes stay
    whole. Used so ``noise(...)`` addends can move to the diffusion
    while their siblings stay in the drift."""
    if isinstance(expr, E.BinOp) and expr.op == "+":
        return _flatten_sum(expr.left) + _flatten_sum(expr.right)
    if isinstance(expr, E.BinOp) and expr.op == "-":
        return _flatten_sum(expr.left) + [
            E.UnOp("-", addend) for addend in _flatten_sum(expr.right)]
    if isinstance(expr, E.UnOp) and expr.op == "-":
        return [E.UnOp("-", addend)
                for addend in _flatten_sum(expr.operand)]
    return [expr]


def _noise_calls(expr: E.Expr) -> list[E.Call]:
    return [node for node in expr.walk()
            if isinstance(node, E.Call) and node.func == NOISE_FUNC]


def _replace_noise(expr: E.Expr) -> E.Expr:
    """Rewrite the (single) ``noise(a)`` call inside ``expr`` to ``a`` —
    turning the noise addend into its diffusion amplitude."""
    if isinstance(expr, E.Call) and expr.func == NOISE_FUNC:
        return expr.args[0]
    children = expr.children()
    if not children:
        return expr
    rebuilt = tuple(_replace_noise(child) for child in children)
    if isinstance(expr, E.UnOp):
        return E.UnOp(expr.op, rebuilt[0])
    if isinstance(expr, E.BinOp):
        return E.BinOp(expr.op, rebuilt[0], rebuilt[1])
    if isinstance(expr, E.Call):
        return E.Call(expr.func, rebuilt)
    if isinstance(expr, E.LambdaCall):
        return E.LambdaCall(expr.target, rebuilt[1:])
    if isinstance(expr, E.IfThenElse):
        return E.IfThenElse(rebuilt[0], rebuilt[1], rebuilt[2])
    if isinstance(expr, E.Compare):
        return E.Compare(expr.op, rebuilt[0], rebuilt[1])
    if isinstance(expr, E.BoolOp):
        return E.BoolOp(expr.op, rebuilt[0], rebuilt[1])
    if isinstance(expr, E.Not):
        return E.Not(rebuilt[0])
    raise CompileError(
        f"noise(): unsupported enclosing expression {expr!r}")


def _check_noise_call(call: E.Call, where: str):
    if len(call.args) != 1:
        raise CompileError(
            f"noise() takes exactly one amplitude argument, got "
            f"{len(call.args)} in {where}")
    if _noise_calls(call.args[0]):
        raise CompileError(
            f"noise() amplitudes cannot nest further noise() calls "
            f"({where})")


def _split_noise_terms(node: Node, contributions, state_index: int,
                       path_counters: dict[str, int],
                       diffusion: list[DiffusionTerm],
                       ) -> list[E.Expr]:
    """Separate a differential node's production terms into drift terms
    (returned) and diffusion terms (appended), keyed by provenance."""
    drift: list[E.Expr] = []
    for expr, origin in contributions:
        if not _noise_calls(expr):
            drift.append(expr)
            continue
        where = (f"production term of {node.name} contributed by "
                 f"edge {origin}")
        if node.type.reduction is not Reduction.SUM:
            raise CompileError(
                f"noise() requires a sum-reduction node; {node.name} "
                f"reduces with {node.type.reduction.value} ({where})")
        for addend in _flatten_sum(expr):
            calls = _noise_calls(addend)
            if not calls:
                drift.append(addend)
                continue
            if len(calls) > 1:
                raise CompileError(
                    f"at most one noise() call per additive term "
                    f"({where})")
            _check_noise_call(calls[0], where)
            amplitude = simplify(_replace_noise(addend))
            count = path_counters.get(origin, 0)
            path_counters[origin] = count + 1
            diffusion.append(DiffusionTerm(
                state_index=state_index, amplitude=amplitude,
                element=origin, path=f"w{count}"))
    return drift


def _noisy_attr_refs(term: E.Expr, graph: DynamicalGraph):
    """Distinct noise-annotated attribute references inside ``term``:
    yields ``(kind, owner, attr, annotation, element)`` tuples."""
    seen: set[tuple] = set()
    for node in term.walk():
        if not isinstance(node, E.AttrRef):
            continue
        kind = node.kind or "node"
        key = (kind, node.owner, node.attr)
        if key in seen:
            continue
        seen.add(key)
        element = (graph.node(node.owner) if kind == "node"
                   else graph.edge(node.owner))
        decl = element.type.attrs.get(node.attr)
        if decl is None:
            continue
        annotation = getattr(decl.datatype, "noise", None)
        if annotation is not None and annotation.sigma > 0.0:
            yield kind, node.owner, node.attr, annotation, element


def _multiplicative_power(term: E.Expr, owner: str, attr: str,
                          ) -> int | None:
    """±1 when the attribute enters ``term`` exactly once as a pure
    multiplicative factor (numerator or denominator, possibly negated);
    ``None`` otherwise. This is the structural condition under which
    the first-order linearization ``b = term * sigma_rel`` is exact."""
    hits: list[int] = []  # power of each occurrence, or 0 = nonlinear

    def visit(node: E.Expr, power: int, linear: bool):
        if isinstance(node, E.AttrRef):
            if node.owner == owner and node.attr == attr:
                hits.append(power if linear else 0)
            return
        if isinstance(node, E.UnOp) and node.op == "-":
            visit(node.operand, power, linear)
            return
        if isinstance(node, E.BinOp) and node.op == "*":
            visit(node.left, power, linear)
            visit(node.right, power, linear)
            return
        if isinstance(node, E.BinOp) and node.op == "/":
            visit(node.left, power, linear)
            visit(node.right, -power, linear)
            return
        # Any other enclosing node (+, -, ^, calls, conditionals...)
        # breaks the pure-product structure.
        for child in node.children():
            visit(child, power, False)

    visit(term, 1, True)
    if len(hits) == 1 and hits[0] in (1, -1):
        return hits[0]
    return None


def _annotation_diffusion(node: Node, drift_terms: list[E.Expr],
                          state_index: int, graph: DynamicalGraph,
                          diffusion: list[DiffusionTerm]):
    """First-order diffusion for ``ns``-annotated attributes: each drift
    term referencing a fluctuating parameter ``a`` gains the amplitude
    ``term * sigma`` (relative) or ``term * sigma/|a|`` (absolute).
    All terms touched by one ``(element, attribute)`` share one Wiener
    path, so the parameter's fluctuation acts coherently.

    The linearization is only exact when the parameter enters the term
    as a pure ±1-power factor (true for every conductance /
    capacitance / coupling form in the shipped languages); other usages
    are rejected with a pointer to the explicit ``noise()`` escape
    hatch rather than silently mis-scaled. Absolute-kind annotations on
    a zero-valued parameter are rejected for the same reason — the
    relative factor ``sigma/|a|`` is undefined there."""
    for term in drift_terms:
        for kind, owner, attr, annotation, element in \
                _noisy_attr_refs(term, graph):
            if node.type.reduction is not Reduction.SUM:
                raise CompileError(
                    f"ns-annotated attribute {owner}.{attr} feeds the "
                    f"{node.type.reduction.value}-reduction node "
                    f"{node.name}; transient noise is only supported "
                    "on sum-reduction nodes")
            if _multiplicative_power(term, owner, attr) is None:
                raise CompileError(
                    f"ns-annotated attribute {owner}.{attr} does not "
                    f"enter the production term {term} of {node.name} "
                    "as a single multiplicative factor, so the "
                    "first-order diffusion term would be mis-scaled; "
                    "model this source with an explicit noise(...) "
                    "term instead")
            if annotation.kind == "rel":
                factor: E.Expr = E.Const(annotation.sigma)
            else:
                value = element.attrs.get(attr)
                if isinstance(value, (int, float)) and \
                        float(value) == 0.0:
                    raise CompileError(
                        f"ns({annotation.sigma}) on {owner}.{attr}: "
                        "absolute noise on a zero-valued parameter "
                        "has an undefined relative factor sigma/|a|; "
                        "use ns(sigma,rel) or an explicit noise(...) "
                        "term")
                factor = E.BinOp(
                    "/", E.Const(annotation.sigma),
                    E.Call("abs", (E.AttrRef(owner, attr, kind),)))
            amplitude = simplify(E.BinOp("*", term, factor))
            diffusion.append(DiffusionTerm(
                state_index=state_index, amplitude=amplitude,
                element=owner, path=f"a:{attr}"))


def _collect_attr_values(graph: DynamicalGraph,
                         exprs: list[E.Expr]) -> dict[tuple, object]:
    """Resolve every attribute reference in the compiled expressions."""
    values: dict[tuple, object] = {}
    for tree in exprs:
        for node in tree.walk():
            if not isinstance(node, E.AttrRef):
                continue
            kind = node.kind or "node"
            key = (kind, node.owner, node.attr)
            if key in values:
                continue
            if kind == "node":
                element = graph.node(node.owner)
            else:
                element = graph.edge(node.owner)
            if node.attr not in element.attrs:
                raise CompileError(
                    f"{kind} {node.owner} has no value for attribute "
                    f"{node.attr}")
            values[key] = element.attrs[node.attr]
    return values


def compile_graph(graph: DynamicalGraph,
                  language: Language | None = None) -> OdeSystem:
    """Compile ``graph`` into an :class:`OdeSystem` (Algorithm 1).

    :param language: language whose rules drive compilation; defaults to
        the graph's own language. Passing a derived language compiles the
        same graph under the extended semantics — the inheritance rules
        guarantee identical dynamics when the graph only uses parent types.
    """
    language = language or graph.language
    graph.apply_defaults()
    graph.check_complete()

    terms = _contributions(graph, language)

    # State allocation: p slots per order-p node, graph insertion order.
    states: list[StateVar] = []
    state_index: dict[tuple[str, int], int] = {}
    for node in graph.nodes:
        for deriv in range(node.type.order):
            index = len(states)
            states.append(StateVar(node.name, deriv, index))
            state_index[(node.name, deriv)] = index

    # Right-hand sides, with the drift/diffusion split of any noise.
    rhs: list[ChainRhs | TermsRhs] = []
    diffusion: list[DiffusionTerm] = []
    path_counters: dict[str, int] = {}
    for state in states:
        node = graph.node(state.node)
        if state.deriv < node.type.order - 1:
            # LowOrdEqs: d n_i/dt = n_{i+1}
            rhs.append(ChainRhs(state_index[(state.node,
                                             state.deriv + 1)]))
        else:
            drift = _split_noise_terms(node, terms[state.node],
                                       state.index, path_counters,
                                       diffusion)
            _annotation_diffusion(node, drift, state.index, graph,
                                  diffusion)
            rhs.append(TermsRhs(tuple(drift), node.type.reduction))

    algebraic = []
    for name in _algebraic_order(graph, terms):
        exprs = [expr for expr, _origin in terms[name]]
        for expr in exprs:
            if _noise_calls(expr):
                raise CompileError(
                    f"noise() is only supported on differential nodes; "
                    f"{name} is an order-0 (algebraic) node")
            for _kind, owner, attr, _ann, _el in \
                    _noisy_attr_refs(expr, graph):
                # Same policing as explicit noise(): an order-0 node is
                # instantaneous, so a declared fluctuation feeding it
                # cannot be realized — refuse rather than silently
                # dropping the user's nonideality.
                raise CompileError(
                    f"ns-annotated attribute {owner}.{attr} is "
                    f"referenced by the order-0 (algebraic) node "
                    f"{name}; transient noise is only supported on "
                    "differential nodes")
        algebraic.append(AlgebraicSpec(name, tuple(exprs),
                                       graph.node(name).type.reduction))

    all_exprs = [expr for spec in rhs if isinstance(spec, TermsRhs)
                 for expr in spec.terms]
    all_exprs += [expr for spec in algebraic for expr in spec.terms]
    all_exprs += [term.amplitude for term in diffusion]
    attr_values = _collect_attr_values(graph, all_exprs)

    functions = language.functions()
    needed = set()
    for tree in all_exprs:
        needed |= E.referenced_functions(tree)
    missing = needed - set(functions)
    if missing:
        raise CompileError(
            f"compiled expressions call unknown function(s) "
            f"{sorted(missing)}")

    y0 = [graph.node(state.node).inits.get(state.deriv, 0.0)
          for state in states]

    return OdeSystem(
        graph=graph,
        language=language,
        states=states,
        state_index=state_index,
        rhs_specs=rhs,
        algebraic=algebraic,
        attr_values=attr_values,
        functions={name: functions[name] for name in needed},
        y0=y0,
        diffusion=tuple(diffusion),
    )
