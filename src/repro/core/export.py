"""Dynamical-graph export: networkx views and DOT rendering.

Dynamical graphs render naturally as directed multigraphs (Fig. 2 of the
paper is exactly such a drawing). :func:`to_networkx` produces an
analyzable ``networkx.MultiDiGraph`` carrying types and attribute values;
:func:`to_dot` emits Graphviz DOT text (no graphviz dependency — plain
string generation) with the paper's visual conventions: one shape per
root type family, dashed edges for switched-off branches.
"""

from __future__ import annotations

import networkx as nx

from repro.core.graph import DynamicalGraph

#: DOT shapes per root node-type family (falls back to ellipse).
_SHAPES = {"V": "box", "I": "circle", "InpV": "house", "InpI": "house",
           "Osc": "doublecircle", "Out": "diamond", "Inp": "house"}


def to_networkx(graph: DynamicalGraph) -> nx.MultiDiGraph:
    """Export the graph as a ``networkx.MultiDiGraph``.

    Node attributes: ``type`` (type name), ``order``, plus the resolved
    attribute values. Edge attributes: ``key`` (edge name), ``type``,
    ``on``, plus resolved attribute values.
    """
    exported = nx.MultiDiGraph(name=graph.name,
                               language=graph.language.name)
    for node in graph.nodes:
        exported.add_node(node.name, type=node.type.name,
                          order=node.type.order, **node.attrs)
    for edge in graph.edges:
        exported.add_edge(edge.src, edge.dst, key=edge.name,
                          type=edge.type.name, on=edge.on,
                          **edge.attrs)
    return exported


def _root_name(type_obj) -> str:
    return type_obj.ancestry()[-1].name


def _quote(name: str) -> str:
    return '"' + name.replace('"', '\\"') + '"'


def to_dot(graph: DynamicalGraph, *, include_attrs: bool = False) -> str:
    """Render the graph as Graphviz DOT text.

    :param include_attrs: append resolved attribute values to labels.
    """
    lines = [f"digraph {_quote(graph.name)} {{",
             "    rankdir=LR;",
             f"    label={_quote(graph.language.name)};"]
    for node in graph.nodes:
        shape = _SHAPES.get(_root_name(node.type), "ellipse")
        label = f"{node.name}\\n{node.type.name}"
        if include_attrs and node.attrs:
            rendered = ", ".join(
                f"{key}={value:.3g}" if isinstance(value, float)
                else f"{key}={value}"
                for key, value in node.attrs.items()
                if isinstance(value, (int, float)))
            if rendered:
                label += f"\\n{rendered}"
        lines.append(f"    {_quote(node.name)} "
                     f"[shape={shape}, label={_quote(label)}];")
    for edge in graph.edges:
        style = "solid" if edge.on else "dashed"
        label = edge.type.name
        if include_attrs and edge.attrs:
            rendered = ", ".join(
                f"{key}={value:.3g}" if isinstance(value, float)
                else f"{key}={value}"
                for key, value in edge.attrs.items()
                if isinstance(value, (int, float)))
            if rendered:
                label += f"\\n{rendered}"
        lines.append(f"    {_quote(edge.src)} -> {_quote(edge.dst)} "
                     f"[style={style}, label={_quote(label)}];")
    lines.append("}")
    return "\n".join(lines)
