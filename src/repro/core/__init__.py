"""Core Ark machinery: datatypes, expressions, languages, graphs, the
validator (§6), and the dynamical-system compiler (§5).

The public surface of this subpackage is re-exported from
:mod:`repro` — most users should ``import repro`` instead.
"""

from repro.core.datatypes import (
    INF,
    IntType,
    LambdaType,
    Mismatch,
    Noise,
    RealType,
    integer,
    lambd,
    real,
)
from repro.core.attributes import AttrDecl, InitDecl
from repro.core.types import EdgeType, NodeType, Reduction
from repro.core.production import ProductionRule
from repro.core.validation import ConstraintRule, MatchClause, Pattern
from repro.core.language import Language
from repro.core.graph import DynamicalGraph, Edge, Node
from repro.core.builder import GraphBuilder
from repro.core.function import ArkFunction
from repro.core.validator import ValidationReport, validate
from repro.core.compiler import compile_graph
from repro.core.odesystem import DiffusionTerm, OdeSystem
from repro.core.dilation import TimeDilatedSystem, dilate
from repro.core.simulator import Trajectory, simulate, simulate_ensemble

__all__ = [
    "INF",
    "IntType",
    "LambdaType",
    "Mismatch",
    "Noise",
    "RealType",
    "integer",
    "lambd",
    "real",
    "AttrDecl",
    "InitDecl",
    "EdgeType",
    "NodeType",
    "Reduction",
    "ProductionRule",
    "ConstraintRule",
    "MatchClause",
    "Pattern",
    "Language",
    "DynamicalGraph",
    "Edge",
    "Node",
    "GraphBuilder",
    "ArkFunction",
    "ValidationReport",
    "validate",
    "compile_graph",
    "DiffusionTerm",
    "OdeSystem",
    "TimeDilatedSystem",
    "dilate",
    "Trajectory",
    "simulate",
    "simulate_ensemble",
]
