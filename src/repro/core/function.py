"""Ark function declarations (§4.2, Fig. 6 lines 19-27).

An Ark function procedurally generates a dynamical graph from typed
arguments. Its body is a sequence of statements: ``node``, ``edge``,
``set-attr``, ``set-init``, and ``set-switch``. Invoking the function binds
argument values, executes the statements through a
:class:`~repro.core.builder.GraphBuilder` (which performs datatype checks
and seeded mismatch sampling), and returns the finished graph.

Functions are constructed programmatically here; the textual front-end in
:mod:`repro.lang` lowers ``func`` definitions to this representation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import expr as E
from repro.core.builder import GraphBuilder
from repro.core.datatypes import Datatype, LambdaType
from repro.core.graph import DynamicalGraph
from repro.core.language import Language
from repro.errors import FunctionError


# --------------------------------------------------------------------------
# Value specifications (FuncVal ::= Val | v)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Literal:
    """A literal real/integer value."""

    value: object


@dataclass(frozen=True)
class ArgRef:
    """A reference to a function argument by name."""

    name: str


@dataclass(frozen=True)
class LambdaVal:
    """A function literal ``lambd(a0,...): expr``."""

    params: tuple[str, ...]
    body: E.Expr


class _LambdaEnv(E.EvalContext):
    """Evaluates a lambda body against bound parameters."""

    def __init__(self, bindings: dict[str, float],
                 functions: dict[str, object]):
        self._bindings = bindings
        self._functions = functions

    def name(self, name: str):
        try:
            return self._bindings[name]
        except KeyError:
            raise FunctionError(
                f"lambda body references unbound name `{name}`") from None

    def function(self, name: str):
        try:
            return self._functions[name]
        except KeyError:
            raise FunctionError(
                f"lambda body calls unknown function `{name}`") from None

    def time(self):
        raise FunctionError(
            "lambda bodies reference time through their parameters, "
            "not the `time` keyword")


def _compile_lambda(value: LambdaVal, functions: dict[str, object]):
    """Turn a lambda literal into a Python callable."""
    params = value.params
    body = value.body
    loose = E.referenced_names(body) - set(params)
    if loose:
        raise FunctionError(
            f"lambda body references names {sorted(loose)} outside its "
            f"parameter list {list(params)}")

    def call(*args):
        if len(args) != len(params):
            raise FunctionError(
                f"lambda expects {len(params)} argument(s), got "
                f"{len(args)}")
        env = _LambdaEnv(dict(zip(params, args)), functions)
        return body.evaluate(env)

    call.__name__ = f"lambd_{'_'.join(params) or 'const'}"
    # Lambda bodies may only reference their parameters, literals, and
    # registered functions, so two compilations of the same source are
    # interchangeable; the key lets the batched ensemble codegen share
    # one callable across fabricated instances.
    call._ark_vector_key = ("lambd", params, str(body))
    return call


# --------------------------------------------------------------------------
# Statements (FuncSt)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class NodeStmt:
    """``node v0 : v1``"""

    name: str
    type_name: str


@dataclass(frozen=True)
class EdgeStmt:
    """``edge<v0,v1> v2 : v3``"""

    src: str
    dst: str
    name: str
    type_name: str


@dataclass(frozen=True)
class SetAttrStmt:
    """``set-attr v0.v1 = FuncVal``"""

    owner: str
    attr: str
    value: Literal | ArgRef | LambdaVal


@dataclass(frozen=True)
class SetInitStmt:
    """``set-init v(i) = FuncVal``"""

    node: str
    index: int
    value: Literal | ArgRef | LambdaVal


@dataclass(frozen=True)
class SetSwitchStmt:
    """``set-switch v when b``"""

    edge: str
    condition: E.Expr


Statement = NodeStmt | EdgeStmt | SetAttrStmt | SetInitStmt | SetSwitchStmt


@dataclass(frozen=True)
class FuncArg:
    """A typed function argument ``v : SigT``.

    The grammar's dotted form ``v0.v1 : SigT`` declares an argument whose
    value is applied directly to attribute ``v0.v1``; ``applies_to`` holds
    that target when present.
    """

    name: str
    datatype: Datatype
    applies_to: tuple[str, str] | None = None


class _SwitchEnv(E.EvalContext):
    """Evaluates a switch condition over the bound function arguments."""

    def __init__(self, bindings: dict[str, object],
                 functions: dict[str, object]):
        self._bindings = bindings
        self._functions = functions

    def name(self, name: str):
        try:
            return self._bindings[name]
        except KeyError:
            raise FunctionError(
                f"switch condition references unknown argument `{name}`"
            ) from None

    def function(self, name: str):
        try:
            return self._functions[name]
        except KeyError:
            raise FunctionError(
                f"switch condition calls unknown function `{name}`"
            ) from None


class ArkFunction:
    """A callable Ark function definition."""

    def __init__(self, name: str, language: Language,
                 args: list[FuncArg] | None = None,
                 statements: list[Statement] | None = None):
        self.name = name
        self.language = language
        self.args = list(args or [])
        self.statements = list(statements or [])
        seen = set()
        for arg in self.args:
            if arg.name in seen:
                raise FunctionError(
                    f"function {name}: duplicate argument {arg.name}")
            seen.add(arg.name)
        self._check_static()

    # ------------------------------------------------------------------
    # Static semantic checks (§4.2)
    # ------------------------------------------------------------------

    def _check_static(self):
        """Type-check the body without executing it: every referenced
        node/edge/type/attribute must exist and const attributes must not
        be wired to function arguments (§4.3)."""
        node_types: dict[str, str] = {}
        edge_types: dict[str, str] = {}
        for stmt in self.statements:
            if isinstance(stmt, NodeStmt):
                if self.language.find_node_type(stmt.type_name) is None:
                    raise FunctionError(
                        f"function {self.name}: unknown node type "
                        f"{stmt.type_name}")
                if stmt.name in node_types or stmt.name in edge_types:
                    raise FunctionError(
                        f"function {self.name}: duplicate element "
                        f"{stmt.name}")
                node_types[stmt.name] = stmt.type_name
            elif isinstance(stmt, EdgeStmt):
                if self.language.find_edge_type(stmt.type_name) is None:
                    raise FunctionError(
                        f"function {self.name}: unknown edge type "
                        f"{stmt.type_name}")
                if stmt.name in node_types or stmt.name in edge_types:
                    raise FunctionError(
                        f"function {self.name}: duplicate element "
                        f"{stmt.name}")
                for endpoint in (stmt.src, stmt.dst):
                    if endpoint not in node_types:
                        raise FunctionError(
                            f"function {self.name}: edge {stmt.name} "
                            f"references undefined node {endpoint}")
                edge_types[stmt.name] = stmt.type_name
            elif isinstance(stmt, SetAttrStmt):
                decl = self._attr_decl(node_types, edge_types,
                                       stmt.owner, stmt.attr)
                if isinstance(stmt.value, ArgRef):
                    self._check_arg_ref(stmt.value.name)
                    if decl.const:
                        raise FunctionError(
                            f"function {self.name}: const attribute "
                            f"{stmt.owner}.{stmt.attr} cannot be assigned "
                            "from a function argument (§4.3)")
            elif isinstance(stmt, SetInitStmt):
                if stmt.node not in node_types:
                    raise FunctionError(
                        f"function {self.name}: set-init on undefined "
                        f"node {stmt.node}")
                node_type = self.language.find_node_type(
                    node_types[stmt.node])
                decl = node_type.inits.get(stmt.index)
                if decl is None:
                    raise FunctionError(
                        f"function {self.name}: node {stmt.node} has no "
                        f"init({stmt.index})")
                if isinstance(stmt.value, ArgRef):
                    self._check_arg_ref(stmt.value.name)
                    if decl.const:
                        raise FunctionError(
                            f"function {self.name}: const init"
                            f"({stmt.index}) of {stmt.node} cannot be "
                            "assigned from a function argument (§4.3)")
            elif isinstance(stmt, SetSwitchStmt):
                if stmt.edge not in edge_types:
                    raise FunctionError(
                        f"function {self.name}: set-switch on undefined "
                        f"edge {stmt.edge}")
                edge_type = self.language.find_edge_type(
                    edge_types[stmt.edge])
                if edge_type.fixed:
                    raise FunctionError(
                        f"function {self.name}: set-switch applied to "
                        f"fixed edge type {edge_type.name} (§4.3)")
                arg_names = {a.name for a in self.args}
                loose = E.referenced_names(stmt.condition) - arg_names
                if loose:
                    raise FunctionError(
                        f"function {self.name}: switch condition "
                        f"references unknown argument(s) {sorted(loose)}")
            else:
                raise FunctionError(
                    f"function {self.name}: unknown statement {stmt!r}")
        for arg in self.args:
            if arg.applies_to is not None:
                owner, attr = arg.applies_to
                decl = self._attr_decl(node_types, edge_types, owner, attr)
                if decl.const:
                    raise FunctionError(
                        f"function {self.name}: const attribute "
                        f"{owner}.{attr} cannot be bound to argument "
                        f"{arg.name} (§4.3)")

    def _attr_decl(self, node_types, edge_types, owner, attr):
        if owner in node_types:
            element_type = self.language.find_node_type(node_types[owner])
        elif owner in edge_types:
            element_type = self.language.find_edge_type(edge_types[owner])
        else:
            raise FunctionError(
                f"function {self.name}: set-attr on undefined element "
                f"{owner}")
        decl = element_type.attrs.get(attr)
        if decl is None:
            raise FunctionError(
                f"function {self.name}: {owner} of type "
                f"{element_type.name} has no attribute {attr}")
        return decl

    def _check_arg_ref(self, name: str):
        if not any(arg.name == name for arg in self.args):
            raise FunctionError(
                f"function {self.name}: reference to unknown argument "
                f"{name}")

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------

    def invoke(self, arguments: dict | None = None,
               seed: int | None = None) -> DynamicalGraph:
        """Execute the function and return the dynamical graph.

        :param arguments: argument name -> value mapping.
        :param seed: mismatch seed for this invocation (§4.3); ``None``
            produces the nominal instance.
        """
        bound = self._bind(arguments or {})
        builder = GraphBuilder(self.language,
                               name=f"{self.name}()", seed=seed)
        functions = self.language.functions()
        switch_env = _SwitchEnv(bound, functions)
        for stmt in self.statements:
            if isinstance(stmt, NodeStmt):
                builder.node(stmt.name, stmt.type_name)
            elif isinstance(stmt, EdgeStmt):
                builder.edge(stmt.src, stmt.dst, stmt.name, stmt.type_name)
            elif isinstance(stmt, SetAttrStmt):
                builder.set_attr(stmt.owner, stmt.attr,
                                 self._resolve(stmt.value, bound,
                                               functions))
            elif isinstance(stmt, SetInitStmt):
                builder.set_init(stmt.node,
                                 self._resolve(stmt.value, bound,
                                               functions),
                                 index=stmt.index)
            elif isinstance(stmt, SetSwitchStmt):
                builder.set_switch(stmt.edge,
                                   bool(stmt.condition.evaluate(
                                       switch_env)))
        for arg in self.args:
            if arg.applies_to is not None:
                owner, attr = arg.applies_to
                builder.set_attr(owner, attr, bound[arg.name])
        return builder.finish()

    def _bind(self, arguments: dict) -> dict:
        bound: dict[str, object] = {}
        expected = {arg.name for arg in self.args}
        extra = set(arguments) - expected
        if extra:
            raise FunctionError(
                f"function {self.name}: unexpected argument(s) "
                f"{sorted(extra)}")
        for arg in self.args:
            if arg.name not in arguments:
                raise FunctionError(
                    f"function {self.name}: missing argument {arg.name}")
            value = arguments[arg.name]
            if isinstance(value, LambdaVal):
                value = _compile_lambda(value, self.language.functions())
            if isinstance(arg.datatype, LambdaType):
                value = arg.datatype.check(
                    value, f"argument {arg.name} of {self.name}")
            else:
                value = arg.datatype.check(
                    value, f"argument {arg.name} of {self.name}")
            bound[arg.name] = value
        return bound

    def _resolve(self, value, bound: dict, functions: dict):
        if isinstance(value, Literal):
            return value.value
        if isinstance(value, ArgRef):
            return bound[value.name]
        if isinstance(value, LambdaVal):
            return _compile_lambda(value, functions)
        raise FunctionError(f"cannot interpret value spec {value!r}")

    def __call__(self, seed: int | None = None, **arguments,
                 ) -> DynamicalGraph:
        """Keyword-argument convenience wrapper around :meth:`invoke`."""
        return self.invoke(arguments, seed=seed)

    def __repr__(self) -> str:
        args = ", ".join(a.name for a in self.args)
        return (f"<ArkFunction {self.name}({args}) uses "
                f"{self.language.name}>")
