"""Time dilation of compiled systems (the Jaunt transform).

The paper's related work (§8) cites Jaunt [2]: analog hardware runs at
fixed physical timescales, so mapping a computation onto a device means
*rescaling time* — a Lotka-Volterra model evolving over seconds must be
sped up ~1e6x to run on microsecond-scale integrators, and a
nanosecond-scale TLN measurement may be slowed down for acquisition.

:func:`dilate` wraps a compiled :class:`OdeSystem` so that its
trajectory is the original's with time rescaled::

    x_dilated(t) = x_original(speedup * t)

which for ``dx/dt = f(t, x)`` is exactly the system
``dx/dt = speedup * f(speedup * t, x)`` — valid for time-varying inputs
(``fn(time)`` attributes are evaluated at the original timescale) and
for derivative-chain states of higher-order nodes (chain slots continue
to hold *original-time* derivatives: the wrapper rescales every
equation uniformly, it does not re-normalize state units; see the
property tests).

The wrapper duck-types :class:`OdeSystem` for everything
:func:`repro.simulate` and :class:`Trajectory` need, so dilated systems
drop into the ordinary workflow::

    system = repro.compile_graph(lotka_volterra())
    fast = dilate(system, speedup=1e6)
    trajectory = repro.simulate(fast, (0.0, 20e-6))   # 20 s of model time
"""

from __future__ import annotations

import numpy as np

from repro.core.compiler import compile_graph
from repro.core.graph import DynamicalGraph
from repro.core.odesystem import OdeSystem
from repro.errors import SimulationError


class TimeDilatedSystem:
    """An :class:`OdeSystem` view with time rescaled by ``speedup``."""

    def __init__(self, base: OdeSystem, speedup: float):
        if not np.isfinite(speedup) or speedup <= 0.0:
            raise SimulationError(
                f"speedup must be a positive finite number, got "
                f"{speedup}")
        self.base = base
        self.speedup = float(speedup)

    # -- the OdeSystem surface simulate()/Trajectory rely on ----------

    @property
    def graph(self):
        return self.base.graph

    @property
    def language(self):
        return self.base.language

    @property
    def y0(self) -> np.ndarray:
        return self.base.y0

    @property
    def n_states(self) -> int:
        return self.base.n_states

    def state_labels(self) -> list[str]:
        return self.base.state_labels()

    def index_of(self, node: str, deriv: int = 0) -> int:
        return self.base.index_of(node, deriv)

    def rhs(self, backend: str = "codegen"):
        inner = self.base.rhs(backend)
        speedup = self.speedup

        def rhs(t: float, y: np.ndarray) -> np.ndarray:
            return speedup * inner(speedup * t, y)

        return rhs

    def algebraic_values(self, t: float, y: np.ndarray,
                         ) -> dict[str, float]:
        return self.base.algebraic_values(self.speedup * t, y)

    def equations(self) -> list[str]:
        return [f"[time dilated by {self.speedup:g}] {line}"
                for line in self.base.equations()]

    # -- composition ---------------------------------------------------

    def dilated(self, speedup: float) -> "TimeDilatedSystem":
        """Compose dilations (factors multiply, no wrapper nesting)."""
        return TimeDilatedSystem(self.base, self.speedup * speedup)

    def __repr__(self) -> str:
        return (f"<TimeDilatedSystem x{self.speedup:g} of "
                f"{self.base!r}>")


def dilate(target: OdeSystem | TimeDilatedSystem | DynamicalGraph,
           speedup: float) -> TimeDilatedSystem:
    """Rescale a system's time axis: the result's trajectory at ``t``
    equals the original's at ``speedup * t``.

    ``speedup > 1`` makes the computation run faster in wall-clock
    time; ``speedup < 1`` slows it down. Graphs are compiled first.
    """
    if isinstance(target, TimeDilatedSystem):
        return target.dilated(speedup)
    if isinstance(target, DynamicalGraph):
        target = compile_graph(target)
    return TimeDilatedSystem(target, speedup)
