"""Fluent graph construction with datatype checking and mismatch sampling.

:class:`GraphBuilder` is the programmatic equivalent of an Ark function
body: it creates nodes and edges, writes attributes and initial values
(sampling mismatch-annotated datatypes through a seeded
:class:`~repro.core.mismatch.MismatchSampler`), and configures switches.
The paradigm libraries (TLN, CNN, OBC) build their topologies with it; the
statement-based :class:`~repro.core.function.ArkFunction` drives it when a
textual Ark function is invoked.
"""

from __future__ import annotations

from repro.core.graph import DynamicalGraph
from repro.core.language import Language
from repro.core.mismatch import MismatchSampler
from repro.errors import GraphError


class GraphBuilder:
    """Builds a :class:`DynamicalGraph` in a given language.

    :param language: the Ark language the graph is written in.
    :param seed: mismatch seed; ``None`` produces the ideal (nominal)
        instance, integers model fabricated instances (§4.3).
    """

    def __init__(self, language: Language, name: str = "dg",
                 seed: int | None = None):
        self.language = language
        self.graph = DynamicalGraph(language, name)
        self.sampler = MismatchSampler(seed)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def node(self, name: str, type_name: str) -> "GraphBuilder":
        """``node v0 : v1`` — create a node."""
        self.graph.add_node(name, type_name)
        return self

    def edge(self, src: str, dst: str, name: str, type_name: str,
             ) -> "GraphBuilder":
        """``edge<v0,v1> v2 : v3`` — create an edge."""
        self.graph.add_edge(name, src, dst, type_name)
        return self

    def set_attr(self, owner: str, attr: str, value) -> "GraphBuilder":
        """``set-attr v0.v1 = val`` — write an attribute.

        The nominal value is datatype-checked; mismatch-annotated
        attributes store a seeded sample instead of the nominal value.
        """
        element, kind = self._find_owner(owner)
        decl = element.type.attrs.get(attr)
        if decl is None:
            raise GraphError(
                f"{kind} {owner} of type {element.type.name} has no "
                f"attribute {attr}")
        nominal = decl.datatype.check(value, f"{owner}.{attr}")
        resolved = self.sampler.resolve(owner, attr, decl.datatype, nominal)
        element.nominal_attrs[attr] = nominal
        element.attrs[attr] = resolved
        return self

    def set_init(self, node_name: str, value, index: int = 0,
                 ) -> "GraphBuilder":
        """``set-init v(i) = val`` — write an initial value."""
        node = self.graph.node(node_name)
        decl = node.type.inits.get(index)
        if decl is None:
            raise GraphError(
                f"node {node_name} of order {node.type.order} has no "
                f"init({index})")
        nominal = decl.datatype.check(value,
                                      f"init({index}) of {node_name}")
        resolved = self.sampler.resolve(node_name, f"init{index}",
                                        decl.datatype, nominal)
        node.nominal_inits[index] = nominal
        node.inits[index] = float(resolved)
        return self

    def set_switch(self, edge_name: str, on) -> "GraphBuilder":
        """``set-switch v when b`` — configure a switchable edge."""
        self.graph.set_switch(edge_name, bool(on))
        return self

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def finish(self, check: bool = True) -> DynamicalGraph:
        """Apply type-level defaults and return the completed graph."""
        self.graph.apply_defaults()
        if check:
            self.graph.check_complete()
        return self.graph

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------

    def _find_owner(self, owner: str):
        if self.graph.has_node(owner):
            return self.graph.node(owner), "node"
        if self.graph.has_edge(owner):
            return self.graph.edge(owner), "edge"
        raise GraphError(f"unknown node or edge {owner}")
