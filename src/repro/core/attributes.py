"""Attribute and initial-value declarations (Fig. 6, line 4).

``attr v = SigT Prog`` declares a named attribute of a node or edge type;
``init(i) SigT Prog`` declares the datatype of the i-th derivative's initial
value. Both may be ``const`` (non-programmable, §4.3): a const attribute must
be bound to a constant at instantiation time and may not be wired to a
function argument.

Nonideality annotations ride on the datatype: a hardware-extension type
typically *adds* them when overriding a parent attribute (the GmC-TLN
``Vm`` overrides ``V.c`` with ``mm(0,0.1)``; a noisy extension overrides
with ``ns(sigma,kind)``). Overrides may add or strengthen annotations,
but must not flip the noise *kind* declared by a parent — absolute and
relative amplitudes have different semantics and silently swapping them
would change the compiled diffusion terms of every inherited graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.datatypes import Datatype, same_kind
from repro.errors import DatatypeError, InheritanceError


@dataclass(frozen=True)
class AttrDecl:
    """Declaration of a named attribute.

    :param name: attribute name (``c``, ``g``, ``k``, ``fn``...).
    :param datatype: bounded datatype, possibly mismatch-annotated.
    :param const: non-programmable (§4.3); cannot be set from function args.
    :param default: optional value assigned when a function does not set the
        attribute explicitly.
    """

    name: str
    datatype: Datatype
    const: bool = False
    default: object | None = None

    def __post_init__(self):
        if self.default is not None:
            self.datatype.check(self.default,
                                f"default of attribute `{self.name}`")

    def check_override(self, parent: "AttrDecl") -> None:
        """Validate this declaration as an override of ``parent`` (§4.1.1).

        Overrides must keep the datatype kind and narrow (or keep) the value
        range. A const declaration cannot be made programmable again.
        """
        if self.name != parent.name:
            raise InheritanceError(
                f"attribute override renames `{parent.name}` to "
                f"`{self.name}`")
        if not same_kind(self.datatype, parent.datatype):
            raise InheritanceError(
                f"attribute `{self.name}` override changes datatype kind "
                f"from {parent.datatype} to {self.datatype}")
        if not self.datatype.is_subrange_of(parent.datatype):
            raise InheritanceError(
                f"attribute `{self.name}` override widens the value range: "
                f"{self.datatype} is not contained in {parent.datatype}")
        if parent.const and not self.const:
            raise InheritanceError(
                f"attribute `{self.name}` override drops `const` from the "
                "parent declaration")
        parent_noise = getattr(parent.datatype, "noise", None)
        own_noise = getattr(self.datatype, "noise", None)
        if parent_noise is not None and own_noise is not None and \
                own_noise.kind != parent_noise.kind:
            raise InheritanceError(
                f"attribute `{self.name}` override changes the noise "
                f"kind from {parent_noise.kind} to {own_noise.kind}")


@dataclass(frozen=True)
class InitDecl:
    """Declaration of the initial value of the ``index``-th derivative."""

    index: int
    datatype: Datatype
    const: bool = False
    default: object | None = None

    def __post_init__(self):
        if self.index < 0:
            raise DatatypeError(
                f"init index must be non-negative, got {self.index}")
        if self.default is not None:
            self.datatype.check(self.default,
                                f"default of init({self.index})")

    def check_override(self, parent: "InitDecl") -> None:
        """Validate this declaration as an override of ``parent``."""
        if self.index != parent.index:
            raise InheritanceError(
                f"init override changes index {parent.index} to "
                f"{self.index}")
        if not same_kind(self.datatype, parent.datatype):
            raise InheritanceError(
                f"init({self.index}) override changes datatype kind from "
                f"{parent.datatype} to {self.datatype}")
        if not self.datatype.is_subrange_of(parent.datatype):
            raise InheritanceError(
                f"init({self.index}) override widens the value range: "
                f"{self.datatype} is not contained in {parent.datatype}")
        if parent.const and not self.const:
            raise InheritanceError(
                f"init({self.index}) override drops `const` from the parent "
                "declaration")
