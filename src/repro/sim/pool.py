"""Persistent zero-copy worker pool for sharded ensemble solves.

The ``shard`` backend pays two per-solve overheads the paper's
large-scale mismatch/noise sweeps cannot amortize: a fresh
``multiprocessing.Pool`` is spawned (and torn down) for every batched
group, and every shard's trajectory tensor returns through pickle.
This module removes both:

* **Persistent workers** — :class:`WorkerPool` spawns its processes
  once and reuses them across solves (and across sweeps inside one
  session). Workers keep a per-process cache of unpickled shared
  payloads, and the batch-codegen kernel cache
  (:mod:`repro.sim.batch_codegen`) means a structural group's RHS
  source is compiled at most once per worker no matter how many shards
  or reruns it serves.
* **Shared-memory results** — every task carries a tiny
  :class:`~repro.sim.shm.ShmBlock` header; the worker integrates its
  shard and stores the rows straight into the shared tensor. Only a
  small metadata dict (nfev, freeze mask) rides back on the result
  queue, so ``(n_instances, n_points, n_states)``-scale arrays never
  pass through pickle.

The parent-side unit of work is a :class:`PoolHandle`: one batched
group, split into per-worker shard tasks, all writing disjoint row
slices of one shared block. Handles complete asynchronously —
:func:`wait_any` is what lets the plan layer's streaming executor yield
finished groups while the stiffest group is still integrating.

Failure contract: an exception inside a task travels back pickled and
re-raises in the parent (so the plan layer's demote-to-serial handling
keeps working); a *dying* worker (hard crash, ``os._exit``) breaks the
whole pool — it is torn down, evicted from the registry, and
:class:`PoolBrokenError` raised; the next :func:`get_pool` call spawns
a fresh one. Every path discards the group's shared block, so no
``/dev/shm`` segment outlives its sweep.
"""

from __future__ import annotations

import atexit
import hashlib
import pickle
import queue as queue_module
import time
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.errors import SimulationError

from repro.sim import shm as shm_module
from repro.sim.batch_codegen import compile_batch
from repro.sim.batch_solver import BatchTrajectory, solve_batch
from repro.sim.sde_solver import solve_sde


class PoolBrokenError(SimulationError):
    """A pool worker died without reporting a result. The pool has been
    torn down; the next :func:`get_pool` call starts a fresh one."""


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


@dataclass
class ShardTask:
    """One shard of a batched group, as shipped to a worker.

    ``common`` is the pickle of the group-wide ``(factory, t_span,
    options, fuse)`` tuple — serialized once per group and cached
    per-worker, so the factory's (possibly large) attribute payload is
    not re-pickled for every shard. ``rows`` is the shard's work list:
    mismatch seeds for ODE shards, ``(chip_key, chip_seed, token)``
    triples for SDE shards. ``header``/``row_offset`` name the shared
    block and the shard's slice of it.
    """

    task_id: int
    kind: str
    common: bytes
    rows: list
    header: tuple
    row_offset: int
    #: Telemetry flag: when True the worker measures queue wait, busy
    #: time, and payload-cache behavior and ships them back inside the
    #: result meta. Deliberately *not* part of ``common`` (that blob is
    #: the payload-cache key) and never read by the solve itself, so
    #: collection cannot perturb results.
    collect: bool = False
    #: ``time.monotonic()`` at submit (when ``collect``) — monotonic is
    #: comparable across processes on Linux, unlike ``perf_counter``,
    #: so the worker can compute its queue wait from it.
    submitted_at: float = 0.0


#: Per-worker cache of unpickled ``common`` payloads, keyed by content
#: hash: the shards of one group (and of every rerun of the same sweep)
#: deserialize the factory exactly once per worker.
_COMMON_CACHE: dict[bytes, tuple] = {}
_COMMON_CACHE_MAX = 32


def _load_common(blob: bytes) -> tuple[tuple, bool]:
    """The unpickled common payload plus whether it was a cache hit."""
    key = hashlib.sha1(blob).digest()
    hit = _COMMON_CACHE.get(key)
    if hit is not None:
        return hit, True
    hit = pickle.loads(blob)
    if len(_COMMON_CACHE) >= _COMMON_CACHE_MAX:
        _COMMON_CACHE.clear()
    _COMMON_CACHE[key] = hit
    return hit, False


def _run_shard(task: ShardTask) -> dict:
    """Integrate one shard and store its rows into the shared block.
    The arithmetic is exactly the ``shard`` backend's — the rebuild
    helpers are literally shared with :mod:`repro.sim.plan` (same row
    split, same whole-group fuse decision) — so pool results are
    bit-identical to ``shard`` (and, for fixed-step methods, to
    ``batch``)."""
    # Lazy import: plan.py is the registry module and imports this one
    # inside functions only, so importing it here (in the worker) is
    # cycle-free.
    from repro.sim.plan import _compile_sde_rows, _compile_target

    started = time.monotonic() if task.collect else 0.0
    factory_common, payload_hit = _load_common(task.common)
    factory, t_span, options, fuse = factory_common
    array_backend = options.get("array_backend")
    if task.kind == "ode":
        systems = [_compile_target(factory(seed)) for seed in task.rows]
        batch = compile_batch(systems, fuse=fuse,
                              array_backend=array_backend)
        trajectory = solve_batch(batch, t_span, **options)
    else:
        replicated, tokens = _compile_sde_rows(factory, task.rows)
        batch = compile_batch(replicated, fuse=fuse,
                              array_backend=array_backend)
        trajectory = solve_sde(batch, t_span, noise_seeds=tokens,
                               **options)
    block = shm_module.ShmBlock.attach(task.header)
    try:
        block.write_rows(task.row_offset, trajectory.y)
    finally:
        block.close()
    meta = {
        "n_rows": trajectory.y.shape[0],
        "nfev": trajectory.nfev,
        "frozen": None if trajectory.frozen is None
        else np.asarray(trajectory.frozen, dtype=bool),
    }
    if task.collect:
        # Workers have no ContextVar collector (they outlive any single
        # collection window), so counters are computed directly and
        # ride home in the meta dict; the parent folds them in via
        # telemetry.merge_worker when the handle resolves.
        import multiprocessing

        busy = time.monotonic() - started
        meta["telemetry"] = {
            "worker": multiprocessing.current_process().name,
            "shards": 1,
            "rows": trajectory.y.shape[0],
            "nfev": trajectory.nfev or 0,
            "queue_wait_seconds": max(0.0,
                                      started - task.submitted_at),
            "busy_seconds": busy,
            "payload_cache_hits": int(payload_hit),
            "payload_cache_misses": int(not payload_hit),
            # Timestamped span for the trace timeline: ``t0`` is the
            # worker's monotonic clock at shard start, which the parent
            # rebases onto the collection window (monotonic is the one
            # clock comparable across processes on Linux).
            "events": [{"name": f"shard.solve:{task.kind}",
                        "t0": started, "seconds": busy,
                        "rows": trajectory.y.shape[0]}],
        }
    return meta


def _encode_error(exc: BaseException) -> bytes:
    try:
        return pickle.dumps(exc)
    except Exception:
        return pickle.dumps(SimulationError(
            f"pool worker failed with unpicklable "
            f"{type(exc).__name__}: {exc}"))


def _decode_error(blob: bytes) -> BaseException:
    try:
        return pickle.loads(blob)
    except Exception:  # pragma: no cover - defensive
        return SimulationError("pool worker failed (undecodable error)")


def _worker_main(tasks, results):  # pragma: no cover - subprocess body
    """Worker loop: runs until the ``None`` sentinel. Exceptions —
    including solver ``SimulationError``s — are reported, never fatal,
    so one stiff shard cannot take the pool down."""
    while True:
        task = tasks.get()
        if task is None:
            break
        try:
            meta = _run_shard(task)
        except BaseException as exc:  # noqa: BLE001 - must stay alive
            results.put((task.task_id, False, _encode_error(exc)))
        else:
            results.put((task.task_id, True, meta))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


@dataclass
class PoolHandle:
    """Parent-side state of one in-flight batched group.

    Tracks the group's pending shard task ids, accumulates the small
    per-shard metadata, and owns the group's shared block until
    :meth:`result` (success) or :meth:`discard` (any failure path)
    releases it.
    """

    pool: "WorkerPool"
    block: shm_module.ShmBlock
    grid: np.ndarray
    systems: list
    storable: bool
    masked: bool
    pending: set = field(default_factory=set)
    offsets: list = field(default_factory=list)
    metas: dict = field(default_factory=dict)
    error: BaseException | None = None
    #: Optional observer called from :meth:`result` with one dict per
    #: shard (``offset``/``rows``/``seconds``/``worker``) — the
    #: scheduler's cost-model feedback channel (see
    #: :mod:`repro.sim.sched`). Only populated when shards were
    #: submitted with ``timing=True``.
    on_shards: object = None

    @property
    def done(self) -> bool:
        return not self.pending

    def _complete(self, task_id: int, ok: bool, payload) -> None:
        self.pending.discard(task_id)
        if ok:
            self.metas[task_id] = payload
        elif self.error is None:
            self.error = _decode_error(payload)

    def wait(self) -> None:
        """Block until every shard reported (or the pool broke)."""
        while self.pending:
            self.pool.drain_one()

    def result(self):
        """The group's ``(BatchTrajectory, storable)`` — call when
        :attr:`done`. Raises the first shard error (after releasing the
        block) so callers treat pool groups like any other solve."""
        if self.pending:
            raise SimulationError("pool group is still running")
        if self.error is not None:
            self.discard()
            raise self.error
        y = self.block.read_copy()
        self.discard()
        nfev = sum(meta["nfev"] or 0 for meta in self.metas.values())
        if telemetry.enabled():
            telemetry.add("pool.shards", len(self.metas))
            telemetry.add("pool.shm_bytes_transferred", y.nbytes)
            telemetry.add("pool.pickle_bytes_avoided", y.nbytes)
            telemetry.add("solver.nfev", nfev)
            for meta in self.metas.values():
                info = meta.get("telemetry")
                if info is not None:
                    telemetry.merge_worker(info)
        frozen = None
        if self.masked:
            frozen = np.zeros(y.shape[0], dtype=bool)
            for task_id, offset in self.offsets:
                part = self.metas[task_id]["frozen"]
                if part is not None:
                    frozen[offset:offset + len(part)] = part
            telemetry.add("solver.frozen_rows", int(frozen.sum()))
        if self.on_shards is not None:
            stats = []
            for task_id, offset in self.offsets:
                meta = self.metas.get(task_id) or {}
                info = meta.get("telemetry") or {}
                stats.append({"offset": offset,
                              "rows": meta.get("n_rows", 0),
                              "seconds": info.get("busy_seconds"),
                              "worker": info.get("worker")})
            self.on_shards(stats)
        return BatchTrajectory(t=self.grid, y=y,
                               systems=list(self.systems),
                               frozen=frozen, nfev=nfev), self.storable

    def discard(self) -> None:
        """Release the shared block and forget pending tasks
        (idempotent) — the single cleanup path for success, shard
        errors, pool breakage, and ``KeyboardInterrupt`` alike."""
        for task_id in self.pending:
            self.pool._handles.pop(task_id, None)
        self.pending.clear()
        self.block.discard()


class WorkerPool:
    """A fixed set of persistent worker processes plus task/result
    queues. Spawned once (see :func:`get_pool`) and reused across
    solves; submitting is cheap, results route back to their
    :class:`PoolHandle` by task id."""

    def __init__(self, processes: int, pin: bool = False):
        import multiprocessing

        context = multiprocessing.get_context()
        self.processes = int(processes)
        self.pin = bool(pin)
        self.pinned = 0
        self._tasks = context.Queue()
        self._results = context.Queue()
        self._handles: dict[int, PoolHandle] = {}
        self._next_task_id = 0
        self.broken = False
        self._workers = [
            context.Process(target=_worker_main,
                            args=(self._tasks, self._results),
                            daemon=True, name=f"ark-pool-{index}")
            for index in range(self.processes)]
        for worker in self._workers:
            worker.start()
        if self.pin:
            from repro.sim.sched import pin_worker_processes

            self.pinned = pin_worker_processes(
                [worker.pid for worker in self._workers])

    def submit(self, handle: PoolHandle, kind: str, common: bytes,
               rows: list, row_offset: int,
               timing: bool = False) -> int:
        """Queue one shard. ``timing=True`` forces the worker-side wall
        clock measurement even without an active telemetry window — the
        scheduler's cost model consumes it via ``PoolHandle.on_shards``
        (collection never perturbs the solve either way)."""
        if self.broken:
            raise PoolBrokenError(
                "worker pool is broken; acquire a fresh one with "
                "get_pool()")
        task_id = self._next_task_id
        self._next_task_id += 1
        handle.pending.add(task_id)
        handle.offsets.append((task_id, row_offset))
        self._handles[task_id] = handle
        collect = telemetry.enabled() or timing
        self._tasks.put(ShardTask(task_id=task_id, kind=kind,
                                  common=common, rows=rows,
                                  header=handle.block.header,
                                  row_offset=row_offset,
                                  collect=collect,
                                  submitted_at=time.monotonic()
                                  if collect else 0.0))
        return task_id

    def drain_one(self, poll: float | None = None) -> PoolHandle:
        """Route the next result to its handle and return that handle.

        Event-driven: waits on the result queue's pipe *and* every
        worker's death sentinel in one ``multiprocessing.connection.
        wait`` call, so the parent wakes the moment a result (or a
        crash) lands instead of paying the historical up-to-100 ms
        timeout poll per chunk. A worker that vanished with tasks
        outstanding breaks the pool (every in-flight group is
        unrecoverable — its shard may have died mid-write). ``poll``
        optionally bounds one wait (compatibility knob; ``None`` blocks
        until an event)."""
        while True:
            try:
                task_id, ok, payload = self._results.get_nowait()
            except queue_module.Empty:
                if not self._wait_for_result(poll):
                    self._break()
                    raise PoolBrokenError(
                        "a pool worker died without reporting a "
                        "result; the pool was torn down") from None
                continue
            handle = self._handles.pop(task_id, None)
            if handle is None:
                continue  # result of a discarded (cancelled) group
            handle._complete(task_id, ok, payload)
            return handle

    def _wait_for_result(self, poll: float | None = None) -> bool:
        """Block until the result queue (probably) has data. ``False``
        means a worker died with nothing left to drain — the caller
        breaks the pool."""
        from multiprocessing import connection

        reader = getattr(self._results, "_reader", None)
        if reader is None:  # pragma: no cover - exotic queue impl
            # No pipe to select on: fall back to the historical
            # bounded sleep + liveness check.
            time.sleep(poll if poll is not None else 0.05)
            return all(worker.is_alive() for worker in self._workers)
        sentinels = [worker.sentinel for worker in self._workers]
        ready = connection.wait([reader, *sentinels], timeout=poll)
        if reader in ready:
            return True
        if ready:
            # Only death sentinels fired. The dead worker's queue
            # feeder may still be flushing a final result it managed to
            # put before exiting — give the pipe one bounded chance.
            if reader.poll(0.1):
                return True
            return all(worker.is_alive() for worker in self._workers)
        return True  # bounded wait timed out with everyone alive

    def _break(self) -> None:
        self.broken = True
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
        for key, pool in list(_POOLS.items()):
            if pool is self:
                del _POOLS[key]

    def close(self) -> None:
        """Orderly shutdown: sentinel every worker, then join."""
        if self.broken:
            return
        self.broken = True
        for _ in self._workers:
            self._tasks.put(None)
        for worker in self._workers:
            worker.join(timeout=2.0)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
        for key, pool in list(_POOLS.items()):
            if pool is self:
                del _POOLS[key]


def wait_any(handles: list[PoolHandle]) -> PoolHandle:
    """Block until at least one of ``handles`` is complete and return
    it — the streaming executor's yield-as-workers-finish primitive."""
    while True:
        for handle in handles:
            if handle.done:
                return handle
        handles[0].pool.drain_one()


# ----------------------------------------------------------------------
# Pool registry (spawn once, reuse across solves)
# ----------------------------------------------------------------------

_POOLS: dict[int, WorkerPool] = {}


def active_tasks() -> int:
    """Shard tasks currently in flight across every registered pool —
    the live-progress dashboard's "workers busy" signal (an in-flight
    task is either executing on a worker or queued at one)."""
    return sum(len(pool._handles) for pool in _POOLS.values())


def get_pool(processes: int, pin_workers: bool = False) -> WorkerPool:
    """The process-wide persistent pool of the given width, spawning it
    on first use (or after breakage). Reuse across solves is the point:
    repeated sweeps skip both worker spawn and — through the per-worker
    caches — payload deserialization and RHS source compilation.

    Pools of *other* widths are retired when they are idle, so a
    session that sweeps with varying ``processes`` values does not
    accumulate resident workers; an idle-width pool that is still
    wanted simply respawns on its next use (paying one cold start).
    ``pin_workers`` is a spawn-time property: an idle same-width pool
    with the wrong pinning respawns, an in-flight one is reused as-is
    (pinning is best-effort, never worth breaking a running sweep).
    :func:`shutdown_pools` releases everything explicitly."""
    processes = int(processes)
    for width, other in list(_POOLS.items()):
        # A pool with registered handles has groups in flight (e.g. an
        # interleaved stream of a different width) — leave it alone.
        if width != processes and not other._handles:
            other.close()
    pool = _POOLS.get(processes)
    if pool is not None and not pool.broken \
            and pool.pin != bool(pin_workers) and not pool._handles:
        pool.close()
        pool = None
    if pool is None or pool.broken:
        pool = WorkerPool(processes, pin=pin_workers)
        _POOLS[processes] = pool
    return pool


def shutdown_pools() -> None:
    """Close every registered pool (atexit hook; also used by tests).

    After the workers are gone, any surviving parent-owned shared-
    memory segment is by definition leaked — each group's block should
    have been released when its handle resolved or was discarded — so
    the shutdown doubles as the leak check: a ``ResourceWarning`` names
    and sizes every survivor."""
    had_pools = bool(_POOLS)
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()
    if had_pools:
        shm_module.warn_leaked_blocks("pool shutdown")


atexit.register(shutdown_pools)
